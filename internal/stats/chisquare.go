package stats

import (
	"errors"
	"math"
)

// ChiSquareGOF performs Pearson's chi-square goodness-of-fit test of
// observed counts against expected proportions (which are normalized
// internally). Used to score how closely the generated Table II ticket
// mix tracks the published one.
func ChiSquareGOF(observed []float64, expectedProportions []float64) (TestResult, error) {
	if len(observed) != len(expectedProportions) {
		return TestResult{}, errors.New("stats: length mismatch")
	}
	if len(observed) < 2 {
		return TestResult{}, errors.New("stats: need at least two categories")
	}
	total := Sum(observed)
	if total <= 0 {
		return TestResult{}, errors.New("stats: no observations")
	}
	propTotal := Sum(expectedProportions)
	if propTotal <= 0 {
		return TestResult{}, errors.New("stats: degenerate expected proportions")
	}
	chi2 := 0.0
	for i, o := range observed {
		if o < 0 || expectedProportions[i] < 0 {
			return TestResult{}, errors.New("stats: negative counts")
		}
		e := total * expectedProportions[i] / propTotal
		if e == 0 {
			if o == 0 {
				continue
			}
			return TestResult{}, errors.New("stats: observed count in zero-probability category")
		}
		d := o - e
		chi2 += d * d / e
	}
	df := float64(len(observed) - 1)
	return TestResult{Statistic: chi2, DF: df, P: 1 - ChiSquareCDF(chi2, df)}, nil
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareCDF(x, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(df/2, x/2)
}

// regIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x), using the series expansion for x < a+1 and the
// continued fraction for the complement otherwise (Numerical Recipes
// gser/gcf).
func regIncGammaLower(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its series representation.
func gammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// gammaCF evaluates Q(a, x) = 1 - P(a, x) by continued fraction
// (modified Lentz).
func gammaCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpmin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lgamma(a))
}
