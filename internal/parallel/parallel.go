// Package parallel is the deterministic fork-join execution layer the
// analysis substrate runs on: bounded worker pools over an index space,
// with results written into caller-owned, index-addressed slots so every
// reduction happens in a deterministic order no matter how the scheduler
// interleaves the work.
//
// The contract every caller relies on:
//
//   - workers <= 1 runs inline on the calling goroutine, byte-identical
//     to a plain loop (no goroutines, no synchronization);
//   - workers > 1 produces exactly the same results as workers == 1,
//     because tasks communicate only through their own index slot and
//     callers reduce the slots in index order;
//   - cancellation is cooperative: once ctx is done, unstarted tasks are
//     skipped and the context error is reported.
//
// Errors are deterministic too: when several tasks fail, the error of
// the lowest index is returned, matching what a serial loop that stops
// at the first failure would have surfaced.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: any value below 1 means
// GOMAXPROCS (use the whole machine), mirroring the convention of
// simulate.Config.Workers.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers < 1 means GOMAXPROCS). It blocks until every started task
// finished, then returns the lowest-index error, if any. Tasks must
// communicate only through index-addressed state for the deterministic
// equality of serial and parallel runs to hold.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach where fn also receives the worker slot w in
// [0, workers). Two tasks with the same slot never run concurrently, so
// callers can keep per-slot scratch buffers without locking (the CART
// split search reuses class-count buffers this way).
func ForEachWorker(ctx context.Context, workers, n int, fn func(w, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline serial path: identical to the pre-parallel code, with a
		// cancellation checkpoint between tasks.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Cancellation checkpoint: drain remaining indices
				// without running them once the caller is gone.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) and returns the results in index order — the
// ordered-reduction primitive. On error the lowest-index failure is
// returned and the results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most parts contiguous [lo, hi) ranges of
// near-equal size, in order. Scans that keep running state use it to
// fan a loop out after precomputing prefix sums.
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	size, rem := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + size
		if p < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
