// Package ctxflow keeps cancellation threaded through the hot paths.
//
// Two rules:
//
//  1. inside a function that already receives a context.Context, a call
//     to a callee with a ...Context sibling (same package or same
//     method set, first parameter context.Context) must use that
//     sibling — dropping ctx on the floor silently disables the
//     deadline the server attaches to every request;
//  2. context.Background() belongs in package main, tests, and the
//     documented facade shims: a function X whose body returns
//     XContext(context.Background(), ...) and whose doc comment names
//     the Context variant. Anything else needs a //lint:allow entry
//     with a reason (the registry's detached build context is the one
//     such site).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"rainshine/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "thread ctx to ...Context call variants and confine context.Background to main, tests, and documented facade shims",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasCtxParam(pass, fd) {
				checkThreading(pass, fd)
			}
			checkBackground(pass, fd)
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkThreading flags calls that ignore an available ...Context
// sibling while the enclosing function holds a ctx.
func checkThreading(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil || strings.HasSuffix(fn.Name(), "Context") {
			return true
		}
		if sibling := contextSibling(fn); sibling != nil {
			pass.Reportf(call.Pos(), "call to %s ignores its context-aware variant %s; thread this function's ctx through it", fn.Name(), sibling.Name())
		}
		return true
	})
}

// contextSibling finds a function Name+"Context" next to fn — in its
// method set for methods, in its package scope otherwise — whose first
// parameter is a context.Context.
func contextSibling(fn *types.Func) *types.Func {
	want := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && takesCtxFirst(m) {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if s, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && takesCtxFirst(s) {
		return s
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func takesCtxFirst(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// checkBackground flags context.Background() outside main and the
// facade-shim shape.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	if pass.Pkg.Name() == "main" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || fn.Name() != "Background" {
			return true
		}
		variant := fd.Name.Name + "Context"
		if !isFacadeShim(pass, fd, call) {
			pass.Reportf(call.Pos(), "context.Background() outside main, tests, and facade shims: accept a ctx or add a documented facade %s", variant)
			return true
		}
		if !strings.Contains(fd.Doc.Text(), variant) {
			pass.Reportf(call.Pos(), "facade shim %s must name %s in its doc comment so callers can find the cancellable variant", fd.Name.Name, variant)
		}
		return true
	})
}

// isFacadeShim reports whether the Background call feeds a return of
// <fd.Name>Context(...) — the documented ctx-free convenience wrapper.
func isFacadeShim(pass *analysis.Pass, fd *ast.FuncDecl, bg *ast.CallExpr) bool {
	shim := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || shim {
			return !shim
		}
		if len(ret.Results) != 1 {
			return true
		}
		call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
		if !ok || !contains(call, bg) {
			return true
		}
		if fn := analysis.ObjectOf(pass.TypesInfo, call); fn != nil && fn.Name() == fd.Name.Name+"Context" {
			shim = true
		}
		return !shim
	})
	return shim
}

func contains(outer *ast.CallExpr, inner *ast.CallExpr) bool {
	return inner.Pos() >= outer.Pos() && inner.End() <= outer.End()
}
