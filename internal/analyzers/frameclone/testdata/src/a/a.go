// Package a exercises the frameclone aliasing rules.
package a

import "frame"

// Mutate attaches a column straight onto the shared parameter frame.
func Mutate(f *frame.Frame) {
	f.AddContinuous("x", nil) // want `attaching a column to f, which aliases a parameter frame`
}

// Cloned re-points the variable at a ShallowClone first (negative).
func Cloned(f *frame.Frame) {
	f = f.ShallowClone()
	f.AddContinuous("x", nil)
}

// Alias propagates the taint through a plain alias.
func Alias(f *frame.Frame) {
	g := f
	g.AddNominalInts("k", nil) // want `attaching a column to g, which aliases a parameter frame`
}

// Subsetted mutates a frame the cleanser handed back (negative).
func Subsetted(f *frame.Frame) {
	g := f.Subset(nil)
	g.AddContinuous("x", nil)
}

// Fresh mutates a locally constructed frame (negative).
func Fresh(f *frame.Frame) *frame.Frame {
	g := frame.New()
	g.AddContinuous("x", nil)
	return g
}

// build is unexported: builders own their frames (negative).
func build(f *frame.Frame) {
	f.AddContinuous("x", nil)
}

// MarkCol marks nulls through a column view of the parameter frame.
func MarkCol(f *frame.Frame) {
	c, _ := f.Col("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SetCol writes a missing cell through MustCol on the parameter frame.
func SetCol(f *frame.Frame) {
	c := f.MustCol("x")
	c.SetMissing(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// MarkColAt marks nulls through a positional column view.
func MarkColAt(f *frame.Frame) {
	c := f.ColAt(0)
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// ShallowStillShared: ShallowClone copies the directory, not the cells,
// so column views of the clone still alias the caller's storage.
func ShallowStillShared(f *frame.Frame) {
	g := f.ShallowClone()
	c := g.MustCol("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SelectStillShared: Select shares column storage too.
func SelectStillShared(f *frame.Frame) {
	g, _ := f.Select("x")
	c := g.MustCol("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SubsetOwnsCells: Subset copies cells, so its views are safe (negative).
func SubsetOwnsCells(f *frame.Frame) {
	g := f.Subset(nil)
	c := g.MustCol("x")
	c.MarkNull(0)
}

// FilterOwnsCells: Filter copies cells too (negative).
func FilterOwnsCells(f *frame.Frame) {
	g := f.Filter(nil)
	c := g.MustCol("x")
	c.SetMissing(0)
}

// ClonedColumn re-points the view at a deep copy first (negative).
func ClonedColumn(f *frame.Frame) {
	c := f.MustCol("x")
	c = c.Clone()
	c.MarkNull(0)
}

// MarkChunk marks nulls through a chunk window of a shared column.
func MarkChunk(f *frame.Frame) {
	c := f.MustCol("x")
	ch := c.Chunk(0, 1)
	ch.MarkNull(0) // want `marking nulls on ch, which views cell storage shared with the caller`
}

// MarkChunks marks nulls while ranging over the chunk list.
func MarkChunks(f *frame.Frame) {
	c := f.MustCol("x")
	for _, ch := range c.Chunks(4) {
		ch.MarkNull(0) // want `marking nulls on ch, which views cell storage shared with the caller`
	}
}

// ChunkOfOwnedColumn windows a cloned column (negative).
func ChunkOfOwnedColumn(f *frame.Frame) {
	c := f.MustCol("x").Clone()
	for _, ch := range c.Chunks(4) {
		ch.MarkNull(0)
	}
}

// MutateCodes attaches a byte-coded column onto the shared parameter.
func MutateCodes(f *frame.Frame) {
	f.AddNominalCodes("k", nil, nil) // want `attaching a column to f, which aliases a parameter frame`
}

// MutateOrdinalCodes attaches an ordered byte-coded column.
func MutateOrdinalCodes(f *frame.Frame) {
	f.AddOrdinalCodes("k", nil, nil) // want `attaching a column to f, which aliases a parameter frame`
}

// MutateAddColumn attaches a prebuilt column onto the shared parameter.
func MutateAddColumn(f *frame.Frame) {
	f.AddColumn(frame.Column{Name: "k"}) // want `attaching a column to f, which aliases a parameter frame`
}

// ClonedCodes attaches byte-coded columns after re-pointing (negative).
func ClonedCodes(f *frame.Frame) {
	f = f.ShallowClone()
	f.AddNominalCodes("k", nil, nil)
	f.AddColumn(frame.Column{Name: "m"})
}

// WriteCodes stores through the code slice of a shared column view.
func WriteCodes(f *frame.Frame) {
	c := f.MustCol("x")
	codes := c.Codes()
	codes[0] = 1 // want `writing through codes, which aliases a shared column's byte-code storage`
}

// WriteCodesAlias propagates the slice taint through a plain alias.
func WriteCodesAlias(f *frame.Frame) {
	c := f.MustCol("x")
	codes := c.Codes()
	cs := codes
	cs[0] = 1 // want `writing through cs, which aliases a shared column's byte-code storage`
}

// WriteClonedCodes stores through a cloned column's codes (negative).
func WriteClonedCodes(f *frame.Frame) {
	c := f.MustCol("x").Clone()
	codes := c.Codes()
	codes[0] = 1
}

// WriteOwnedCodes stores through a locally built buffer (negative).
func WriteOwnedCodes(f *frame.Frame) {
	codes := make([]uint8, 4)
	codes[0] = 1
	f = f.ShallowClone()
	f.AddNominalCodes("k", codes, nil)
}

// WriteSubsetCodes stores through a cell-owning frame's codes (negative).
func WriteSubsetCodes(f *frame.Frame) {
	g := f.Subset(nil)
	c := g.MustCol("x")
	codes := c.Codes()
	codes[0] = 1
}
