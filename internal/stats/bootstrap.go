package stats

import (
	"sort"

	"rainshine/internal/rng"
)

// BootstrapCI estimates a percentile-method confidence interval for
// statistic stat over sample xs with the given number of resamples.
// level is the two-sided confidence level, e.g. 0.95.
func BootstrapCI(src *rng.Source, xs []float64, stat func([]float64) float64, resamples int, level float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if resamples < 2 {
		resamples = 2
	}
	estimates := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[src.IntN(len(xs))]
		}
		estimates[r] = stat(buf)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return quantileSorted(estimates, alpha), quantileSorted(estimates, 1-alpha), nil
}
