// Command timedmain shows the package-main wall-clock exemption
// (negative case): CLI progress timing is not analysis output.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
