package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"rainshine"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
)

// streamSimConfig resolves the global study flags to the simulation
// config the stream subcommand runs under — the same resolution
// NewStudyContext applies, so a written log replays byte-identically
// to the batch study built from the same flags.
func streamSimConfig(opts []rainshine.Option) simulate.Config {
	cfg := simulate.Config{Seed: rainshine.DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// streamCmd implements the stream subcommand:
//
//	rainshine [flags] stream <out.log>      simulate and write the stream log ("-" = stdout)
//	rainshine [flags] stream replay <log>   replay a log through the watermark
//	                                        maintainer and print the canonical
//	                                        study envelope ("-" = stdin)
func streamCmd(args []string, opts []rainshine.Option) error {
	switch {
	case len(args) == 1 && args[0] != "replay":
		return streamWrite(args[0], opts)
	case len(args) == 2 && args[0] == "replay":
		return streamReplay(args[1], opts)
	default:
		return fmt.Errorf("usage: rainshine [flags] stream <out.log> | stream replay <log>")
	}
}

func streamWrite(path string, opts []rainshine.Option) error {
	cfg := streamSimConfig(opts)
	fmt.Fprintf(os.Stderr, "simulating fleet (seed %d)...\n", cfg.Seed)
	res, err := simulate.Run(cfg)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriter(out)
	if err := stream.WriteStudyLog(bw, res); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	recs := res.Days*len(res.Fleet.Racks) + len(res.Events) + len(res.Tickets) + 1
	fmt.Fprintf(os.Stderr, "stream: wrote %d records (%d days, %d racks, %d events, %d tickets)\n",
		recs, res.Days, len(res.Fleet.Racks), len(res.Events), len(res.Tickets))
	return nil
}

func streamReplay(path string, opts []rainshine.Option) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = bufio.NewReader(f)
	}
	rd, err := stream.NewReader(in)
	if err != nil {
		return err
	}
	ctx := context.Background()
	m, err := stream.Replay(ctx, rd, stream.Config{Sim: streamSimConfig(opts)})
	if err != nil {
		return err
	}
	st := m.Stats()
	d, err := m.Finalize(ctx)
	if err != nil {
		return err
	}
	env, err := stream.EnvelopeJSON(ctx, d)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stream: replayed %d records to watermark %d (sealed %t, %d late, %d duplicates)\n",
		st.RecordsIn, st.Watermark, st.Sealed, st.Late, st.Duplicates)
	os.Stdout.Write(append(env, '\n'))
	return nil
}
