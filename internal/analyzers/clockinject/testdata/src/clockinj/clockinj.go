// Package clockinj is the fixture twin of the clock-injected packages
// (internal/resilience, internal/faults): no wall-clock or timer call
// may appear here, and calls into functions other packages exported
// WallClock facts for are flagged too.
package clockinj

import (
	"time"

	"clockdep"
)

// Gate is the injected-clock pattern: time enters only through now.
type Gate struct {
	open time.Time
	now  func() time.Time
}

// NewGate defaults the clock with a value reference — not a call, so
// it is allowed even here.
func NewGate(now func() time.Time) *Gate {
	if now == nil {
		now = time.Now
	}
	return &Gate{now: now}
}

// Open consults only the injected clock.
func (g *Gate) Open() bool {
	return g.now().After(g.open)
}

func sleepy(d time.Duration) {
	time.Sleep(d) // want `time.Sleep in clock-injected package clockinj`
}

func ticking() <-chan time.Time {
	return time.After(time.Second) // want `time.After in clock-injected package clockinj`
}

func viaFact() int64 {
	return clockdep.Stamp() // want `call to Stamp, which reads the wall clock`
}

func pureCallIsFine() int {
	return clockdep.Pure(41)
}
