// Package benchsnap owns the BENCH_analysis.json regression-snapshot
// schema: committed reference measurements plus named baselines they are
// judged against. It exists as a package (rather than test-local types)
// so every bench-gating test in the module — the root harness's fleet
// and streaming gates, internal/cart's coding-pass and multicore gates —
// merges into the same file without clobbering keys another recorder
// owns.
//
// Like-for-like gating: every measurement recorded by the current
// harness carries the GOMAXPROCS it ran under (older entries fall back
// to the document-level value). Gates must compare a fresh number only
// against a snapshot taken at the same parallelism — a 4-core box
// re-measuring a 1-core recording of a parallel fit would either fail
// spuriously or pass vacuously. Doc.Procs reports the recorded value;
// callers skip (and log) when it differs from runtime.GOMAXPROCS(0).
package benchsnap

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// Result is one measurement row. N is the iteration count
// testing.Benchmark settled on — persisted so a reader can judge how
// much averaging backs a number. GoMaxProcs is the parallelism the
// measurement ran under (0 on entries recorded before the field
// existed; Doc.Procs falls back to the document level). Note annotates
// entries whose provenance needs explaining.
type Result struct {
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	N           int    `json:"n"`
	GoMaxProcs  int    `json:"gomaxprocs,omitempty"`
	Note        string `json:"note,omitempty"`
}

// Doc is the BENCH_analysis.json schema. The document-level GoMaxProcs
// and GoVersion record the environment of the last writer; per-mark
// parallelism lives on each Result.
type Doc struct {
	GoMaxProcs int               `json:"gomaxprocs"`
	GoVersion  string            `json:"go_version"`
	Baselines  map[string]Result `json:"baselines"`
	Results    map[string]Result `json:"results"`
}

// Procs returns the parallelism a recorded entry was measured under,
// falling back to the document-level value for entries that predate the
// per-mark field.
func (d Doc) Procs(r Result) int {
	if r.GoMaxProcs > 0 {
		return r.GoMaxProcs
	}
	return d.GoMaxProcs
}

// Read loads a snapshot so writers merge into it rather than clobber
// keys other recorders own. A missing file is an empty document.
func Read(path string) (Doc, error) {
	doc := Doc{
		Baselines: map[string]Result{},
		Results:   map[string]Result{},
	}
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Baselines == nil {
		doc.Baselines = map[string]Result{}
	}
	if doc.Results == nil {
		doc.Results = map[string]Result{}
	}
	return doc, nil
}

// Write stamps the current environment and persists the document.
func Write(path string, doc Doc) error {
	doc.GoMaxProcs = runtime.GOMAXPROCS(0)
	doc.GoVersion = runtime.Version()
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Of converts a benchmark result into a snapshot row, stamping the
// parallelism it ran under.
func Of(r testing.BenchmarkResult) Result {
	return Result{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
}

// MeasureGated re-runs a benchmark until its fastest run lands within
// the regression gate, up to attempts runs. Min-of-k is the noise-robust
// estimator for a shared CI box — a scheduling stall inflates one run
// but rarely five — and stopping early on a pass keeps the happy path
// at a single run. budget <= 0 means no gate: measure min-of-3 for a
// stable recording.
func MeasureGated(fn func(*testing.B), budget int64, attempts int) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < attempts; i++ {
		r := testing.Benchmark(fn)
		if r.N > 0 && (best.N == 0 || r.NsPerOp() < best.NsPerOp()) {
			best = r
		}
		if budget > 0 {
			if best.N > 0 && best.NsPerOp() <= budget {
				break
			}
		} else if i >= 2 {
			break
		}
	}
	return best
}

// Budget converts a recorded entry into a gate budget: the recorded
// ns/op inflated by the gate fraction, or 0 (no gate) when the entry is
// absent, empty, or was measured under a different GOMAXPROCS than the
// current run (like-for-like gating).
func (d Doc) Budget(name string, gate float64) int64 {
	rec, ok := d.Results[name]
	if !ok || rec.NsPerOp <= 0 {
		return 0
	}
	if d.Procs(rec) != runtime.GOMAXPROCS(0) {
		return 0
	}
	return int64(float64(rec.NsPerOp) * (1 + gate))
}
