package stats

import (
	"math"
	"testing"

	"rainshine/internal/rng"
)

func TestWelchTNullDistribution(t *testing.T) {
	// Same distribution: p-values should rarely be significant.
	src := rng.New(31)
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = src.NormFloat64()
			ys[i] = src.NormFloat64()
		}
		r, err := WelchT(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if r.P < 0 || r.P > 1 {
			t.Fatalf("p = %v", r.P)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	// Expect ~5% type-I error; allow generous slack.
	if rejections > trials/5 {
		t.Errorf("null rejected %d/%d times", rejections, trials)
	}
}

func TestWelchTDetectsShift(t *testing.T) {
	src := rng.New(33)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = src.NormFloat64()
		ys[i] = src.NormFloat64() + 1.5
	}
	r, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Errorf("clear shift not detected: %+v", r)
	}
	if r.Statistic > 0 {
		t.Errorf("statistic sign wrong: %v", r.Statistic)
	}
}

func TestWelchTEdgeCases(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("too-small sample should error")
	}
	// Zero variance, equal means.
	r, err := WelchT([]float64{2, 2}, []float64{2, 2})
	if err != nil || r.P != 1 {
		t.Errorf("identical constant groups: %+v, %v", r, err)
	}
	// Zero variance, different means.
	r, err = WelchT([]float64{2, 2}, []float64{3, 3})
	if err != nil || r.P != 0 {
		t.Errorf("distinct constant groups: %+v, %v", r, err)
	}
}

func TestPairedT(t *testing.T) {
	// Consistent positive differences: strongly significant.
	xs := []float64{2.1, 2.2, 1.9, 2.3, 2.0, 2.1, 2.2, 1.8}
	ys := []float64{1.0, 1.1, 0.9, 1.2, 1.1, 1.0, 1.2, 0.8}
	r, err := PairedT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) || r.Statistic <= 0 {
		t.Errorf("paired shift not detected: %+v", r)
	}
	// No difference at all.
	r, err = PairedT(xs, xs)
	if err != nil || r.P != 1 {
		t.Errorf("identical pairs: %+v, %v", r, err)
	}
	// Constant nonzero difference: p vanishes (floating-point residue in
	// xs[i]+1-xs[i] keeps the variance infinitesimally nonzero, so allow
	// any astronomically small p rather than exactly 0).
	shift := make([]float64, len(xs))
	for i := range shift {
		shift[i] = xs[i] + 1
	}
	r, err = PairedT(shift, xs)
	if err != nil || r.P > 1e-30 {
		t.Errorf("constant shift: %+v, %v", r, err)
	}
	if _, err := PairedT(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedT([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair should error")
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	src := rng.New(37)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		base := src.NormFloat64()
		xs[i] = base + 1
		ys[i] = base + src.NormFloat64()*0.3
	}
	r, err := WilcoxonSignedRank(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.01) || r.Statistic <= 0 {
		t.Errorf("Wilcoxon missed clear shift: %+v", r)
	}
	// Null case.
	for i := range xs {
		xs[i] = src.NormFloat64()
		ys[i] = src.NormFloat64()
	}
	r, err = WilcoxonSignedRank(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0 || r.P > 1 {
		t.Errorf("p out of range: %v", r.P)
	}
	if _, err := WilcoxonSignedRank(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WilcoxonSignedRank([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("all-zero differences should error")
	}
}

func TestTDistributionAgainstKnownValues(t *testing.T) {
	// Classic table values: two-sided p for t=2.228, df=10 is 0.05.
	if p := twoSidedTP(2.228, 10); math.Abs(p-0.05) > 0.001 {
		t.Errorf("t=2.228 df=10: p = %v, want ~0.05", p)
	}
	// t=1.96 with huge df approaches the normal 0.05.
	if p := twoSidedTP(1.959964, 1e7); math.Abs(p-0.05) > 0.001 {
		t.Errorf("normal limit: p = %v", p)
	}
	// Symmetry.
	if twoSidedTP(2.5, 7) != twoSidedTP(-2.5, 7) {
		t.Error("two-sided p must be symmetric in t")
	}
	// t=0 gives p=1.
	if p := twoSidedTP(0, 5); math.Abs(p-1) > 1e-9 {
		t.Errorf("t=0: p = %v", p)
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.35, 0.5, 0.82} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.5, 0.7} {
		lhs := regIncBeta(2.5, 4, x)
		rhs := 1 - regIncBeta(4, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(3, 2, x)
		if v < prev {
			t.Fatalf("not monotone at %v", x)
		}
		prev = v
	}
}

func TestNormalCDF(t *testing.T) {
	if math.Abs(normalCDF(0)-0.5) > 1e-12 {
		t.Error("Phi(0) != 0.5")
	}
	if math.Abs(normalCDF(1.959964)-0.975) > 1e-5 {
		t.Errorf("Phi(1.96) = %v", normalCDF(1.959964))
	}
}
