// Package export serializes the synthetic telemetry — RMA tickets,
// hardware events, and the rack-day analysis table — to CSV and JSON
// Lines, so the traces can be consumed outside this repository (R,
// pandas, spreadsheets). This stands in for the data-release a
// measurement paper cannot make: the generator plus a seed *is* the
// dataset.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"rainshine/internal/calendar"
	"rainshine/internal/frame"
	"rainshine/internal/simulate"
	"rainshine/internal/ticket"
)

// TicketsCSV writes the ticket stream as CSV with a header row.
func TicketsCSV(w io.Writer, tickets []ticket.Ticket) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "date", "day", "hour", "dc", "rack", "category", "fault", "false_positive", "repair_hours", "device", "repeat"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: writing header: %w", err)
	}
	for _, t := range tickets {
		rec := []string{
			strconv.Itoa(t.ID),
			calendar.Date(t.Day).Format("2006-01-02"),
			strconv.Itoa(t.Day),
			strconv.FormatFloat(t.Hour, 'f', 2, 64),
			fmt.Sprintf("DC%d", t.DC+1),
			strconv.Itoa(t.Rack),
			t.Category().String(),
			t.Fault.String(),
			strconv.FormatBool(t.FalsePositive),
			strconv.FormatFloat(t.RepairHours, 'f', 2, 64),
			strconv.Itoa(t.Device),
			strconv.Itoa(t.Repeat),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: writing ticket %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// eventJSON is the JSONL schema for one hardware event.
type eventJSON struct {
	Rack        int     `json:"rack"`
	Date        string  `json:"date"`
	Day         int     `json:"day"`
	Hour        float64 `json:"hour"`
	Component   string  `json:"component"`
	RepairHours float64 `json:"repair_hours"`
	Shock       bool    `json:"shock"`
}

// EventsJSONL writes hardware failure events as JSON Lines.
func EventsJSONL(w io.Writer, events []simulate.Event) error {
	enc := json.NewEncoder(w)
	for i, ev := range events {
		rec := eventJSON{
			Rack:        int(ev.Rack),
			Date:        calendar.Date(int(ev.Day)).Format("2006-01-02"),
			Day:         int(ev.Day),
			Hour:        ev.Hour,
			Component:   ev.Component.String(),
			RepairHours: ev.RepairHours,
			Shock:       ev.Shock,
		}
		// Event hours come from the simulator's bounded day fractions
		// and repair-time draws; they are finite by construction.
		//lint:allow nansafe simulator event hours are finite by construction
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("export: encoding event %d: %w", i, err)
		}
	}
	return nil
}

// FrameCSV writes any frame as CSV, rendering categorical columns as
// their level labels. Missing cells — null-bitmap marks as well as
// non-finite floats — render as "NaN" in continuous columns and as
// "NA" in categorical ones, the forms ReadFrameCSV maps back onto the
// null bitmap. ("NA" rather than an empty field: a lone empty cell
// would serialize a single-column frame's row as a blank line, which
// encoding/csv readers silently drop.) A raw value hiding behind a
// null mark is deliberately not exported: missing is missing at the
// interchange boundary.
func FrameCSV(w io.Writer, f *frame.Frame) error {
	cw := csv.NewWriter(w)
	names := f.Names()
	if err := cw.Write(names); err != nil {
		return fmt.Errorf("export: writing header: %w", err)
	}
	cols := make([]*frame.Column, len(names))
	for i, n := range names {
		c, err := f.Col(n)
		if err != nil {
			return err
		}
		cols[i] = c
	}
	rec := make([]string, len(cols))
	for r := 0; r < f.NumRows(); r++ {
		for i, c := range cols {
			switch {
			case c.Kind == frame.Continuous && c.Missing(r):
				rec[i] = "NaN"
			case c.Kind == frame.Continuous:
				rec[i] = strconv.FormatFloat(c.Data[r], 'g', -1, 64)
			case c.Missing(r):
				rec[i] = "NA"
			default:
				rec[i] = c.LevelOf(c.Float(r))
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: writing row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
