package server

import (
	"encoding/json"
	"os"
	"testing"
)

// writeBenchSection merges one named section ("load", "soak") into the
// JSON document at RAINSHINE_BENCH_OUT, preserving the other sections —
// the load and soak tests each own a section of BENCH_serve.json and
// may run (and re-record) independently. No-op when the env var is
// unset (the ordinary `go test` path).
func writeBenchSection(t *testing.T, section string, v any) {
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		return
	}
	doc := map[string]any{}
	if buf, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(buf, &doc)
		// A pre-sectioned (flat) bench file is replaced wholesale.
		if _, load := doc["load"]; !load {
			if _, soak := doc["soak"]; !soak {
				doc = map[string]any{}
			}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("encoding %s section: %v", section, err)
	}
	var vv any
	if err := json.Unmarshal(raw, &vv); err != nil {
		t.Fatal(err)
	}
	doc[section] = vv
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("%s summary written to %s", section, out)
}
