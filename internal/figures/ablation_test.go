package figures

import "testing"

func TestAblationFeatures(t *testing.T) {
	d := testData(t)
	rows, err := d.AblationFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byConfig := map[string]map[string]AblationRow{}
	for _, r := range rows {
		if byConfig[r.Workload] == nil {
			byConfig[r.Workload] = map[string]AblationRow{}
		}
		byConfig[r.Workload][r.Config] = r
		if r.OverprovPct < 0 || r.OverprovPct > 100 {
			t.Errorf("overprov = %v", r.OverprovPct)
		}
		if r.GapClosedPct < 0 || r.GapClosedPct > 100 {
			t.Errorf("gap closed = %v", r.GapClosedPct)
		}
		if r.Clusters < 1 {
			t.Errorf("clusters = %d", r.Clusters)
		}
	}
	// The design claim: all factors jointly close at least as much of
	// the SF-LB gap as the best single family, for each workload.
	for wl, cfgs := range byConfig {
		all := cfgs["features=all-factors"]
		for name, r := range cfgs {
			if name == "features=all-factors" {
				continue
			}
			if all.GapClosedPct < r.GapClosedPct-10 {
				t.Errorf("%s: all-factors closes %.1f%% but %s closes %.1f%%",
					wl, all.GapClosedPct, name, r.GapClosedPct)
			}
		}
	}
}

func TestAblationClusterBudget(t *testing.T) {
	d := testData(t)
	rows, err := d.AblationClusterBudget()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More cluster budget can only help (weakly): overprov must be
	// non-increasing in the cap, per workload.
	byWL := map[string][]AblationRow{}
	for _, r := range rows {
		byWL[r.Workload] = append(byWL[r.Workload], r)
	}
	for wl, series := range byWL {
		for i := 1; i < len(series); i++ {
			if series[i].OverprovPct > series[i-1].OverprovPct+1e-9 {
				t.Errorf("%s: overprov rose with cluster budget: %v -> %v",
					wl, series[i-1], series[i])
			}
		}
	}
}

func TestGapClosed(t *testing.T) {
	if got := gapClosed(0.1, 0.1, 0.5); got != 100 {
		t.Errorf("oracle gap = %v", got)
	}
	if got := gapClosed(0.1, 0.5, 0.5); got != 0 {
		t.Errorf("SF gap = %v", got)
	}
	if got := gapClosed(0.1, 0.3, 0.5); got != 50 {
		t.Errorf("mid gap = %v", got)
	}
	if got := gapClosed(0.5, 0.4, 0.5); got != 100 {
		t.Errorf("degenerate gap = %v", got)
	}
	if got := gapClosed(0.1, 0.9, 0.5); got != 0 {
		t.Errorf("worse-than-SF clamps to 0, got %v", got)
	}
}

func TestGranularitySweep(t *testing.T) {
	d := testData(t)
	rows, err := d.GranularitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The oracle requirement is monotone in window size per workload.
	byWL := map[string][]GranularityRow{}
	for _, r := range rows {
		byWL[r.Workload] = append(byWL[r.Workload], r)
	}
	for wl, series := range byWL {
		for i := 1; i < len(series); i++ {
			if series[i].LBPct < series[i-1].LBPct-1e-9 {
				t.Errorf("%s: LB not monotone across granularities: %+v", wl, series)
			}
		}
		for _, r := range series {
			if !(r.LBPct <= r.MFPct+1e-9 && r.MFPct <= r.SFPct+1e-9) {
				t.Errorf("%s/%s: sandwich violated: %+v", wl, r.Granularity, r)
			}
		}
	}
}

func TestAblationAutoCP(t *testing.T) {
	d := testData(t)
	rows, err := d.AblationAutoCP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverprovPct <= 0 || r.Clusters < 1 {
			t.Errorf("bad row: %+v", r)
		}
		// CV-selected cp should remain competitive: within 25 points of
		// gap closed versus the hand-tuned fixed cp.
		if r.Config == "cp=cross-validated" && r.GapClosedPct < 10 {
			t.Errorf("CV clustering degenerate: %+v", r)
		}
	}
}
