package metrics

import (
	"testing"

	"rainshine/internal/failure"
	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

func smallResult(t *testing.T) *simulate.Result {
	t.Helper()
	res, err := simulate.Run(simulate.Config{
		Seed:            11,
		Days:            120,
		Topology:        topology.Config{RacksPerDC: [2]int{40, 30}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWindowDistBasics(t *testing.T) {
	d := WindowDist{Counts: []int64{90, 8, 2}, Windows: 100}
	if d.Max() != 2 {
		t.Errorf("Max = %d", d.Max())
	}
	if d.Quantile(0.5) != 0 || d.Quantile(0.95) != 1 || d.Quantile(1.0) != 2 {
		t.Errorf("quantiles = %d %d %d", d.Quantile(0.5), d.Quantile(0.95), d.Quantile(1.0))
	}
	if got := d.Mean(); got != 0.12 {
		t.Errorf("Mean = %v", got)
	}
	empty := WindowDist{}
	if empty.Max() != 0 || empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty dist should be all zero")
	}
}

func TestMuDistributionsShape(t *testing.T) {
	res := smallResult(t)
	dists, err := MuDistributions(res, []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther}, Daily)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != len(res.Fleet.Racks) {
		t.Fatalf("dists = %d racks", len(dists))
	}
	totalWindows := 0
	sawFailures := false
	for ri, d := range dists {
		rack := &res.Fleet.Racks[ri]
		expect := res.Days
		if rack.CommissionDay > 0 {
			expect = res.Days - rack.CommissionDay
		}
		if d.Windows != expect {
			t.Fatalf("rack %d windows = %d, want %d", ri, d.Windows, expect)
		}
		totalWindows += d.Windows
		if d.Max() > 0 {
			sawFailures = true
		}
		if d.Max() > rack.Servers*3 {
			t.Fatalf("rack %d daily mu %d absurd vs %d servers", ri, d.Max(), rack.Servers)
		}
	}
	if !sawFailures {
		t.Fatal("no rack saw failures")
	}
	_ = totalWindows
}

func TestMuEventCountConsistency(t *testing.T) {
	// Every event must contribute at least one window occupancy: the
	// sum over windows of mu >= number of events (equality when no
	// repair crosses a window boundary, which never holds for hourly).
	res := smallResult(t)
	dists, err := MuDistributions(res, []failure.Component{failure.Disk}, Daily)
	if err != nil {
		t.Fatal(err)
	}
	var occupancy int64
	for _, d := range dists {
		for c, n := range d.Counts {
			occupancy += int64(c) * n
		}
	}
	diskEvents := 0
	for _, ev := range res.Events {
		if ev.Component == failure.Disk {
			diskEvents++
		}
	}
	if occupancy < int64(diskEvents) {
		t.Errorf("occupancy %d < disk events %d", occupancy, diskEvents)
	}
}

func TestHourlyRequirementNotAboveDaily(t *testing.T) {
	res := smallResult(t)
	comps := []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther}
	daily, err := MuDistributions(res, comps, Daily)
	if err != nil {
		t.Fatal(err)
	}
	hourly, err := MuDistributions(res, comps, Hourly)
	if err != nil {
		t.Fatal(err)
	}
	for ri := range daily {
		if hourly[ri].Max() > daily[ri].Max() {
			t.Fatalf("rack %d hourly max %d > daily max %d (temporal multiplexing violated)",
				ri, hourly[ri].Max(), daily[ri].Max())
		}
	}
}

func TestMuDistributionsErrors(t *testing.T) {
	res := smallResult(t)
	if _, err := MuDistributions(res, nil, Daily); err == nil {
		t.Error("no components should error")
	}
	if _, err := MuDistributions(res, []failure.Component{failure.Component(99)}, Daily); err == nil {
		t.Error("invalid component should error")
	}
}

func TestGranularityString(t *testing.T) {
	if Daily.String() != "daily" || Hourly.String() != "hourly" {
		t.Error("Granularity.String broken")
	}
}

func TestRackDayFrame(t *testing.T) {
	res := smallResult(t)
	f, err := RackDayFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	// Expected rows: sum over racks of observed days.
	want := 0
	for i := range res.Fleet.Racks {
		from := res.Fleet.Racks[i].CommissionDay
		if from < 0 {
			from = 0
		}
		if from < res.Days {
			want += res.Days - from
		}
	}
	if f.NumRows() != want {
		t.Fatalf("rows = %d, want %d", f.NumRows(), want)
	}
	for _, name := range []string{"temp", "rh", "age_months", "power_kw", "dc", "region", "sku", "workload", "dow", "month", "year", "failures", "disk_failures", "mem_failures", "server_failures"} {
		if _, err := f.Col(name); err != nil {
			t.Errorf("missing column: %v", err)
		}
	}
	// Total failures in frame must equal total events.
	total := 0.0
	for _, v := range f.MustCol("failures").Data {
		total += v
	}
	if int(total) != len(res.Events) {
		t.Errorf("frame failures %d != events %d", int(total), len(res.Events))
	}
	// Ages must be non-negative for observed rows.
	for _, a := range f.MustCol("age_months").Data {
		if a < 0 {
			t.Fatal("negative age in observed row")
		}
	}
	// disk+mem+server == failures rowwise (spot check).
	d := f.MustCol("disk_failures").Data
	m := f.MustCol("mem_failures").Data
	s := f.MustCol("server_failures").Data
	all := f.MustCol("failures").Data
	for r := 0; r < f.NumRows(); r += 997 {
		if d[r]+m[r]+s[r] != all[r] {
			t.Fatalf("row %d component sums mismatch", r)
		}
	}
}

func TestRackFeatureFrame(t *testing.T) {
	res := smallResult(t)
	f, err := RackFeatureFrame(res.Fleet, res.Days)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != len(res.Fleet.Racks) {
		t.Fatalf("rows = %d", f.NumRows())
	}
	c := f.MustCol("region")
	// Region levels must cover both DCs' regions: 4 + 3.
	if len(c.Levels) != 7 {
		t.Errorf("region levels = %v", c.Levels)
	}
	if c.Levels[0] != "DC1-1" || c.Levels[4] != "DC2-1" {
		t.Errorf("region labels = %v", c.Levels)
	}
}

func TestCoarserGranularityNeedsMoreSpares(t *testing.T) {
	// mu-max is monotone in window size: a weekly window sees every
	// device a daily window saw, and more.
	res := smallResult(t)
	comps := []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther}
	var prev []WindowDist
	for _, g := range []Granularity{Hourly, Daily, Weekly, Monthly} {
		cur, err := MuDistributions(res, comps, g)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for ri := range cur {
				if cur[ri].Max() < prev[ri].Max() {
					t.Fatalf("%v: rack %d max %d below finer granularity's %d",
						g, ri, cur[ri].Max(), prev[ri].Max())
				}
			}
		}
		for ri := range cur {
			if cur[ri].Windows < 0 {
				t.Fatalf("%v: rack %d negative window count", g, ri)
			}
		}
		prev = cur
	}
}

func TestGranularityStringAll(t *testing.T) {
	for g, want := range map[Granularity]string{
		Hourly: "hourly", Daily: "daily", Weekly: "weekly", Monthly: "monthly",
	} {
		if g.String() != want {
			t.Errorf("%d.String() = %q", g, g.String())
		}
	}
	if Granularity(9).String() != "Granularity(9)" {
		t.Error("unknown granularity string")
	}
}

func TestMTTR(t *testing.T) {
	res := smallResult(t)
	mttr := MTTR(res)
	for _, c := range []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther} {
		s, ok := mttr[c]
		if !ok || s.N == 0 {
			t.Fatalf("no MTTR for %v", c)
		}
		if s.P50 < 0.5 || s.P50 > 48 {
			t.Errorf("%v median repair %vh implausible", c, s.P50)
		}
		if s.P95 < s.P50 {
			t.Errorf("%v p95 below median", c)
		}
	}
}

func TestGroupMuDistributionsBasics(t *testing.T) {
	res := smallResult(t)
	comps := []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther}
	// Group by DC.
	dists, err := GroupMuDistributions(res, comps, Daily,
		func(r int) int { return res.Fleet.Racks[r].DC }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 2 {
		t.Fatalf("groups = %d", len(dists))
	}
	// DC-level max is bounded below by any member rack's max and above
	// by the sum of member maxima.
	perRack, err := MuDistributions(res, comps, Daily)
	if err != nil {
		t.Fatal(err)
	}
	sumMax := [2]int{}
	maxMax := [2]int{}
	for ri := range perRack {
		dc := res.Fleet.Racks[ri].DC
		m := perRack[ri].Max()
		sumMax[dc] += m
		if m > maxMax[dc] {
			maxMax[dc] = m
		}
	}
	for dc := 0; dc < 2; dc++ {
		g := dists[dc].Max()
		if g < maxMax[dc] || g > sumMax[dc] {
			t.Errorf("DC%d group max %d outside [%d, %d]", dc+1, g, maxMax[dc], sumMax[dc])
		}
	}
	// Excluded racks (negative group) must not contribute.
	only0, err := GroupMuDistributions(res, comps, Daily, func(r int) int {
		if res.Fleet.Racks[r].DC == 0 {
			return 0
		}
		return -1
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if only0[0].Max() != dists[0].Max() {
		t.Errorf("exclusion changed DC1 max: %d vs %d", only0[0].Max(), dists[0].Max())
	}
}

func TestCommissionYearIndexBounds(t *testing.T) {
	cases := []struct {
		day, want int
	}{
		{-5 * 365, 0},
		{-10000, 0}, // clamps low
		{-365, 4},
		{0, 5},
		{10000, 5}, // clamps high
	}
	for _, c := range cases {
		if got := commissionYearIndex(c.day); got != c.want {
			t.Errorf("commissionYearIndex(%d) = %d, want %d", c.day, got, c.want)
		}
	}
}
