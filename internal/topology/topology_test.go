package topology

import (
	"strings"
	"testing"

	"rainshine/internal/rng"
)

func buildFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := Build(rng.New(rng.DefaultSeed), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildCounts(t *testing.T) {
	f := buildFleet(t)
	if len(f.DCs) != 2 {
		t.Fatalf("DCs = %d", len(f.DCs))
	}
	if f.DCs[0].Racks != 331 || f.DCs[1].Racks != 290 {
		t.Errorf("rack specs = %d, %d", f.DCs[0].Racks, f.DCs[1].Racks)
	}
	if len(f.Racks) != 331+290 {
		t.Errorf("total racks = %d", len(f.Racks))
	}
	counts := [2]int{}
	for i := range f.Racks {
		counts[f.Racks[i].DC]++
	}
	if counts[0] != 331 || counts[1] != 290 {
		t.Errorf("per-DC racks = %v", counts)
	}
	if f.TotalServers() < 10000 {
		t.Errorf("TotalServers = %d, want tens of thousands", f.TotalServers())
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildFleet(t)
	b := buildFleet(t)
	for i := range a.Racks {
		if a.Racks[i] != b.Racks[i] {
			t.Fatalf("rack %d differs between identical builds", i)
		}
	}
}

func TestRackFieldsValid(t *testing.T) {
	f := buildFleet(t)
	powerSet := map[float64]bool{}
	for _, p := range PowerRatings {
		powerSet[p] = true
	}
	for i := range f.Racks {
		r := &f.Racks[i]
		if r.ID != i {
			t.Fatalf("rack %d ID = %d", i, r.ID)
		}
		dc := f.DCs[r.DC]
		if r.Region < 0 || r.Region >= dc.Regions {
			t.Fatalf("rack %s region %d out of range", r.Name, r.Region)
		}
		if r.Row < 0 || r.Row >= dc.Rows {
			t.Fatalf("rack %s row %d out of range", r.Name, r.Row)
		}
		if r.SKU < 0 || r.SKU >= NumSKUs {
			t.Fatalf("rack %s SKU %d", r.Name, r.SKU)
		}
		if r.Workload < 0 || r.Workload >= NumWorkloads {
			t.Fatalf("rack %s workload %d", r.Name, r.Workload)
		}
		if !powerSet[r.PowerKW] {
			t.Fatalf("rack %s power %v not in catalog", r.Name, r.PowerKW)
		}
		if r.Servers <= 0 || r.DisksPerServer <= 0 || r.DIMMsPerServer <= 0 {
			t.Fatalf("rack %s has empty hardware", r.Name)
		}
		// Ages must lie within 0-5 years over the window (Table III).
		age := r.AgeMonths(930)
		if age < 0 || age > 12*5+1 {
			t.Fatalf("rack %s age %v months out of [0,61]", r.Name, age)
		}
		if !strings.HasPrefix(r.Name, dc.Name+"-R") {
			t.Fatalf("rack name %q does not match DC %s", r.Name, dc.Name)
		}
	}
}

func TestSKUWorkloadAffinity(t *testing.T) {
	f := buildFleet(t)
	// Storage-data workloads (W5, W6) must be hosted on storage SKUs
	// (S1, S3) predominantly.
	storageOnStorage, storageTotal := 0, 0
	for i := range f.Racks {
		r := &f.Racks[i]
		if r.Workload == W5 || r.Workload == W6 {
			storageTotal++
			if r.SKU == S1 || r.SKU == S3 {
				storageOnStorage++
			}
		}
	}
	if storageTotal == 0 {
		t.Fatal("no storage racks at all")
	}
	if frac := float64(storageOnStorage) / float64(storageTotal); frac < 0.7 {
		t.Errorf("storage workloads on storage SKUs = %.2f, want >= 0.7", frac)
	}
	// HPC (W3) on S7.
	hpcOnS7, hpcTotal := 0, 0
	for i := range f.Racks {
		if f.Racks[i].Workload == W3 {
			hpcTotal++
			if f.Racks[i].SKU == S7 {
				hpcOnS7++
			}
		}
	}
	if hpcTotal > 0 && float64(hpcOnS7)/float64(hpcTotal) < 0.7 {
		t.Errorf("HPC on S7 fraction too low: %d/%d", hpcOnS7, hpcTotal)
	}
}

func TestS2ConfoundingPlanted(t *testing.T) {
	f := buildFleet(t)
	// S2 racks in DC1 must be concentrated in region 0 with high power:
	// this is the confounding Q2's MF analysis must undo.
	inRegion0, total := 0, 0
	var powerSum float64
	for i := range f.Racks {
		r := &f.Racks[i]
		if r.SKU == S2 && r.DC == 0 {
			total++
			powerSum += r.PowerKW
			if r.Region == 0 {
				inRegion0++
			}
		}
	}
	if total < 10 {
		t.Fatalf("only %d S2 racks in DC1", total)
	}
	if frac := float64(inRegion0) / float64(total); frac < 0.35 {
		t.Errorf("S2@DC1 region-0 fraction = %.2f, want >= 0.35 (0.4 planted + 0.25 natural)", frac)
	}
	if avg := powerSum / float64(total); avg < 10 {
		t.Errorf("S2@DC1 mean power = %.1f kW, want high (>10)", avg)
	}
}

func TestRacksOf(t *testing.T) {
	f := buildFleet(t)
	w1 := f.RacksOf(W1)
	if len(w1) == 0 {
		t.Fatal("no W1 racks")
	}
	for _, r := range w1 {
		if r.Workload != W1 {
			t.Fatal("RacksOf returned wrong workload")
		}
	}
}

func TestNames(t *testing.T) {
	if S1.String() != "S1" || S7.String() != "S7" {
		t.Error("SKU.String broken")
	}
	if W1.String() != "W1" || W7.String() != "W7" {
		t.Error("Workload.String broken")
	}
	if got := SKUNames(); len(got) != int(NumSKUs) || got[1] != "S2" {
		t.Errorf("SKUNames = %v", got)
	}
	if got := WorkloadNames(); len(got) != int(NumWorkloads) || got[6] != "W7" {
		t.Errorf("WorkloadNames = %v", got)
	}
	if RegionName(0, 0) != "DC1-1" || RegionName(1, 2) != "DC2-3" {
		t.Error("RegionName broken")
	}
	if Adiabatic.String() != "Adiabatic" || ChilledWater.String() != "Chilled water" {
		t.Error("Cooling.String broken")
	}
}

func TestRackDeviceCounts(t *testing.T) {
	r := Rack{Servers: 20, DisksPerServer: 12, DIMMsPerServer: 8}
	if r.Disks() != 240 || r.DIMMs() != 160 {
		t.Errorf("Disks/DIMMs = %d/%d", r.Disks(), r.DIMMs())
	}
}

func TestAgeMonths(t *testing.T) {
	r := Rack{CommissionDay: -300}
	if got := r.AgeMonths(0); got != 10 {
		t.Errorf("AgeMonths = %v, want 10", got)
	}
	if got := r.AgeMonths(300); got != 20 {
		t.Errorf("AgeMonths = %v, want 20", got)
	}
}

func TestSmallFleetOverride(t *testing.T) {
	f, err := Build(rng.New(1), Config{RacksPerDC: [2]int{10, 8}, ObservationDays: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Racks) != 18 {
		t.Errorf("override racks = %d", len(f.Racks))
	}
}

func TestRegionOfRowCoversAllRegions(t *testing.T) {
	for _, dc := range DefaultDCs() {
		seen := map[int]bool{}
		for row := 0; row < dc.Rows; row++ {
			seen[regionOfRow(dc, row)] = true
		}
		if len(seen) != dc.Regions {
			t.Errorf("%s rows cover %d regions, want %d", dc.Name, len(seen), dc.Regions)
		}
	}
}

func TestSKUCatalogShape(t *testing.T) {
	cat := SKUCatalog()
	if len(cat) != int(NumSKUs) {
		t.Fatalf("catalog size = %d", len(cat))
	}
	for i, s := range cat {
		if s.SKU != SKU(i) {
			t.Errorf("catalog[%d].SKU = %v", i, s.SKU)
		}
	}
	// Compute SKUs: many servers, few disks; storage: the reverse.
	if cat[S2].ServersPerRack <= 40 || cat[S2].DisksPerServer > 4 {
		t.Errorf("S2 spec = %+v", cat[S2])
	}
	if cat[S1].ServersPerRack > 25 || cat[S1].DisksPerServer < 10 {
		t.Errorf("S1 spec = %+v", cat[S1])
	}
}
