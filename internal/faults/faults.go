// Package faults is the deterministic dirty-data generator: it corrupts
// a study's recorded streams the way production reliability data is
// dirty, after the simulation has already consumed the clean ground
// truth. BMS sensor feeds lose readings (dropouts) and repeat stale
// values (stuck-at); RMA ticket streams carry verbatim duplicates
// (double-submitted RMAs) and clock-skewed timestamps; exported rack-day
// frames arrive with NaN/Inf cells and whole factor columns missing.
//
// Everything is seed-driven: the same root stream produces the same
// defects, so a dirty study is as reproducible as a clean one. The
// injector only ever touches *recorded* telemetry — hazard draws,
// failure events, and fleet construction stay untouched — which is what
// lets the ingest pipeline's repairs be validated against the clean run.
package faults

import (
	"math"

	"rainshine/internal/climate"
	"rainshine/internal/rng"
	"rainshine/internal/ticket"
)

// Config holds one rate per fault class. A zero rate disables the class;
// the zero value disables everything.
type Config struct {
	// SensorDropout is the per-rack-day probability that a dropout
	// episode starts; the affected sensor then reports nothing (NaN) for
	// a geometric run of days (mean ~3).
	SensorDropout float64
	// SensorStuck is the per-rack-day probability that a stuck-at
	// episode starts; the sensor then repeats its last reading verbatim
	// for a geometric run of days (mean ~6).
	SensorStuck float64
	// TicketDuplicate is the fraction of tickets duplicated verbatim
	// (new ID, identical fields) — the double-submitted-RMA failure mode.
	TicketDuplicate float64
	// TicketClockSkew is the fraction of tickets whose timestamp is
	// skewed by up to ±SkewDays days (data-entry lag / unsynchronized
	// clocks). Skews landing outside the observation window are left
	// out of range, which is how real streams carry impossible dates.
	TicketClockSkew float64
	// SkewDays bounds the clock-skew magnitude. Zero means 3.
	SkewDays int
	// CellNaN is the per-cell probability that a continuous factor cell
	// of an exported frame reads NaN.
	CellNaN float64
	// CellInf is the per-cell probability that a continuous factor cell
	// of an exported frame reads ±Inf (overflowed unit conversions).
	CellInf float64
	// DropColumns lists factor columns removed from exported frames
	// (inventory systems with missing fields).
	DropColumns []string
}

// Defaults returns the default dirty-data rates: every class enabled at
// a level calibrated to the scrubbing literature's "a few percent of
// everything" regime.
func Defaults() Config {
	return Config{
		SensorDropout:   0.004,
		SensorStuck:     0.002,
		TicketDuplicate: 0.03,
		TicketClockSkew: 0.05,
		SkewDays:        3,
		CellNaN:         0.01,
		CellInf:         0.001,
		DropColumns:     []string{"power_kw"},
	}
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.SensorDropout > 0 || c.SensorStuck > 0 ||
		c.TicketDuplicate > 0 || c.TicketClockSkew > 0 ||
		c.CellNaN > 0 || c.CellInf > 0 || len(c.DropColumns) > 0
}

func (c Config) withDefaults() Config {
	if c.SkewDays == 0 {
		c.SkewDays = 3
	}
	return c
}

// CorruptClimate injects sensor dropouts and stuck-at runs into the
// recorded climate series, in place. Dropouts write NaN into both
// channels (the BMS lost the poll); stuck runs freeze both channels at
// the episode's first reading (a wedged sensor controller). Each rack
// draws from its own labelled stream, so corruption is independent of
// rack count changes elsewhere.
func CorruptClimate(src *rng.Source, m *climate.Model, cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.SensorDropout <= 0 && cfg.SensorStuck <= 0 {
		return nil
	}
	days := m.Days()
	for ri := 0; ri < m.Racks(); ri++ {
		rs := src.SplitIndex("rack", ri)
		for d := 0; d < days; d++ {
			switch {
			case cfg.SensorDropout > 0 && rs.Float64() < cfg.SensorDropout:
				run := 1 + geometricRun(rs, 3)
				for k := 0; k < run && d+k < days; k++ {
					if err := m.SetAt(ri, d+k, climate.Conditions{TempF: math.NaN(), RH: math.NaN()}); err != nil {
						return err
					}
				}
				d += run - 1
			case cfg.SensorStuck > 0 && rs.Float64() < cfg.SensorStuck:
				frozen, err := m.At(ri, d)
				if err != nil {
					return err
				}
				run := 2 + geometricRun(rs, 6)
				for k := 1; k < run && d+k < days; k++ {
					if err := m.SetAt(ri, d+k, frozen); err != nil {
						return err
					}
				}
				d += run - 1
			}
		}
	}
	return nil
}

// geometricRun draws a geometric run length with the given mean.
func geometricRun(src *rng.Source, mean float64) int {
	n := 0
	p := 1 / mean
	for src.Float64() >= p {
		n++
		if n >= 60 {
			break
		}
	}
	return n
}

// CorruptTickets injects duplicates and clock skew into a ticket stream,
// returning the corrupted stream. Duplicates are verbatim copies under a
// fresh ID, appended where a re-submission would land (immediately after
// the original); skewed tickets keep their content but move in time,
// possibly out of the observation window entirely.
func CorruptTickets(src *rng.Source, ts []ticket.Ticket, days int, cfg Config) []ticket.Ticket {
	cfg = cfg.withDefaults()
	if cfg.TicketDuplicate <= 0 && cfg.TicketClockSkew <= 0 {
		return ts
	}
	out := make([]ticket.Ticket, 0, len(ts)+int(float64(len(ts))*cfg.TicketDuplicate)+1)
	nextID := 0
	for _, t := range ts {
		if t.ID >= nextID {
			nextID = t.ID + 1
		}
	}
	for _, t := range ts {
		if cfg.TicketClockSkew > 0 && src.Float64() < cfg.TicketClockSkew {
			skew := 1 + src.IntN(cfg.SkewDays)
			if src.Float64() < 0.5 {
				skew = -skew
			}
			// Deliberately unclamped: skews past the window edges produce
			// the impossible dates ingest quarantines.
			t.Day += skew
			_ = days
		}
		out = append(out, t)
		if cfg.TicketDuplicate > 0 && src.Float64() < cfg.TicketDuplicate {
			dup := t
			dup.ID = nextID
			nextID++
			out = append(out, dup)
		}
	}
	return out
}
