package repair

import (
	"testing"

	"rainshine/internal/failure"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

var cachedResult *simulate.Result

func testResult(t *testing.T) *simulate.Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	res, err := simulate.Run(simulate.Config{
		Seed:            19,
		Days:            365,
		Topology:        topology.Config{RacksPerDC: [2]int{60, 50}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

func TestPolicyString(t *testing.T) {
	if Replace.String() != "replace" || Service.String() != "service" {
		t.Error("Policy.String broken")
	}
}

func TestEvaluateAccounting(t *testing.T) {
	res := testResult(t)
	outs, err := Evaluate(res, Replace, tco.Default(), Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != int(failure.NumComponents) {
		t.Fatalf("outcomes = %d", len(outs))
	}
	totalEvents := 0
	for _, o := range outs {
		totalEvents += o.Events
		if o.Refails != 0 {
			t.Error("Replace must not refail")
		}
		if o.TotalCost != o.MaterialCost+o.LaborCost+o.DowntimeCost {
			t.Error("cost breakdown does not sum")
		}
		if o.Events > 0 && (o.DowntimeHours <= 0 || o.TotalCost <= 0) {
			t.Errorf("%v: empty costs despite %d events", o.Component, o.Events)
		}
	}
	if totalEvents != len(res.Events) {
		t.Errorf("events accounted %d != %d", totalEvents, len(res.Events))
	}
}

func TestServiceProducesRefailsAndSlowdown(t *testing.T) {
	res := testResult(t)
	rep, err := Evaluate(res, Replace, tco.Default(), Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Evaluate(res, Service, tco.Default(), Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range svc {
		if svc[c].Events == 0 {
			continue
		}
		if svc[c].Refails == 0 {
			t.Errorf("%v: no refails under service", svc[c].Component)
		}
		if svc[c].DowntimeHours <= rep[c].DowntimeHours {
			t.Errorf("%v: service downtime %v not above replace %v",
				svc[c].Component, svc[c].DowntimeHours, rep[c].DowntimeHours)
		}
		// Service consumes fewer parts.
		if svc[c].MaterialCost >= rep[c].MaterialCost {
			t.Errorf("%v: service material %v not below replace %v",
				svc[c].Component, svc[c].MaterialCost, rep[c].MaterialCost)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	res := testResult(t)
	if _, err := Evaluate(res, Policy(9), tco.Default(), Params{}, 1); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := Evaluate(res, Replace, tco.CostModel{}, Params{}, 1); err == nil {
		t.Error("invalid cost model should error")
	}
}

func TestCompareVerdictsFollowPartPrices(t *testing.T) {
	res := testResult(t)
	recs, err := Compare(res, tco.Default(), Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	byComp := map[failure.Component]Recommendation{}
	for _, r := range recs {
		byComp[r.Component] = r
		if r.SavingsPct < 0 || r.SavingsPct > 100 {
			t.Errorf("savings = %v", r.SavingsPct)
		}
	}
	// Disks cost 2 units: replacing them outright beats slow servicing.
	if byComp[failure.Disk].Better != Replace {
		t.Errorf("disk verdict = %v, want replace (parts are cheap)", byComp[failure.Disk].Better)
	}
	// Whole servers cost 100 units: servicing beats consuming a server
	// per fault even with refails.
	if byComp[failure.ServerOther].Better != Service {
		t.Errorf("server verdict = %v, want service (parts are dear)", byComp[failure.ServerOther].Better)
	}
}

func TestCompareDeterministic(t *testing.T) {
	res := testResult(t)
	a, err := Compare(res, tco.Default(), Params{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(res, tco.Default(), Params{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recommendation %d differs between identical runs", i)
		}
	}
}
