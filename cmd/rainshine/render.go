package main

import (
	"fmt"
	"io"

	"rainshine"
	"rainshine/internal/export"
	"rainshine/internal/failure"
	"rainshine/internal/figures"
	"rainshine/internal/ingest"
	"rainshine/internal/metrics"
	"rainshine/internal/textplot"
	"rainshine/internal/ticket"
)

// renderer formats study outputs for the terminal.
type renderer struct {
	study *rainshine.Study
	out   io.Writer
}

func (r *renderer) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

func (r *renderer) summary() error {
	s := r.study
	r.printf("Fleet: %d racks, %d servers over %d days\n", s.NumRacks(), s.NumServers(), s.Days())
	counts := map[ticket.Category]int{}
	total := 0
	for _, tk := range s.Tickets() {
		if tk.FalsePositive {
			continue
		}
		counts[tk.Category()]++
		total++
	}
	r.printf("Tickets (true positives): %d\n", total)
	for c := ticket.Software; c < ticket.NumCategories; c++ {
		r.printf("  %-9s %6d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(total))
	}
	rs := ticket.RepeatStats(s.Tickets())
	r.printf("Repeat tickets: %.1f%% of hardware RMAs re-open for the same device (worst device: %d failures)\n",
		100*rs.RepeatFraction, rs.MaxRepeat)
	r.printf("MTTR by component:\n")
	mttr := metrics.MTTR(s.Figures().Res)
	for _, c := range []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther} {
		if sum, ok := mttr[c]; ok {
			r.printf("  %-7s median %.1fh, p95 %.1fh (n=%d)\n", c, sum.P50, sum.P95, sum.N)
		}
	}
	sums, err := s.EnvironmentAlarms()
	if err != nil {
		return err
	}
	r.printf("BMS environment alarms (rack-days outside the ASHRAE envelope):\n")
	for _, sum := range sums {
		totalAlarms := sum.TempHigh + sum.TempLow + sum.RHHigh + sum.RHLow
		r.printf("  %s: %d alarms over %d rack-days (hot %d, cold %d, humid %d, dry %d)\n",
			sum.DC, totalAlarms, sum.RackDays, sum.TempHigh, sum.TempLow, sum.RHHigh, sum.RHLow)
	}
	return nil
}

func (r *renderer) table(which string) error {
	d := r.study.Figures()
	switch which {
	case "1":
		rows := [][]string{}
		for _, p := range d.TableI() {
			rows = append(rows, []string{p.Facility, p.Packaging, p.Availability, p.Cooling})
		}
		r.printf("%s", textplot.Table([]string{"Facility", "Packaging", "Design Availability", "Cooling"}, rows))
	case "2":
		rows := [][]string{}
		for _, m := range d.TableII() {
			rows = append(rows, []string{
				m.Category, m.Fault,
				fmt.Sprintf("%.2f", m.DC1Pct), fmt.Sprintf("%.2f", m.PaperDC1),
				fmt.Sprintf("%.2f", m.DC2Pct), fmt.Sprintf("%.2f", m.PaperDC2),
			})
		}
		r.printf("%s", textplot.Table([]string{"Category", "Failure Type", "DC1%", "paper", "DC2%", "paper"}, rows))
	case "3":
		rows := [][]string{}
		for _, f := range d.TableIII() {
			rows = append(rows, []string{f.Category, f.Name, f.Type, f.Range})
		}
		r.printf("%s", textplot.Table([]string{"Category", "Feature", "Type", "Range"}, rows))
	case "4":
		rows, err := d.TableIV()
		if err != nil {
			return err
		}
		out := [][]string{}
		for _, c := range rows {
			out = append(out, []string{
				fmt.Sprintf("%.0f%%", 100*c.SLA), c.Granularity, c.Workload,
				fmt.Sprintf("%.2f%%", c.SavingsPct), fmt.Sprintf("%.2f%%", c.PaperPct),
			})
		}
		r.printf("%s", textplot.Table([]string{"SLA", "Granularity", "Workload", "MF-over-SF savings", "paper"}, out))
	default:
		return fmt.Errorf("unknown table %q (want 1-4)", which)
	}
	return nil
}

func barsOf(points []figures.BarPoint) []textplot.Bar {
	out := make([]textplot.Bar, len(points))
	for i, p := range points {
		out[i] = textplot.Bar{Label: p.Label, Value: p.Mean, Err: p.StdDev}
	}
	return out
}

func seriesOf(cs []figures.CDFSeries) []textplot.Series {
	out := make([]textplot.Series, len(cs))
	for i, c := range cs {
		out[i] = textplot.Series{Name: c.Name, X: c.X, P: c.P}
	}
	return out
}

func (r *renderer) figure(n int) error {
	d := r.study.Figures()
	simpleBars := func(title string, get func() ([]figures.BarPoint, error)) error {
		pts, err := get()
		if err != nil {
			return err
		}
		r.printf("%s", textplot.BarChart(title, barsOf(pts), 40))
		return nil
	}
	switch n {
	case 1:
		series, err := d.Fig1()
		if err != nil {
			return err
		}
		r.printf("%s", textplot.CDF("Fig 1: CDF of spare requirement (% failed servers), W1", seriesOf(series), 60, 12))
	case 2:
		return simpleBars("Fig 2: avg failure rate by DC region", d.Fig2)
	case 3, 4:
		var series []figures.SeriesBars
		var err error
		title := "Fig 3: avg failure rate by day of week"
		if n == 3 {
			series, err = d.Fig3()
		} else {
			series, err = d.Fig4()
			title = "Fig 4: avg failure rate by month"
		}
		if err != nil {
			return err
		}
		for _, s := range series {
			r.printf("%s", textplot.BarChart(fmt.Sprintf("%s (%s)", title, s.Series), barsOf(s.Bars), 40))
		}
	case 5:
		return simpleBars("Fig 5: avg failure rate by relative humidity (%)", d.Fig5)
	case 6:
		return simpleBars("Fig 6: avg failure rate by workload", d.Fig6)
	case 7:
		return simpleBars("Fig 7: avg failure rate by SKU", d.Fig7)
	case 8:
		return simpleBars("Fig 8: avg failure rate by rack power rating (kW)", d.Fig8)
	case 9:
		return simpleBars("Fig 9: avg failure rate by equipment age (months)", d.Fig9)
	case 10, 12:
		cells, err := d.Fig10()
		title := "Fig 10: over-provisioned capacity %, daily granularity"
		if n == 12 {
			cells, err = d.Fig12()
			title = "Fig 12: over-provisioned capacity %, hourly granularity"
		}
		if err != nil {
			return err
		}
		rows := [][]string{}
		for _, c := range cells {
			rows = append(rows, []string{c.Workload, fmt.Sprintf("%.0f%%", 100*c.SLA), c.Approach, fmt.Sprintf("%.1f", c.Pct)})
		}
		r.printf("%s\n%s", title, textplot.Table([]string{"Workload", "SLA", "Approach", "Overprov %"}, rows))
	case 11:
		panels, err := d.Fig11()
		if err != nil {
			return err
		}
		for _, p := range panels {
			r.printf("%s", textplot.CDF(
				fmt.Sprintf("Fig 11 (%s): over-provision %% CDFs, SF vs MF clusters", p.Workload),
				seriesOf(p.Series), 60, 12))
		}
	case 13:
		cells, err := d.Fig13()
		if err != nil {
			return err
		}
		rows := [][]string{}
		for _, c := range cells {
			rows = append(rows, []string{c.Workload, c.Scheme, c.Approach, fmt.Sprintf("%.2f", c.Pct)})
		}
		r.printf("Fig 13: spare cost %% of fleet cost, 100%% SLA daily\n%s",
			textplot.Table([]string{"Workload", "Scheme", "Approach", "Cost %"}, rows))
	case 14, 15:
		bars, err := d.Fig14()
		title := "Fig 14: SKU comparison, SF view (normalized)"
		if n == 15 {
			bars, err = d.Fig15()
			title = "Fig 15: SKU comparison, MF view (normalized)"
		}
		if err != nil {
			return err
		}
		tb := make([]textplot.Bar, len(bars))
		for i, b := range bars {
			tb[i] = textplot.Bar{Label: b.SKU + "/" + b.Metric, Value: b.Normalized, Err: 0}
		}
		r.printf("%s", textplot.BarChart(title, tb, 40))
	case 16:
		return simpleBars("Fig 16: all failures vs temperature (F)", d.Fig16)
	case 17:
		return simpleBars("Fig 17: hard-disk failures vs temperature (F)", d.Fig17)
	case 18:
		res, err := d.Fig18()
		if err != nil {
			return err
		}
		r.printf("Fig 18: HDD failures vs T/RH regimes (MF thresholds: T=%.1fF, RH=%.1f%%)\n",
			res.TempThresholdF, res.RHThreshold)
		rows := [][]string{}
		for _, g := range res.Groups {
			rows = append(rows, []string{g.DC, g.Group, fmt.Sprintf("%.2f", g.Normalized), fmt.Sprintf("%d", g.N)})
		}
		r.printf("%s", textplot.Table([]string{"DC", "Regime", "Normalized rate", "N"}, rows))
	default:
		return fmt.Errorf("unknown figure %d (want 1-18)", n)
	}
	return nil
}

func (r *renderer) q1(wl rainshine.Workload, hourly bool) error {
	rep, err := r.study.SpareProvisioning(wl, hourly)
	if err != nil {
		return err
	}
	r.printf("Q1: spare provisioning for %s (%s granularity)\n", rep.Workload, rep.Granularity)
	rows := [][]string{}
	for i, sla := range rep.SLAs {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*sla),
			fmt.Sprintf("%.1f", rep.OverprovPct["LB"][i]),
			fmt.Sprintf("%.1f", rep.OverprovPct["MF"][i]),
			fmt.Sprintf("%.1f", rep.OverprovPct["SF"][i]),
			fmt.Sprintf("%.2f%%", rep.TCOSavingsPct[i]),
		})
	}
	r.printf("%s", textplot.Table([]string{"SLA", "LB %", "MF %", "SF %", "TCO savings MF/SF"}, rows))
	r.printf("Factor ranking: %v\n", rep.FactorRanking)
	r.printf("MF clusters (%d):\n", len(rep.Clusters))
	for i, c := range rep.Clusters {
		r.printf("  #%d: %d racks, req %.1f%%  [%s]\n", i+1, c.Racks, c.ReqPct, c.Conditions)
	}
	r.printf("\n")
	return nil
}

func (r *renderer) q2() error {
	rep, err := r.study.VendorComparison()
	if err != nil {
		return err
	}
	r.printf("Q2: vendor comparison (S2 vs S4)\n")
	r.printf("  S2:S4 average failure-rate ratio:  SF %.1fx   MF %.1fx (paper: 10x vs 4x)\n",
		rep.RatioSF, rep.RatioMF)
	r.printf("  adjusted contrast significance: p = %.2g over %d shared strata\n",
		rep.PValue, rep.Strata)
	for _, v := range rep.Verdicts {
		r.printf("  S4 at %.1fx price: SF estimates %+.1f%% TCO savings, MF %+.1f%%\n",
			v.PriceRatio, 100*v.SavingsSF, 100*v.SavingsMF)
	}
	return nil
}

func (r *renderer) q3() error {
	rep, err := r.study.ClimateGuidance()
	if err != nil {
		return err
	}
	r.printf("Q3: environmental set-point guidance\n")
	r.printf("  MF-discovered thresholds: temperature %.1f F, RH %.1f %% (paper: 78 F, 25 %%)\n",
		rep.TempThresholdF, rep.RHThreshold)
	for _, dc := range []string{"DC1", "DC2"} {
		hot, ok := rep.HotPenalty[dc]
		if !ok {
			r.printf("  %s: effectively insensitive (negligible exposure above the threshold)\n", dc)
			continue
		}
		if dry, ok := rep.DryPenalty[dc]; ok {
			r.printf("  %s: disk failure rate x%.2f above threshold; x%.2f more when also dry\n", dc, hot, dry)
		} else {
			r.printf("  %s: disk failure rate x%.2f above threshold\n", dc, hot)
		}
	}
	return nil
}

// quality renders the DataQuality report: ticket and sensor coverage
// plus per-defect-class quarantine/repair counts.
func (r *renderer) quality() error {
	q, err := r.study.Quality()
	if err != nil {
		return err
	}
	r.printf("Data quality\n")
	r.printf("  tickets: %d recorded, %d kept (%.2f%% coverage)\n",
		q.TicketsIn, q.TicketsKept, 100*q.TicketCoverage())
	r.printf("  sensors: %d rack-day samples: %d native, %d imputed, %d missing (%.2f%% usable)\n",
		q.SensorSamples, q.SensorNative, q.SensorImputed, q.SensorMissing, 100*q.SensorCoverage())
	if q.Clean() {
		r.printf("  no defects detected\n")
		return nil
	}
	r.printf("  defects by class (quarantined / repaired):\n")
	for c := ingest.Class(0); c < ingest.NumClasses; c++ {
		if q.Quarantined[c] == 0 && q.Repaired[c] == 0 {
			continue
		}
		r.printf("    %-22s %6d / %6d\n", c.String(), q.Quarantined[c], q.Repaired[c])
	}
	r.printf("  effective coverage: %.2f%%\n", 100*q.Coverage())
	return nil
}

func (r *renderer) predict() error {
	rep, err := r.study.FailurePrediction()
	if err != nil {
		return err
	}
	r.printf("Failure prediction (paper future work): will a rack fail tomorrow?\n")
	r.printf("  time-ordered split: %d train / %d test rack-days (%.1f%% positive)\n",
		rep.TrainRows, rep.TestRows, 100*rep.PositiveRate)
	r.printf("  precision %.3f  recall %.3f  F1 %.3f  accuracy %.3f  AUC %.3f\n",
		rep.Precision, rep.Recall, rep.F1, rep.Accuracy, rep.AUC)
	r.printf("  predictive factors: %v\n", rep.TopFactors)
	return nil
}

func (r *renderer) export(what string) error {
	d := r.study.Figures()
	switch what {
	case "tickets":
		return export.TicketsCSV(r.out, r.study.Tickets())
	case "events":
		return export.EventsJSONL(r.out, d.Res.Events)
	case "rackdays":
		// Via the facade so dirty-data mode exports its lossy table.
		return r.study.ExportRackDaysCSV(r.out)
	default:
		return fmt.Errorf("unknown export target %q (want tickets|events|rackdays)", what)
	}
}

func (r *renderer) ablate() error {
	d := r.study.Figures()
	feat, err := d.AblationFeatures()
	if err != nil {
		return err
	}
	caps, err := d.AblationClusterBudget()
	if err != nil {
		return err
	}
	autocp, err := d.AblationAutoCP()
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, a := range append(append(feat, caps...), autocp...) {
		rows = append(rows, []string{
			a.Workload, a.Config, fmt.Sprintf("%d", a.Clusters),
			fmt.Sprintf("%.1f", a.OverprovPct), fmt.Sprintf("%.0f%%", a.GapClosedPct),
		})
	}
	r.printf("MF ablations (100%% SLA, daily): how much of the SF-to-oracle gap each choice closes\n%s",
		textplot.Table([]string{"Workload", "Config", "Clusters", "Overprov %", "Gap closed"}, rows))

	sweep, err := d.GranularitySweep()
	if err != nil {
		return err
	}
	srows := [][]string{}
	for _, s := range sweep {
		srows = append(srows, []string{
			s.Workload, s.Granularity,
			fmt.Sprintf("%.1f", s.LBPct), fmt.Sprintf("%.1f", s.MFPct), fmt.Sprintf("%.1f", s.SFPct),
		})
	}
	r.printf("\nSpare-pool granularity sweep (100%% SLA): finer windows recycle spares sooner\n%s",
		textplot.Table([]string{"Workload", "Granularity", "LB %", "MF %", "SF %"}, srows))
	return nil
}

func (r *renderer) pooling(hourly bool) error {
	reqs, err := r.study.PoolingAnalysis(hourly)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range reqs {
		rows = append(rows, []string{
			p.Scope.String(), fmt.Sprintf("%d", p.Pools),
			fmt.Sprintf("%d", p.Spares), fmt.Sprintf("%.1f", p.Pct),
		})
	}
	r.printf("Spare pooling (100%% availability): sharing multiplexes failures onto fewer spares,\n")
	r.printf("but the paper notes off-rack fail-over pays network penalties — pick your point.\n%s",
		textplot.Table([]string{"Pool scope", "Pools", "Total spares", "% of fleet"}, rows))
	return nil
}

func (r *renderer) opex() error {
	recs, err := r.study.RepairPolicy()
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, rec := range recs {
		if rec.Replace.Events == 0 {
			continue
		}
		rows = append(rows, []string{
			rec.Component.String(), rec.Better.String(),
			fmt.Sprintf("%.0f%%", rec.SavingsPct),
			fmt.Sprintf("%.0f", rec.Replace.TotalCost),
			fmt.Sprintf("%.0f", rec.Service.TotalCost),
		})
	}
	r.printf("Repair policy (replace vs service), costs in TCO units over the window\n%s",
		textplot.Table([]string{"Component", "Cheaper policy", "Saves", "Replace cost", "Service cost"}, rows))
	return nil
}

func (r *renderer) tree() error {
	rep, err := r.study.ClimateGuidance()
	if err != nil {
		return err
	}
	r.printf("%s", rep.Tree.String())
	r.printf("Importance: %v\n", rep.Tree.RankedFeatures())
	return nil
}

func (r *renderer) all(hourly bool) error {
	if err := r.summary(); err != nil {
		return err
	}
	for _, tbl := range []string{"1", "2", "3", "4"} {
		r.printf("\n== Table %s ==\n", tbl)
		if err := r.table(tbl); err != nil {
			return err
		}
	}
	for n := 1; n <= 18; n++ {
		r.printf("\n== Figure %d ==\n", n)
		if err := r.figure(n); err != nil {
			return err
		}
	}
	r.printf("\n== Decision analyses ==\n")
	for _, wl := range []rainshine.Workload{rainshine.W1, rainshine.W6} {
		if err := r.q1(wl, hourly); err != nil {
			return err
		}
	}
	if err := r.q2(); err != nil {
		return err
	}
	return r.q3()
}
