package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"rainshine/internal/simulate"
	"rainshine/internal/ticket"
)

// sampleRecords covers every kind with awkward payloads: NaN sensor
// readings, negative (clock-skewed) ticket days, fault codes outside
// the taxonomy — the bytes a dirty study actually streams.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindClimate, Rack: 3, Day: 0, TempF: 71.5, RH: 44.25},
		{Kind: KindClimate, Rack: 0, Day: 929, TempF: math.NaN(), RH: math.NaN()},
		{Kind: KindEvent, Seq: 12, Day: 5, Event: simulate.Event{
			Rack: 7, Day: 5, Hour: 13.5, Component: 0, RepairHours: 6.25,
			Device: 41, Shock: true,
		}},
		{Kind: KindTicket, Seq: 9934, Day: -2, Ticket: ticket.Ticket{
			ID: 10001, Day: -2, Hour: 2.75, DC: 1, Rack: 55, Fault: 999,
			FalsePositive: true, RepairHours: 12.5, Component: 2,
			Device: 3, Repeat: 4,
		}},
		{Kind: KindSeal, Day: 930},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		payload, err := appendPayload(nil, &want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("%s: %v", want.Kind, err)
		}
		// NaN != NaN defeats DeepEqual on struct floats; compare via the
		// re-encoded bytes, which carry exact bit patterns.
		back, err := appendPayload(nil, &got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, back) {
			t.Fatalf("%s: round-trip changed payload bytes", want.Kind)
		}
	}
}

func TestCodecNaNFidelity(t *testing.T) {
	rec := Record{Kind: KindClimate, Rack: 1, Day: 2, TempF: math.NaN(), RH: 33}
	payload, err := appendPayload(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.TempF) || got.RH != 33 {
		t.Fatalf("NaN reading did not survive: %+v", got)
	}
}

func TestLogRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != int64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", w.Records(), len(recs))
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	// Seal and plain-float records compare exactly.
	if !reflect.DeepEqual(got[4], recs[4]) || !reflect.DeepEqual(got[0], recs[0]) {
		t.Fatalf("records changed in transit")
	}
}

// validLog builds a well-formed log of the sample records.
func validLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// drain reads records until the first error and returns it.
func drain(data []byte) error {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := rd.Next(); err != nil {
			return err
		}
	}
}

func TestReaderTypedErrors(t *testing.T) {
	log := validLog(t)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", log[:5], ErrTruncated},
		{"bad magic", append([]byte("XXXXXXXX"), log[8:]...), ErrBadMagic},
		{"clean end", log, io.EOF},
		{"torn header", log[:len(log)-3-int(sealSize)], ErrTruncated},
		{"torn payload", log[:len(log)-2], ErrTruncated},
	}
	for _, tc := range cases {
		if err := drain(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: error = %v, want %v", tc.name, err, tc.want)
		}
	}

	flipped := append([]byte(nil), log...)
	flipped[len(flipped)-1] ^= 0x40 // corrupt the seal payload
	if err := drain(flipped); !errors.Is(err, ErrChecksum) {
		t.Errorf("bit flip: error = %v, want ErrChecksum", err)
	}

	oversize := append([]byte(nil), log[:8]...)
	oversize = append(oversize, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	if err := drain(oversize); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: error = %v, want ErrTooLarge", err)
	}
}

func TestWriterRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: Kind(99)}
	if err := w.Write(&rec); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown kind write error = %v, want ErrBadRecord", err)
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	rec := Record{Kind: KindClimate, Rack: 1, Day: 1}
	payload, err := appendPayload(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePayload(payload[:len(payload)-1]); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("short payload error = %v, want ErrBadRecord", err)
	}
	if _, err := decodePayload(append(payload, 0)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("long payload error = %v, want ErrBadRecord", err)
	}
	if _, err := decodePayload(nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty payload error = %v, want ErrBadRecord", err)
	}
	if _, err := decodePayload([]byte{77}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown kind error = %v, want ErrBadRecord", err)
	}
}
