package faults

import (
	"errors"
	"testing"
	"time"
)

func TestChaosBuildFaultDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, BuildFailRate: 0.5}
	a, b := NewChaos(cfg), NewChaos(cfg)
	var failed, passed int
	for attempt := 1; attempt <= 200; attempt++ {
		ea := a.BuildFault("seed=1", attempt)
		eb := b.BuildFault("seed=1", attempt)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d: instances disagree (%v vs %v)", attempt, ea, eb)
		}
		if ea != nil {
			if !errors.Is(ea, ErrInjectedBuild) {
				t.Fatalf("attempt %d: err = %v, want ErrInjectedBuild", attempt, ea)
			}
			failed++
		} else {
			passed++
		}
	}
	// Rate 0.5 over 200 attempts: both outcomes must occur.
	if failed == 0 || passed == 0 {
		t.Errorf("failed/passed = %d/%d, want both nonzero", failed, passed)
	}
	// Distinct keys draw from distinct streams: at least one attempt
	// index must decide differently across 200 draws at rate 0.5.
	same := 0
	for attempt := 1; attempt <= 200; attempt++ {
		if (a.BuildFault("seed=1", attempt) == nil) == (a.BuildFault("seed=2", attempt) == nil) {
			same++
		}
	}
	if same == 200 {
		t.Error("keys seed=1 and seed=2 share every build-fault decision")
	}
}

func TestChaosBuildFailAfter(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, BuildFailAfter: 2})
	for attempt := 1; attempt <= 2; attempt++ {
		if err := c.BuildFault("k", attempt); err != nil {
			t.Fatalf("attempt %d should succeed: %v", attempt, err)
		}
	}
	for attempt := 3; attempt <= 5; attempt++ {
		if err := c.BuildFault("k", attempt); !errors.Is(err, ErrInjectedBuild) {
			t.Fatalf("attempt %d should fail, got %v", attempt, err)
		}
	}
}

func TestChaosLatencyBoundedAndDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 9, LatencyRate: 0.3, LatencySpike: 50 * time.Millisecond}
	a, b := NewChaos(cfg), NewChaos(cfg)
	var spikes int
	for seq := uint64(0); seq < 500; seq++ {
		da, db := a.Latency(seq), b.Latency(seq)
		if da != db {
			t.Fatalf("seq %d: %s vs %s", seq, da, db)
		}
		if da < 0 || da > cfg.LatencySpike {
			t.Fatalf("seq %d: spike %s outside (0, %s]", seq, da, cfg.LatencySpike)
		}
		if da > 0 {
			spikes++
		}
	}
	if spikes == 0 || spikes == 500 {
		t.Errorf("spikes = %d/500 at rate 0.3, want a strict subset", spikes)
	}
}

func TestChaosSlowClientDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 3, SlowClientRate: 0.2, SlowChunk: 128, SlowDelay: time.Millisecond}
	a, b := NewChaos(cfg), NewChaos(cfg)
	var slow int
	for seq := uint64(0); seq < 500; seq++ {
		ca, da, oa := a.SlowClient(seq)
		cb, db, ob := b.SlowClient(seq)
		if oa != ob || ca != cb || da != db {
			t.Fatalf("seq %d: instances disagree", seq)
		}
		if oa {
			if ca != 128 || da != time.Millisecond {
				t.Fatalf("seq %d: chunk/delay = %d/%s", seq, ca, da)
			}
			slow++
		}
	}
	if slow == 0 || slow == 500 {
		t.Errorf("slow = %d/500 at rate 0.2, want a strict subset", slow)
	}
}

func TestChaosDisabledClasses(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 4})
	if err := c.BuildFault("k", 100); err != nil {
		t.Errorf("BuildFault with all rates zero: %v", err)
	}
	if d := c.Latency(5); d != 0 {
		t.Errorf("Latency with rate zero = %s", d)
	}
	if _, _, ok := c.SlowClient(5); ok {
		t.Error("SlowClient with rate zero selected a request")
	}
	var nilChaos *Chaos
	if nilChaos.BuildFault("k", 1) != nil || nilChaos.Latency(1) != 0 {
		t.Error("nil Chaos should be inert")
	}
	if (ChaosConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !DefaultChaos(42).Enabled() {
		t.Error("default chaos reports disabled")
	}
}
