package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Log framing. The log opens with an 8-byte magic, then zero or more
// frames of [4-byte payload length][4-byte CRC32(payload)][payload].
// Length-prefixing makes the log append-only friendly (a torn tail is
// detected, earlier records stay readable); the CRC catches bit rot and
// misaligned reads.
var logMagic = [8]byte{'R', 'N', 'S', 'H', 'L', 'O', 'G', '1'}

const frameHeaderSize = 8

// Writer appends records to a log. It is not safe for concurrent use;
// callers own any buffering (wrap the destination in a bufio.Writer and
// flush it).
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64
}

// NewWriter starts a log on w by writing the format magic.
func NewWriter(w io.Writer) (*Writer, error) {
	if _, err := w.Write(logMagic[:]); err != nil {
		return nil, fmt.Errorf("stream: writing log magic: %w", err)
	}
	return &Writer{w: w, buf: make([]byte, 0, frameHeaderSize+maxPayload)}, nil
}

// Write appends one record frame.
func (w *Writer) Write(r *Record) error {
	frame, err := appendPayload(w.buf[:frameHeaderSize], r)
	if err != nil {
		return err
	}
	w.buf = frame[:frameHeaderSize]
	body := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("stream: writing record: %w", err)
	}
	w.n++
	return nil
}

// Records returns how many records have been written.
func (w *Writer) Records() int64 { return w.n }

// Reader decodes a log sequentially. A clean end of log returns io.EOF
// from Next; every corruption mode returns a typed error (ErrBadMagic,
// ErrTruncated, ErrChecksum, ErrTooLarge, ErrBadRecord) — never a
// panic, never an unbounded allocation.
type Reader struct {
	r   io.Reader
	buf [maxPayload]byte
	n   int64
	off int64
}

// NewReader opens a log for reading, consuming and verifying the magic.
func NewReader(r io.Reader) (*Reader, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: log shorter than header", ErrTruncated)
	}
	if magic != logMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: r, off: int64(len(logMagic))}, nil
}

// Next returns the next record, io.EOF at a clean end of log, or a
// typed error describing the corruption.
func (rd *Reader) Next() (Record, error) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(rd.r, hdr[:])
	if err == io.EOF && n == 0 {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("%w: frame header at offset %d", ErrTruncated, rd.off)
	}
	size := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if size > maxPayload {
		return Record{}, fmt.Errorf("%w: %d bytes at offset %d (max %d)",
			ErrTooLarge, size, rd.off, maxPayload)
	}
	payload := rd.buf[:size]
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		return Record{}, fmt.Errorf("%w: payload at offset %d", ErrTruncated, rd.off)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Record{}, fmt.Errorf("%w: record %d at offset %d", ErrChecksum, rd.n, rd.off)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, fmt.Errorf("record %d at offset %d: %w", rd.n, rd.off, err)
	}
	rd.n++
	rd.off += int64(frameHeaderSize + size)
	return rec, nil
}

// Records returns how many records have been decoded so far.
func (rd *Reader) Records() int64 { return rd.n }
