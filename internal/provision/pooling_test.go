package provision

import (
	"testing"

	"rainshine/internal/metrics"
)

func TestPoolScopeString(t *testing.T) {
	want := map[PoolScope]string{
		PerRack: "per-rack", PerWorkloadDC: "per-workload-per-DC",
		PerDC: "per-DC", Global: "global",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if PoolScope(9).String() != "PoolScope(9)" {
		t.Error("unknown scope string")
	}
}

func TestAnalyzePoolingMonotone(t *testing.T) {
	res := testResult(t)
	for _, g := range []metrics.Granularity{metrics.Daily, metrics.Hourly} {
		reqs, err := AnalyzePooling(res, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 4 {
			t.Fatalf("scopes = %d", len(reqs))
		}
		// Sharing can only reduce total spares: each coarser scope's
		// pools partition into the finer scope's pools, and
		// max(sum) <= sum(max).
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Spares > reqs[i-1].Spares {
				t.Errorf("%v: %v spares %d above finer %v's %d",
					g, reqs[i].Scope, reqs[i].Spares, reqs[i-1].Scope, reqs[i-1].Spares)
			}
		}
		// Sharing must help substantially at the coarse end: a single
		// global pool rides out uncorrelated rack failures.
		if reqs[3].Spares*2 > reqs[0].Spares {
			t.Errorf("%v: global pool %d not clearly below per-rack %d",
				g, reqs[3].Spares, reqs[0].Spares)
		}
		for _, r := range reqs {
			if r.Pct < 0 || r.Pct > 100 {
				t.Errorf("pct = %v", r.Pct)
			}
			if r.Pools < 1 {
				t.Errorf("%v: pools = %d", r.Scope, r.Pools)
			}
		}
	}
}

func TestGroupMuMatchesPerRack(t *testing.T) {
	// With identity grouping, GroupMuDistributions must agree with
	// MuDistributions on every rack's max (windows counting differs only
	// in pre-commission handling).
	res := testResult(t)
	perRack, err := metrics.MuDistributions(res, AllComponents, metrics.Daily)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := metrics.GroupMuDistributions(res, AllComponents, metrics.Daily,
		func(r int) int { return r }, len(res.Fleet.Racks))
	if err != nil {
		t.Fatal(err)
	}
	for ri := range perRack {
		if perRack[ri].Max() != grouped[ri].Max() {
			t.Fatalf("rack %d: per-rack max %d != grouped max %d",
				ri, perRack[ri].Max(), grouped[ri].Max())
		}
	}
}

func TestGroupMuErrors(t *testing.T) {
	res := testResult(t)
	if _, err := metrics.GroupMuDistributions(res, nil, metrics.Daily, func(int) int { return 0 }, 1); err == nil {
		t.Error("no components should error")
	}
	if _, err := metrics.GroupMuDistributions(res, AllComponents, metrics.Daily, func(int) int { return 0 }, 0); err == nil {
		t.Error("zero groups should error")
	}
	if _, err := metrics.GroupMuDistributions(res, AllComponents, metrics.Daily, func(int) int { return 5 }, 2); err == nil {
		t.Error("out-of-range group should error")
	}
}
