package stats_test

import (
	"fmt"
	"log"

	"rainshine/internal/stats"
)

// ExampleQuantile computes the provisioning percentile of a small
// failure-count sample.
func ExampleQuantile() {
	failuresPerDay := []float64{0, 0, 1, 0, 2, 0, 0, 1, 0, 5}
	p95, err := stats.Quantile(failuresPerDay, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("95th percentile: %.2f failures/day\n", p95)
	// Output: 95th percentile: 3.65 failures/day
}

// ExampleWelchT compares failure rates of two rack groups.
func ExampleWelchT() {
	hotAisle := []float64{3.1, 2.8, 3.4, 3.0, 2.9, 3.3}
	coldAisle := []float64{1.0, 1.2, 0.9, 1.1, 1.0, 1.3}
	r, err := stats.WelchT(hotAisle, coldAisle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("difference significant at 1%%: %v\n", r.Significant(0.01))
	// Output: difference significant at 1%: true
}
