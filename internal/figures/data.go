// Package figures regenerates every table and figure of the paper's
// evaluation from a simulation run. Each function returns structured
// rows; the CLI, the benchmarks, and EXPERIMENTS.md all consume the same
// implementations, so the numbers reported anywhere in this repository
// come from exactly one code path per experiment.
package figures

import (
	"context"
	"sync"

	"rainshine/internal/frame"
	"rainshine/internal/ingest"
	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
)

// Data wraps a simulation result with lazily computed derived artifacts
// shared across figures (the rack-day frame is expensive to build).
type Data struct {
	Res *simulate.Result

	mu       sync.Mutex
	rackDays *frame.Frame
	quality  *ingest.Report
}

// NewData runs a simulation and wraps its result. In dirty-data mode
// (cfg.Faults set) the recorded streams pass through the ingest
// quarantine/repair pipeline before any analysis sees them; the clean
// path skips scrubbing entirely so results stay bit-identical to the
// seed runs.
func NewData(cfg simulate.Config) (*Data, error) {
	return NewDataContext(context.Background(), cfg)
}

// NewDataContext is NewData under a context: cancellation aborts the
// simulation (and skips the dirty-data scrub) instead of running it to
// completion for a caller that is no longer listening.
func NewDataContext(ctx context.Context, cfg simulate.Config) (*Data, error) {
	res, err := simulate.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := &Data{Res: res}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		rep, err := ingest.Scrub(res)
		if err != nil {
			return nil, err
		}
		d.quality = rep
	}
	return d, nil
}

// From wraps an existing simulation result.
func From(res *simulate.Result) *Data { return &Data{Res: res} }

// Quality returns the DataQuality report of the telemetry backing the
// analyses. Dirty studies report the scrub that already ran; clean
// studies run a non-mutating audit on first call.
func (d *Data) Quality() (*ingest.Report, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.quality == nil {
		rep, err := ingest.Audit(d.Res)
		if err != nil {
			return nil, err
		}
		d.quality = rep
	}
	return d.quality, nil
}

// RackDays returns the (cached) rack-day λ frame.
func (d *Data) RackDays() (*frame.Frame, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rackDays == nil {
		f, err := metrics.RackDayFrame(d.Res)
		if err != nil {
			return nil, err
		}
		d.rackDays = f
	}
	return d.rackDays, nil
}
