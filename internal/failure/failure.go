// Package failure defines the hazard model that generates hardware
// failures: per-component base rates composed with multiplicative
// factor effects (spatial, temporal, workload, hardware, environmental)
// and a rack-level correlated shock process.
//
// The factor structure implements Section 5 of DESIGN.md: every effect
// the paper reports in Figs 2-9 and 14-18 is planted here, so the MF
// analysis pipeline has ground truth to recover. All functions are pure;
// the simulation engine in internal/simulate draws the actual events.
package failure

import (
	"fmt"
	"math"

	"rainshine/internal/calendar"
	"rainshine/internal/climate"
	"rainshine/internal/topology"
)

// Component identifies what failed. The paper provisions spares for
// whole servers (Q1-A) or for disks and DIMMs separately (Q1-B);
// ServerOther covers every hardware fault that takes the server down and
// is not a disk or DIMM (board, PSU, NIC, CPU).
type Component int

// Component kinds.
const (
	Disk Component = iota
	DIMM
	ServerOther
	NumComponents
)

// String names the component.
func (c Component) String() string {
	switch c {
	case Disk:
		return "disk"
	case DIMM:
		return "memory"
	case ServerOther:
		return "server"
	default:
		return "unknown"
	}
}

// Params holds every knob of the hazard model. DefaultParams returns the
// calibration documented in DESIGN.md; tests may shrink rates.
type Params struct {
	// Base per-device-day hazards.
	DiskBase   float64
	DIMMBase   float64
	ServerBase float64

	// DCRegion[dc][region] is the spatial multiplier (Fig 2).
	DCRegion [][]float64

	// Weekday and Weekend multipliers (Fig 3).
	Weekday float64
	Weekend float64

	// Month[m] is the month-of-year multiplier (Fig 4).
	Month [12]float64

	// Workload[w] is the per-workload multiplier (Fig 6).
	Workload [topology.NumWorkloads]float64

	// SKU[s] is the *intrinsic* per-SKU multiplier (Figs 14-15). The
	// S2:S4 ratio here is the "true" ~4x effect the MF analysis should
	// isolate from the ~10x the SF view reports.
	SKU [topology.NumSKUs]float64

	// PowerSlope adds (kW-PowerKnee)*PowerSlope above the knee (Fig 8).
	PowerKnee  float64
	PowerSlope float64

	// Bathtub (Fig 9): 1 + InfantScale*exp(-age/InfantTau) +
	// WearoutSlope*max(0, age-WearoutOnset) with age in months.
	InfantScale  float64
	InfantTauMo  float64
	WearoutSlope float64
	WearoutOnset float64

	// Disk environmental effects (Figs 16-18): a smooth trend plus the
	// threshold interactions the MF tree should discover.
	TempTrendPerF float64 // per °F above TrendBaseF, disks only
	TrendBaseF    float64
	HotThresholdF float64 // step: x HotFactor above this
	HotFactor     float64
	DryThreshold  float64 // step: x DryFactor below this RH, only when hot
	DryFactor     float64

	// Shock process: rack-days on which correlated batch failures occur.
	ShockBase float64 // baseline per-rack-day shock probability
}

// DefaultParams returns the calibrated hazard model.
func DefaultParams() Params {
	return Params{
		DiskBase:   0.030 / 365, // ~3% AFR per disk
		DIMMBase:   0.007 / 365,
		ServerBase: 0.020 / 365,
		DCRegion: [][]float64{
			{2.2, 1.45, 1.25, 1.4}, // DC1 regions (Fig 2: DC1 higher)
			{1.0, 0.85, 1.1},       // DC2 regions
		},
		Weekday: 1.25,
		Weekend: 0.95,
		Month: [12]float64{
			0.85, 0.85, 0.90, 0.90, 0.95, 1.00,
			1.10, 1.20, 1.25, 1.25, 1.20, 1.15,
		},
		Workload: [topology.NumWorkloads]float64{
			1.10, // W1 compute
			2.20, // W2 compute-heavy: highest (Fig 6)
			0.50, // W3 HPC: lowest
			1.10, // W4 storage-compute
			0.80, // W5 storage-data
			0.75, // W6 storage-data
			1.15, // W7 storage-compute
		},
		SKU: [topology.NumSKUs]float64{
			1.10, // S1
			1.60, // S2 (intrinsically 4x S4)
			1.30, // S3
			0.40, // S4
			1.00, // S5
			0.95, // S6
			0.70, // S7
		},
		PowerKnee:  9,
		PowerSlope: 0.08,

		InfantScale:  2.0,
		InfantTauMo:  6,
		WearoutSlope: 0.01,
		WearoutOnset: 48,

		TempTrendPerF: 0.010,
		TrendBaseF:    65,
		HotThresholdF: 78,
		HotFactor:     1.5,
		DryThreshold:  25,
		DryFactor:     1.25,

		ShockBase: 0.0025,
	}
}

// DemandModel supplies per-class utilization so the temporal hazard can
// follow actual load instead of a fixed weekday constant.
// *workload.Model satisfies it.
type DemandModel interface {
	Utilization(wl topology.Workload, day int) (float64, error)
}

// Model evaluates hazards for a fleet.
type Model struct {
	P     Params
	Fleet *topology.Fleet
	// Demand, when set, replaces the static Weekday/Weekend multipliers
	// with a load-stress multiplier derived from the class's actual
	// utilization (the mechanism the paper posits for Fig 3).
	Demand DemandModel
}

// New returns a hazard model over fleet with the given params and the
// static weekday/weekend temporal multipliers.
func New(fleet *topology.Fleet, p Params) *Model {
	return &Model{P: p, Fleet: fleet}
}

// NewWithDemand returns a hazard model whose temporal stress follows the
// demand model.
func NewWithDemand(fleet *topology.Fleet, p Params, demand DemandModel) *Model {
	return &Model{P: p, Fleet: fleet, Demand: demand}
}

// CommonMultiplier composes the factor effects shared by all components
// for one rack on one day: spatial, temporal, workload, SKU, power, age.
func (m *Model) CommonMultiplier(rack *topology.Rack, day int) float64 {
	p := &m.P
	mult := p.DCRegion[rack.DC][rack.Region]
	if u, err := m.demandUtilization(rack.Workload, day); err == nil {
		mult *= stressMultiplier(u)
	} else if calendar.IsWeekend(day) {
		mult *= p.Weekend
	} else {
		mult *= p.Weekday
	}
	mult *= p.Month[calendar.Month(day)]
	mult *= p.Workload[rack.Workload]
	mult *= p.SKU[rack.SKU]
	if rack.PowerKW > p.PowerKnee {
		mult *= 1 + (rack.PowerKW-p.PowerKnee)*p.PowerSlope
	}
	mult *= m.Bathtub(rack.AgeMonths(day))
	return mult
}

// errNoDemand signals that no demand model is attached.
var errNoDemand = fmt.Errorf("failure: no demand model")

// demandUtilization fetches utilization from the demand model if present.
func (m *Model) demandUtilization(wl topology.Workload, day int) (float64, error) {
	if m.Demand == nil {
		return 0, errNoDemand
	}
	return m.Demand.Utilization(wl, day)
}

// stressMultiplier mirrors workload.StressMultiplier without importing
// the package (hazard math stays dependency-light): linear in load
// around the 0.5 neutral point.
func stressMultiplier(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return 1 + 1.0*(u-0.5)
}

// Bathtub returns the age multiplier for an equipment age in months.
func (m *Model) Bathtub(ageMonths float64) float64 {
	p := &m.P
	if ageMonths < 0 {
		// Not yet commissioned: no hazard at all.
		return 0
	}
	b := 1 + p.InfantScale*math.Exp(-ageMonths/p.InfantTauMo)
	if ageMonths > p.WearoutOnset {
		b += p.WearoutSlope * (ageMonths - p.WearoutOnset)
	}
	return b
}

// EnvMultiplier returns the environmental multiplier for a component
// under the given conditions. Only disks respond to temperature and
// humidity (Figs 16-18); memory has a token temperature sensitivity.
func (m *Model) EnvMultiplier(c Component, cond climate.Conditions) float64 {
	p := &m.P
	switch c {
	case Disk:
		mult := 1.0
		if cond.TempF > p.TrendBaseF {
			mult *= 1 + p.TempTrendPerF*(cond.TempF-p.TrendBaseF)
		}
		if cond.TempF > p.HotThresholdF {
			mult *= p.HotFactor
			if cond.RH < p.DryThreshold {
				mult *= p.DryFactor
			}
		}
		return mult
	case DIMM:
		if cond.TempF > p.HotThresholdF {
			return 1.1
		}
		return 1.0
	default:
		return 1.0
	}
}

// DeviceHazard returns the per-device-day failure probability intensity
// for component c in the rack on the day.
func (m *Model) DeviceHazard(c Component, rack *topology.Rack, day int, cond climate.Conditions) float64 {
	base := 0.0
	switch c {
	case Disk:
		base = m.P.DiskBase
	case DIMM:
		base = m.P.DIMMBase
	case ServerOther:
		base = m.P.ServerBase
	}
	return base * m.CommonMultiplier(rack, day) * m.EnvMultiplier(c, cond)
}

// RackHazard returns the expected failure count for component c across
// the whole rack on the day (per-device hazard times device count).
func (m *Model) RackHazard(c Component, rack *topology.Rack, day int, cond climate.Conditions) float64 {
	n := 0
	switch c {
	case Disk:
		n = rack.Disks()
	case DIMM:
		n = rack.DIMMs()
	case ServerOther:
		n = rack.Servers
	}
	return float64(n) * m.DeviceHazard(c, rack, day, cond)
}

// ShockProbability returns the per-day probability that the rack suffers
// a correlated batch-failure event. The feature dependence is what makes
// rack groups separable for Q1's MF clustering:
//
//   - storage-class racks: driven by age (bathtub ends), power rating,
//     and SKU — matching the paper's finding that age/power/SKU dominate
//     the storage-workload clusters;
//   - compute-class racks: driven by DC and region — matching the
//     paper's finding that spatial features dominate compute clusters.
func (m *Model) ShockProbability(rack *topology.Rack, day int) float64 {
	if day < rack.CommissionDay {
		return 0
	}
	g := 1.0
	// Batch failures are load-triggered too (firmware storms and PSU
	// trips cluster at peak demand), so the weekday effect (Fig 3)
	// survives even where shocks dominate the event counts.
	if u, err := m.demandUtilization(rack.Workload, day); err == nil {
		g *= stressMultiplier(u)
	}
	spec := m.Fleet.SKUs[rack.SKU]
	if spec.Class == "storage" {
		age := rack.AgeMonths(day)
		if age < 6 || age > 48 {
			g *= 3.5
		}
		if rack.PowerKW >= 12 {
			g *= 2.0
		}
		if rack.SKU == topology.S3 {
			g *= 1.8
		}
	} else {
		switch {
		case rack.DC == 0 && rack.Region == 0:
			g *= 4.0
		case rack.DC == 0:
			g *= 2.0
		default:
			g *= 1.0
		}
	}
	return m.P.ShockBase * g
}

// ShockSeverity returns the expected fraction of the rack's servers
// taken down by a shock, before random scatter. Storage racks suffer
// larger batches (bad lots, firmware storms over many spindles), which
// produces the wider 2-85% over-provisioning spread of Fig 11b.
func (m *Model) ShockSeverity(rack *topology.Rack) float64 {
	spec := m.Fleet.SKUs[rack.SKU]
	if spec.Class == "storage" {
		sev := 0.22
		if rack.PowerKW >= 12 {
			sev += 0.18
		}
		if rack.SKU == topology.S3 {
			sev += 0.10
		}
		return sev
	}
	sev := 0.06
	if rack.DC == 0 && rack.Region == 0 {
		sev += 0.10
	} else if rack.DC == 0 {
		sev += 0.04
	}
	return sev
}
