package figures

import (
	"fmt"

	"rainshine/internal/climate"
	"rainshine/internal/metrics"
	"rainshine/internal/provision"
	"rainshine/internal/tco"
	"rainshine/internal/ticket"
	"rainshine/internal/topology"
)

// DCProperty is one row of Table I.
type DCProperty struct {
	Facility     string
	Packaging    string
	Availability string
	Cooling      string
}

// TableI reproduces Table I: the two DCs' design properties.
func (d *Data) TableI() []DCProperty {
	v, _ := cached(d, "tableI", func() ([]DCProperty, error) { return d.tableI(), nil })
	return v
}

func (d *Data) tableI() []DCProperty {
	out := make([]DCProperty, 0, len(d.Res.Fleet.DCs))
	for _, dc := range d.Res.Fleet.DCs {
		out = append(out, DCProperty{
			Facility:     dc.Name,
			Packaging:    dc.Packaging,
			Availability: fmt.Sprintf("%d nines", dc.AvailabilityNines),
			Cooling:      dc.Cooling.String(),
		})
	}
	return out
}

// TicketMix is one row of Table II: the share of a fault type in each
// DC's ticket stream, generated vs the paper's published value.
type TicketMix struct {
	Category string
	Fault    string
	DC1Pct   float64
	DC2Pct   float64
	PaperDC1 float64
	PaperDC2 float64
}

// TableII reproduces Table II: classification of failure tickets.
func (d *Data) TableII() []TicketMix {
	v, _ := cached(d, "tableII", func() ([]TicketMix, error) { return d.tableII(), nil })
	return v
}

func (d *Data) tableII() []TicketMix {
	gen := [2]map[ticket.Fault]float64{
		ticket.Mix(d.Res.Tickets, 0),
		ticket.Mix(d.Res.Tickets, 1),
	}
	paper := [2]map[ticket.Fault]float64{ticket.PaperMix(0), ticket.PaperMix(1)}
	var out []TicketMix
	for f := ticket.Timeout; f < ticket.NumFaults; f++ {
		out = append(out, TicketMix{
			Category: ticket.CategoryOf(f).String(),
			Fault:    f.String(),
			DC1Pct:   gen[0][f],
			DC2Pct:   gen[1][f],
			PaperDC1: paper[0][f],
			PaperDC2: paper[1][f],
		})
	}
	return out
}

// Feature is one row of Table III: a candidate factor with its type and
// observed range.
type Feature struct {
	Category string
	Name     string
	Type     string
	Range    string
}

// TableIII reproduces Table III: the candidate feature list.
func (d *Data) TableIII() []Feature {
	v, _ := cached(d, "tableIII", func() ([]Feature, error) { return d.tableIII(), nil })
	return v
}

func (d *Data) tableIII() []Feature {
	dc1 := d.Res.Fleet.DCs[0]
	dc2 := d.Res.Fleet.DCs[1]
	return []Feature{
		{"Hardware", "SKU", "N", "S1&3: storage, S2&4: compute, S5&6: mix, S7: HPC"},
		{"Hardware", "Age", "C", "0-5 years"},
		{"Hardware", "Rated Power", "C", "4-15 kW per rack"},
		{"Workload", "Type", "N", "W1&2: compute, W3: HPC, W4&7: storage-compute, W5&6: storage-data"},
		{"Env.", "Temperature", "C", fmt.Sprintf("%.0f-%.0f F", climate.MinTempF, climate.MaxTempF)},
		{"Env.", "RH", "C", fmt.Sprintf("%.0f-%.0f %%", climate.MinRH, climate.MaxRH)},
		{"Space", "Datacenter", "N", "DC1, DC2"},
		{"Space", "Row", "N", fmt.Sprintf("DC1: 1-%d, DC2: 1-%d", dc1.Rows, dc2.Rows)},
		{"Space", "Rack", "N", fmt.Sprintf("DC1: R1-%d, DC2: R1-%d", dc1.Racks, dc2.Racks)},
		{"Time", "Day", "O", "Sun-Sat"},
		{"Time", "Week", "O", "1-52"},
		{"Time", "Month", "O", "Jan-Dec"},
		{"Time", "Year", "O", "0-2"},
		{"Failure", "Fault Type", "N", "F1: Harddisk, F2: Memory, F3: Others-HW, F4: Software"},
	}
}

// TCOSaving is one cell of Table IV: the relative TCO savings of MF over
// SF for one (SLA, granularity, workload).
type TCOSaving struct {
	SLA         float64
	Granularity string
	Workload    string
	SavingsPct  float64
	// PaperPct is the published value for the matching cell.
	PaperPct float64
}

// paperTableIV holds the published Table IV (percent savings).
var paperTableIV = map[string]map[float64]float64{
	"daily-W1":  {0.90: 0.52, 0.95: 2.60, 1.00: 14.60},
	"daily-W6":  {0.90: 3.77, 0.95: 11.23, 1.00: 35.66},
	"hourly-W1": {0.90: 5.00, 0.95: 7.23, 1.00: 22.23},
	"hourly-W6": {0.90: 2.70, 0.95: 8.60, 1.00: 36.37},
}

// TableIV reproduces Table IV: relative TCO savings of MF over SF across
// SLAs, granularities, and the two study workloads.
func (d *Data) TableIV() ([]TCOSaving, error) {
	return cached(d, "tableIV", d.tableIV)
}

func (d *Data) tableIV() ([]TCOSaving, error) {
	model := tco.Default()
	var out []TCOSaving
	for _, g := range []metrics.Granularity{metrics.Daily, metrics.Hourly} {
		for _, wl := range []topology.Workload{topology.W1, topology.W6} {
			sl, err := provision.AnalyzeServerLevel(d.Res, wl, g, nil)
			if err != nil {
				return nil, err
			}
			savings, err := sl.TCOSavings(model)
			if err != nil {
				return nil, err
			}
			key := g.String() + "-" + wl.String()
			for i, sla := range sl.SLAs {
				out = append(out, TCOSaving{
					SLA:         sla,
					Granularity: g.String(),
					Workload:    wl.String(),
					SavingsPct:  100 * savings[i],
					PaperPct:    paperTableIV[key][sla],
				})
			}
		}
	}
	return out, nil
}
