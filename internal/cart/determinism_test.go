package cart

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// determinismFrame builds a mixed-type frame with missing values — the
// shapes that exercise every split path (numeric scan, nominal subsets,
// surrogate missing routing).
func determinismFrame(t testing.TB, n int) *frame.Frame {
	t.Helper()
	src := rng.New(99)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	cat := make([]int, n)
	y := make([]float64, n)
	lab := make([]int, n)
	for i := range y {
		x1[i] = src.Float64() * 100
		x2[i] = src.NormFloat64() * 10
		if src.Float64() < 0.05 {
			x1[i] = math.NaN()
		}
		cat[i] = src.IntN(5)
		y[i] = x2[i]*0.3 + float64(cat[i]) + src.NormFloat64()
		if x1[i] > 60 || cat[i] == 3 {
			lab[i] = 1
		}
	}
	f := frame.New(n)
	for name, data := range map[string][]float64{"x1": x1, "x2": x2, "y": y} {
		if err := f.AddContinuous(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("lab", lab, []string{"neg", "pos"}); err != nil {
		t.Fatal(err)
	}
	return f
}

// workerCounts are the fan-outs the determinism tests compare: serial,
// fixed oversubscription, and whatever this machine defaults to.
var workerCounts = []int{1, 4, runtime.GOMAXPROCS(0)}

// TestFitWorkersDeterministic asserts that the fitted tree is identical
// — node for node, float for float — for every worker count.
func TestFitWorkersDeterministic(t *testing.T) {
	f := determinismFrame(t, 4000)
	for _, task := range []struct {
		name   string
		target string
		cfg    Config
	}{
		{"regression", "y", Config{Task: Regression, MaxDepth: 6, MinSplit: 20, MinLeaf: 8, CP: 1e-4}},
		{"classification", "lab", Config{Task: Classification, MaxDepth: 6, MinSplit: 20, MinLeaf: 8, CP: 1e-4}},
	} {
		t.Run(task.name, func(t *testing.T) {
			var want *Tree
			for _, w := range workerCounts {
				cfg := task.cfg
				cfg.Workers = w
				tree, err := Fit(f, task.target, []string{"x1", "x2", "cat"}, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if want == nil {
					want = tree
					continue
				}
				if !reflect.DeepEqual(want, tree) {
					t.Errorf("workers=%d: tree differs from workers=%d", w, workerCounts[0])
				}
			}
		})
	}
}

// TestPredictFrameWorkersDeterministic asserts that chunked parallel
// prediction returns the exact serial outputs.
func TestPredictFrameWorkersDeterministic(t *testing.T) {
	f := determinismFrame(t, 4000)
	tree, err := Fit(f, "y", []string{"x1", "x2", "cat"},
		Config{Task: Regression, MaxDepth: 6, MinSplit: 20, MinLeaf: 8, CP: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tree.PredictFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		got, err := tree.PredictFrameContext(t.Context(), f, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: predictions differ from serial", w)
		}
	}
}

// TestCrossValidateWorkersDeterministic asserts that the parallel fold ×
// cp sweep selects the same cp with the same error table as the serial
// sweep.
func TestCrossValidateWorkersDeterministic(t *testing.T) {
	f := determinismFrame(t, 2000)
	cands := []float64{1e-4, 1e-3, 1e-2, 1e-1}
	var want []CPRow
	for _, w := range workerCounts {
		cv, err := CrossValidate(f, "y", []string{"x1", "x2", "cat"},
			Config{Task: Regression, MaxDepth: 5, MinSplit: 20, MinLeaf: 8, Workers: w},
			cands, 5, 7)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = cv
			continue
		}
		if !reflect.DeepEqual(want, cv) {
			t.Errorf("workers=%d: CV result differs from workers=%d", w, workerCounts[0])
		}
	}
}
