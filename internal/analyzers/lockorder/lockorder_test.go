package lockorder_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/lockorder"
)

func TestLockorder(t *testing.T) {
	// lockdep first: package a imports its Blocks/Locks facts.
	analysistest.RunWithSuggestedFixes(t, "testdata", lockorder.Analyzer, "lockdep", "a")
}
