package cart_test

import (
	"fmt"
	"log"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
)

// Example fits a small regression tree and inspects the split it found.
func Example() {
	// Ten servers: failure rate jumps when the inlet runs hot.
	f := frame.New(10)
	temps := []float64{62, 64, 66, 68, 70, 80, 82, 84, 86, 88}
	rates := []float64{1, 1, 1, 1, 1, 3, 3, 3, 3, 3}
	if err := f.AddContinuous("temp", temps); err != nil {
		log.Fatal(err)
	}
	if err := f.AddContinuous("rate", rates); err != nil {
		log.Fatal(err)
	}
	tree, err := cart.Fit(f, "rate", []string{"temp"}, cart.Config{
		Task: cart.Regression, MaxDepth: 1, MinSplit: 2, MinLeaf: 1, CP: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split: temp <= %.0f\n", tree.Root.Threshold)
	cool, _ := tree.Predict([]float64{65})
	hot, _ := tree.Predict([]float64{85})
	fmt.Printf("cool rate %.0f, hot rate %.0f\n", cool, hot)
	// Output:
	// split: temp <= 75
	// cool rate 1, hot rate 3
}
