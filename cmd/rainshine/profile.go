package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles begins CPU profiling to cpuPath and arranges a heap
// profile at memPath, either of which may be empty. The returned stop
// function ends the CPU profile and writes the heap snapshot (after a
// GC, so it reflects live memory rather than collectible garbage); it
// must be called exactly once, on the way out. Shared by the batch
// commands and the serve daemon.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // snapshot live objects, not collectible garbage
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
