package ingest

import (
	"encoding/json"
	"fmt"
)

// reportJSON is the wire shape of a Report: the per-class counters
// become maps keyed by defect-class name (zero counts omitted), and the
// derived coverage fractions are included read-only so API consumers
// need not recompute them.
type reportJSON struct {
	TicketsIn     int            `json:"tickets_in"`
	TicketsKept   int            `json:"tickets_kept"`
	Quarantined   map[string]int `json:"quarantined,omitempty"`
	Repaired      map[string]int `json:"repaired,omitempty"`
	SensorSamples int            `json:"sensor_samples"`
	SensorNative  int            `json:"sensor_native"`
	SensorImputed int            `json:"sensor_imputed"`
	SensorMissing int            `json:"sensor_missing"`

	TicketCoverage float64 `json:"ticket_coverage"`
	SensorCoverage float64 `json:"sensor_coverage"`
	Coverage       float64 `json:"coverage"`
}

func classCounts(a [NumClasses]int) map[string]int {
	var m map[string]int
	for c, n := range a {
		if n == 0 {
			continue
		}
		if m == nil {
			m = map[string]int{}
		}
		m[Class(c).String()] = n
	}
	return m
}

// MarshalJSON encodes the report with named defect classes.
func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		TicketsIn:      r.TicketsIn,
		TicketsKept:    r.TicketsKept,
		Quarantined:    classCounts(r.Quarantined),
		Repaired:       classCounts(r.Repaired),
		SensorSamples:  r.SensorSamples,
		SensorNative:   r.SensorNative,
		SensorImputed:  r.SensorImputed,
		SensorMissing:  r.SensorMissing,
		TicketCoverage: r.TicketCoverage(),
		SensorCoverage: r.SensorCoverage(),
		Coverage:       r.Coverage(),
	})
}

// UnmarshalJSON inverts MarshalJSON; the derived coverage fields are
// ignored (they are recomputed from the counters on demand).
func (r *Report) UnmarshalJSON(b []byte) error {
	var w reportJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Report{
		TicketsIn:     w.TicketsIn,
		TicketsKept:   w.TicketsKept,
		SensorSamples: w.SensorSamples,
		SensorNative:  w.SensorNative,
		SensorImputed: w.SensorImputed,
		SensorMissing: w.SensorMissing,
	}
	fill := func(dst *[NumClasses]int, src map[string]int) error {
		for name, n := range src {
			c, err := classFromName(name)
			if err != nil {
				return err
			}
			dst[c] = n
		}
		return nil
	}
	if err := fill(&r.Quarantined, w.Quarantined); err != nil {
		return err
	}
	return fill(&r.Repaired, w.Repaired)
}

// classFromName resolves a defect-class name back to its Class.
func classFromName(name string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("ingest: unknown defect class %q", name)
}
