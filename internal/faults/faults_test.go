package faults

import (
	"math"
	"reflect"
	"testing"

	"rainshine/internal/climate"
	"rainshine/internal/rng"
	"rainshine/internal/ticket"
	"rainshine/internal/topology"
)

func testTickets(n int) []ticket.Ticket {
	ts := make([]ticket.Ticket, n)
	for i := range ts {
		ts[i] = ticket.Ticket{
			ID:          i,
			Day:         i % 90,
			Hour:        float64(i%24) + 0.25,
			DC:          i % 2,
			Rack:        i % 40,
			Fault:       ticket.DiskFailure,
			RepairHours: 3,
			Device:      i % 12,
			Repeat:      1,
		}
	}
	return ts
}

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !Defaults().Enabled() {
		t.Error("defaults report disabled")
	}
	ts := testTickets(50)
	out := CorruptTickets(rng.New(1), ts, 90, Config{})
	if !reflect.DeepEqual(out, ts) {
		t.Error("zero config corrupted the ticket stream")
	}
}

func TestCorruptTicketsDeterministic(t *testing.T) {
	ts := testTickets(2000)
	cfg := Defaults()
	a := CorruptTickets(rng.New(7), testTickets(2000), 90, cfg)
	b := CorruptTickets(rng.New(7), testTickets(2000), 90, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	c := CorruptTickets(rng.New(8), testTickets(2000), 90, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
	if len(a) <= len(ts) {
		t.Errorf("no duplicates injected: %d -> %d", len(ts), len(a))
	}
	skewed := 0
	for _, tk := range a {
		if tk.Day < 0 || tk.Day >= 90 {
			skewed++
		}
	}
	if skewed == 0 {
		t.Error("no out-of-window skew at default rates over 2000 tickets")
	}
}

func testClimate(t *testing.T) *climate.Model {
	t.Helper()
	fleet, err := topology.Build(rng.New(3).Split("topology"),
		topology.Config{RacksPerDC: [2]int{4, 4}, ObservationDays: 120})
	if err != nil {
		t.Fatal(err)
	}
	m, err := climate.New(rng.New(3).Split("climate"), fleet, 120)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCorruptClimateDeterministicAndInjects(t *testing.T) {
	a, b := testClimate(t), testClimate(t)
	cfg := Config{SensorDropout: 0.05, SensorStuck: 0.05}
	if err := CorruptClimate(rng.New(11).Split("sensors"), a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := CorruptClimate(rng.New(11).Split("sensors"), b, cfg); err != nil {
		t.Fatal(err)
	}
	nan := 0
	for ri := 0; ri < a.Racks(); ri++ {
		for d := 0; d < a.Days(); d++ {
			ca, err := a.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			sameNaN := math.IsNaN(ca.TempF) && math.IsNaN(cb.TempF)
			if !sameNaN && (ca != cb) {
				t.Fatalf("rack %d day %d differs under same seed: %+v vs %+v", ri, d, ca, cb)
			}
			if math.IsNaN(ca.TempF) {
				nan++
			}
		}
	}
	if nan == 0 {
		t.Error("no dropout NaNs injected at 5% rate over 960 rack-days")
	}
}
