// Package a exercises the detrand rules: unseeded randomness, wall
// clock reads, and map-order leaks.
package a

import (
	"fmt"
	"io"
	"math/rand" // want `import of math/rand outside internal/rng`
	"sort"
	"time"
)

// Draw trips the randomness rule through the import above.
func Draw() int {
	return rand.Int()
}

// Stamp reads the wall clock outside the allowlist.
func Stamp() int64 {
	return time.Now().Unix() // want `time.Now outside the wall-clock allowlist`
}

// Keys leaks map iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appending to out while ranging over a map without sorting it afterwards`
	}
	return out
}

// SortedKeys is the sanctioned collect-keys-then-sort idiom (negative).
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump streams rows in map iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `emitting output while ranging over a map`
	}
}

// Regroup accumulates into a bucket not keyed by the range variables.
func Regroup(m map[string]int, other string) map[string][]string {
	b := map[string][]string{}
	for k := range m {
		b[other] = append(b[other], k) // want `appending to a bucket not keyed by this map range's variables`
	}
	return b
}

// Buckets regroups keyed by the range's own variable (negative): one
// bucket per iteration is deterministic regardless of visit order.
func Buckets(pairs map[string]int) map[int][]string {
	b := map[int][]string{}
	for k, v := range pairs {
		b[v] = append(b[v], k)
	}
	for _, s := range b {
		sort.Strings(s)
	}
	return b
}
