// Package bench is a benchgate fixture: a miniature of the repo's
// benchsnap snapshot/gate discipline. The production side holds the
// snapshot document type; the discipline under test lives entirely in
// the _test.go file, which the pass reads through Pass.TestFiles.
package bench

// doc mirrors benchsnap.Doc: named results gated by budgets, plus
// ungated baselines.
type doc struct {
	Results   map[string]float64
	Baselines map[string]float64
}

// Budget returns the recorded result for name, capped by gate.
func (d *doc) Budget(name string, gate float64) float64 {
	if v, ok := d.Results[name]; ok && v < gate {
		return v
	}
	return gate
}
