package envan

import (
	"context"
	"math"
	"testing"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

var cachedFrame *frame.Frame

func rackDayFrame(t *testing.T) *frame.Frame {
	t.Helper()
	if cachedFrame != nil {
		return cachedFrame
	}
	res, err := simulate.Run(simulate.Config{
		Seed:            13,
		Days:            540,
		Topology:        topology.Config{RacksPerDC: [2]int{140, 120}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := metrics.RackDayFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	cachedFrame = f
	return f
}

func TestBinnedRatesDiskTrend(t *testing.T) {
	f := rackDayFrame(t)
	sums, err := BinnedRates(f, "disk_failures")
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(TempBinLabels) {
		t.Fatalf("bins = %d", len(sums))
	}
	// Fig 17: hottest bin clearly above the coolest populated bin.
	var coolest, hottest float64
	for _, s := range sums {
		if s.N > 100 {
			coolest = s.Mean
			break
		}
	}
	hottest = sums[len(sums)-1].Mean
	if sums[len(sums)-1].N < 50 {
		t.Fatal("hottest bin underpopulated; climate model broken")
	}
	if hottest <= coolest {
		t.Errorf("disk rate should rise with temperature: cool %v, hot %v", coolest, hottest)
	}
}

func TestBinnedRatesErrors(t *testing.T) {
	f := frame.New(1)
	if err := f.AddContinuous("x", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := BinnedRates(f, "x"); err == nil {
		t.Error("frame without temp should error")
	}
	if err := f.AddContinuous("temp", []float64{70}); err != nil {
		t.Fatal(err)
	}
	if _, err := BinnedRates(f, "nope"); err == nil {
		t.Error("missing value column should error")
	}
}

func TestAnalyzeFindsThresholds(t *testing.T) {
	f := rackDayFrame(t)
	res, err := Analyze(f, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Thresholds.TempF) {
		t.Fatal("no temperature threshold found")
	}
	if res.Thresholds.TempF < 72 || res.Thresholds.TempF > 84 {
		t.Errorf("temp threshold = %v, want near 78", res.Thresholds.TempF)
	}
	if !math.IsNaN(res.Thresholds.RH) {
		// The planted effect is a 1.25x step below 25% RH; threshold
		// recovery for an effect that small is noisy, so accept the
		// dry half of the range.
		if res.Thresholds.RH < 8 || res.Thresholds.RH > 40 {
			t.Errorf("RH threshold = %v, want in the dry range (~25)", res.Thresholds.RH)
		}
	}
	if res.Tree == nil || len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
}

func TestAnalyzeGroupContrasts(t *testing.T) {
	f := rackDayFrame(t)
	res, err := Analyze(f, cart.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var dc1, dc2 *GroupRates
	for i := range res.Groups {
		switch res.Groups[i].DC {
		case "DC1":
			dc1 = &res.Groups[i]
		case "DC2":
			dc2 = &res.Groups[i]
		}
	}
	if dc1 == nil || dc2 == nil {
		t.Fatal("missing DC groups")
	}
	// Fig 18 (i)-(iii): DC1 hot clearly above cool; hot+dry above hot.
	if dc1.Hot.N < 100 || dc1.Cool.N < 100 {
		t.Fatalf("DC1 groups underpopulated: hot %d cool %d", dc1.Hot.N, dc1.Cool.N)
	}
	hotRatio := dc1.Hot.Mean / dc1.Cool.Mean
	if hotRatio < 1.2 {
		t.Errorf("DC1 hot/cool = %v, want >= 1.2 (paper ~1.5)", hotRatio)
	}
	if dc1.HotDry.N > 50 && dc1.HotDry.Mean <= dc1.Hot.Mean {
		t.Errorf("DC1 hot+dry (%v) should exceed hot (%v)", dc1.HotDry.Mean, dc1.Hot.Mean)
	}
	// Fig 18 (i): DC2 insensitive — hot sample tiny or ratio near 1.
	if dc2.Hot.N > 200 {
		r := dc2.Hot.Mean / dc2.Cool.Mean
		if r > 1.3 {
			t.Errorf("DC2 should be environment-insensitive, hot/cool = %v", r)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	f := frame.New(1)
	if err := f.AddContinuous("disk_failures", []float64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(f, cart.Config{}); err == nil {
		t.Error("missing features should error")
	}
}

func TestBestThresholdCondBranch(t *testing.T) {
	// Hand-build a frame where y jumps only for temp>78, and rh matters
	// only within the hot branch.
	n := 4000
	f := frame.New(n)
	temp := make([]float64, n)
	rh := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		// Independent drivers: temp cycles fast, rh cycles slowly.
		temp[i] = 60 + float64(i%30)
		rh[i] = 10 + float64((i/30)%60)
		if temp[i] > 78 {
			y[i] = 1
			if rh[i] < 25 {
				y[i] = 2
			}
		}
	}
	for _, c := range []struct {
		name string
		data []float64
	}{{"temp", temp}, {"rh", rh}, {"y", y}} {
		if err := f.AddContinuous(c.name, c.data); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := cart.Fit(f, "y", []string{"temp", "rh"}, cart.Config{Task: cart.Regression, MaxDepth: 3, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	thr, ok := bestThreshold(tree, "temp", "")
	if !ok || thr < 77 || thr > 79 {
		t.Errorf("temp threshold = %v, %v", thr, ok)
	}
	rhThr, ok := bestThreshold(tree, "rh", "temp")
	if !ok || rhThr < 20 || rhThr > 30 {
		t.Errorf("rh threshold = %v, %v", rhThr, ok)
	}
	// rh split must NOT be found in the cool branch when conditioned.
	if _, ok := bestThreshold(tree, "nope", ""); ok {
		t.Error("unknown feature should not be found")
	}
	if _, ok := bestThreshold(tree, "rh", "nope"); ok {
		t.Error("unknown cond feature should not be found")
	}
}

func TestWinsorize(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.3, 0.3}, {-0.7, -0.7}, {5, 1}, {-4, -1}, {1, 1}, {-1, -1},
	}
	for _, c := range cases {
		if got := winsorize(c.in); got != c.want {
			t.Errorf("winsorize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHotRegimeRHSplitConstraints(t *testing.T) {
	// Build a synthetic env frame where the dry tail is harmful.
	n := 3000
	f := frame.New(n)
	temp := make([]float64, n)
	rh := make([]float64, n)
	resid := make([]float64, n)
	for i := range temp {
		temp[i] = 80 // all hot
		rh[i] = 10 + float64(i%50)
		if rh[i] < 22 {
			resid[i] = 0.5
		}
	}
	for _, c := range []struct {
		name string
		data []float64
	}{{"temp", temp}, {"rh", rh}, {"resid", resid}} {
		if err := f.AddContinuous(c.name, c.data); err != nil {
			t.Fatal(err)
		}
	}
	thr, ok := hotRegimeRHSplit(context.Background(), f, 78, 1)
	if !ok || thr < 20 || thr > 24 {
		t.Errorf("threshold = %v, %v; want ~22", thr, ok)
	}
	// Invert the direction: humid side harmful -> no admissible split.
	for i := range resid {
		resid[i] = 0
		if rh[i] > 40 {
			resid[i] = 0.5
		}
	}
	if _, ok := hotRegimeRHSplit(context.Background(), f, 78, 1); ok {
		t.Error("humid-harmful pattern should be rejected")
	}
	// Too few hot rows.
	tiny := f.Filter(func(r int) bool { return r < 100 })
	if _, ok := hotRegimeRHSplit(context.Background(), tiny, 78, 1); ok {
		t.Error("tiny hot regime should be rejected")
	}
}

func TestAnalyzeCustomConfig(t *testing.T) {
	f := rackDayFrame(t)
	// A deliberately tiny tree: analysis must still run and produce
	// groups, with thresholds possibly NaN.
	res, err := Analyze(f, cart.Config{MaxDepth: 2, MinSplit: 50000, MinLeaf: 20000, CP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// Fallback thresholds keep the group construction meaningful.
	for _, g := range res.Groups {
		if g.All.N == 0 {
			t.Errorf("%s: empty All group", g.DC)
		}
	}
}
