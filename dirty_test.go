package rainshine

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"rainshine/internal/ingest"
)

var (
	cachedClean *Study
	cachedDirty *Study
)

// dirtyPair builds one reduced-scale study twice: once clean, once with
// every fault class at default rates, from the same seed.
func dirtyPair(t *testing.T) (clean, dirty *Study) {
	t.Helper()
	if cachedClean == nil {
		s, err := NewStudy(WithSeed(42), WithDays(365), WithRacks(120, 100))
		if err != nil {
			t.Fatal(err)
		}
		cachedClean = s
	}
	if cachedDirty == nil {
		s, err := NewStudy(WithSeed(42), WithDays(365), WithRacks(120, 100),
			WithFaults(DefaultFaults()))
		if err != nil {
			t.Fatal(err)
		}
		cachedDirty = s
	}
	return cachedClean, cachedDirty
}

func TestFaultsDisabledBitIdentical(t *testing.T) {
	clean, _ := dirtyPair(t)
	zero, err := NewStudy(WithSeed(42), WithDays(365), WithRacks(120, 100),
		WithFaults(FaultConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero.Tickets(), clean.Tickets()) {
		t.Fatal("zero-valued FaultConfig changed the ticket stream")
	}
	a, err := clean.data.Res.Climate.At(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := zero.data.Res.Climate.At(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("zero-valued FaultConfig changed climate telemetry: %+v vs %+v", a, b)
	}
}

func TestDirtyStudyQualityReport(t *testing.T) {
	clean, dirty := dirtyPair(t)

	q, err := dirty.Quality()
	if err != nil {
		t.Fatal(err)
	}
	// Every injected fault class must be itemized in the report:
	// duplicates and out-of-window skew under quarantine, in-window skew
	// as repaired repeat inversions, dropouts and stuck runs as
	// reconstructed sensor readings.
	for _, c := range []ingest.Class{ingest.DuplicateTicket, ingest.TicketOutOfRange, ingest.SensorGap, ingest.SensorStuck} {
		if q.Quarantined[c] == 0 {
			t.Errorf("no %s defects itemized at default rates", c)
		}
	}
	if q.SensorImputed == 0 {
		t.Error("no sensor readings imputed")
	}
	if c := q.Coverage(); c <= 0.9 || c >= 1 {
		t.Errorf("dirty coverage = %v, want in (0.9, 1)", c)
	}

	cq, err := clean.Quality()
	if err != nil {
		t.Fatal(err)
	}
	if !cq.Clean() {
		t.Errorf("clean study reports defects: %d", cq.Defects())
	}
	if cq.Coverage() != 1 {
		t.Errorf("clean coverage = %v", cq.Coverage())
	}
}

// TestDirtyExportAnalyzesGracefully feeds the lossy dirty-mode export
// (dropped power_kw column, NaN/Inf cells) back through the external
// analysis path: it must degrade — reporting the missing factor and the
// reduced cell coverage — rather than fail, and still find the
// temperature knee.
func TestDirtyExportAnalyzesGracefully(t *testing.T) {
	clean, dirty := dirtyPair(t)
	var buf bytes.Buffer
	if err := dirty.ExportRackDaysCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "power_kw") {
		t.Fatal("dirty export still carries the dropped column")
	}
	if !strings.Contains(buf.String(), "NaN") {
		t.Fatal("dirty export carries no NaN cells")
	}
	rep, err := AnalyzeClimateCSV(&buf)
	if err != nil {
		t.Fatalf("external analysis failed on dirty export: %v", err)
	}
	found := false
	for _, m := range rep.MissingFeatures {
		if m == "power_kw" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing features = %v, want power_kw listed", rep.MissingFeatures)
	}
	if rep.DataCoverage >= 1 || rep.DataCoverage <= 0.9 {
		t.Errorf("dirty export coverage = %v, want in (0.9, 1)", rep.DataCoverage)
	}
	if math.IsNaN(rep.TempThresholdF) {
		t.Error("no temperature threshold from the dirty export")
	}
	// The clean export stays byte-stable: full columns, no NaN cells.
	var cleanBuf bytes.Buffer
	if err := clean.ExportRackDaysCSV(&cleanBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(cleanBuf.String(), "\n", 2)[0], "power_kw") {
		t.Error("clean export lost a column")
	}
	if strings.Contains(cleanBuf.String(), "NaN") {
		t.Error("clean export carries NaN cells")
	}
}

// TestGoldenDirtyAnalyses is the headline robustness check: a study
// corrupted at the default rates, after quarantine and repair, must
// reproduce the Q1-Q3 decisions of the clean run. Failure events and
// static covariates are recorded out of band of the faulted streams, so
// Q1 and Q2 must match exactly; Q3 reads the repaired (imputed) climate
// and is held to the documented tolerances instead.
func TestGoldenDirtyAnalyses(t *testing.T) {
	clean, dirty := dirtyPair(t)

	// Q1: spare provisioning.
	q1c, err := clean.SpareProvisioning(W6, false)
	if err != nil {
		t.Fatal(err)
	}
	q1d, err := dirty.SpareProvisioning(W6, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"LB", "MF", "SF"} {
		for i := range q1c.OverprovPct[a] {
			c, d := q1c.OverprovPct[a][i], q1d.OverprovPct[a][i]
			if math.Abs(c-d) > 1.0 {
				t.Errorf("Q1 %s overprov at SLA %v: clean %.2f%% vs dirty %.2f%%", a, q1c.SLAs[i], c, d)
			}
		}
	}
	if q1d.DataCoverage >= 1 || q1d.DataCoverage <= 0.9 {
		t.Errorf("Q1 dirty coverage = %v", q1d.DataCoverage)
	}
	if q1c.DataCoverage != 1 {
		t.Errorf("Q1 clean coverage = %v", q1c.DataCoverage)
	}

	// Q2: vendor comparison. Ratios within 10% relative, same verdicts.
	q2c, err := clean.VendorComparison()
	if err != nil {
		t.Fatal(err)
	}
	q2d, err := dirty.VendorComparison()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(q2d.RatioMF-q2c.RatioMF) / q2c.RatioMF; rel > 0.10 {
		t.Errorf("Q2 MF ratio drifted %.1f%%: clean %.3f vs dirty %.3f", 100*rel, q2c.RatioMF, q2d.RatioMF)
	}
	if rel := math.Abs(q2d.RatioSF-q2c.RatioSF) / q2c.RatioSF; rel > 0.10 {
		t.Errorf("Q2 SF ratio drifted %.1f%%: clean %.3f vs dirty %.3f", 100*rel, q2c.RatioSF, q2d.RatioSF)
	}
	for i := range q2c.Verdicts {
		if (q2c.Verdicts[i].SavingsMF > 0) != (q2d.Verdicts[i].SavingsMF > 0) {
			t.Errorf("Q2 verdict flipped at price ratio %v", q2c.Verdicts[i].PriceRatio)
		}
	}

	// Q3: climate guidance off the repaired sensors. Thresholds within
	// 3 F / 8 points RH; the DC1 hot penalty must survive.
	q3c, err := clean.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	q3d, err := dirty.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(q3d.TempThresholdF) {
		t.Fatal("Q3 lost the temperature threshold under faults")
	}
	if math.Abs(q3d.TempThresholdF-q3c.TempThresholdF) > 3 {
		t.Errorf("Q3 temp threshold: clean %.1f vs dirty %.1f", q3c.TempThresholdF, q3d.TempThresholdF)
	}
	if !math.IsNaN(q3c.RHThreshold) && !math.IsNaN(q3d.RHThreshold) {
		if math.Abs(q3d.RHThreshold-q3c.RHThreshold) > 8 {
			t.Errorf("Q3 RH threshold: clean %.1f vs dirty %.1f", q3c.RHThreshold, q3d.RHThreshold)
		}
	}
	if q3d.HotPenalty["DC1"] < 1.2 {
		t.Errorf("Q3 DC1 hot penalty = %v under faults, want >= 1.2", q3d.HotPenalty["DC1"])
	}
}
