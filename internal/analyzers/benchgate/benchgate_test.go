package benchgate_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/benchgate"
)

func TestBenchgate(t *testing.T) {
	analysistest.Run(t, "testdata", benchgate.Analyzer, "bench")
}
