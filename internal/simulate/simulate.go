// Package simulate is the generative engine: it walks the fleet through
// the observation window, draws hardware failure events from the hazard
// model (including correlated rack-level shocks), attaches repair
// durations, and emits the full RMA ticket stream (hardware plus
// software/boot/other tickets and false positives) that the analyses
// consume.
//
// This package is the substitution for the paper's production telemetry:
// everything downstream — metrics, CART, provisioning, SKU and
// environmental analyses — works only with its outputs, never with the
// planted parameters.
package simulate

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rainshine/internal/climate"
	"rainshine/internal/dist"
	"rainshine/internal/failure"
	"rainshine/internal/faults"
	"rainshine/internal/parallel"
	"rainshine/internal/rng"
	"rainshine/internal/ticket"
	"rainshine/internal/topology"
	"rainshine/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed roots every random stream. Zero means rng.DefaultSeed.
	Seed uint64
	// Days is the observation window length. Zero means 930 (~2.5 y).
	Days int
	// Topology overrides fleet construction (testing hook).
	Topology topology.Config
	// Params overrides the hazard model; nil means failure.DefaultParams.
	Params *failure.Params
	// FalsePositiveRate is the fraction of extra no-fault-found tickets
	// injected. Negative means 0; zero means the 0.05 default.
	FalsePositiveRate float64
	// SkipNonHardware suppresses software/boot/other ticket synthesis
	// (used by analyses that only need hardware events).
	SkipNonHardware bool
	// Workers bounds the number of racks simulated concurrently.
	// Zero means GOMAXPROCS. Results are identical for any worker
	// count: each rack draws from its own labelled stream and per-rack
	// event buffers are merged in rack order.
	Workers int
	// Faults, when non-nil, corrupts the *recorded* telemetry (climate
	// series, ticket stream) after the simulation has consumed the clean
	// ground truth — the dirty-data mode. Nil leaves every stream
	// bit-identical to the clean run.
	Faults *faults.Config
	// CARTBins caps the histogram bin count the downstream tree
	// analyses use when the binned split engine engages (0 means the
	// cart package default). The simulation itself ignores it; it rides
	// here because Config is the study-wide settings vehicle, like
	// Workers.
	CARTBins int
	// CARTExact forces exact split search in the downstream tree
	// analyses regardless of data size.
	CARTExact bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = rng.DefaultSeed
	}
	if c.Days == 0 {
		c.Days = 930
	}
	if c.Topology.ObservationDays == 0 {
		c.Topology.ObservationDays = c.Days
	}
	switch {
	case c.FalsePositiveRate == 0:
		c.FalsePositiveRate = 0.05
	case c.FalsePositiveRate < 0:
		c.FalsePositiveRate = 0
	}
	return c
}

// Event is one hardware device failure.
type Event struct {
	Rack        int32
	Day         int32
	Hour        float64 // onset hour within the day [0, 24)
	Component   failure.Component
	RepairHours float64
	// Device identifies which unit of the component class failed within
	// the rack (0 .. class population-1). Repeat failures of one device
	// share this index, which is how RMA repeat counts arise.
	Device int32
	// Shock marks events belonging to a correlated batch failure.
	Shock bool
}

// refailProb is the chance a replacement unit fails again within
// refailWindowDays — replacement stock re-enters the infant-mortality
// regime, which is what fills the RMA "repeat count" field the paper
// describes in Section IV.
const (
	refailProb       = 0.08
	refailWindowDays = 30
)

// Result bundles everything a simulation produced.
type Result struct {
	Cfg     Config
	Fleet   *topology.Fleet
	Climate *climate.Model
	Hazard  *failure.Model
	Events  []Event
	Tickets []ticket.Ticket
	Days    int
}

// repairDist returns the repair-duration sampler for a component.
func repairDist(c failure.Component, shock bool) dist.LogNormal {
	if shock {
		// Batch events are triaged quickly once diagnosed (~8 h median):
		// short enough that hourly spare pools can recycle spares within
		// the day, which is where Fig 12's savings come from.
		return dist.LogNormal{Mu: 2.1, Sigma: 0.5}
	}
	switch c {
	case failure.Disk:
		return dist.LogNormal{Mu: 1.6, Sigma: 0.7} // ~5 h median
	case failure.DIMM:
		return dist.LogNormal{Mu: 1.5, Sigma: 0.6}
	default:
		return dist.LogNormal{Mu: 1.9, Sigma: 0.8} // ~7 h median
	}
}

const maxRepairHours = 14 * 24

// Run executes a full simulation. It is RunContext with
// context.Background(); use that variant to make the run cancellable.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes a full simulation under ctx. Cancellation is
// checked between construction phases and before each rack's event walk,
// so an abandoned caller stops paying for simulation within one rack's
// worth of work. A canceled run returns ctx's error; partial results are
// never returned.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Days < 1 {
		return nil, errors.New("simulate: non-positive day count")
	}
	root := rng.New(cfg.Seed)
	fleet, err := topology.Build(root.Split("topology"), cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("simulate: building fleet: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	clim, err := climate.New(root.Split("climate"), fleet, cfg.Days)
	if err != nil {
		return nil, fmt.Errorf("simulate: building climate: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := failure.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	demand, err := workload.New(root.Split("workload"), cfg.Days)
	if err != nil {
		return nil, fmt.Errorf("simulate: building demand model: %w", err)
	}
	hz := failure.NewWithDemand(fleet, params, demand)

	res := &Result{Cfg: cfg, Fleet: fleet, Climate: clim, Hazard: hz, Days: cfg.Days}

	// Racks are independent given their pre-split RNG streams: fan them
	// across the pool. Each rack owns its slot of perRack, and the merge
	// below walks rack order, so results are identical for any worker
	// count (the parallel layer also drains remaining racks without
	// simulating them once ctx is canceled).
	perRack := make([][]Event, len(fleet.Racks))
	forErr := parallel.ForEach(ctx, cfg.Workers, len(fleet.Racks), func(ri int) error {
		rack := &fleet.Racks[ri]
		rsrc := root.SplitIndex("events/rack", ri)
		var err error
		perRack[ri], err = simulateRack(res, rack, rsrc)
		if err != nil {
			return fmt.Errorf("simulate: rack %d: %w", ri, err)
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if forErr != nil {
		return nil, forErr
	}
	// Deterministic merge in rack order, independent of scheduling.
	total := 0
	for _, evs := range perRack {
		total += len(evs)
	}
	res.Events = make([]Event, 0, total)
	for _, evs := range perRack {
		res.Events = append(res.Events, evs...)
	}

	if err := synthesizeTickets(res, root.Split("tickets")); err != nil {
		return nil, err
	}
	// Telemetry corruption runs last: hazard draws and events above saw
	// the true conditions, only the recorded streams get dirty.
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		fsrc := root.Split("faults")
		if err := faults.CorruptClimate(fsrc.Split("sensors"), res.Climate, *cfg.Faults); err != nil {
			return nil, fmt.Errorf("simulate: injecting sensor faults: %w", err)
		}
		res.Tickets = faults.CorruptTickets(fsrc.Split("tickets"), res.Tickets, res.Days, *cfg.Faults)
	}
	return res, nil
}

// simulateRack draws all hardware events for one rack into a private
// buffer (safe to run concurrently with other racks).
func simulateRack(res *Result, rack *topology.Rack, src *rng.Source) ([]Event, error) {
	hz := res.Hazard
	var events []Event
	devicesOf := func(c failure.Component) int {
		switch c {
		case failure.Disk:
			return rack.Disks()
		case failure.DIMM:
			return rack.DIMMs()
		default:
			return rack.Servers
		}
	}
	// emit records an event and, with probability refailProb, schedules
	// the replacement unit's early re-failure (a "repeat" ticket).
	emit := func(ev Event) {
		events = append(events, ev)
		if src.Float64() < refailProb {
			day := int(ev.Day) + 1 + src.IntN(refailWindowDays)
			if day < res.Days {
				events = append(events, Event{
					Rack:        ev.Rack,
					Day:         int32(day),
					Hour:        src.Float64() * 24,
					Component:   ev.Component,
					RepairHours: clampRepair(repairDist(ev.Component, false).Sample(src)),
					Device:      ev.Device,
				})
			}
		}
	}
	for day := 0; day < res.Days; day++ {
		if day < rack.CommissionDay {
			continue
		}
		cond, err := res.Climate.At(rack.ID, day)
		if err != nil {
			return nil, err
		}
		for c := failure.Disk; c < failure.NumComponents; c++ {
			lambda := hz.RackHazard(c, rack, day, cond)
			n := dist.Poisson{Lambda: lambda}.SampleInt(src)
			for k := 0; k < n; k++ {
				emit(Event{
					Rack:        int32(rack.ID),
					Day:         int32(day),
					Hour:        src.Float64() * 24,
					Component:   c,
					RepairHours: clampRepair(repairDist(c, false).Sample(src)),
					Device:      int32(src.IntN(devicesOf(c))),
				})
			}
		}
		// Correlated shock: a batch of devices in the rack fails within
		// the same day. Storage racks suffer chassis-level batches
		// (backplane/PSU/batch defects) taking whole servers out;
		// compute racks suffer disk firmware storms — each affected
		// server loses a disk, which component-level spares (Q1-B) can
		// cover at 2% of a server's cost. Failures trickle across the
		// day, so hourly spare pools multiplex what daily pools cannot
		// (Fig 10 vs Fig 12).
		if src.Float64() < hz.ShockProbability(rack, day) {
			sev := hz.ShockSeverity(rack) * (0.5 + src.Float64())
			if sev > 0.9 {
				sev = 0.9
			}
			comp := failure.Disk
			// Storage racks split between chassis batches (servers) and
			// disk storms; compute racks see disk storms only. Disk
			// storms still take the affected servers down (Q1-A) but can
			// be absorbed by cheap disk spares at component granularity
			// (Q1-B, Fig 13).
			if res.Fleet.SKUs[rack.SKU].Class == "storage" && src.Float64() < 0.5 {
				comp = failure.ServerOther
			}
			for s := 0; s < rack.Servers; s++ {
				if src.Float64() < sev {
					// Shock batches name the affected server's unit
					// directly (server s, or a disk on server s), so a
					// storm never double-counts a device.
					device := int32(s)
					if comp == failure.Disk {
						device = int32(s*rack.DisksPerServer + src.IntN(rack.DisksPerServer))
					}
					emit(Event{
						Rack:        int32(rack.ID),
						Day:         int32(day),
						Hour:        src.Float64() * 24,
						Component:   comp,
						RepairHours: clampRepair(repairDist(comp, true).Sample(src)),
						Device:      device,
						Shock:       true,
					})
				}
			}
		}
	}
	return events, nil
}

func clampRepair(h float64) float64 {
	if h < 0.5 {
		return 0.5
	}
	if h > maxRepairHours {
		return maxRepairHours
	}
	return h
}

// serverSubFaults returns the per-DC split of ServerOther events into
// power/server/network fault types, proportioned to Table II.
func serverSubFaults(dc int) []float64 {
	if dc == 0 {
		return []float64{1.59, 2.84, 2.52} // power, server, network
	}
	return []float64{3.83, 1.21, 0.65}
}

// nonHardwareRatios returns per-DC counts of software/boot/other tickets
// per hardware ticket, derived from Table II's category mix.
func nonHardwareRatios(dc int) (software, boot, others float64) {
	if dc == 0 {
		hw := 30.66
		return 48.11 / hw, 11.78 / hw, 9.41 / hw
	}
	hw := 18.77
	return 56.45 / hw, 14.00 / hw, 10.77 / hw
}

// softwareSplit returns the timeout/deployment/crash weights per DC.
func softwareSplit(dc int) []float64 {
	if dc == 0 {
		return []float64{31.27, 13.95, 2.89}
	}
	return []float64{38.84, 14.56, 3.05}
}

// bootSplit returns the PXE/reboot weights per DC.
func bootSplit(dc int) []float64 {
	if dc == 0 {
		return []float64{10.53, 1.25}
	}
	return []float64{13.81, 0.19}
}

// synthesizeTickets converts hardware events into RMA tickets and adds
// the non-hardware ticket load calibrated to Table II.
func synthesizeTickets(res *Result, src *rng.Source) error {
	fleet := res.Fleet

	// Per-DC rack index for placing non-hardware tickets.
	racksByDC := make([][]int, len(fleet.DCs))
	for i := range fleet.Racks {
		dc := fleet.Racks[i].DC
		racksByDC[dc] = append(racksByDC[dc], i)
	}

	subFault := make([]*dist.Categorical, len(fleet.DCs))
	for dc := range subFault {
		c, err := dist.NewCategorical(serverSubFaults(dc))
		if err != nil {
			return err
		}
		subFault[dc] = c
	}

	hwCount := make([]int, len(fleet.DCs))
	type deviceKey struct {
		rack   int32
		comp   failure.Component
		device int32
	}
	byDevice := map[deviceKey][]int{} // ticket indices per device
	for _, ev := range res.Events {
		rack := &fleet.Racks[ev.Rack]
		f := ticket.HardwareFaultOf(ev.Component)
		if ev.Component == failure.ServerOther {
			switch subFault[rack.DC].Sample(src) {
			case 0:
				f = ticket.PowerFailure
			case 1:
				f = ticket.ServerFailure
			default:
				f = ticket.NetworkFailure
			}
		}
		idx := len(res.Tickets)
		res.Tickets = append(res.Tickets, ticket.Ticket{
			ID:          idx,
			Day:         int(ev.Day),
			Hour:        ev.Hour,
			DC:          rack.DC,
			Rack:        int(ev.Rack),
			Fault:       f,
			RepairHours: ev.RepairHours,
			Component:   ev.Component,
			Device:      int(ev.Device),
		})
		k := deviceKey{ev.Rack, ev.Component, ev.Device}
		byDevice[k] = append(byDevice[k], idx)
		hwCount[rack.DC]++
	}
	// Assign repeat counts in time order per device (the RMA re-open
	// counter of Section IV).
	for _, idxs := range byDevice {
		sort.Slice(idxs, func(a, b int) bool {
			ta, tb := &res.Tickets[idxs[a]], &res.Tickets[idxs[b]]
			if ta.Day != tb.Day {
				return ta.Day < tb.Day
			}
			return ta.Hour < tb.Hour
		})
		for occ, idx := range idxs {
			res.Tickets[idx].Repeat = occ + 1
		}
	}

	if !res.Cfg.SkipNonHardware {
		for dc := range fleet.DCs {
			swR, bootR, otherR := nonHardwareRatios(dc)
			sw, err := dist.NewCategorical(softwareSplit(dc))
			if err != nil {
				return err
			}
			bt, err := dist.NewCategorical(bootSplit(dc))
			if err != nil {
				return err
			}
			n := float64(hwCount[dc])
			addNonHW := func(count int, pick func() ticket.Fault) {
				for i := 0; i < count; i++ {
					ri := racksByDC[dc][src.IntN(len(racksByDC[dc]))]
					res.Tickets = append(res.Tickets, ticket.Ticket{
						ID:    len(res.Tickets),
						Day:   weekdayTiltedDay(src, res.Days),
						Hour:  src.Float64() * 24,
						DC:    dc,
						Rack:  ri,
						Fault: pick(),
					})
				}
			}
			addNonHW(int(n*swR), func() ticket.Fault {
				return []ticket.Fault{ticket.Timeout, ticket.Deployment, ticket.Crash}[sw.Sample(src)]
			})
			addNonHW(int(n*bootR), func() ticket.Fault {
				return []ticket.Fault{ticket.PXEBoot, ticket.RebootFailure}[bt.Sample(src)]
			})
			addNonHW(int(n*otherR), func() ticket.Fault { return ticket.OtherFault })
		}
	}

	// False positives: phantom tickets the operators closed as
	// no-fault-found. They receive a random fault type and are marked.
	if res.Cfg.FalsePositiveRate > 0 {
		fp := int(float64(len(res.Tickets)) * res.Cfg.FalsePositiveRate)
		for i := 0; i < fp; i++ {
			dc := src.IntN(len(fleet.DCs))
			ri := racksByDC[dc][src.IntN(len(racksByDC[dc]))]
			res.Tickets = append(res.Tickets, ticket.Ticket{
				ID:            len(res.Tickets),
				Day:           src.IntN(res.Days),
				Hour:          src.Float64() * 24,
				DC:            dc,
				Rack:          ri,
				Fault:         ticket.Fault(src.IntN(int(ticket.NumFaults))),
				FalsePositive: true,
			})
		}
	}
	return nil
}

// weekdayTiltedDay draws a day with the Fig 3 weekday bias via
// rejection sampling.
func weekdayTiltedDay(src *rng.Source, days int) int {
	for {
		d := src.IntN(days)
		// Weekdays accepted always; weekends at ~76% (0.95/1.25).
		if !isWeekendFast(d) || src.Float64() < 0.76 {
			return d
		}
	}
}

// isWeekendFast avoids time.Time allocation in the hot ticket loop.
// Day 0 (1 Jan 2012) was a Sunday.
func isWeekendFast(day int) bool {
	w := day % 7
	return w == 0 || w == 6
}
