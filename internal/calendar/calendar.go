// Package calendar maps simulation day offsets to calendar structure
// (day-of-week, month, year) for the temporal-factor analyses
// (Figs 3 and 4). The observation window starts on 1 Jan 2012, matching
// the paper's 2012-2013(+) span.
package calendar

import (
	"fmt"
	"time"
)

// Epoch is simulation day 0.
var Epoch = time.Date(2012, time.January, 1, 0, 0, 0, 0, time.UTC)

// Date returns the calendar date of a simulation day.
func Date(day int) time.Time { return Epoch.AddDate(0, 0, day) }

// Weekday returns the day of week (0 = Sunday ... 6 = Saturday).
func Weekday(day int) int { return int(Date(day).Weekday()) }

// IsWeekend reports whether the day falls on Saturday or Sunday.
func IsWeekend(day int) bool {
	w := Weekday(day)
	return w == 0 || w == 6
}

// Month returns the month index (0 = January ... 11 = December).
func Month(day int) int { return int(Date(day).Month()) - 1 }

// YearIndex returns the number of whole years since the epoch year
// (0 for 2012, 1 for 2013, ...).
func YearIndex(day int) int { return Date(day).Year() - Epoch.Year() }

// DayOfYear returns the 0-based day within the calendar year.
func DayOfYear(day int) int { return Date(day).YearDay() - 1 }

// WeekOfYear returns the 0-based week within the calendar year (0-52),
// the paper's Table III "Week" feature.
func WeekOfYear(day int) int {
	w := DayOfYear(day) / 7
	if w > 52 {
		w = 52
	}
	return w
}

// WeekNames lists the 53 week labels ("W01".."W53").
func WeekNames() []string {
	out := make([]string, 53)
	for i := range out {
		out[i] = fmt.Sprintf("W%02d", i+1)
	}
	return out
}

// WeekdayNames lists day labels Sunday-first, matching Fig 3's axis.
var WeekdayNames = []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}

// MonthNames lists month labels, matching Fig 4's axis.
var MonthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
