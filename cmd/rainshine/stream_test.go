package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStreamWriteAndReplay writes a tiny study's stream log through the
// CLI, replays it, and checks the replay prints the study envelope.
func TestStreamWriteAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.log")
	tiny := []string{"-seed", "9", "-days", "30", "-racks", "3,2", "-workers", "1"}
	withTiny := func(args ...string) []string { return append(append([]string{}, tiny...), args...) }
	if err := run(withTiny("stream", path)); err != nil {
		t.Fatalf("stream write: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("stream log not written: %v", err)
	}

	// Replay prints the canonical envelope on stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(withTiny("stream", "replay", path))
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<16)
	n, _ := r.Read(out)
	r.Close()
	if runErr != nil {
		t.Fatalf("stream replay: %v", runErr)
	}
	body := string(out[:n])
	for _, want := range []string{`"seed":9`, `"days":30`, `"quality"`, `"tree_leaves"`} {
		if !strings.Contains(body, want) {
			t.Errorf("envelope missing %s:\n%s", want, body)
		}
	}
}

func TestStreamArgErrors(t *testing.T) {
	cases := [][]string{
		{"stream"},                       // missing path
		{"stream", "a", "b"},             // replay misspelled
		{"stream", "replay"},             // missing replay path
		{"stream", "replay", "a", "b"},   // extra arg
		{"stream", "replay", "/no/such"}, // unreadable log
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

func TestParseServeFollowFlags(t *testing.T) {
	// Follow sub-flags without -follow are rejected.
	for _, args := range [][]string{
		{"-follow-seed", "7"},
		{"-follow-days", "100"},
		{"-follow-racks", "3,2"},
		{"-follow-faults"},
		{"-follow-lateness", "2"},
		{"-follow", "x.log", "-follow-days", "0"},
		{"-follow", "x.log", "-follow-racks", "1"},
	} {
		if _, err := parseServeFlags(args); err == nil {
			t.Errorf("parseServeFlags(%v) should error", args)
		}
	}

	cfg, err := parseServeFlags([]string{
		"-follow", "study.log", "-follow-seed", "7", "-follow-days", "120",
		"-follow-racks", "6,4", "-follow-faults", "-follow-lateness", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := cfg.serverConfig()
	if sc.Follow == nil {
		t.Fatal("serverConfig dropped the follow config")
	}
	if sc.Follow.Path != "study.log" || sc.Follow.Lateness != 2 {
		t.Fatalf("follow config = %+v", sc.Follow)
	}
	st := sc.Follow.Study
	if st.Seed != 7 || st.Days != 120 || st.Racks != [2]int{6, 4} || !st.Faults {
		t.Fatalf("follow study = %+v", st)
	}

	// No -follow: no follower attached.
	cfg, err = parseServeFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.serverConfig().Follow != nil {
		t.Fatal("follower attached without -follow")
	}
}
