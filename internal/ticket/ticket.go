// Package ticket models the RMA (Return Merchandise Authorization)
// pipeline of Section IV: every detected failure opens a ticket with a
// category and fault type; operators resolve it, marking false positives,
// and only true positives enter the analysis.
package ticket

import (
	"fmt"

	"rainshine/internal/failure"
)

// Category is the coarse ticket classification of Table II.
type Category int

// Ticket categories.
const (
	Software Category = iota
	Boot
	Hardware
	Others
	NumCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Software:
		return "Software"
	case Boot:
		return "Boot"
	case Hardware:
		return "Hardware"
	case Others:
		return "Others"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Fault is the fine-grained fault type of Table II.
type Fault int

// Fault types, in Table II order.
const (
	Timeout Fault = iota
	Deployment
	Crash
	PXEBoot
	RebootFailure
	DiskFailure
	MemoryFailure
	PowerFailure
	ServerFailure
	NetworkFailure
	OtherFault
	NumFaults
)

// String names the fault type as Table II prints it.
func (f Fault) String() string {
	switch f {
	case Timeout:
		return "Timeout failure"
	case Deployment:
		return "Deployment failure"
	case Crash:
		return "Node/Agent crash"
	case PXEBoot:
		return "PXE boot failure"
	case RebootFailure:
		return "Reboot failure"
	case DiskFailure:
		return "Disk failure"
	case MemoryFailure:
		return "Memory failure"
	case PowerFailure:
		return "Power failure"
	case ServerFailure:
		return "Server failure"
	case NetworkFailure:
		return "Network failure"
	case OtherFault:
		return "Others"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// CategoryOf maps a fault type to its Table II category.
func CategoryOf(f Fault) Category {
	switch f {
	case Timeout, Deployment, Crash:
		return Software
	case PXEBoot, RebootFailure:
		return Boot
	case DiskFailure, MemoryFailure, PowerFailure, ServerFailure, NetworkFailure:
		return Hardware
	default:
		return Others
	}
}

// HardwareFaultOf maps a failed component class to the fault type its
// RMA ticket carries. ServerOther faults are subdivided by the caller
// (power/server/network) since the component model does not distinguish
// them.
func HardwareFaultOf(c failure.Component) Fault {
	switch c {
	case failure.Disk:
		return DiskFailure
	case failure.DIMM:
		return MemoryFailure
	default:
		return ServerFailure
	}
}

// Ticket is one RMA record.
type Ticket struct {
	ID    int
	Day   int
	Hour  float64 // onset hour within the day [0, 24)
	DC    int
	Rack  int
	Fault Fault
	// FalsePositive marks tickets where no fault was confirmed; the
	// paper's analysis drops them.
	FalsePositive bool
	// RepairHours is the time the affected device stayed unavailable
	// (hardware tickets only).
	RepairHours float64
	// Component is the failed device class for hardware tickets.
	Component failure.Component
	// Device is the failing unit's index within its rack's component
	// population (hardware tickets only).
	Device int
	// Repeat is the occurrence number of this device's failure within
	// the observation window (1 = first failure, 2+ = the RMA was
	// re-opened for the same unit). Zero for non-hardware tickets.
	Repeat int
}

// Category returns the ticket's Table II category.
func (t *Ticket) Category() Category { return CategoryOf(t.Fault) }

// TruePositives filters out false-positive tickets, which is the first
// step of the paper's analysis pipeline.
func TruePositives(ts []Ticket) []Ticket {
	out := make([]Ticket, 0, len(ts))
	for _, t := range ts {
		if !t.FalsePositive {
			out = append(out, t)
		}
	}
	return out
}

// HardwareOnly filters to true-positive hardware tickets, the subject of
// every analysis in the paper.
func HardwareOnly(ts []Ticket) []Ticket {
	out := make([]Ticket, 0, len(ts))
	for _, t := range ts {
		if !t.FalsePositive && t.Category() == Hardware {
			out = append(out, t)
		}
	}
	return out
}

// Mix tabulates the percentage of tickets per fault type for one DC,
// reproducing one column of Table II. False positives are excluded.
func Mix(ts []Ticket, dc int) map[Fault]float64 {
	counts := make(map[Fault]int)
	total := 0
	for _, t := range ts {
		if t.FalsePositive || t.DC != dc {
			continue
		}
		counts[t.Fault]++
		total++
	}
	out := make(map[Fault]float64, len(counts))
	if total == 0 {
		return out
	}
	for f, c := range counts {
		out[f] = 100 * float64(c) / float64(total)
	}
	return out
}

// RepeatStats summarizes the repeat-count field over true-positive
// hardware tickets: how much of the RMA load is the same device bouncing.
type RepeatStatsResult struct {
	Hardware int
	Repeats  int // tickets with Repeat >= 2
	// RepeatFraction = Repeats / Hardware.
	RepeatFraction float64
	// MaxRepeat is the worst single device's failure count.
	MaxRepeat int
}

// RepeatStats computes repeat-ticket statistics.
func RepeatStats(ts []Ticket) RepeatStatsResult {
	var out RepeatStatsResult
	for _, t := range ts {
		if t.FalsePositive || t.Category() != Hardware {
			continue
		}
		out.Hardware++
		if t.Repeat >= 2 {
			out.Repeats++
		}
		if t.Repeat > out.MaxRepeat {
			out.MaxRepeat = t.Repeat
		}
	}
	if out.Hardware > 0 {
		out.RepeatFraction = float64(out.Repeats) / float64(out.Hardware)
	}
	return out
}

// PaperMix returns Table II's published percentages for a DC (0 or 1),
// used by EXPERIMENTS.md to compare generated against reported mixes.
func PaperMix(dc int) map[Fault]float64 {
	if dc == 0 {
		return map[Fault]float64{
			Timeout: 31.27, Deployment: 13.95, Crash: 2.89,
			PXEBoot: 10.53, RebootFailure: 1.25,
			DiskFailure: 18.42, MemoryFailure: 5.29, PowerFailure: 1.59,
			ServerFailure: 2.84, NetworkFailure: 2.52,
			OtherFault: 9.41,
		}
	}
	return map[Fault]float64{
		Timeout: 38.84, Deployment: 14.56, Crash: 3.05,
		PXEBoot: 13.81, RebootFailure: 0.19,
		DiskFailure: 11.23, MemoryFailure: 1.85, PowerFailure: 3.83,
		ServerFailure: 1.21, NetworkFailure: 0.65,
		OtherFault: 10.77,
	}
}
