package export

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/ingest"
)

// TestNullBitmapPipeline walks a damaged frame through the full
// missing-data path: ingest quarantine populates the null bitmaps, the
// CART learner routes the marked rows through its missing handling, and
// the CSV interchange preserves per-column missingness so leaf
// assignment is identical on the re-imported frame.
func TestNullBitmapPipeline(t *testing.T) {
	const n = 48
	temp := make([]float64, n)
	hum := make([]float64, n)
	y := make([]float64, n)
	dc := make([]int, n)
	for i := 0; i < n; i++ {
		temp[i] = float64(i)
		hum[i] = float64((i * 7) % 31)
		dc[i] = i % 2
		y[i] = temp[i]*0.5 + float64(dc[i])*3
	}
	temp[3] = math.NaN()
	temp[11] = math.Inf(1)
	temp[27] = math.Inf(-1)

	f := frame.New(n)
	if err := f.AddContinuous("temp", temp); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("hum", hum); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", dc, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}

	// Ingest quarantine: non-finite cells become bitmap-marked NaNs.
	if _, err := ingest.SanitizeFrame(f, []string{"temp", "dc", "y"}, nil); err != nil {
		t.Fatal(err)
	}
	tc := f.MustCol("temp")
	if tc.NullCount() != 3 || tc.MissingCount() != 3 {
		t.Fatalf("temp nulls=%d missing=%d, want 3/3", tc.NullCount(), tc.MissingCount())
	}
	// A categorical null exercises the empty-string interchange form.
	f.MustCol("dc").SetMissing(5)

	tree, err := cart.Fit(f, "y", []string{"temp", "dc"}, cart.Config{MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 2 {
		t.Fatalf("degenerate tree: %d leaves", tree.NumLeaves())
	}
	before, err := tree.AssignLeaves(f)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := FrameCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrameCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-importing: %v\ncsv:\n%s", err, buf.String())
	}
	for _, name := range f.Names() {
		a := f.MustCol(name)
		b := back.MustCol(name)
		if a.Kind != b.Kind {
			t.Fatalf("column %s kind %v -> %v", name, a.Kind, b.Kind)
		}
		if a.MissingCount() != b.MissingCount() {
			t.Fatalf("column %s missing %d -> %d", name, a.MissingCount(), b.MissingCount())
		}
	}
	bdc := back.MustCol("dc")
	if !bdc.Missing(5) || bdc.NullCount() != 1 {
		t.Fatalf("dc null mark lost: missing(5)=%v nulls=%d", bdc.Missing(5), bdc.NullCount())
	}
	if got := bdc.LevelOf(bdc.Float(0)); got != "DC1" {
		t.Fatalf("dc levels perturbed by null: %q", got)
	}

	after, err := tree.AssignLeaves(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d routed to leaf %d before export, %d after", i, before[i], after[i])
		}
	}
}

// FuzzNullBitmapRoundTrip: any frame the importer accepts must survive
// write -> read with per-column kind and missing-count preserved, and
// the serialized form must be a fixed point of the round trip. The seed
// corpus includes an all-null column (every cell empty), which must
// infer continuous and keep its full bitmap.
func FuzzNullBitmapRoundTrip(f *testing.F) {
	f.Add("x,y\n1,\n2,\n")           // y is all-null
	f.Add("temp,dc\nNaN,DC1\n80,\n") // float NaN + categorical null
	f.Add("a\n\"\"\n")               // single all-null column
	f.Add("m\n1\n\nfoo\n")           // mixed numeric/text with a blank line
	f.Fuzz(func(t *testing.T, in string) {
		fr, err := ReadFrameCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := FrameCSV(&first, fr); err != nil {
			t.Fatalf("serializing accepted frame: %v", err)
		}
		back, err := ReadFrameCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-importing own output %q: %v", first.String(), err)
		}
		for _, name := range fr.Names() {
			a := fr.MustCol(name)
			b := back.MustCol(name)
			if a.Kind != b.Kind {
				t.Fatalf("column %q kind %v -> %v (csv %q)", name, a.Kind, b.Kind, first.String())
			}
			if a.MissingCount() != b.MissingCount() {
				t.Fatalf("column %q missing %d -> %d (csv %q)", name, a.MissingCount(), b.MissingCount(), first.String())
			}
		}
		var second bytes.Buffer
		if err := FrameCSV(&second, back); err != nil {
			t.Fatalf("re-serializing: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not canonical:\n%q\n%q", first.String(), second.String())
		}
	})
}
