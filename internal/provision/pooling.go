package provision

import (
	"fmt"

	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

// PoolScope is the sharing granularity of a spare pool.
type PoolScope int

// Pooling scopes, finest to coarsest. The paper's Section II asks
// whether spares should be kept per application class or shared; these
// scopes quantify the multiplexing gain at each level of sharing,
// against the rack-locality cost the paper notes (relocating VMs off
// rack incurs communication penalties).
const (
	PerRack PoolScope = iota
	PerWorkloadDC
	PerDC
	Global
)

// String names the scope.
func (s PoolScope) String() string {
	switch s {
	case PerRack:
		return "per-rack"
	case PerWorkloadDC:
		return "per-workload-per-DC"
	case PerDC:
		return "per-DC"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("PoolScope(%d)", int(s))
	}
}

// PoolRequirement is one scope's spare need at 100% availability.
type PoolRequirement struct {
	Scope PoolScope
	// Pools is the number of separate pools at this scope.
	Pools int
	// Spares is the total spare servers needed across all pools (each
	// pool covers its own joint worst window).
	Spares int
	// Pct is Spares as a percentage of fleet servers.
	Pct float64
}

// AnalyzePooling computes the oracle spare requirement at each pooling
// scope for the whole fleet at the given granularity. Requirements are
// monotone: coarser pools multiplex more failures onto the same spares.
func AnalyzePooling(res *simulate.Result, g metrics.Granularity) ([]PoolRequirement, error) {
	fleet := res.Fleet
	totalServers := fleet.TotalServers()
	scopes := []struct {
		scope   PoolScope
		nGroups int
		groupOf func(rack int) int
	}{
		{PerRack, len(fleet.Racks), func(r int) int { return r }},
		{PerWorkloadDC, len(fleet.DCs) * int(topology.NumWorkloads), func(r int) int {
			rk := &fleet.Racks[r]
			return rk.DC*int(topology.NumWorkloads) + int(rk.Workload)
		}},
		{PerDC, len(fleet.DCs), func(r int) int { return fleet.Racks[r].DC }},
		{Global, 1, func(r int) int { return 0 }},
	}
	var out []PoolRequirement
	for _, sc := range scopes {
		dists, err := metrics.GroupMuDistributions(res, AllComponents, g, sc.groupOf, sc.nGroups)
		if err != nil {
			return nil, fmt.Errorf("provision: pooling at %v: %w", sc.scope, err)
		}
		spares, pools := 0, 0
		for _, d := range dists {
			if d.Max() > 0 {
				pools++
			}
			spares += d.Max()
		}
		out = append(out, PoolRequirement{
			Scope:  sc.scope,
			Pools:  pools,
			Spares: spares,
			Pct:    100 * float64(spares) / float64(totalServers),
		})
	}
	return out, nil
}
