package workload

import (
	"testing"

	"rainshine/internal/rng"
	"rainshine/internal/stats"
	"rainshine/internal/topology"
)

func buildModel(t *testing.T, days int) *Model {
	t.Helper()
	m, err := New(rng.New(3), days)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	if _, err := New(rng.New(1), 0); err == nil {
		t.Error("zero days should error")
	}
}

func TestUtilizationBounds(t *testing.T) {
	m := buildModel(t, 365)
	for wl := topology.W1; wl < topology.NumWorkloads; wl++ {
		for d := 0; d < 365; d += 7 {
			u, err := m.Utilization(wl, d)
			if err != nil {
				t.Fatal(err)
			}
			if u < 0 || u > 1 {
				t.Fatalf("%v day %d utilization %v out of [0,1]", wl, d, u)
			}
		}
	}
}

func TestUtilizationErrors(t *testing.T) {
	m := buildModel(t, 30)
	if _, err := m.Utilization(topology.W1, -1); err == nil {
		t.Error("negative day should error")
	}
	if _, err := m.Utilization(topology.W1, 30); err == nil {
		t.Error("day past end should error")
	}
	if _, err := m.Utilization(topology.Workload(99), 0); err == nil {
		t.Error("unknown class should error")
	}
}

func TestInteractiveClassesCycleWeekly(t *testing.T) {
	m := buildModel(t, 364)
	var weekday, weekend []float64
	for d := 0; d < 364; d++ {
		u, err := m.Utilization(topology.W2, d)
		if err != nil {
			t.Fatal(err)
		}
		if d%7 == 0 || d%7 == 6 { // day 0 is a Sunday
			weekend = append(weekend, u)
		} else {
			weekday = append(weekday, u)
		}
	}
	if stats.Mean(weekday) < stats.Mean(weekend)+0.1 {
		t.Errorf("W2 weekday %v should clearly exceed weekend %v",
			stats.Mean(weekday), stats.Mean(weekend))
	}
}

func TestHPCRunsFlat(t *testing.T) {
	m := buildModel(t, 364)
	var all []float64
	for d := 0; d < 364; d++ {
		u, err := m.Utilization(topology.W3, d)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, u)
	}
	if sd := stats.StdDev(all); sd > 0.06 {
		t.Errorf("HPC utilization sd %v, want near-flat", sd)
	}
	if stats.Mean(all) < 0.7 {
		t.Errorf("HPC mean %v, want high", stats.Mean(all))
	}
}

func TestStressMultiplier(t *testing.T) {
	if StressMultiplier(0.5) != 1 {
		t.Errorf("neutral point = %v", StressMultiplier(0.5))
	}
	if StressMultiplier(1.0) <= StressMultiplier(0.5) {
		t.Error("full load should stress more than half load")
	}
	if StressMultiplier(0.0) >= 1 {
		t.Error("idle should stress less than neutral")
	}
	// Clamping.
	if StressMultiplier(5) != StressMultiplier(1) {
		t.Error("over-unity utilization should clamp")
	}
	if StressMultiplier(-3) != StressMultiplier(0) {
		t.Error("negative utilization should clamp")
	}
}

func TestDeterminism(t *testing.T) {
	a := buildModel(t, 100)
	b := buildModel(t, 100)
	for d := 0; d < 100; d++ {
		ua, _ := a.Utilization(topology.W5, d)
		ub, _ := b.Utilization(topology.W5, d)
		if ua != ub {
			t.Fatalf("utilization not deterministic at day %d", d)
		}
	}
}
