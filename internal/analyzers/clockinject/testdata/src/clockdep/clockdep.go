// Package clockdep is a clockinject fixture dependency: WallNow reads
// the wall clock, so a WallClock fact is exported for it (and,
// transitively, for Stamp) that the clock-injected fixture package
// imports across the package boundary.
package clockdep

import "time"

// WallNow reads the wall clock directly.
func WallNow() time.Time {
	return time.Now()
}

// Stamp reads it through WallNow.
func Stamp() int64 {
	return WallNow().Unix()
}

// Pure never touches the clock.
func Pure(x int) int {
	return x + 1
}
