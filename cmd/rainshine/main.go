// Command rainshine regenerates the paper's tables and figures and runs
// the three decision analyses from the terminal.
//
// Usage:
//
//	rainshine [flags] <command> [args]
//
// Commands:
//
//	summary            fleet and ticket overview
//	table <1|2|3|4>    print a paper table (generated vs published)
//	fig <1..18>        print a paper figure as ASCII bars / CDFs
//	q1 [W1..W7]        spare provisioning analysis (default W1 and W6)
//	q2                 vendor/SKU comparison with TCO verdicts
//	q3                 environmental set-point guidance
//	predict            rack-day failure prediction (future-work extension)
//	quality            DataQuality report: coverage and per-class defect counts
//	export <what>      dump traces to stdout: tickets (CSV), events (JSONL),
//	                   rackdays (CSV analysis table)
//	ablate             MF design-choice ablations (feature subsets, cluster budget, cp)
//	climate-csv <file> run the Q3 analysis on an external rack-day CSV ("-" = stdin)
//	serve              run the analysis daemon: Q1-Q3/predict/quality as a JSON
//	                   HTTP API with a cached study registry, admission
//	                   control, and graceful degradation (own flags:
//	                   -addr, -cache, -timeout, -workers, -warmup,
//	                   -build-timeout, -max-concurrent, -max-queue,
//	                   -q3-concurrent, -q3-queue, -rps, -burst,
//	                   -breaker-threshold, -breaker-cooldown,
//	                   -chaos, -chaos-seed, -cpuprofile, -memprofile;
//	                   see README)
//	stream <out.log>   simulate and write the append-only stream log ("-" = stdout)
//	stream replay <f>  replay a stream log through the watermark maintainer and
//	                   print the canonical study envelope (byte-identical to the
//	                   batch study over the same data)
//	pooling            shared-vs-dedicated spare pool comparison
//	opex               replace-vs-service repair policy comparison
//	tree               print the Q3 multi-factor CART model
//	all                everything above, in paper order
//
// Flags:
//
//	-seed N     root RNG seed (default 42)
//	-days N     observation window in days (default 930)
//	-racks A,B  rack counts for DC1,DC2 (default 331,290)
//	-small      shorthand for a fast reduced study (-days 365 -racks 120,100)
//	-hourly     use hourly provisioning granularity for q1
//	-faults     dirty-data mode: inject the default deterministic fault mix
//	            into the recorded telemetry and scrub it through ingest
//	-workers N  worker goroutines for simulation and analysis (default 0 =
//	            all CPUs, 1 = serial; every count yields identical output)
//	-bins N     histogram bin cap for the fleet-scale binned CART split
//	            search (default 255; values outside [2,255] are rejected
//	            at flag parse; small studies below the auto-binning
//	            threshold are unaffected)
//	-exact      force exact (presorted) CART split search at any data
//	            size — the audit path for binned results
//	-cpuprofile F  write a CPU profile of the run to file F (pprof format)
//	-memprofile F  write a heap profile at exit to file F (pprof format)
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"rainshine"
	"rainshine/internal/cart"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "rainshine: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("rainshine", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "root RNG seed")
	days := fs.Int("days", 930, "observation window in days")
	racks := fs.String("racks", "", "rack counts dc1,dc2 (default paper-scale 331,290)")
	small := fs.Bool("small", false, "fast reduced study")
	hourly := fs.Bool("hourly", false, "hourly granularity for q1")
	dirty := fs.Bool("faults", false, "inject the default deterministic fault mix (dirty-data mode)")
	workers := fs.Int("workers", 0,
		"worker goroutines for simulation and analysis (0 = all CPUs, 1 = serial; results identical)")
	bins := fs.Int("bins", 0, "histogram bin cap for binned CART split search (0 = default 255, else 2-255)")
	exact := fs.Bool("exact", false, "force exact CART split search at any data size")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command (try: rainshine -small all)")
	}
	// Reject a bad bin budget here, before any simulation spends time;
	// the same typed check guards the WithBins option inside NewStudy.
	if err := cart.ValidateBins(*bins); err != nil {
		return fmt.Errorf("-bins: %s", strings.TrimPrefix(err.Error(), "cart: "))
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	opts := []rainshine.Option{rainshine.WithSeed(*seed), rainshine.WithDays(*days)}
	if *workers != 0 {
		opts = append(opts, rainshine.WithWorkers(*workers))
	}
	if *small {
		opts = append(opts, rainshine.WithDays(365), rainshine.WithRacks(120, 100))
	}
	if *dirty {
		opts = append(opts, rainshine.WithFaults(rainshine.DefaultFaults()))
	}
	if *bins != 0 {
		opts = append(opts, rainshine.WithBins(*bins))
	}
	if *exact {
		opts = append(opts, rainshine.WithExactSplits())
	}
	if *racks != "" {
		// Shared with the server's racks query parameter: rejects
		// malformed pairs and non-positive counts (topology would
		// silently substitute the full paper-scale fleet for those).
		a, b, err := rainshine.ParseRacks(*racks)
		if err != nil {
			// main prints its own "rainshine:" prefix; avoid doubling it.
			return fmt.Errorf("-racks: %s", strings.TrimPrefix(err.Error(), "rainshine: "))
		}
		opts = append(opts, rainshine.WithRacks(a, b))
	}

	// climate-csv analyzes external data: no simulation involved.
	if rest[0] == "climate-csv" {
		if len(rest) < 2 {
			return fmt.Errorf("climate-csv wants a rack-day CSV path (or - for stdin)")
		}
		return analyzeClimateCSV(rest[1], os.Stdout)
	}
	// serve runs the analysis daemon; it has its own flag set and
	// builds studies on demand per request instead of one up front.
	if rest[0] == "serve" {
		return serveCmd(rest[1:])
	}
	// stream writes or replays an append-only stream log; replay routes
	// the log through the watermark maintainer, not a fresh simulation.
	if rest[0] == "stream" {
		return streamCmd(rest[1:], opts)
	}

	fmt.Fprintf(os.Stderr, "simulating fleet (seed %d)...\n", *seed)
	study, err := rainshine.NewStudy(opts...)
	if err != nil {
		return err
	}
	r := &renderer{study: study, out: os.Stdout}

	switch rest[0] {
	case "summary":
		return r.summary()
	case "table":
		if len(rest) < 2 {
			return fmt.Errorf("table wants a number 1-4")
		}
		return r.table(rest[1])
	case "fig":
		if len(rest) < 2 {
			return fmt.Errorf("fig wants a number 1-18")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("parsing figure number: %w", err)
		}
		return r.figure(n)
	case "q1":
		wls := []rainshine.Workload{rainshine.W1, rainshine.W6}
		if len(rest) > 1 {
			wl, err := parseWorkload(rest[1])
			if err != nil {
				return err
			}
			wls = []rainshine.Workload{wl}
		}
		for _, wl := range wls {
			if err := r.q1(wl, *hourly); err != nil {
				return err
			}
		}
		return nil
	case "q2":
		return r.q2()
	case "q3":
		return r.q3()
	case "predict":
		return r.predict()
	case "quality":
		return r.quality()
	case "export":
		if len(rest) < 2 {
			return fmt.Errorf("export wants tickets|events|rackdays")
		}
		return r.export(rest[1])
	case "ablate":
		return r.ablate()
	case "pooling":
		return r.pooling(*hourly)
	case "opex":
		return r.opex()
	case "tree":
		return r.tree()
	case "all":
		return r.all(*hourly)
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// analyzeClimateCSV runs the external-data Q3 path on a file or stdin.
func analyzeClimateCSV(path string, out io.Writer) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("opening %s: %w", path, err)
		}
		defer f.Close()
		in = f
	}
	rep, err := rainshine.AnalyzeClimateCSV(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "External rack-day analysis\n")
	fmt.Fprintf(out, "  temperature knee: %.1f F\n", rep.TempThresholdF)
	if !math.IsNaN(rep.RHThreshold) {
		fmt.Fprintf(out, "  dry-air knee (when hot): %.1f %% RH\n", rep.RHThreshold)
	}
	// Sorted DCs: the report must be byte-identical run to run.
	dcs := make([]string, 0, len(rep.HotPenalty))
	for dc := range rep.HotPenalty {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	for _, dc := range dcs {
		fmt.Fprintf(out, "  %s: disk failure rate x%.2f above the knee\n", dc, rep.HotPenalty[dc])
	}
	if rep.DataCoverage < 1 {
		fmt.Fprintf(out, "  cell coverage: %.2f%% (non-finite cells excluded per split)\n", 100*rep.DataCoverage)
	}
	if len(rep.MissingFeatures) > 0 {
		fmt.Fprintf(out, "  absent factors (analysis degraded): %s\n", strings.Join(rep.MissingFeatures, ", "))
	}
	return nil
}

func parseWorkload(s string) (rainshine.Workload, error) {
	return rainshine.ParseWorkload(s)
}
