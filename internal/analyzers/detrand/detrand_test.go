package detrand_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "a", "rng", "timedmain")
}
