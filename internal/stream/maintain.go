package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"rainshine/internal/calendar"
	"rainshine/internal/cart"
	"rainshine/internal/climate"
	"rainshine/internal/failure"
	"rainshine/internal/figures"
	"rainshine/internal/frame"
	"rainshine/internal/ingest"
	"rainshine/internal/simulate"
	"rainshine/internal/ticket"
)

// Config parameterizes a stream maintainer.
type Config struct {
	// Sim is the study configuration the stream was produced under. The
	// maintainer rebuilds the deterministic substrate (fleet, hazard)
	// from its seed; the telemetry arrives over the stream.
	Sim simulate.Config
	// Lateness is the out-of-order slack in days: day d stays open for
	// admissions until a record for day >= d+1+Lateness arrives. Zero
	// means 1; negative means 0 (strictly ordered streams).
	Lateness int
	// DisableRefit turns the live CART maintainer off (the final study
	// is unaffected; only mid-stream LiveTree queries go away).
	DisableRefit bool
	// RefitEvery is the day-close cadence of live refits. Zero means 7
	// (weekly model refresh).
	RefitEvery int
	// Refit tunes the drift thresholds of the live refitter.
	Refit cart.RefitConfig
}

func (c Config) withDefaults() Config {
	switch {
	case c.Lateness == 0:
		c.Lateness = 1
	case c.Lateness < 0:
		c.Lateness = 0
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 7
	}
	return c
}

// DayClose summarizes one closed day — the delta DataQuality view a
// dashboard renders as the watermark advances.
type DayClose struct {
	Day           int   `json:"day"`
	Climate       int   `json:"climate_readings"`
	SensorMissing int   `json:"sensor_missing"`
	Events        int   `json:"events"`
	Tickets       int   `json:"tickets"`
	Late          int64 `json:"late_total"`
}

// Stats is the maintainer's observability surface (metricz rows, the
// /v1/stream long-poll body).
type Stats struct {
	// RecordsIn counts every record offered to Apply.
	RecordsIn int64 `json:"records_in"`
	// Watermark is the number of closed days: every day < Watermark is
	// committed and immutable.
	Watermark int `json:"watermark"`
	// MaxDaySeen is the highest in-window day observed so far; -1
	// before any telemetry.
	MaxDaySeen int `json:"max_day_seen"`
	// Lag is how many observed days are still open (MaxDaySeen+1 -
	// Watermark), the stream's open window.
	Lag int `json:"lag"`
	// Late counts records quarantined for arriving past the watermark.
	Late int64 `json:"late"`
	// Duplicates counts records dropped for re-delivering a committed
	// sequence number.
	Duplicates int64 `json:"duplicates"`
	// Sealed reports whether the stream has ended.
	Sealed bool `json:"sealed"`
	// Refits counts live model refits; LastRefit names the last
	// outcome ("initial", "stats", "subtrees", "full", or "" before
	// the first).
	Refits    int64  `json:"refits"`
	LastRefit string `json:"last_refit,omitempty"`
}

type seqEvent struct {
	seq int64
	ev  simulate.Event
}

type seqTicket struct {
	seq int64
	tk  ticket.Ticket
}

// Maintainer consumes stream records and keeps a live study current:
// telemetry for open days is buffered, the watermark closes days as
// event time advances (late and duplicate records quarantine through
// the ingest taxonomy), closed days feed an incremental CART refitter,
// and Finalize reconstructs the exact batch-order telemetry so the
// final study is byte-identical to the batch pipeline over the same
// data.
//
// Not safe for concurrent use; the serving tier wraps it in a follower
// with its own lock.
type Maintainer struct {
	cfg   Config
	shell *simulate.Result
	days  int
	racks int

	evOpen [][]seqEvent  // per open day
	tkOpen [][]seqTicket // per open day
	events []seqEvent    // committed
	tkts   []seqTicket   // committed (in-window and residual alike)

	seenEv map[int64]struct{}
	seenTk map[int64]struct{}

	climSet []bool // rack*days+day: reading arrived

	maxDay int // highest in-window day seen; -1 initially
	closed int // days [0, closed) are committed
	sealed bool

	stats   Stats
	quality ingest.Report // live stream-level accounting
	lastDC  DayClose

	refitter   *cart.Refitter
	refitRows  [][]float64
	refitY     []float64
	lastClosed int // last day index handed to the refitter + 1
}

// NewMaintainer builds the study substrate for cfg.Sim and an empty
// live state at watermark zero.
func NewMaintainer(cfg Config) (*Maintainer, error) {
	cfg = cfg.withDefaults()
	shell, err := simulate.Shell(cfg.Sim)
	if err != nil {
		return nil, err
	}
	days := shell.Days
	racks := len(shell.Fleet.Racks)
	m := &Maintainer{
		cfg:     cfg,
		shell:   shell,
		days:    days,
		racks:   racks,
		evOpen:  make([][]seqEvent, days),
		tkOpen:  make([][]seqTicket, days),
		seenEv:  make(map[int64]struct{}),
		seenTk:  make(map[int64]struct{}),
		climSet: make([]bool, racks*days),
		maxDay:  -1,
	}
	m.stats.MaxDaySeen = -1
	if !cfg.DisableRefit {
		rc := cfg.Refit
		if rc.Config.Workers == 0 {
			rc.Config.Workers = cfg.Sim.Workers
		}
		// The live model always runs the exact presorted engine: its
		// reuse unit is the sorted order itself.
		rc.Config.Split = cart.SplitExact
		m.refitter, err = cart.NewRefitter("disk_failures", liveFeatures(), nil, rc)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// liveFeatures is the compact rack-day schema the live tree uses:
// environmental factors plus the strongest baseline factors, all
// numeric so the refitter's presorted orders cover every feature.
func liveFeatures() []cart.Feature {
	return []cart.Feature{
		{Name: "temp", Kind: frame.Continuous},
		{Name: "rh", Kind: frame.Continuous},
		{Name: "age_months", Kind: frame.Continuous},
		{Name: "power_kw", Kind: frame.Continuous},
		{Name: "dow", Kind: frame.Ordinal, Levels: calendar.WeekdayNames},
	}
}

// Stats returns a copy of the live counters.
func (m *Maintainer) Stats() Stats {
	s := m.stats
	s.Watermark = m.closed
	s.MaxDaySeen = m.maxDay
	s.Lag = m.maxDay + 1 - m.closed
	if s.Lag < 0 {
		s.Lag = 0
	}
	s.Sealed = m.sealed
	return s
}

// Quality returns the live stream-level DataQuality accounting: late
// and duplicate quarantines plus per-day sensor coverage of closed
// days. (The final study's report comes from the canonical batch scrub
// at Finalize, not from this running view.)
func (m *Maintainer) Quality() ingest.Report { return m.quality }

// LastClose returns the most recent day-close delta.
func (m *Maintainer) LastClose() DayClose { return m.lastDC }

// Watermark returns the number of closed days.
func (m *Maintainer) Watermark() int { return m.closed }

// Sealed reports whether the stream has ended.
func (m *Maintainer) Sealed() bool { return m.sealed }

// LiveTree returns the incremental model over closed days (nil before
// the first refit or when refits are disabled). The live tree is a
// deterministic function of the record sequence, but it is an
// approximation for mid-stream queries: the final study's trees come
// from the canonical batch path at Finalize.
func (m *Maintainer) LiveTree() *cart.Tree {
	if m.refitter == nil {
		return nil
	}
	return m.refitter.Tree()
}

// Apply consumes one record. Structurally impossible records (rack or
// kind outside the study's shape) return an error wrapping
// ErrBadRecord; late and duplicate records are quarantined and counted,
// not errors.
func (m *Maintainer) Apply(ctx context.Context, rec *Record) error {
	m.stats.RecordsIn++
	switch rec.Kind {
	case KindSeal:
		if err := m.closeThrough(ctx, m.days); err != nil {
			return err
		}
		m.sealed = true
		return nil
	case KindClimate:
		if rec.Rack < 0 || int(rec.Rack) >= m.racks || rec.Day < 0 || int(rec.Day) >= m.days {
			return fmt.Errorf("%w: climate rack %d day %d outside study (racks %d, days %d)",
				ErrBadRecord, rec.Rack, rec.Day, m.racks, m.days)
		}
		if m.lateOrSealed(int(rec.Day)) {
			return nil
		}
		c := climate.Conditions{TempF: rec.TempF, RH: rec.RH}
		if err := m.shell.Climate.SetAt(int(rec.Rack), int(rec.Day), c); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
		m.climSet[int(rec.Rack)*m.days+int(rec.Day)] = true
		return m.advance(ctx, int(rec.Day))
	case KindEvent:
		d := int(rec.Event.Day)
		if rec.Event.Rack < 0 || int(rec.Event.Rack) >= m.racks || d < 0 || d >= m.days {
			return fmt.Errorf("%w: event rack %d day %d outside study (racks %d, days %d)",
				ErrBadRecord, rec.Event.Rack, rec.Event.Day, m.racks, m.days)
		}
		if m.duplicate(m.seenEv, rec.Seq) || m.lateOrSealed(d) {
			return nil
		}
		m.seenEv[rec.Seq] = struct{}{}
		m.evOpen[d] = append(m.evOpen[d], seqEvent{rec.Seq, rec.Event})
		return m.advance(ctx, d)
	case KindTicket:
		m.quality.TicketsIn++
		if m.duplicate(m.seenTk, rec.Seq) {
			return nil
		}
		d := rec.Ticket.Day
		if d < 0 || d >= m.days {
			// Impossible dates (clock-skewed dirty tickets) bypass the
			// watermark — no day can admit or expire them — and commit
			// directly; the batch scrub at Finalize quarantines them
			// under its own taxonomy, exactly as in the batch study.
			m.seenTk[rec.Seq] = struct{}{}
			m.tkts = append(m.tkts, seqTicket{rec.Seq, rec.Ticket})
			m.quality.TicketsKept++
			return nil
		}
		if m.lateOrSealed(d) {
			return nil
		}
		m.seenTk[rec.Seq] = struct{}{}
		m.tkOpen[d] = append(m.tkOpen[d], seqTicket{rec.Seq, rec.Ticket})
		m.quality.TicketsKept++
		return m.advance(ctx, d)
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadRecord, rec.Kind)
	}
}

// duplicate quarantines a re-delivered sequence number.
func (m *Maintainer) duplicate(seen map[int64]struct{}, seq int64) bool {
	if _, ok := seen[seq]; !ok {
		return false
	}
	m.stats.Duplicates++
	m.quality.Quarantined[ingest.DuplicateEvent]++
	return true
}

// lateOrSealed quarantines a record for an already-closed day (or any
// record after the seal).
func (m *Maintainer) lateOrSealed(day int) bool {
	if !m.sealed && day >= m.closed {
		return false
	}
	m.stats.Late++
	m.quality.Quarantined[ingest.LateArrival]++
	m.lastDC.Late = m.stats.Late
	return true
}

// advance moves event time forward and closes every day the watermark
// has passed.
func (m *Maintainer) advance(ctx context.Context, day int) error {
	if day <= m.maxDay {
		return nil
	}
	m.maxDay = day
	return m.closeThrough(ctx, day-m.cfg.Lateness)
}

// closeThrough commits every open day below limit, in order.
func (m *Maintainer) closeThrough(ctx context.Context, limit int) error {
	if limit > m.days {
		limit = m.days
	}
	for d := m.closed; d < limit; d++ {
		if err := m.commitDay(ctx, d); err != nil {
			return err
		}
	}
	return nil
}

// commitDay closes one day: its buffered telemetry becomes immutable,
// the delta quality view updates, and the day's rack-day rows feed the
// live refitter (refitting on the configured cadence).
func (m *Maintainer) commitDay(ctx context.Context, d int) error {
	dc := DayClose{Day: d, Late: m.stats.Late}
	dc.Events = len(m.evOpen[d])
	dc.Tickets = len(m.tkOpen[d])
	m.events = append(m.events, m.evOpen[d]...)
	m.tkts = append(m.tkts, m.tkOpen[d]...)
	m.evOpen[d] = nil
	m.tkOpen[d] = nil

	for ri := 0; ri < m.racks; ri++ {
		m.quality.SensorSamples++
		if m.climSet[ri*m.days+d] {
			m.quality.SensorNative++
			dc.Climate++
		} else {
			m.quality.SensorMissing++
			m.quality.Quarantined[ingest.SensorGap]++
			dc.SensorMissing++
		}
	}
	m.closed = d + 1
	m.lastDC = dc

	if m.refitter != nil {
		if err := m.appendLiveRows(d, dc.Events); err != nil {
			return err
		}
		if m.closed%m.cfg.RefitEvery == 0 || m.closed == m.days {
			if m.refitter.Rows() > 0 {
				rep, err := m.refitter.Refit(ctx)
				if err != nil {
					return err
				}
				m.stats.Refits++
				m.stats.LastRefit = rep.Outcome.String()
			}
		}
	}
	return nil
}

// appendLiveRows adds day d's rack-day rows (commissioned racks only)
// to the refitter's training set. nEvents is the count of events just
// committed for the day — they sit at the tail of m.events.
func (m *Maintainer) appendLiveRows(d, nEvents int) error {
	diskByRack := make(map[int32]float64, nEvents)
	for _, se := range m.events[len(m.events)-nEvents:] {
		if failure.Component(se.ev.Component) == failure.Disk {
			diskByRack[se.ev.Rack]++
		}
	}
	var rows [][]float64
	var ys []float64
	dow := float64(calendar.Weekday(d))
	for ri := 0; ri < m.racks; ri++ {
		rack := &m.shell.Fleet.Racks[ri]
		if d < rack.CommissionDay {
			continue
		}
		temp, rh := math.NaN(), math.NaN()
		if m.climSet[ri*m.days+d] {
			c, err := m.shell.Climate.At(ri, d)
			if err != nil {
				return err
			}
			temp, rh = c.TempF, c.RH
		}
		rows = append(rows, []float64{temp, rh, rack.AgeMonths(d), rack.PowerKW, dow})
		ys = append(ys, diskByRack[int32(ri)])
	}
	return m.refitter.Append(rows, ys)
}

// Finalize closes any remaining days and reconstructs the canonical
// batch study: committed events and tickets are sorted back into their
// batch slice order and handed to the exact batch analysis path, so
// the returned study is byte-identical to the batch study over the
// same data. The maintainer must not be used after Finalize.
func (m *Maintainer) Finalize(ctx context.Context) (*figures.Data, error) {
	if !m.sealed {
		if err := m.closeThrough(ctx, m.days); err != nil {
			return nil, err
		}
		m.sealed = true
	}
	sort.Slice(m.events, func(a, b int) bool { return m.events[a].seq < m.events[b].seq })
	sort.Slice(m.tkts, func(a, b int) bool { return m.tkts[a].seq < m.tkts[b].seq })
	res := m.shell
	res.Events = make([]simulate.Event, len(m.events))
	for i, se := range m.events {
		res.Events[i] = se.ev
	}
	res.Tickets = make([]ticket.Ticket, len(m.tkts))
	for i, st := range m.tkts {
		res.Tickets[i] = st.tk
	}
	if res.Cfg.Faults != nil && res.Cfg.Faults.Enabled() {
		rep, err := ingest.Scrub(res)
		if err != nil {
			return nil, err
		}
		return figures.FromWithQuality(res, rep), nil
	}
	return figures.From(res), nil
}

// Replay drives a maintainer from a log reader until the seal (or
// clean end of log), returning the maintainer ready to Finalize.
func Replay(ctx context.Context, rd *Reader, cfg Config) (*Maintainer, error) {
	m, err := NewMaintainer(cfg)
	if err != nil {
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := rd.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return m, nil
			}
			return nil, err
		}
		if err := m.Apply(ctx, &rec); err != nil {
			return nil, err
		}
		if rec.Kind == KindSeal {
			return m, nil
		}
	}
}
