package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsBlockedGoroutine exercises the detection path directly —
// via newGoroutines rather than Check, so the deliberate leak fails an
// assertion instead of the test itself.
func TestDetectsBlockedGoroutine(t *testing.T) {
	before := goroutineIDs()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	var extra []string
	for i := 0; i < 200; i++ {
		if extra = newGoroutines(before); len(extra) > 0 {
			break
		}
		time.Sleep(retryStep) //lint:allow clockinject waiting for the deliberately leaked goroutine to be scheduled
	}
	if len(extra) != 1 {
		t.Fatalf("newGoroutines reported %d goroutines, want 1: %v", len(extra), extra)
	}
	if !strings.Contains(extra[0], "TestDetectsBlockedGoroutine") {
		t.Errorf("leaked stack does not name its creator:\n%s", extra[0])
	}

	close(release)
	<-done
	if extra := leaked(before); len(extra) != 0 {
		t.Errorf("leaked still reports %d goroutines after release: %v", len(extra), extra)
	}
}

// TestLeakedWaitsForDrain verifies the grace-period retry: a goroutine
// that exits shortly after the check starts must not be reported.
func TestLeakedWaitsForDrain(t *testing.T) {
	before := goroutineIDs()
	go func() {
		time.Sleep(20 * retryStep) //lint:allow clockinject simulating asynchronous shutdown in the harness's own test
	}()
	if extra := leaked(before); len(extra) != 0 {
		t.Errorf("leaked reported a draining goroutine: %v", extra)
	}
}

// TestBenignFiltering pins the infrastructure filter.
func TestBenignFiltering(t *testing.T) {
	if !benign("os/signal.signal_recv()\n\t/usr/lib/go/src/runtime/sigqueue.go:152") {
		t.Error("signal watcher not filtered")
	}
	if benign("rainshine/internal/server.(*Server).Serve()\n\tserve.go:40") {
		t.Error("application goroutine wrongly filtered")
	}
}

// TestCheckOrdersAfterCleanups proves the t.Cleanup LIFO contract Check
// relies on: a goroutine stopped by a cleanup registered after Check is
// already gone when Check's cleanup inspects the world.
func TestCheckOrdersAfterCleanups(t *testing.T) {
	Check(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()
	t.Cleanup(func() {
		close(stop)
		<-done
	})
}
