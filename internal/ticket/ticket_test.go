package ticket

import (
	"math"
	"testing"

	"rainshine/internal/failure"
)

func TestCategoryOf(t *testing.T) {
	tests := []struct {
		f    Fault
		want Category
	}{
		{Timeout, Software}, {Deployment, Software}, {Crash, Software},
		{PXEBoot, Boot}, {RebootFailure, Boot},
		{DiskFailure, Hardware}, {MemoryFailure, Hardware},
		{PowerFailure, Hardware}, {ServerFailure, Hardware}, {NetworkFailure, Hardware},
		{OtherFault, Others},
	}
	for _, tt := range tests {
		if got := CategoryOf(tt.f); got != tt.want {
			t.Errorf("CategoryOf(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestStrings(t *testing.T) {
	if Software.String() != "Software" || Hardware.String() != "Hardware" {
		t.Error("Category.String broken")
	}
	if Category(42).String() != "Category(42)" {
		t.Error("unknown category string")
	}
	if DiskFailure.String() != "Disk failure" || Timeout.String() != "Timeout failure" {
		t.Error("Fault.String broken")
	}
	if Fault(42).String() != "Fault(42)" {
		t.Error("unknown fault string")
	}
}

func TestHardwareFaultOf(t *testing.T) {
	if HardwareFaultOf(failure.Disk) != DiskFailure {
		t.Error("disk mapping")
	}
	if HardwareFaultOf(failure.DIMM) != MemoryFailure {
		t.Error("DIMM mapping")
	}
	if HardwareFaultOf(failure.ServerOther) != ServerFailure {
		t.Error("server mapping")
	}
}

func sampleTickets() []Ticket {
	return []Ticket{
		{ID: 0, DC: 0, Fault: DiskFailure},
		{ID: 1, DC: 0, Fault: Timeout},
		{ID: 2, DC: 0, Fault: DiskFailure, FalsePositive: true},
		{ID: 3, DC: 1, Fault: MemoryFailure},
		{ID: 4, DC: 0, Fault: PXEBoot},
		{ID: 5, DC: 0, Fault: OtherFault},
	}
}

func TestTruePositives(t *testing.T) {
	got := TruePositives(sampleTickets())
	if len(got) != 5 {
		t.Fatalf("TruePositives len = %d", len(got))
	}
	for _, tk := range got {
		if tk.FalsePositive {
			t.Fatal("false positive survived filter")
		}
	}
}

func TestHardwareOnly(t *testing.T) {
	got := HardwareOnly(sampleTickets())
	if len(got) != 2 {
		t.Fatalf("HardwareOnly len = %d, want 2", len(got))
	}
	for _, tk := range got {
		if tk.Category() != Hardware {
			t.Fatal("non-hardware survived filter")
		}
	}
}

func TestMix(t *testing.T) {
	mix := Mix(sampleTickets(), 0)
	// DC0 true positives: disk, timeout, pxe, other = 4 tickets.
	if math.Abs(mix[DiskFailure]-25) > 1e-9 {
		t.Errorf("disk mix = %v, want 25", mix[DiskFailure])
	}
	total := 0.0
	for _, v := range mix {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("mix total = %v", total)
	}
	if len(Mix(nil, 0)) != 0 {
		t.Error("empty mix should be empty")
	}
}

func TestPaperMixSumsTo100(t *testing.T) {
	for dc := 0; dc < 2; dc++ {
		total := 0.0
		for _, v := range PaperMix(dc) {
			total += v
		}
		if math.Abs(total-100) > 0.2 {
			t.Errorf("DC%d paper mix sums to %v", dc+1, total)
		}
	}
}

func TestPaperMixHeadlines(t *testing.T) {
	// Table II headline facts: software timeouts lead, disks lead hardware.
	for dc := 0; dc < 2; dc++ {
		m := PaperMix(dc)
		if m[Timeout] < m[DiskFailure] {
			t.Errorf("DC%d: timeout should exceed disk", dc+1)
		}
		if m[DiskFailure] < m[MemoryFailure] {
			t.Errorf("DC%d: disk should exceed memory", dc+1)
		}
	}
}
