// Package core is the paper's primary contribution: the multi-factor
// (MF) analysis framework of Section V. It ties the CART learner and the
// partial-dependence machinery into the two question-category workflows:
//
//   - Cat. 1 (aggregate behaviour): Cluster splits a population (racks)
//     into groups with homogeneous failure behaviour by fitting a
//     regression tree Metric ~ X1..Xn and reading its leaves. Downstream
//     decisions (spare provisioning) are then made per group instead of
//     from one pooled distribution.
//
//   - Cat. 2 (decision-variable influence): Marginal quantifies the
//     effect of one variable on the metric with the influence of every
//     other observed factor normalized out — the paper's
//     "Metric ~ X1, N(X2), ..., N(Xn)" procedure.
package core

import (
	"errors"
	"fmt"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/pdp"
)

// Clustering is the result of a Cat.-1 analysis: a fitted tree and the
// groups its leaves induce.
type Clustering struct {
	Tree *cart.Tree
	// Assignment maps each input row to its cluster (leaf) index.
	Assignment []int
	// Members lists the row indices of each cluster.
	Members [][]int
	// Importance ranks the factors that formed the clusters.
	Importance map[string]float64
}

// NumClusters returns the number of groups found.
func (c *Clustering) NumClusters() int { return len(c.Members) }

// Describe returns the factor-condition path defining a cluster.
func (c *Clustering) Describe(cluster int) (string, error) {
	return c.Tree.DescribeLeaf(cluster)
}

// Cluster fits Metric ~ features over f and groups rows by tree leaf.
// cfg zero-values fall back to CART defaults; a typical call bounds the
// leaf count via MaxLeaves to keep groups reviewable.
func Cluster(f *frame.Frame, metric string, features []string, cfg cart.Config, maxLeaves int) (*Clustering, error) {
	cfg.Task = cart.Regression
	tree, err := cart.Fit(f, metric, features, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	if maxLeaves > 0 && tree.NumLeaves() > maxLeaves {
		tree.PruneToLeaves(maxLeaves)
	}
	assign, err := tree.AssignLeaves(f)
	if err != nil {
		return nil, err
	}
	members := make([][]int, tree.NumLeaves())
	for row, leaf := range assign {
		members[leaf] = append(members[leaf], row)
	}
	return &Clustering{
		Tree:       tree,
		Assignment: assign,
		Members:    members,
		Importance: tree.Importance(),
	}, nil
}

// CVCandidates is the default complexity ladder for cross-validated
// clustering.
var CVCandidates = []float64{0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064}

// ClusterCV is Cluster with the complexity parameter chosen by k-fold
// cross-validation and the one-standard-error rule, instead of a fixed
// cp — rpart's recommended workflow. Use when there is no prior for how
// much structure the metric has.
func ClusterCV(f *frame.Frame, metric string, features []string, cfg cart.Config, maxLeaves, folds int, seed uint64) (*Clustering, error) {
	cfg.Task = cart.Regression
	table, err := cart.CrossValidate(f, metric, features, cfg, CVCandidates, folds, seed)
	if err != nil {
		return nil, fmt.Errorf("core: cross-validating: %w", err)
	}
	cp, err := cart.BestCP(table)
	if err != nil {
		return nil, err
	}
	cfg.CP = cp
	return Cluster(f, metric, features, cfg, maxLeaves)
}

// MarginalResult is the outcome of a Cat.-2 analysis.
type MarginalResult struct {
	// Effects holds one adjusted effect per level of the variable of
	// interest (from direct standardization).
	Effects []pdp.LevelEffect
	// PDP holds the tree-based partial dependence curve, when a tree
	// was fitted (categorical and continuous variables alike).
	PDP []pdp.Point
	// Tree is the fitted MF model, exposed for inspection of splits
	// (e.g. the T=78°F / RH=25% thresholds of Fig 18).
	Tree *cart.Tree
}

// Marginal quantifies the influence of `of` on `metric`, normalizing the
// named covariates. Categorical covariates are used as-is; continuous
// covariates must have been binned (pdp.BinContinuous) by the caller for
// the standardization path. A CART model over all variables provides the
// partial-dependence view.
func Marginal(f *frame.Frame, metric, of string, covariates []string, cfg cart.Config) (*MarginalResult, error) {
	if len(covariates) == 0 {
		return nil, errors.New("core: marginal analysis needs covariates to normalize")
	}
	cfg.Task = cart.Regression
	all := append([]string{of}, covariates...)
	tree, err := cart.Fit(f, metric, all, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: marginal: %w", err)
	}
	curve, err := pdp.Compute(tree, f, of, 0)
	if err != nil {
		return nil, err
	}
	res := &MarginalResult{PDP: curve, Tree: tree}
	// Standardization applies when the variable of interest is
	// categorical.
	col, err := f.Col(of)
	if err != nil {
		return nil, err
	}
	if col.Kind != frame.Continuous {
		effects, err := pdp.Standardize(f, metric, of, covariates)
		if err != nil {
			return nil, fmt.Errorf("core: standardization: %w", err)
		}
		res.Effects = effects
	}
	return res, nil
}
