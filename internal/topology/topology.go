// Package topology models the physical and logical inventory of the two
// production datacenters in the paper (Table I / Table III): DCs,
// regions, rows, racks, servers, and the per-server disk and DIMM
// populations, together with SKU, workload, power-rating, and
// commission-age metadata.
//
// The builder deliberately plants the placement *confounding* the paper
// observes: SKU S2 racks are concentrated in DC1's hottest region, at
// high power ratings, running the failure-heavy W2 workload — which is
// exactly why single-factor SKU comparisons overestimate S2's
// unreliability (Figs 14-15).
package topology

import (
	"fmt"

	"rainshine/internal/rng"
)

// DaysPerMonth approximates calendar months for age bucketing.
const DaysPerMonth = 30

// SKU identifies a server configuration (vendor product), S1-S7.
type SKU int

// SKU identifiers. Per Table III: S1&S3 storage-intensive, S2&S4
// compute-intensive, S5&S6 mixed, S7 HPC.
const (
	S1 SKU = iota
	S2
	S3
	S4
	S5
	S6
	S7
	NumSKUs
)

// String returns "S1".."S7".
func (s SKU) String() string { return fmt.Sprintf("S%d", int(s)+1) }

// SKUNames lists all SKU labels in order.
func SKUNames() []string {
	out := make([]string, NumSKUs)
	for i := range out {
		out[i] = SKU(i).String()
	}
	return out
}

// Workload identifies a hosted workload category, W1-W7.
type Workload int

// Workload identifiers. Per Table III: W1&W2 compute, W3 HPC, W4&W7
// storage-compute, W5&W6 storage-data.
const (
	W1 Workload = iota
	W2
	W3
	W4
	W5
	W6
	W7
	NumWorkloads
)

// String returns "W1".."W7".
func (w Workload) String() string { return fmt.Sprintf("W%d", int(w)+1) }

// WorkloadNames lists all workload labels in order.
func WorkloadNames() []string {
	out := make([]string, NumWorkloads)
	for i := range out {
		out[i] = Workload(i).String()
	}
	return out
}

// SKUSpec describes a server configuration. Compute SKUs pack more
// servers per rack with few disks; storage SKUs have fewer servers each
// carrying many disks (Section IV).
type SKUSpec struct {
	SKU            SKU
	Class          string // "storage", "compute", "mixed", "hpc"
	ServersPerRack int
	DisksPerServer int
	DIMMsPerServer int
	// RelCost is the relative server cost (S2 = 1.0 baseline) used by
	// the Q2 procurement TCO scenarios.
	RelCost float64
}

// SKUCatalog returns the spec for every SKU.
func SKUCatalog() []SKUSpec {
	return []SKUSpec{
		{SKU: S1, Class: "storage", ServersPerRack: 20, DisksPerServer: 12, DIMMsPerServer: 8, RelCost: 1.1},
		{SKU: S2, Class: "compute", ServersPerRack: 44, DisksPerServer: 4, DIMMsPerServer: 16, RelCost: 1.0},
		{SKU: S3, Class: "storage", ServersPerRack: 22, DisksPerServer: 10, DIMMsPerServer: 8, RelCost: 1.05},
		{SKU: S4, Class: "compute", ServersPerRack: 46, DisksPerServer: 4, DIMMsPerServer: 16, RelCost: 1.0},
		{SKU: S5, Class: "mixed", ServersPerRack: 36, DisksPerServer: 6, DIMMsPerServer: 12, RelCost: 1.0},
		{SKU: S6, Class: "mixed", ServersPerRack: 34, DisksPerServer: 6, DIMMsPerServer: 12, RelCost: 1.0},
		{SKU: S7, Class: "hpc", ServersPerRack: 40, DisksPerServer: 2, DIMMsPerServer: 24, RelCost: 1.3},
	}
}

// Cooling identifies a DC's cooling technology.
type Cooling int

// Cooling plant types (Table I).
const (
	Adiabatic Cooling = iota
	ChilledWater
)

// String names the cooling type.
func (c Cooling) String() string {
	if c == Adiabatic {
		return "Adiabatic"
	}
	return "Chilled water"
}

// DCSpec describes one datacenter (Table I).
type DCSpec struct {
	Index             int // 0 = DC1, 1 = DC2
	Name              string
	Packaging         string
	AvailabilityNines int
	Cooling           Cooling
	Regions           int
	Rows              int
	Racks             int
}

// DefaultDCs returns the two datacenters of the study.
func DefaultDCs() []DCSpec {
	return []DCSpec{
		{Index: 0, Name: "DC1", Packaging: "Container", AvailabilityNines: 3, Cooling: Adiabatic, Regions: 4, Rows: 18, Racks: 331},
		{Index: 1, Name: "DC2", Packaging: "Colocated", AvailabilityNines: 5, Cooling: ChilledWater, Regions: 3, Rows: 32, Racks: 290},
	}
}

// PowerRatings lists the rack power ratings (kW) observed in Fig 8.
var PowerRatings = []float64{4, 6, 7, 8, 9, 12, 13, 15}

// Rack is one rack: the paper's unit of workload placement and spare
// provisioning.
type Rack struct {
	ID       int    // global index across both DCs
	Name     string // e.g. "DC1-R017"
	DC       int    // 0 or 1
	Region   int    // region index within the DC
	Row      int    // row index within the DC
	SKU      SKU
	Workload Workload
	PowerKW  float64
	// CommissionDay is the day the rack entered service, as an offset
	// (possibly negative) from the observation window start.
	CommissionDay  int
	Servers        int
	DisksPerServer int
	DIMMsPerServer int
}

// AgeMonths returns the rack's equipment age in months on the given
// observation day.
func (r *Rack) AgeMonths(day int) float64 {
	return float64(day-r.CommissionDay) / DaysPerMonth
}

// Disks returns the rack's total disk count.
func (r *Rack) Disks() int { return r.Servers * r.DisksPerServer }

// DIMMs returns the rack's total DIMM count.
func (r *Rack) DIMMs() int { return r.Servers * r.DIMMsPerServer }

// Fleet is the full two-DC inventory.
type Fleet struct {
	DCs   []DCSpec
	Racks []Rack
	SKUs  []SKUSpec
}

// Config controls fleet construction.
type Config struct {
	// ObservationDays is the length of the study window; commission
	// days are drawn from up to 5 years before its end (Table III ages
	// 0-5 years). Zero means 930 (~2.5 years, the paper's span).
	ObservationDays int
	// RacksPerDC overrides the per-DC rack counts (testing hook).
	// Zero entries keep the Table I defaults.
	RacksPerDC [2]int
}

func (c Config) withDefaults() Config {
	if c.ObservationDays == 0 {
		c.ObservationDays = 930
	}
	return c
}

// workloadSKUAffinity returns, for each workload, the weight over SKUs
// capturing which configurations the workload is deployed on.
// Storage-data workloads run on storage SKUs, compute on compute SKUs,
// etc., with some spill-over.
func workloadSKUAffinity() map[Workload][]float64 {
	return map[Workload][]float64{
		//                 S1   S2   S3   S4   S5   S6   S7
		W1: {0.00, 0.35, 0.00, 0.55, 0.05, 0.05, 0.00},
		W2: {0.00, 0.90, 0.00, 0.05, 0.025, 0.025, 0.00},
		W3: {0.00, 0.00, 0.00, 0.00, 0.05, 0.05, 0.90},
		W4: {0.05, 0.05, 0.05, 0.05, 0.40, 0.40, 0.00},
		W5: {0.45, 0.00, 0.45, 0.00, 0.05, 0.05, 0.00},
		W6: {0.45, 0.00, 0.45, 0.00, 0.05, 0.05, 0.00},
		W7: {0.05, 0.05, 0.05, 0.05, 0.40, 0.40, 0.00},
	}
}

// workloadMix returns the deployment fraction per workload per DC.
// Both DCs host all classes but in different proportions.
func workloadMix(dc int) []float64 {
	if dc == 0 {
		//      W1    W2    W3    W4    W5    W6    W7
		return []float64{0.22, 0.18, 0.06, 0.12, 0.12, 0.18, 0.12}
	}
	return []float64{0.20, 0.10, 0.10, 0.14, 0.14, 0.20, 0.12}
}

// Build constructs the fleet deterministically from the stream.
func Build(src *rng.Source, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	dcs := DefaultDCs()
	for i := range dcs {
		if cfg.RacksPerDC[i] > 0 {
			dcs[i].Racks = cfg.RacksPerDC[i]
		}
	}
	catalog := SKUCatalog()
	affinity := workloadSKUAffinity()
	fleet := &Fleet{DCs: dcs, SKUs: catalog}

	for _, dc := range dcs {
		dcSrc := src.SplitIndex("topology/dc", dc.Index)
		mix, err := dist(workloadMix(dc.Index))
		if err != nil {
			return nil, err
		}
		for i := 0; i < dc.Racks; i++ {
			rsrc := dcSrc.SplitIndex("rack", i)
			wl := Workload(sampleIdx(rsrc, mix))
			aff, err := dist(affinity[wl])
			if err != nil {
				return nil, err
			}
			sku := SKU(sampleIdx(rsrc, aff))
			row := i % dc.Rows
			region := regionOfRow(dc, row)

			// Plant the Q2 confounding: S2 racks gravitate to DC1
			// region 0 (the hot aisle set) at high power ratings.
			if sku == S2 && dc.Index == 0 && rsrc.Float64() < 0.4 {
				region = 0
				row = rowInRegion(dc, 0, rsrc)
			}
			spec := catalog[sku]
			power, err := drawPower(rsrc, spec)
			if err != nil {
				return nil, err
			}
			commission := drawCommission(rsrc, cfg.ObservationDays)
			// More Q2 confounding: the S2 generation was deployed as a
			// dense, recent refresh (high power brackets, young racks),
			// while S4 is an older low-density line. A naive per-SKU
			// comparison therefore also picks up power and
			// infant-mortality effects.
			switch sku {
			case S2:
				if rsrc.Float64() < 0.7 {
					power = []float64{12, 13, 15}[rsrc.IntN(3)]
				}
				if rsrc.Float64() < 0.7 {
					commission = drawYoungCommission(rsrc, cfg.ObservationDays)
				}
			case S4:
				if rsrc.Float64() < 0.7 {
					power = []float64{6, 7, 8, 9}[rsrc.IntN(4)]
				}
			}
			fleet.Racks = append(fleet.Racks, Rack{
				ID:             len(fleet.Racks),
				Name:           fmt.Sprintf("%s-R%03d", dc.Name, i+1),
				DC:             dc.Index,
				Region:         region,
				Row:            row,
				SKU:            sku,
				Workload:       wl,
				PowerKW:        power,
				CommissionDay:  commission,
				Servers:        spec.ServersPerRack,
				DisksPerServer: spec.DisksPerServer,
				DIMMsPerServer: spec.DIMMsPerServer,
			})
		}
	}
	return fleet, nil
}

// regionOfRow maps a row to its region by even partitioning.
func regionOfRow(dc DCSpec, row int) int {
	per := (dc.Rows + dc.Regions - 1) / dc.Regions
	r := row / per
	if r >= dc.Regions {
		r = dc.Regions - 1
	}
	return r
}

// rowInRegion picks a random row belonging to the region.
func rowInRegion(dc DCSpec, region int, src *rng.Source) int {
	per := (dc.Rows + dc.Regions - 1) / dc.Regions
	lo := region * per
	hi := lo + per
	if hi > dc.Rows {
		hi = dc.Rows
	}
	return lo + src.IntN(hi-lo)
}

// drawPower picks a rack power rating consistent with the SKU class:
// compute SKUs are denser and land in the high brackets.
func drawPower(src *rng.Source, spec SKUSpec) (float64, error) {
	var weights []float64
	switch spec.Class {
	case "compute":
		weights = []float64{0, 0.05, 0.05, 0.1, 0.15, 0.25, 0.2, 0.2}
	case "storage":
		weights = []float64{0.25, 0.25, 0.2, 0.15, 0.1, 0.05, 0, 0}
	case "hpc":
		weights = []float64{0, 0, 0.05, 0.1, 0.2, 0.25, 0.2, 0.2}
	default:
		weights = []float64{0.1, 0.15, 0.15, 0.2, 0.15, 0.1, 0.1, 0.05}
	}
	d, err := dist(weights)
	if err != nil {
		return 0, fmt.Errorf("topology: power weights for class %q: %w", spec.Class, err)
	}
	return PowerRatings[sampleIdx(src, d)], nil
}

// drawCommission draws a commission day such that ages span 0-5 years.
// A third of racks are commissioned inside the observation window (the
// "new equipment" with infant-mortality visibility in Fig 9).
func drawCommission(src *rng.Source, obsDays int) int {
	if src.Float64() < 0.33 {
		return src.IntN(obsDays)
	}
	// Before the window, but never so early that age at window end
	// exceeds 5 years.
	maxBefore := 5*365 - obsDays
	if maxBefore <= 0 {
		return src.IntN(obsDays)
	}
	return -src.IntN(maxBefore)
}

// drawYoungCommission draws a commission day in the most recent year of
// the window, keeping the rack in the infant-mortality regime.
func drawYoungCommission(src *rng.Source, obsDays int) int {
	span := obsDays / 3
	if span < 1 {
		span = 1
	}
	return obsDays - 1 - src.IntN(span)
}

// cumulative distribution helper.
type cdf []float64

func dist(weights []float64) (cdf, error) {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("topology: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("topology: all-zero weights")
	}
	out := make(cdf, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		out[i] = acc
	}
	return out, nil
}

func sampleIdx(src *rng.Source, c cdf) int {
	u := src.Float64()
	for i, acc := range c {
		if u <= acc {
			return i
		}
	}
	return len(c) - 1
}

// RegionName formats "DC1-1" style region labels used by Fig 2.
func RegionName(dc, region int) string {
	return fmt.Sprintf("DC%d-%d", dc+1, region+1)
}

// TotalServers returns the fleet server count.
func (f *Fleet) TotalServers() int {
	n := 0
	for i := range f.Racks {
		n += f.Racks[i].Servers
	}
	return n
}

// RacksOf returns the racks hosting the given workload.
func (f *Fleet) RacksOf(w Workload) []*Rack {
	var out []*Rack
	for i := range f.Racks {
		if f.Racks[i].Workload == w {
			out = append(out, &f.Racks[i])
		}
	}
	return out
}
