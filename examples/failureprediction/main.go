// Failure prediction: the paper's future-work extension (Section VII).
//
// Using the same multi-factor features that explain failures
// retrospectively (Q1-Q3), train a classifier on the first 70% of the
// observation window and predict, for each held-out rack-day, whether
// the rack will generate a hardware failure. Section V warns that the
// class imbalance (most rack-days see no failure) requires balancing
// pre-processing — this example shows the difference it makes.
//
// Run with:
//
//	go run ./examples/failureprediction
package main

import (
	"fmt"
	"log"

	"rainshine"
)

func main() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(540),
		rainshine.WithRacks(160, 140),
	)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := study.FailurePrediction()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Rack-day failure prediction on held-out time:")
	fmt.Printf("  split: %d train / %d test rack-days, %.1f%% of test days have a failure\n",
		rep.TrainRows, rep.TestRows, 100*rep.PositiveRate)
	fmt.Printf("  precision %.2f   recall %.2f   F1 %.2f   AUC %.2f\n",
		rep.Precision, rep.Recall, rep.F1, rep.AUC)
	fmt.Printf("  what the model looks at, most-informative first: %v\n", rep.TopFactors)
	fmt.Println()
	fmt.Println("An operator can use these alarms to schedule pro-active maintenance or")
	fmt.Println("pre-stage spares at the racks most likely to fail — closing the loop the")
	fmt.Println("paper opens in its concluding remarks.")
}
