// Package figures regenerates every table and figure of the paper's
// evaluation from a simulation run. Each function returns structured
// rows; the CLI, the benchmarks, and EXPERIMENTS.md all consume the same
// implementations, so the numbers reported anywhere in this repository
// come from exactly one code path per experiment.
package figures

import (
	"context"
	"sync"
	"sync/atomic"

	"rainshine/internal/frame"
	"rainshine/internal/ingest"
	"rainshine/internal/metrics"
	"rainshine/internal/parallel"
	"rainshine/internal/simulate"
)

// lazyVal is a compute-once cell: the first caller runs fn, every later
// caller (on any goroutine) gets the same value without re-entering fn
// or serializing behind an unrelated computation.
type lazyVal[T any] struct {
	once sync.Once
	v    T
	err  error
}

func (l *lazyVal[T]) get(fn func() (T, error)) (T, error) {
	l.once.Do(func() { l.v, l.err = fn() })
	return l.v, l.err
}

// preset fills the cell without computing, when the value already exists
// (the dirty-data scrub produces the quality report as a side effect).
func (l *lazyVal[T]) preset(v T) {
	l.once.Do(func() { l.v = v })
}

// Data wraps a simulation result with lazily computed derived artifacts
// shared across figures (the rack-day frame is expensive to build). Each
// artifact sits behind its own once-guard, so two goroutines warming
// different figures never serialize behind each other.
type Data struct {
	Res *simulate.Result

	rackDays lazyVal[*frame.Frame]
	quality  lazyVal[*ingest.Report]

	// memo caches whole figure/table results by key once warmed. It is
	// nil by default: one-shot CLI runs and the regeneration benchmarks
	// measure the real computation, while long-lived servers opt in via
	// Warmup (or EnableCache) to serve repeated requests from memory.
	memo atomic.Pointer[sync.Map]
}

// NewData runs a simulation and wraps its result. In dirty-data mode
// (cfg.Faults set) the recorded streams pass through the ingest
// quarantine/repair pipeline before any analysis sees them; the clean
// path skips scrubbing entirely so results stay bit-identical to the
// seed runs. NewData is NewDataContext with context.Background(); use
// that variant to make the simulation cancellable.
func NewData(cfg simulate.Config) (*Data, error) {
	return NewDataContext(context.Background(), cfg)
}

// NewDataContext is NewData under a context: cancellation aborts the
// simulation (and skips the dirty-data scrub) instead of running it to
// completion for a caller that is no longer listening.
func NewDataContext(ctx context.Context, cfg simulate.Config) (*Data, error) {
	res, err := simulate.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := &Data{Res: res}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		rep, err := ingest.Scrub(res)
		if err != nil {
			return nil, err
		}
		d.quality.preset(rep)
	}
	return d, nil
}

// From wraps an existing simulation result.
func From(res *simulate.Result) *Data { return &Data{Res: res} }

// FromWithQuality wraps an existing simulation result whose DataQuality
// report was already produced elsewhere (a stream reconstruction scrubs
// as records arrive and accumulates the report incrementally). Quality
// serves rep instead of re-auditing.
func FromWithQuality(res *simulate.Result, rep *ingest.Report) *Data {
	d := &Data{Res: res}
	if rep != nil {
		d.quality.preset(rep)
	}
	return d
}

// Quality returns the DataQuality report of the telemetry backing the
// analyses. Dirty studies report the scrub that already ran; clean
// studies run a non-mutating audit on first call.
func (d *Data) Quality() (*ingest.Report, error) {
	return d.quality.get(func() (*ingest.Report, error) {
		return ingest.Audit(d.Res)
	})
}

// RackDays returns the (cached) rack-day λ frame.
func (d *Data) RackDays() (*frame.Frame, error) {
	return d.rackDays.get(func() (*frame.Frame, error) {
		return metrics.RackDayFrame(d.Res)
	})
}

// EnableCache turns on the figure/table memo: every subsequent call of a
// figure or table method computes once and then serves the cached rows.
func (d *Data) EnableCache() {
	if d.memo.Load() == nil {
		d.memo.CompareAndSwap(nil, &sync.Map{})
	}
}

// cached memoizes one figure/table computation by key when the memo is
// enabled; otherwise it just runs fn. Each key has its own once-guard,
// so independent figures materialize concurrently without re-running.
func cached[T any](d *Data, key string, fn func() (T, error)) (T, error) {
	m := d.memo.Load()
	if m == nil {
		return fn()
	}
	cell, _ := m.LoadOrStore(key, &lazyVal[T]{})
	return cell.(*lazyVal[T]).get(fn)
}

// warmEntry names one independently materializable artifact.
type warmEntry struct {
	key string
	fn  func(d *Data) error
}

func discardErr[T any](fn func(d *Data) (T, error)) func(d *Data) error {
	return func(d *Data) error { _, err := fn(d); return err }
}

// warmables lists every table and figure Warmup materializes, in paper
// order. The shared rack-day frame is warmed first (alone) so the fan-out
// hits a populated cache instead of convoying on its once-guard.
var warmables = []warmEntry{
	{"tableI", func(d *Data) error { d.TableI(); return nil }},
	{"tableII", func(d *Data) error { d.TableII(); return nil }},
	{"tableIII", func(d *Data) error { d.TableIII(); return nil }},
	{"tableIV", discardErr((*Data).TableIV)},
	{"fig1", discardErr((*Data).Fig1)},
	{"fig2", discardErr((*Data).Fig2)},
	{"fig3", discardErr((*Data).Fig3)},
	{"fig4", discardErr((*Data).Fig4)},
	{"fig5", discardErr((*Data).Fig5)},
	{"fig6", discardErr((*Data).Fig6)},
	{"fig7", discardErr((*Data).Fig7)},
	{"fig8", discardErr((*Data).Fig8)},
	{"fig9", discardErr((*Data).Fig9)},
	{"fig10", discardErr((*Data).Fig10)},
	{"fig11", discardErr((*Data).Fig11)},
	{"fig12", discardErr((*Data).Fig12)},
	{"fig13", discardErr((*Data).Fig13)},
	{"fig14", discardErr((*Data).Fig14)},
	{"fig15", discardErr((*Data).Fig15)},
	{"fig16", discardErr((*Data).Fig16)},
	{"fig17", discardErr((*Data).Fig17)},
	{"fig18", discardErr((*Data).Fig18)},
}

// Warmup enables the memo and materializes every table and figure
// through the worker pool, so later callers are served from memory. The
// first error (in paper order) is returned, but warming continues for
// the remaining entries; a canceled ctx stops scheduling new ones.
func (d *Data) Warmup(ctx context.Context, workers int) error {
	d.EnableCache()
	// The rack-day frame feeds nearly every figure: build it once up
	// front instead of having the whole pool convoy on its once-guard.
	if _, err := d.RackDays(); err != nil {
		return err
	}
	return parallel.ForEach(ctx, workers, len(warmables), func(i int) error {
		return warmables[i].fn(d)
	})
}
