// Package server is the rainshine analysis daemon: the paper's Q1-Q3
// operator questions (plus failure prediction and data quality) served
// as a JSON HTTP API instead of one-shot batch runs.
//
// The core is a study registry — studies are keyed by canonicalized
// simulation config, built at most once under concurrent demand
// (singleflight), held in a size-bounded LRU, and evaluated concurrently
// by request goroutines. Determinism makes this safe: a study is a pure
// function of its config, so a cached study answers every future request
// for that config byte-identically to a fresh batch run.
//
// Endpoints:
//
//	GET /v1/q1       spare provisioning     (study params + workload, hourly)
//	GET /v1/q2       vendor comparison      (study params + ratios)
//	GET /v1/q3       climate guidance       (study params)
//	GET /v1/predict  failure prediction     (study params)
//	GET /v1/quality  DataQuality report     (study params)
//	GET /v1/stream   live stream watermark state (long-poll on ?watermark=N)
//	GET /healthz     liveness probe
//	GET /metricz     request/latency/cache/build counters (+ stream section)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"rainshine"
	"rainshine/internal/faults"
	"rainshine/internal/resilience"
)

// Config parameterizes the daemon.
type Config struct {
	// CacheSize bounds the study LRU (default 4 — full-scale studies
	// hold the whole fleet's telemetry, so the cache is deliberately
	// small).
	CacheSize int
	// Timeout bounds each request end-to-end, including any study build
	// it triggers (default 5m; full-scale builds take tens of seconds).
	Timeout time.Duration
	// Logf sinks request-path diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// Workers bounds each study's simulation and analysis fan-out
	// (cart.Config.Workers semantics: 0 means GOMAXPROCS, 1 forces
	// serial). Not part of the study cache key: every worker count
	// produces byte-identical studies and reports.
	Workers int
	// Warmup materializes every table and figure of a freshly built
	// study — through the study's worker pool — before the registry
	// publishes it, so the first requests are served from memory.
	Warmup bool
	// Resilience tunes admission control, load shedding, the build
	// circuit breaker, and the detached-build timeout. The zero value
	// applies generous defaults; see ResilienceConfig.
	Resilience ResilienceConfig
	// Chaos, when non-nil, turns on deterministic fault injection:
	// seeded build failures, latency spikes, and slow-client
	// simulation. Production runs leave it nil.
	Chaos *faults.ChaosConfig
	// Follow, when non-nil, attaches a live stream follower: the daemon
	// tails the configured log, maintains a watermark study, and serves
	// its state on /v1/stream (run it with Server.Follow).
	Follow *FollowConfig

	// build overrides study construction (tests).
	build buildFunc
	// now overrides the clock fed to the rate limiter and breaker
	// (tests); nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is the daemon: registry + admission + metrics + HTTP handlers.
type Server struct {
	cfg     Config
	reg     *registry
	metrics *Metrics
	// now is the injected clock shared with the admission controller
	// and breaker; tests freeze it.
	now      func() time.Time
	adm      *admission
	breaker  *resilience.Breaker
	chaos    *chaosState // nil when chaos mode is off
	follower *follower   // nil when no stream is attached
	handler  http.Handler
}

// New assembles a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rc := cfg.Resilience.withDefaults()
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	m := NewMetrics()
	build := cfg.build
	if build == nil {
		build = buildStudyWith(cfg.Workers)
	}
	if cfg.Warmup {
		inner := build
		build = func(ctx context.Context, sc StudyConfig) (*rainshine.Study, error) {
			st, err := inner(ctx, sc)
			if err != nil {
				return nil, err
			}
			// Warm inside the build so the singleflight publishes a
			// study whose figure cache is already populated.
			if err := st.Warmup(ctx); err != nil {
				return nil, fmt.Errorf("server: warming study: %w", err)
			}
			return st, nil
		}
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		now:     now,
		adm:     newAdmission(rc, now),
		breaker: resilience.NewBreaker(rc.BreakerThreshold, rc.BreakerCooldown, now),
	}
	m.attachBreaker(s.breaker)
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		s.chaos = &chaosState{ch: faults.NewChaos(*cfg.Chaos)}
		// Chaos wraps outermost: an injected failure skips the real
		// build (and its warmup) entirely, like a crashed builder.
		build = chaosBuildFunc(build, s.chaos.ch, m)
	}
	s.reg = newRegistry(registryOptions{
		capacity:     cfg.CacheSize,
		buildTimeout: rc.BuildTimeout,
		breaker:      s.breaker,
		metrics:      m,
		build:        build,
	})
	if cfg.Follow != nil {
		s.follower = newFollower(*cfg.Follow, cfg.Workers, m, cfg.Logf)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/q1", s.handleQ1)
	mux.HandleFunc("GET /v1/q2", s.handleQ2)
	mux.HandleFunc("GET /v1/q3", s.handleQ3)
	mux.HandleFunc("GET /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/quality", s.handleQuality)
	// Middleware, outermost first: metrics see every request including
	// sheds; panics become 500s; the request deadline starts before
	// admission so queue waits are bounded by it; admission sheds
	// before any study work; chaos perturbs only what was admitted.
	s.handler = s.instrument(s.recover(s.timeout(s.admit(s.chaosMiddleware(mux)))))
	return s
}

// Handler returns the fully-wrapped HTTP handler (metrics, panic
// recovery, per-request timeout, routing).
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the collector (the CLI logs a summary on shutdown).
func (s *Server) Metrics() *Metrics { return s.metrics }

// apiError is the JSON error envelope. Sheds and build failures carry
// a machine-readable reason and an advisory Retry-After mirror.
type apiError struct {
	Error             string `json:"error"`
	Reason            string `json:"reason,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// writeJSON encodes v; an encoding failure (a bug — report types are
// JSON-stable by contract) degrades to a 500.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		s.cfg.Logf("server: encoding response: %v", err)
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"internal: response encoding failed"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// writeError maps err to an HTTP status: typed sheds become 429/503
// with Retry-After, build failures without a fallback become 503, bad
// params are the caller's fault, deadline/cancel map to timeout, and
// everything else is internal.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if se := asShed(err); se != nil {
		s.writeShed(w, se)
		return
	}
	if be := asBuildError(err); be != nil {
		s.writeBuildFailure(w, be)
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		err = fmt.Errorf("request deadline exceeded (%s): %w", s.cfg.Timeout, err)
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	s.writeJSON(w, status, apiError{Error: err.Error()})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument records per-endpoint counts and latency.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := s.now()
		next.ServeHTTP(rec, r)
		s.metrics.Observe(r.URL.Path, s.now().Sub(start), rec.status >= 400)
	})
}

// recover converts handler panics into 500s instead of killing the
// connection (and, pre-Go1.8-style, the daemon's other requests).
func (s *Server) recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.cfg.Logf("server: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
				s.writeJSON(w, http.StatusInternalServerError,
					apiError{Error: fmt.Sprintf("internal: panic: %v", p)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// timeout bounds each request's context; study builds triggered by the
// request observe the same deadline through the registry.
func (s *Server) timeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// degradedReport is the JSON envelope a stale (last-good) answer ships
// in. Healthy responses stay bare reports — byte-identical to the batch
// path — so the envelope appears only when degradation actually
// happened, flagged redundantly in the X-Rainshine-Degraded header.
type degradedReport struct {
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason"`
	Detail   string `json:"detail"`
	Data     any    `json:"data"`
}

// resolve parses the shared simulation params and gets-or-builds the
// study through the registry. Callers must have validated their own
// evaluation params first, so a malformed request never triggers a
// (potentially minutes-long) study build. A non-nil Degradation means
// the study is a last-good stale copy and the response must say so.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*rainshine.Study, *Degradation, bool) {
	cfg, err := parseStudyConfig(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	st, deg, err := s.reg.Study(r.Context(), cfg)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return nil, nil, false
	}
	return st, deg, true
}

// evaluate runs one study analysis and writes the report or the error.
// Degraded (stale-study) answers are wrapped in the degradedReport
// envelope; everything in it is deterministic for a fixed seed.
func (s *Server) evaluate(w http.ResponseWriter, deg *Degradation, rep any, err error) {
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if deg != nil {
		s.metrics.Degraded()
		w.Header().Set("X-Rainshine-Degraded", deg.Reason)
		s.writeJSON(w, http.StatusOK, degradedReport{
			Degraded: true, Reason: deg.Reason, Detail: deg.Detail, Data: rep,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleQ1(w http.ResponseWriter, r *http.Request) {
	wl, hourly, err := parseQ1Params(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	st, deg, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rep, err := st.SpareProvisioning(wl, hourly)
	s.evaluate(w, deg, rep, err)
}

func (s *Server) handleQ2(w http.ResponseWriter, r *http.Request) {
	ratios, err := parseRatios(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	st, deg, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rep, err := st.VendorComparison(ratios...)
	s.evaluate(w, deg, rep, err)
}

func (s *Server) handleQ3(w http.ResponseWriter, r *http.Request) {
	st, deg, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rep, err := st.ClimateGuidanceContext(r.Context())
	s.evaluate(w, deg, rep, err)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	st, deg, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rep, err := st.FailurePrediction()
	s.evaluate(w, deg, rep, err)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	st, deg, ok := s.resolve(w, r)
	if !ok {
		return
	}
	rep, err := st.Quality()
	s.evaluate(w, deg, rep, err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.breaker.State() != resilience.Closed {
		status = "degraded" // builds are failing; cached reads still serve
	}
	s.writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		Breaker       string  `json:"breaker"`
		CachedStudies int     `json:"cached_studies"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{status, s.breaker.State().String(), s.reg.Len(), s.now().Sub(s.metrics.start).Seconds()})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.cfg.CacheSize))
}
