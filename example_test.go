package rainshine_test

import (
	"fmt"
	"log"

	"rainshine"
)

// Example shows the minimal end-to-end flow: build a study and ask the
// three decision questions.
func Example() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(365),
		rainshine.WithRacks(120, 100),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(study.NumRacks(), "racks simulated")
	// Output: 220 racks simulated
}

// ExampleStudy_SpareProvisioning runs Q1 for the storage workload and
// prints how far apart the one-size-fits-all (SF) and multi-factor (MF)
// spare fractions land.
func ExampleStudy_SpareProvisioning() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(365),
		rainshine.WithRacks(120, 100),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := study.SpareProvisioning(rainshine.W6, false)
	if err != nil {
		log.Fatal(err)
	}
	last := len(rep.SLAs) - 1
	fmt.Printf("MF needs less than SF at 100%% SLA: %v\n",
		rep.OverprovPct["MF"][last] < rep.OverprovPct["SF"][last])
	// Output: MF needs less than SF at 100% SLA: true
}

// ExampleStudy_VendorComparison shows Q2's headline: the naive
// single-factor view exaggerates the SKU reliability gap.
func ExampleStudy_VendorComparison() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(365),
		rainshine.WithRacks(120, 100),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := study.VendorComparison(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-factor view exaggerates the gap: %v\n", rep.RatioSF > rep.RatioMF)
	// Output: single-factor view exaggerates the gap: true
}
