package ctxflow_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
