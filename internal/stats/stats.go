// Package stats provides the descriptive statistics used throughout the
// reproduction: moments, quantiles, empirical CDFs, histograms, rank and
// product-moment correlation, and bootstrap confidence intervals.
//
// The paper's figures report means, standard deviations, percentiles of
// failure metrics, and CDFs of over-provisioning fractions; everything
// needed to regenerate them lives here, implemented against the standard
// library only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (R type-7, the default of R's
// quantile() and of NumPy), which is what the paper's R-based analysis
// used. xs need not be sorted.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, errors.New("stats: quantile p outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// quantileSorted computes the type-7 quantile of an already sorted slice.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	if sorted[lo] == sorted[hi] {
		// Skip the interpolation: a*(1-f) + a*f can drift off a by an
		// ulp, escaping the sample range.
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics reported throughout the
// paper's figures (mean with an sd error bar, plus range/percentiles).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantileSorted(sorted, 0.50),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}, nil
}

// Pearson returns the Pearson product-moment correlation of xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of xs and ys, using
// mid-ranks for ties.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based mid-ranks of xs (ties share the average of
// the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Normalize returns xs scaled so its maximum is 1. The paper normalizes
// every presented metric to its maximum value; this helper does the same.
// An all-zero input is returned unchanged.
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	m, err := Max(out)
	if err != nil || m == 0 {
		return out
	}
	for i := range out {
		out[i] /= m
	}
	return out
}

// NormalizeTo returns xs divided by ref. A zero ref returns a copy of xs.
func NormalizeTo(xs []float64, ref float64) []float64 {
	out := append([]float64(nil), xs...)
	if ref == 0 {
		return out
	}
	for i := range out {
		out[i] /= ref
	}
	return out
}
