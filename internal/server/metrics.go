package server

import (
	"sort"
	"sync"
	"time"

	"rainshine/internal/resilience"
	"rainshine/internal/stats"
)

// latencyWindow bounds the per-endpoint latency reservoir; quantiles
// are computed over the most recent window of samples.
const latencyWindow = 4096

// Metrics aggregates the counters /metricz reports: per-endpoint
// request counts and latency quantiles, cache effectiveness, and the
// study-build lifecycle. All methods are safe for concurrent use.
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	cache     CacheCounters
	builds    BuildCounters
	res       ResilienceCounters
	stream    *StreamCounters
	breaker   *resilience.Breaker
}

// endpointStats accumulates one endpoint's counters plus a ring of
// recent latencies (milliseconds).
type endpointStats struct {
	count  int64
	errors int64
	lat    []float64
	next   int
}

// NewMetrics returns an empty collector; uptime counts from now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: map[string]*endpointStats{}}
}

// Observe records one request against path.
func (m *Metrics) Observe(path string, d time.Duration, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[path]
	if e == nil {
		e = &endpointStats{lat: make([]float64, 0, 64)}
		m.endpoints[path] = e
	}
	e.count++
	if isErr {
		e.errors++
	}
	ms := float64(d) / float64(time.Millisecond)
	if len(e.lat) < latencyWindow {
		e.lat = append(e.lat, ms)
		return
	}
	e.lat[e.next] = ms
	e.next = (e.next + 1) % latencyWindow
}

// CacheHit records a registry lookup served from the LRU.
func (m *Metrics) CacheHit() { m.mu.Lock(); m.cache.Hits++; m.mu.Unlock() }

// CacheMiss records a lookup that found no ready study; joined says it
// piggybacked on an in-flight build instead of starting one.
func (m *Metrics) CacheMiss(joined bool) {
	m.mu.Lock()
	m.cache.Misses++
	if joined {
		m.cache.DedupJoins++
	}
	m.mu.Unlock()
}

// CacheEvicted records one LRU eviction.
func (m *Metrics) CacheEvicted() { m.mu.Lock(); m.cache.Evictions++; m.mu.Unlock() }

// CacheSize updates the cached-study gauge.
func (m *Metrics) CacheSize(n int) { m.mu.Lock(); m.cache.Size = n; m.mu.Unlock() }

// BuildStarted / BuildCompleted / BuildCanceled / BuildFailed track the
// study-build lifecycle. InFlight = Started - (Completed+Canceled+Failed).
func (m *Metrics) BuildStarted() { m.mu.Lock(); m.builds.Started++; m.mu.Unlock() }

// BuildCompleted records a build that produced a study.
func (m *Metrics) BuildCompleted() { m.mu.Lock(); m.builds.Completed++; m.mu.Unlock() }

// BuildCanceled records a build abandoned by every waiter.
func (m *Metrics) BuildCanceled() { m.mu.Lock(); m.builds.Canceled++; m.mu.Unlock() }

// BuildFailed records a build that returned an error.
func (m *Metrics) BuildFailed() { m.mu.Lock(); m.builds.Failed++; m.mu.Unlock() }

// BuildTimedOut records a build killed by its own build timeout (a
// subset of Failed).
func (m *Metrics) BuildTimedOut() { m.mu.Lock(); m.res.BuildTimeouts++; m.mu.Unlock() }

// Shed records one refused admission, classified by reason.
func (m *Metrics) Shed(reason resilience.Reason) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch reason {
	case resilience.QueueFull:
		m.res.ShedQueueFull++
	case resilience.RateLimited:
		m.res.ShedRateLimited++
	case resilience.BreakerOpen:
		m.res.ShedBreakerOpen++
	}
}

// Degraded records one response served from a last-good stale study.
func (m *Metrics) Degraded() { m.mu.Lock(); m.res.DegradedServed++; m.mu.Unlock() }

// ChaosLatency / ChaosBuildFault / ChaosSlowClient count injected
// faults so soak runs can assert the chaos harness actually fired.
func (m *Metrics) ChaosLatency() { m.mu.Lock(); m.res.ChaosLatencies++; m.mu.Unlock() }

// ChaosBuildFault records one injected build failure.
func (m *Metrics) ChaosBuildFault() { m.mu.Lock(); m.res.ChaosBuildFaults++; m.mu.Unlock() }

// ChaosSlowClient records one slow-client (trickle-write) simulation.
func (m *Metrics) ChaosSlowClient() { m.mu.Lock(); m.res.ChaosSlowClients++; m.mu.Unlock() }

// SetStream publishes the stream follower's live counters; Snapshot
// reports them under the "stream" key (absent until the first call).
func (m *Metrics) SetStream(c StreamCounters) {
	m.mu.Lock()
	m.stream = &c
	m.mu.Unlock()
}

// attachBreaker lets Snapshot report live breaker state; nil (the
// disabled breaker) reports "closed".
func (m *Metrics) attachBreaker(b *resilience.Breaker) {
	m.mu.Lock()
	m.breaker = b
	m.mu.Unlock()
}

// Snapshot is the JSON shape of /metricz.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Requests      map[string]EndpointSnapshot `json:"requests"`
	Cache         CacheCounters               `json:"cache"`
	Builds        BuildCounters               `json:"builds"`
	Resilience    ResilienceCounters          `json:"resilience"`
	Stream        *StreamCounters             `json:"stream,omitempty"`
}

// StreamCounters summarizes the live stream follower for /metricz: the
// watermark position, the open-day lag behind the newest observation,
// and the stream-defect quarantines.
type StreamCounters struct {
	Following  bool  `json:"following"`
	RecordsIn  int64 `json:"records_in"`
	Watermark  int   `json:"watermark"`
	MaxDaySeen int   `json:"max_day_seen"`
	Lag        int   `json:"lag"`
	Late       int64 `json:"late"`
	Duplicates int64 `json:"duplicates"`
	Sealed     bool  `json:"sealed"`
	Refits     int64 `json:"refits"`
}

// ResilienceCounters summarizes admission control, degradation, and
// chaos injection for /metricz and the soak harness.
type ResilienceCounters struct {
	ShedQueueFull    int64  `json:"shed_queue_full"`
	ShedRateLimited  int64  `json:"shed_rate_limited"`
	ShedBreakerOpen  int64  `json:"shed_breaker_open"`
	DegradedServed   int64  `json:"degraded_served"`
	BreakerState     string `json:"breaker_state"`
	BreakerOpens     int64  `json:"breaker_opens"`
	BuildTimeouts    int64  `json:"build_timeouts"`
	ChaosLatencies   int64  `json:"chaos_latencies"`
	ChaosBuildFaults int64  `json:"chaos_build_faults"`
	ChaosSlowClients int64  `json:"chaos_slow_clients"`
}

// ShedTotal sums every shed class.
func (c ResilienceCounters) ShedTotal() int64 {
	return c.ShedQueueFull + c.ShedRateLimited + c.ShedBreakerOpen
}

// EndpointSnapshot summarizes one endpoint.
type EndpointSnapshot struct {
	Count     int64           `json:"count"`
	Errors    int64           `json:"errors"`
	LatencyMS LatencyQuantile `json:"latency_ms"`
}

// LatencyQuantile holds the served latency quantiles in milliseconds.
type LatencyQuantile struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// CacheCounters summarizes registry cache effectiveness.
type CacheCounters struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	DedupJoins int64 `json:"dedup_joins"`
	Evictions  int64 `json:"evictions"`
	Size       int   `json:"size"`
	Capacity   int   `json:"capacity"`
}

// BuildCounters summarizes the study-build lifecycle.
type BuildCounters struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Failed    int64 `json:"failed"`
	InFlight  int64 `json:"in_flight"`
}

// Snapshot captures a consistent copy of every counter; latency
// quantiles are computed here (internal/stats) over the recent window.
func (m *Metrics) Snapshot(cacheCapacity int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]EndpointSnapshot, len(m.endpoints)),
		Cache:         m.cache,
		Builds:        m.builds,
		Resilience:    m.res,
	}
	if m.stream != nil {
		c := *m.stream
		s.Stream = &c
	}
	s.Cache.Capacity = cacheCapacity
	s.Resilience.BreakerState = m.breaker.State().String()
	s.Resilience.BreakerOpens = m.breaker.Opens()
	s.Builds.InFlight = m.builds.Started - m.builds.Completed - m.builds.Canceled - m.builds.Failed
	// Endpoint rows are assembled in sorted path order so the snapshot
	// (and therefore /metricz) is byte-identical across repeated calls.
	paths := make([]string, 0, len(m.endpoints))
	for path := range m.endpoints {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		e := m.endpoints[path]
		es := EndpointSnapshot{Count: e.count, Errors: e.errors}
		if len(e.lat) > 0 {
			q := func(p float64) float64 {
				v, err := stats.Quantile(e.lat, p)
				if err != nil {
					return 0
				}
				return v
			}
			es.LatencyMS = LatencyQuantile{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: q(1)}
		}
		s.Requests[path] = es
	}
	return s
}
