// Package envan answers Q3: how far can the environmental set points
// (temperature, relative humidity) stray before reliability suffers?
//
// The SF view bins failure rates by operating temperature (Figs 16-17).
// The MF view fits a CART over the disk failure rate with every factor
// present, reads the temperature / humidity thresholds the tree
// discovered, and contrasts the implied operating regimes per DC
// (Fig 18): in the study, DC1 disks degrade ~50% above 78 °F and a
// further ~25% below 25% RH, while DC2 (chilled water) is insensitive.
package envan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/parallel"
	"rainshine/internal/pdp"
	"rainshine/internal/stats"
)

// TempEdges are the Fig 16/17 temperature bins: <60, 60-65, 65-70,
// 70-75, >75 °F (open ends are clamped by the histogram helper).
var TempEdges = []float64{0, 60, 65, 70, 75, 200}

// TempBinLabels label the bins for display.
var TempBinLabels = []string{"<60", "60-65", "65-70", "70-75", ">75"}

// BinnedRates returns, per temperature bin, the Summary of the value
// column over rack-days (mean = the bar, sd = the error bar).
func BinnedRates(f *frame.Frame, value string) ([]stats.Summary, error) {
	tc, err := f.Col("temp")
	if err != nil {
		return nil, err
	}
	vc, err := f.Col(value)
	if err != nil {
		return nil, err
	}
	return stats.GroupedSummary(tc.Data, vc.Data, TempEdges)
}

// MFFeatures are the candidate factors for the environmental tree.
// Region is included so spatial rate differences (hot aisles carry both
// higher base hazard and higher temperatures) are absorbed by their own
// splits instead of biasing the temperature threshold downward.
// Month absorbs the seasonal failure ramp, which otherwise masquerades
// as a temperature effect (hot months are also high-failure months for
// non-environmental reasons).
var MFFeatures = []string{"dc", "region", "temp", "rh", "age_months", "sku", "workload", "power_kw", "month"}

// Thresholds holds the environmental split points the MF tree found.
type Thresholds struct {
	// TempF is the temperature split (°F); NaN if the tree found none.
	TempF float64
	// RH is the humidity split (%) conditional on hot operation; NaN if
	// none was found.
	RH float64
}

// GroupRates is one DC's failure rates across the Fig 18 regimes, each
// a Summary of rack-day disk failure counts.
type GroupRates struct {
	DC     string
	Cool   stats.Summary // temp <= threshold
	Hot    stats.Summary // temp >= threshold
	HotDry stats.Summary // temp >= threshold AND rh <= RH threshold
	All    stats.Summary
}

// Result is the full Q3 MF analysis.
type Result struct {
	// Tree is the full MF model over every factor (for inspection and
	// importance ranking).
	Tree *cart.Tree
	// EnvTree is the second-stage tree over the residual failure rate,
	// from which the set-point thresholds are read.
	EnvTree    *cart.Tree
	Thresholds Thresholds
	Groups     []GroupRates // one per DC
	// PDP holds partial-dependence curves of the residual failure rate
	// over the environmental axes ("temp", "rh"): the marginalized view
	// of the same effects the thresholds binarize.
	PDP map[string][]pdp.Point
	// DroppedFeatures lists candidate factors the frame did not carry
	// (dirty external tables): the analysis degraded to the rest.
	DroppedFeatures []string
	// RowsUsed and RowsDropped account for rows excluded for a
	// non-finite target — the effective-coverage view of the fit.
	RowsUsed    int
	RowsDropped int
}

// BaselineFeatures are the non-environmental factors whose influence is
// normalized out before reading the environmental thresholds — the
// paper's "normalizing other factors such as age, SKU, workload, power
// rating".
var BaselineFeatures = []string{"dc", "region", "sku", "workload", "power_kw", "age_months", "month"}

// Analyze runs the MF environmental analysis over a rack-day frame.
//
// Two-stage procedure: (1) fit a baseline tree of the disk failure rate
// on every non-environmental factor and take residuals; (2) fit a small
// tree of the residuals on the environmental variables and read its
// split points. Stage 1 removes the spatial/hardware/seasonal variance
// that would otherwise let a noisy interior split masquerade as the
// environmental threshold.
//
// Analyze is AnalyzeContext with context.Background(); use that
// variant for cancellable analysis.
func Analyze(f *frame.Frame, cfg cart.Config) (*Result, error) {
	return AnalyzeContext(context.Background(), f, cfg)
}

// AnalyzeContext is Analyze under a context: the stage-1 fits, the PDP
// grids, the hot-regime humidity scan, and the per-DC regime summaries
// all fan across cfg.Workers goroutines (0 means GOMAXPROCS, 1 forces
// the serial path), with results identical for every worker count.
func AnalyzeContext(ctx context.Context, f *frame.Frame, cfg cart.Config) (*Result, error) {
	if cfg.MaxDepth == 0 {
		// Deep, permissive growth: the environmental effects live
		// several splits below the dominant hardware/spatial factors,
		// so rpart-default stopping would never reach them.
		workers := cfg.Workers
		cfg = cart.Config{MaxDepth: 8, MinSplit: 2000, MinLeaf: 700, CP: 0.00005}
		cfg.Workers = workers
	}
	cfg.Task = cart.Regression

	// Graceful degradation for dirty external tables: the hard core is
	// the target plus the environmental axes; any other absent factor
	// is dropped from the candidate lists rather than failing the run.
	for _, name := range []string{"disk_failures", "dc", "temp", "rh"} {
		if _, err := f.Col(name); err != nil {
			return nil, fmt.Errorf("envan: frame unusable: %w", err)
		}
	}
	mfFeats, droppedMF := availableFeatures(f, MFFeatures)
	baseFeats, droppedBase := availableFeatures(f, BaselineFeatures)
	if len(baseFeats) == 0 {
		return nil, errors.New("envan: no baseline features available")
	}

	// Rows without a finite target cannot inform any fit; exclude them
	// up front and report the loss as reduced coverage.
	target, err := f.Col("disk_failures")
	if err != nil {
		return nil, err
	}
	allRows := f.NumRows()
	for _, v := range target.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f = f.Filter(func(r int) bool {
				v := target.Data[r]
				return !math.IsNaN(v) && !math.IsInf(v, 0)
			})
			break
		}
	}
	if f.NumRows() == 0 {
		return nil, errors.New("envan: no rows with a finite target")
	}

	// The inspection tree and the stage-1 baseline are independent fits
	// over the same frame: run them concurrently through index-ordered
	// slots. The MF fit is task 0, so its error keeps priority,
	// matching the old serial order.
	fitFeats := [2][]string{mfFeats, baseFeats}
	fitLabel := [2]string{"tree", "baseline tree"}
	fits, err := parallel.Map(ctx, cfg.Workers, 2, func(i int) (*cart.Tree, error) {
		t, err := cart.FitContext(ctx, f, "disk_failures", fitFeats[i], cfg)
		if err != nil {
			return nil, fmt.Errorf("envan: fitting %s: %w", fitLabel[i], err)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	tree, baseline := fits[0], fits[1]
	pred, err := baseline.PredictFrameContext(ctx, f, cfg.Workers)
	if err != nil {
		return nil, err
	}
	diskCol0, err := f.Col("disk_failures")
	if err != nil {
		return nil, err
	}
	resid := make([]float64, f.NumRows())
	for i := range resid {
		resid[i] = winsorize(diskCol0.Data[i] - pred[i])
	}
	// Stage 2: a compact environment tree over the residuals. A fresh
	// frame shares the env columns' storage with f.
	envFrame := frame.New(f.NumRows())
	for _, name := range []string{"dc", "temp", "rh"} {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		// Attach as-is, sharing cell storage whatever the physical
		// layout; the env frame is read-only.
		if err := envFrame.AddColumn(*c); err != nil {
			return nil, err
		}
	}
	if err := envFrame.AddContinuous("resid", resid); err != nil {
		return nil, err
	}
	// No CP gate: the residual variance is dominated by burst noise, so
	// any relative-improvement threshold would reject the real (small in
	// SSE terms, large in rate terms) environmental step. Depth and leaf
	// size keep the tree tame instead.
	envTree, err := cart.FitContext(ctx, envFrame, "resid", []string{"dc", "temp", "rh"},
		cart.Config{Task: cart.Regression, MaxDepth: 3, MinSplit: 3000, MinLeaf: 1200, CP: -1, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("envan: fitting env tree: %w", err)
	}

	th := Thresholds{TempF: math.NaN(), RH: math.NaN()}
	if t, ok := bestThreshold(envTree, "temp", ""); ok {
		th.TempF = t
	}
	if !math.IsNaN(th.TempF) {
		// The paper reads RH as a sub-branch criterion *while operating
		// above the temperature threshold*. The dedicated sub-fit also
		// enforces the physical plausibility constraints (dry side
		// worse, and a minority excursion regime) that a raw interior
		// tree split does not.
		if r, ok := hotRegimeRHSplit(ctx, envFrame, th.TempF, cfg.Workers); ok {
			th.RH = r
		}
	}

	// Marginalized view of the same effects: partial-dependence curves of
	// the residual rate over each environmental axis, one worker each
	// (and each curve's grid fans out in turn).
	pdpFeats := []string{"temp", "rh"}
	grids, err := parallel.Map(ctx, cfg.Workers, len(pdpFeats), func(i int) ([]pdp.Point, error) {
		return pdp.ComputeContext(ctx, envTree, envFrame, pdpFeats[i], 20, cfg.Workers)
	})
	if err != nil {
		return nil, fmt.Errorf("envan: pdp: %w", err)
	}
	pdpCurves := make(map[string][]pdp.Point, len(pdpFeats))
	for i, name := range pdpFeats {
		pdpCurves[name] = grids[i]
	}

	res := &Result{
		Tree: tree, EnvTree: envTree, Thresholds: th,
		PDP:             pdpCurves,
		DroppedFeatures: mergeUnique(droppedMF, droppedBase),
		RowsUsed:        f.NumRows(),
		RowsDropped:     allRows - f.NumRows(),
	}

	dcCol, err := f.Col("dc")
	if err != nil {
		return nil, err
	}
	tempCol, err := f.Col("temp")
	if err != nil {
		return nil, err
	}
	rhCol, err := f.Col("rh")
	if err != nil {
		return nil, err
	}
	diskCol, err := f.Col("disk_failures")
	if err != nil {
		return nil, err
	}
	tThr := th.TempF
	if math.IsNaN(tThr) {
		tThr = 78 // fall back to the paper's published threshold
	}
	rThr := th.RH
	if math.IsNaN(rThr) {
		rThr = 25
	}
	// Each DC's regime summary scans the frame independently; fan them
	// out and collect in level order.
	res.Groups, err = parallel.Map(ctx, cfg.Workers, len(dcCol.Levels), func(dcIdx int) (GroupRates, error) {
		var cool, hot, hotDry, all []float64
		for r := 0; r < f.NumRows(); r++ {
			if dcCol.Code(r) != dcIdx {
				continue
			}
			v := diskCol.Data[r]
			all = append(all, v)
			temp := tempCol.Data[r]
			if math.IsNaN(temp) || math.IsInf(temp, 0) {
				continue // unreadable sensor: no regime attribution
			}
			if temp <= tThr {
				cool = append(cool, v)
			} else {
				hot = append(hot, v)
				if rh := rhCol.Data[r]; rh <= rThr {
					// NaN rh fails the comparison and stays out of the
					// dry regime, which is the conservative reading.
					hotDry = append(hotDry, v)
				}
			}
		}
		g := GroupRates{DC: dcCol.Levels[dcIdx]}
		g.Cool = summarizeOrZero(cool)
		g.Hot = summarizeOrZero(hot)
		g.HotDry = summarizeOrZero(hotDry)
		g.All = summarizeOrZero(all)
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	if len(res.Groups) == 0 {
		return nil, errors.New("envan: no DC groups in frame")
	}
	return res, nil
}

// winsorize caps a residual's magnitude. Correlated bursts leave
// residuals of many failures on single rack-days; untreated, their
// squared error dwarfs the fractional environmental steps the residual
// tree is looking for, letting splits chase burst noise instead.
func winsorize(r float64) float64 {
	const cap = 1.0
	if r > cap {
		return cap
	}
	if r < -cap {
		return -cap
	}
	return r
}

// hotRegimeRHSplit searches for the humidity sub-branch criterion within
// the hot regime: the CART gain criterion (between-group SSE reduction)
// evaluated over admissible splits only — the dry side must be the
// harmful minority, since the paper's finding is an excursion boundary,
// not a median split. Returns (threshold, true) when an admissible split
// with positive gain exists.
//
// The boundary scan precomputes the dry-side prefix sums in sorted order
// (so every candidate reads exactly the float the serial accumulator
// would have held) and then fans contiguous chunks of candidates across
// the pool; the chunk bests are reduced in order with a strict
// greater-than, reproducing the serial first-maximum tie-break.
func hotRegimeRHSplit(ctx context.Context, envFrame *frame.Frame, tempThr float64, workers int) (float64, bool) {
	tempCol, err := envFrame.Col("temp")
	if err != nil {
		return 0, false
	}
	rhAll, err := envFrame.Col("rh")
	if err != nil {
		return 0, false
	}
	// Finite-rh rows only: a NaN humidity cell cannot place a row on
	// either side of a candidate threshold.
	hot := envFrame.Filter(func(r int) bool {
		return tempCol.Data[r] > tempThr && isFiniteVal(rhAll.Data[r])
	})
	if hot.NumRows() < 200 {
		return 0, false
	}
	rhCol, err := hot.Col("rh")
	if err != nil {
		return 0, false
	}
	residCol, err := hot.Col("resid")
	if err != nil {
		return 0, false
	}
	rh, resid := rhCol.Data, residCol.Data
	n := len(rh)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case rh[a] < rh[b]:
			return -1
		case rh[a] > rh[b]:
			return 1
		}
		return 0
	})
	// Prefix sums over the sorted order: prefix[k+1] is exactly the
	// running drySum the serial scan held at candidate k, so candidates
	// evaluate to identical floats regardless of which chunk runs them.
	prefix := make([]float64, n+1)
	for k := 0; k < n; k++ {
		prefix[k+1] = prefix[k] + resid[idx[k]]
	}
	// Summed in frame order, not sorted order: the serial code did, and
	// float addition is order-sensitive at the ulp level.
	total := 0.0
	for _, v := range resid {
		total += v
	}
	minLeaf := n / 20
	if minLeaf < 100 {
		minLeaf = 100
	}
	type chunkBest struct {
		gain, thr float64
		found     bool
	}
	chunks := parallel.Chunks(n-1, parallel.Workers(workers))
	bests, err := parallel.Map(ctx, workers, len(chunks), func(ci int) (chunkBest, error) {
		var best chunkBest
		for k := chunks[ci][0]; k < chunks[ci][1]; k++ {
			if rh[idx[k]] == rh[idx[k+1]] {
				continue
			}
			nd := k + 1
			nh := n - nd
			// Admissibility: enough support on both sides, dry side a
			// minority of hot operation.
			if nd < minLeaf || nh < minLeaf || 2*nd >= n {
				continue
			}
			drySum := prefix[k+1]
			meanDry := drySum / float64(nd)
			meanHumid := (total - drySum) / float64(nh)
			if meanDry <= meanHumid {
				continue // humid side worse: not the paper's dry effect
			}
			d := meanDry - meanHumid
			gain := float64(nd) * float64(nh) / float64(n) * d * d
			if gain > best.gain {
				best = chunkBest{gain: gain, thr: (rh[idx[k]] + rh[idx[k+1]]) / 2, found: true}
			}
		}
		return best, nil
	})
	if err != nil {
		return 0, false
	}
	var best chunkBest
	for _, b := range bests {
		if b.found && b.gain > best.gain {
			best = b
		}
	}
	return best.thr, best.found
}

func isFiniteVal(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// availableFeatures splits a candidate factor list into the columns the
// frame actually carries and those it does not. Degraded external
// tables (dropped columns) shrink the feature set instead of failing
// the analysis.
func availableFeatures(f *frame.Frame, candidates []string) (have, dropped []string) {
	for _, name := range candidates {
		if _, err := f.Col(name); err != nil {
			dropped = append(dropped, name)
		} else {
			have = append(have, name)
		}
	}
	return have, dropped
}

// mergeUnique unions string lists preserving first-seen order.
func mergeUnique(lists ...[]string) []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range lists {
		for _, s := range l {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

func summarizeOrZero(xs []float64) stats.Summary {
	s, err := stats.Summarize(xs)
	if err != nil {
		return stats.Summary{}
	}
	return s
}

// bestThreshold walks the tree and returns the threshold of the
// highest-gain split on the named continuous feature. When condFeature
// is non-empty, only splits inside right (greater-than) subtrees of a
// condFeature split are eligible — used for the RH threshold, which the
// paper finds conditional on hot operation (a temp split).
func bestThreshold(t *cart.Tree, feature, condFeature string) (float64, bool) {
	idx := func(name string) int {
		for i, f := range t.Features {
			if f.Name == name {
				return i
			}
		}
		return -1
	}
	fi := idx(feature)
	if fi < 0 {
		return 0, false
	}
	ci := -1
	if condFeature != "" {
		ci = idx(condFeature)
		if ci < 0 {
			return 0, false
		}
	}
	bestGain := 0.0
	bestThr := 0.0
	found := false
	var walk func(n *cart.Node, inCond bool)
	walk = func(n *cart.Node, inCond bool) {
		if n.IsLeaf() {
			return
		}
		if n.Feature == fi && (ci < 0 || inCond) {
			gain := n.Impurity - n.Left.Impurity - n.Right.Impurity
			if gain > bestGain {
				bestGain, bestThr, found = gain, n.Threshold, true
			}
		}
		rightCond := inCond || n.Feature == ci
		walk(n.Left, inCond)
		walk(n.Right, rightCond)
	}
	walk(t.Root, false)
	return bestThr, found
}
