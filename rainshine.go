// Package rainshine reproduces "Rain or Shine? — Making Sense of Cloudy
// Reliability Data" (Narayanan et al., ICDCS 2017): a multi-factor
// analysis framework for datacenter failure data, together with the
// synthetic two-datacenter telemetry substrate the analyses run on.
//
// A Study wraps one simulated observation window over the two-DC fleet.
// From it you can regenerate every table and figure of the paper's
// evaluation, or run the three decision analyses directly:
//
//	study, err := rainshine.NewStudy()            // full 2.5-year window
//	q1, err := study.SpareProvisioning(rainshine.W6, false)
//	q2, err := study.VendorComparison(1.0, 1.5)
//	q3, err := study.ClimateGuidance()
//
// Determinism: every Study is a pure function of its seed; the default
// seed regenerates the exact numbers recorded in EXPERIMENTS.md.
package rainshine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rainshine/internal/bms"
	"rainshine/internal/cart"
	"rainshine/internal/envan"
	"rainshine/internal/export"
	"rainshine/internal/faults"
	"rainshine/internal/figures"
	"rainshine/internal/ingest"
	"rainshine/internal/metrics"
	"rainshine/internal/predict"
	"rainshine/internal/provision"
	"rainshine/internal/repair"
	"rainshine/internal/rng"
	"rainshine/internal/simulate"
	"rainshine/internal/skucmp"
	"rainshine/internal/tco"
	"rainshine/internal/ticket"
	"rainshine/internal/topology"
)

// DefaultSeed is the root seed a Study uses when none is given; it
// regenerates the exact numbers recorded in EXPERIMENTS.md.
const DefaultSeed = rng.DefaultSeed

// Workload identifies a hosted workload category (W1-W7, Table III).
type Workload = topology.Workload

// Workload constants re-exported for callers.
const (
	W1 = topology.W1
	W2 = topology.W2
	W3 = topology.W3
	W4 = topology.W4
	W5 = topology.W5
	W6 = topology.W6
	W7 = topology.W7
)

// ParseWorkload resolves a workload name ("W1".."W7", case-insensitive).
func ParseWorkload(s string) (Workload, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	for w := W1; w <= W7; w++ {
		if w.String() == u {
			return w, nil
		}
	}
	return 0, fmt.Errorf("rainshine: unknown workload %q (want W1..W7)", s)
}

// ParseRacks parses and validates a "dc1,dc2" rack-count pair. Both
// counts must be positive: topology construction treats non-positive
// overrides as "use the paper default", so letting them through would
// silently run a full 621-rack study. The CLI -racks flag and the
// server's racks query parameter share this validation.
func ParseRacks(s string) (dc1, dc2 int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("rainshine: racks want dc1,dc2 counts, got %q", s)
	}
	a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("rainshine: parsing racks: %w", err)
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("rainshine: parsing racks: %w", err)
	}
	if a <= 0 || b <= 0 {
		return 0, 0, fmt.Errorf("rainshine: rack counts must be positive, got %d,%d", a, b)
	}
	return a, b, nil
}

// SKU identifies a server configuration (S1-S7, Table III).
type SKU = topology.SKU

// SKU constants re-exported for callers.
const (
	S1 = topology.S1
	S2 = topology.S2
	S3 = topology.S3
	S4 = topology.S4
	S5 = topology.S5
	S6 = topology.S6
	S7 = topology.S7
)

// Option configures a Study.
type Option func(*simulate.Config)

// WithSeed sets the root random seed (default rng.DefaultSeed).
func WithSeed(seed uint64) Option {
	return func(c *simulate.Config) { c.Seed = seed }
}

// WithDays sets the observation window length in days (default 930,
// ~2.5 years as in the paper).
func WithDays(days int) Option {
	return func(c *simulate.Config) { c.Days = days }
}

// WithRacks overrides the per-DC rack counts (default 331 and 290,
// Table I). Use smaller fleets for fast experiments.
func WithRacks(dc1, dc2 int) Option {
	return func(c *simulate.Config) { c.Topology.RacksPerDC = [2]int{dc1, dc2} }
}

// WithoutSoftwareTickets suppresses non-hardware ticket synthesis; only
// Table II needs them.
func WithoutSoftwareTickets() Option {
	return func(c *simulate.Config) { c.SkipNonHardware = true }
}

// WithWorkers bounds the study's worker pool: the simulation fan-out and
// every downstream analysis (CART fits, cross-validation, the Q3
// pipeline, figure warmup) schedule at most n goroutines. Zero or
// negative means GOMAXPROCS; 1 forces the serial path. Every analysis is
// deterministic for any worker count — n only changes speed, never a
// single byte of output.
func WithWorkers(n int) Option {
	return func(c *simulate.Config) { c.Workers = n }
}

// WithBins caps the histogram bin count for the fleet-scale binned
// CART split search (default cart.DefaultBins = 255; values outside
// [2, 255] make NewStudy fail with a cart.BinsRangeError). Fewer bins
// trade split resolution for speed. Small studies that never trip the
// auto-binning row threshold are unaffected. Any bin count is
// deterministic for any worker count.
func WithBins(n int) Option {
	return func(c *simulate.Config) { c.CARTBins = n }
}

// WithExactSplits forces exact (presorted) CART split search in every
// downstream analysis, even at data sizes where the binned engine
// would normally engage — the reference path for auditing a binned
// result.
func WithExactSplits() Option {
	return func(c *simulate.Config) { c.CARTExact = true }
}

// FaultConfig sets per-class rates for the deterministic fault injector
// (dirty-data mode): sensor dropouts and stuck-at readings, duplicate
// and clock-skewed tickets, and damaged export cells. See
// internal/faults for the knobs.
type FaultConfig = faults.Config

// DefaultFaults returns the documented default corruption rates.
func DefaultFaults() FaultConfig { return faults.Defaults() }

// WithFaults enables dirty-data mode: after the clean simulation runs,
// the *recorded* telemetry (never the ground-truth failure process) is
// corrupted per fc, then passed through the ingest quarantine/repair
// pipeline before any analysis sees it. Corruption is a pure function
// of the study seed. A zero-valued FaultConfig leaves the study
// bit-identical to the clean run.
func WithFaults(fc FaultConfig) Option {
	return func(c *simulate.Config) { c.Faults = &fc }
}

// DataQuality reports what the ingest pipeline found: per-defect-class
// quarantine and repair counts plus ticket/sensor coverage. See
// internal/ingest for the class taxonomy.
type DataQuality = ingest.Report

// Quality returns the study's DataQuality report. Dirty studies report
// the scrub that ran at construction; clean studies run a non-mutating
// audit on first call (and should come back clean).
func (s *Study) Quality() (*DataQuality, error) { return s.data.Quality() }

// Study is one simulated observation window plus cached analyses.
type Study struct {
	data *figures.Data
}

// NewStudy simulates the fleet and returns a Study. It is
// NewStudyContext with context.Background(); use that variant to make
// the simulation cancellable.
func NewStudy(opts ...Option) (*Study, error) {
	return NewStudyContext(context.Background(), opts...)
}

// NewStudyContext is NewStudy under a context: when ctx is canceled the
// simulation stops at its next checkpoint and the context's error is
// returned. Long-running services (the `rainshine serve` daemon) use
// this so abandoned requests stop simulating.
func NewStudyContext(ctx context.Context, opts ...Option) (*Study, error) {
	cfg := simulate.Config{Seed: rng.DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cart.ValidateBins(cfg.CARTBins); err != nil {
		return nil, fmt.Errorf("rainshine: %w", err)
	}
	d, err := figures.NewDataContext(ctx, cfg)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("rainshine: %w", err)
	}
	return &Study{data: d}, nil
}

// Figures exposes the per-table/figure regenerators (internal/figures).
// The CLI, benchmarks, and EXPERIMENTS.md are all built on this.
func (s *Study) Figures() *figures.Data { return s.data }

// workers returns the study-wide worker budget (simulate.Config
// semantics: 0 means GOMAXPROCS, 1 means serial).
func (s *Study) workers() int { return s.data.Res.Cfg.Workers }

// cartConfig assembles the tree-learner settings from the study-wide
// options: the worker budget plus the WithBins/WithExactSplits split
// policy.
func (s *Study) cartConfig() cart.Config {
	cfg := cart.Config{Workers: s.workers(), Bins: s.data.Res.Cfg.CARTBins}
	if s.data.Res.Cfg.CARTExact {
		cfg.Split = cart.SplitExact
	}
	return cfg
}

// Warmup materializes every table and figure through the study's worker
// pool and keeps them cached, so subsequent Figures() calls are served
// from memory. Long-lived services call this once after construction;
// one-shot batch runs don't need it.
func (s *Study) Warmup(ctx context.Context) error {
	return s.data.Warmup(ctx, s.workers())
}

// Tickets returns the study's full RMA ticket stream (including false
// positives, which analyses filter).
func (s *Study) Tickets() []ticket.Ticket { return s.data.Res.Tickets }

// NumServers returns the fleet's server count.
func (s *Study) NumServers() int { return s.data.Res.Fleet.TotalServers() }

// NumRacks returns the fleet's rack count.
func (s *Study) NumRacks() int { return len(s.data.Res.Fleet.Racks) }

// Days returns the observation window length.
func (s *Study) Days() int { return s.data.Res.Days }

// SpareReport answers Q1 for one workload: the over-provisioned capacity
// each approach needs per SLA, the TCO savings of MF over SF, and the MF
// clusters with their defining factor conditions.
type SpareReport struct {
	Workload    string    `json:"workload"`
	Granularity string    `json:"granularity"`
	SLAs        []float64 `json:"slas"`
	// OverprovPct[approach][i] is percent capacity over-provisioned at
	// SLAs[i]; approaches are "LB", "MF", "SF".
	OverprovPct map[string][]float64 `json:"overprov_pct"`
	// TCOSavingsPct[i] is the relative TCO savings of MF over SF.
	TCOSavingsPct []float64 `json:"tco_savings_pct"`
	// Clusters describes each MF rack group: its defining conditions
	// and its spare requirement.
	Clusters []ClusterInfo `json:"clusters,omitempty"`
	// FactorRanking orders the factors by their importance in forming
	// the clusters.
	FactorRanking []string `json:"factor_ranking,omitempty"`
	// DataCoverage is the fraction of recorded telemetry (min of ticket
	// and sensor coverage) backing this analysis; 1.0 on clean studies.
	DataCoverage float64 `json:"data_coverage"`
}

// ClusterInfo describes one MF rack cluster.
type ClusterInfo struct {
	Racks      int    `json:"racks"`
	Conditions string `json:"conditions"`
	// ReqPct is the spare fraction (percent) this cluster provisions at
	// 100% availability.
	ReqPct float64 `json:"req_pct"`
}

// SpareProvisioning runs Q1-A for the workload at daily or hourly
// granularity.
func (s *Study) SpareProvisioning(wl Workload, hourly bool) (*SpareReport, error) {
	g := metrics.Daily
	if hourly {
		g = metrics.Hourly
	}
	sl, err := provision.AnalyzeServerLevel(s.data.Res, wl, g, nil)
	if err != nil {
		return nil, err
	}
	savings, err := sl.TCOSavings(tco.Default())
	if err != nil {
		return nil, err
	}
	rep := &SpareReport{
		Workload:    wl.String(),
		Granularity: g.String(),
		SLAs:        sl.SLAs,
		OverprovPct: map[string][]float64{},
	}
	for _, a := range []provision.Approach{provision.LB, provision.MF, provision.SF} {
		pct := make([]float64, len(sl.SLAs))
		for i, v := range sl.Overprov[a] {
			pct[i] = 100 * v
		}
		rep.OverprovPct[a.String()] = pct
	}
	for _, v := range savings {
		rep.TCOSavingsPct = append(rep.TCOSavingsPct, 100*v)
	}
	if q, err := s.Quality(); err == nil {
		rep.DataCoverage = q.Coverage()
	}
	if sl.Clustering != nil {
		rep.FactorRanking = sl.Clustering.Tree.RankedFeatures()
		for ci, members := range sl.Clustering.Members {
			cond, err := sl.Clustering.Describe(ci)
			if err != nil {
				return nil, err
			}
			req := 0.0
			for _, f := range sl.ClusterFractions[ci] {
				if f > req {
					req = f
				}
			}
			rep.Clusters = append(rep.Clusters, ClusterInfo{
				Racks:      len(members),
				Conditions: cond,
				ReqPct:     100 * req,
			})
		}
	}
	return rep, nil
}

// VendorReport answers Q2: the SF and MF views of the S2-vs-S4 contrast
// and the procurement verdicts at each price ratio.
type VendorReport struct {
	// RatioSF and RatioMF are the S2:S4 average-failure-rate ratios the
	// two approaches estimate (paper: ~10x vs ~4x).
	RatioSF float64 `json:"ratio_sf"`
	RatioMF float64 `json:"ratio_mf"`
	// Verdicts hold the TCO savings of procuring S4 instead of S2, per
	// price ratio, under each approach's failure estimates.
	Verdicts []skucmp.Verdict `json:"verdicts"`
	// PValue is the two-sided paired-test p-value for the adjusted
	// S2-vs-S4 contrast across covariate strata (the paper's confidence
	// check); Strata is the number of strata observing both SKUs.
	// Encodes as null when the test is undefined (too few strata).
	PValue float64 `json:"p_value"`
	Strata int     `json:"strata"`
	// DataCoverage is the fraction of recorded telemetry (min of ticket
	// and sensor coverage) backing this analysis; 1.0 on clean studies.
	DataCoverage float64 `json:"data_coverage"`
}

// VendorComparison runs Q2 for the paper's two compute SKUs at the given
// S4:S2 price ratios (the paper evaluates 1.0 and 1.5).
func (s *Study) VendorComparison(priceRatios ...float64) (*VendorReport, error) {
	if len(priceRatios) == 0 {
		priceRatios = []float64{1.0, 1.5}
	}
	f, err := s.data.RackDays()
	if err != nil {
		return nil, err
	}
	pair := []topology.SKU{topology.S2, topology.S4}
	sf, err := skucmp.AnalyzeSF(f, pair)
	if err != nil {
		return nil, err
	}
	mf, err := skucmp.AnalyzeMF(f, pair)
	if err != nil {
		return nil, err
	}
	pick := func(ss []skucmp.Stats, sku string) (skucmp.Stats, error) {
		for _, st := range ss {
			if st.SKU == sku {
				return st, nil
			}
		}
		return skucmp.Stats{}, fmt.Errorf("rainshine: no stats for %s", sku)
	}
	sfS2, err := pick(sf, "S2")
	if err != nil {
		return nil, err
	}
	sfS4, err := pick(sf, "S4")
	if err != nil {
		return nil, err
	}
	mfS2, err := pick(mf, "S2")
	if err != nil {
		return nil, err
	}
	mfS4, err := pick(mf, "S4")
	if err != nil {
		return nil, err
	}
	if sfS4.Avg == 0 || mfS4.Avg == 0 {
		return nil, errors.New("rainshine: degenerate S4 rate; fleet too small")
	}
	servers := topology.SKUCatalog()[topology.S2].ServersPerRack
	verdicts, err := skucmp.CompareTCO(sfS2, sfS4, mfS2, mfS4, servers, priceRatios, tco.Default(), 3)
	if err != nil {
		return nil, err
	}
	sig, err := skucmp.MFSignificance(f, topology.S2, topology.S4)
	if err != nil {
		return nil, err
	}
	rep := &VendorReport{
		RatioSF:  sfS2.Avg / sfS4.Avg,
		RatioMF:  mfS2.Avg / mfS4.Avg,
		Verdicts: verdicts,
		PValue:   sig.PairedT,
		Strata:   sig.Strata,
	}
	if q, err := s.Quality(); err == nil {
		rep.DataCoverage = q.Coverage()
	}
	return rep, nil
}

// PoolingAnalysis quantifies Section II's shared-vs-dedicated spare
// pool question: total spares needed at 100% availability when pools are
// shared at each scope from per-rack to globally.
func (s *Study) PoolingAnalysis(hourly bool) ([]provision.PoolRequirement, error) {
	g := metrics.Daily
	if hourly {
		g = metrics.Hourly
	}
	return provision.AnalyzePooling(s.data.Res, g)
}

// RepairPolicy compares replace-vs-service economics per component class
// (Section II's OpEx question) over this study's failure stream.
func (s *Study) RepairPolicy() ([]repair.Recommendation, error) {
	return repair.Compare(s.data.Res, tco.Default(), repair.Params{}, s.data.Res.Cfg.Seed)
}

// ExportRackDaysCSV writes the study's rack-day analysis table as CSV —
// the shape AnalyzeClimateCSV (and external tools) consume. In
// dirty-data mode the export itself is lossy, the way inventory-system
// extracts are: configured factor columns are missing and cells read
// NaN/Inf at the configured rates (the target and environmental axes
// are never damaged, so the table still describes the same failure
// history). AnalyzeClimateCSV demonstrates degrading gracefully on
// exactly this output.
func (s *Study) ExportRackDaysCSV(w io.Writer) error {
	f, err := s.data.RackDays()
	if err != nil {
		return err
	}
	if fc := s.data.Res.Cfg.Faults; fc != nil && fc.Enabled() {
		src := rng.New(s.data.Res.Cfg.Seed).Split("faults").Split("frame")
		f, err = faults.CorruptFrame(src, f, *fc, "disk_failures", "dc", "temp", "rh")
		if err != nil {
			return err
		}
	}
	return export.FrameCSV(w, f)
}

// ExportTicketsCSV writes the study's RMA ticket stream as CSV.
func (s *Study) ExportTicketsCSV(w io.Writer) error {
	return export.TicketsCSV(w, s.Tickets())
}

// AnalyzeClimateCSV runs the Q3 multi-factor environmental analysis on
// an external rack-day table (CSV with the columns `rainshine export
// rackdays` produces — operators can substitute their own telemetry in
// that shape). This is the bring-your-own-data path: none of the
// simulator is involved.
// The input is untrusted: required columns are checked up front, Inf
// cells are normalized to missing, and absent optional factors shrink
// the candidate set instead of failing — the report's DataCoverage and
// MissingFeatures fields say how degraded the run was.
func AnalyzeClimateCSV(r io.Reader) (*ClimateReport, error) {
	f, err := export.ReadFrameCSV(r)
	if err != nil {
		return nil, err
	}
	var ingestRep ingest.Report
	fq, err := ingest.SanitizeFrame(f, []string{"disk_failures", "dc", "temp", "rh"}, &ingestRep)
	if err != nil {
		return nil, fmt.Errorf("rainshine: unusable climate table: %w", err)
	}
	res, err := envan.Analyze(f, cart.Config{})
	if err != nil {
		return nil, err
	}
	rep := &ClimateReport{
		TempThresholdF:  res.Thresholds.TempF,
		RHThreshold:     res.Thresholds.RH,
		HotPenalty:      map[string]float64{},
		DryPenalty:      map[string]float64{},
		Tree:            res.Tree,
		DataCoverage:    fq.Coverage(),
		MissingFeatures: res.DroppedFeatures,
	}
	fillPenalties(rep, res)
	return rep, nil
}

// fillPenalties populates the per-DC hot/dry penalty ratios from the
// grouped rates, requiring minimal exposure in each regime.
func fillPenalties(rep *ClimateReport, res *envan.Result) {
	const minExposure = 30
	for _, g := range res.Groups {
		if g.Cool.N >= minExposure && g.Cool.Mean > 0 && g.Hot.N >= minExposure {
			rep.HotPenalty[g.DC] = g.Hot.Mean / g.Cool.Mean
		}
		if g.Hot.N >= minExposure && g.Hot.Mean > 0 && g.HotDry.N >= minExposure {
			rep.DryPenalty[g.DC] = g.HotDry.Mean / g.Hot.Mean
		}
	}
}

// EnvironmentAlarms scans the study's climate telemetry against the
// default BMS envelope and returns per-DC alarm summaries (Section IV's
// building management system behaviour).
func (s *Study) EnvironmentAlarms() ([]bms.Summary, error) {
	res := s.data.Res
	alarms, err := bms.Scan(res.Climate, res.Fleet, bms.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	return bms.Summarize(alarms, res.Fleet, res.Days), nil
}

// PredictionReport is the outcome of the failure-prediction extension
// (the paper's Section VII future work): a rack-day failure classifier
// trained on the first part of the window and evaluated on the rest.
type PredictionReport struct {
	// Precision, Recall, F1, Accuracy, AUC evaluate the alarm quality
	// on the held-out time range. Undefined metrics (e.g. precision
	// with no positive predictions) encode as null.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Accuracy  float64 `json:"accuracy"`
	AUC       float64 `json:"auc"`
	// PositiveRate is the test-split base rate of failure rack-days.
	PositiveRate float64 `json:"positive_rate"`
	// TopFactors ranks the predictive factors.
	TopFactors []string `json:"top_factors,omitempty"`
	// TrainRows and TestRows size the time-ordered split.
	TrainRows int `json:"train_rows"`
	TestRows  int `json:"test_rows"`
}

// FailurePrediction trains and evaluates the rack-day failure predictor
// on this study's telemetry.
func (s *Study) FailurePrediction() (*PredictionReport, error) {
	f, err := s.data.RackDays()
	if err != nil {
		return nil, err
	}
	res, err := predict.Train(f, predict.Config{Balance: true, Workers: s.workers()})
	if err != nil {
		return nil, err
	}
	m := res.Metrics
	return &PredictionReport{
		Precision:    m.Precision,
		Recall:       m.Recall,
		F1:           m.F1,
		Accuracy:     m.Accuracy,
		AUC:          m.AUC,
		PositiveRate: m.PositiveRate,
		TopFactors:   res.Tree.RankedFeatures(),
		TrainRows:    res.TrainRows,
		TestRows:     res.TestRows,
	}, nil
}

// ClimateReport answers Q3: the set-point thresholds the MF tree found
// and the failure-rate penalty of operating outside them, per DC.
type ClimateReport struct {
	// TempThresholdF is the discovered temperature split (paper: 78 F).
	// Encodes as null when no temperature split was found.
	TempThresholdF float64 `json:"temp_threshold_f"`
	// RHThreshold is the humidity split inside the hot regime (paper:
	// 25%). NaN — encoded as null — when no humidity split was found.
	RHThreshold float64 `json:"rh_threshold"`
	// HotPenalty[dc] is the multiplicative disk-failure increase above
	// the temperature threshold (paper DC1: ~1.5x; DC2: ~1x).
	HotPenalty map[string]float64 `json:"hot_penalty"`
	// DryPenalty[dc] is the further increase when also below the RH
	// threshold (paper DC1: ~1.25x).
	DryPenalty map[string]float64 `json:"dry_penalty"`
	// Tree is the fitted MF model for in-process inspection; it does not
	// participate in the JSON encoding.
	Tree *cart.Tree `json:"-"`
	// DataCoverage is the fraction of usable cells/telemetry backing
	// the analysis (1.0 when nothing was quarantined or missing).
	DataCoverage float64 `json:"data_coverage"`
	// MissingFeatures lists candidate factors the input did not carry;
	// the analysis degraded to the remaining factors.
	MissingFeatures []string `json:"missing_features,omitempty"`
}

// ClimateGuidance runs Q3 over the study's rack-day data. It is
// ClimateGuidanceContext with context.Background(); use that variant
// for cancellable analysis.
func (s *Study) ClimateGuidance() (*ClimateReport, error) {
	return s.ClimateGuidanceContext(context.Background())
}

// ClimateGuidanceContext is ClimateGuidance under a context: the Q3
// pipeline (three CART fits, PDP grids, the humidity boundary scan)
// fans across the study's worker pool and stops early when ctx is
// canceled — the variant the serving path uses per request.
func (s *Study) ClimateGuidanceContext(ctx context.Context) (*ClimateReport, error) {
	f, err := s.data.RackDays()
	if err != nil {
		return nil, err
	}
	res, err := envan.AnalyzeContext(ctx, f, s.cartConfig())
	if err != nil {
		return nil, err
	}
	rep := &ClimateReport{
		TempThresholdF:  res.Thresholds.TempF,
		RHThreshold:     res.Thresholds.RH,
		HotPenalty:      map[string]float64{},
		DryPenalty:      map[string]float64{},
		Tree:            res.Tree,
		MissingFeatures: res.DroppedFeatures,
	}
	if q, err := s.Quality(); err == nil {
		rep.DataCoverage = q.Coverage()
	}
	// Penalties are only meaningful with enough exposure in each regime;
	// DC2's chilled-water plant rarely strays above the threshold at all,
	// which is itself the Fig 18 finding (no entry = insensitive).
	fillPenalties(rep, res)
	return rep, nil
}
