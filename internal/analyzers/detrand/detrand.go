// Package detrand enforces the determinism contract every report in
// this repository carries: analyses may not read the wall clock, may
// not draw randomness from anywhere but the seeded internal/rng
// streams, and may not let map iteration order leak into output.
//
// Three rules:
//
//  1. importing math/rand or math/rand/v2 is reserved to the packages
//     in allowedRandImports (the seeded stream layer);
//  2. time.Now / time.Since are reserved to package main (CLI timing)
//     and the allowedWallClock entries (serving metrics measure real
//     latency, not analysis results);
//  3. ranging over a map while appending to a slice or emitting output
//     (fmt/io writes, json encoding) is flagged unless the appended
//     slice is sorted later in the same function — the
//     collect-keys-then-sort idiom.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"rainshine/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads, unseeded randomness, and map-order-dependent output in analysis code",
	Run:  run,
}

// allowedRandImports is the explicit allowlist of packages that may
// import math/rand: only the seeded stream layer.
var allowedRandImports = map[string]bool{
	"rainshine/internal/rng": true,
	"rng":                    true, // analysistest fixture twin
}

// allowedWallClock lists the package-qualified functions allowed to
// call time.Now/time.Since: the serving-metrics paths that measure real
// request latency and daemon uptime (never analysis output).
var allowedWallClock = map[string]bool{
	"rainshine/internal/server.NewMetrics":       true, // uptime epoch
	"rainshine/internal/server.Metrics.Snapshot": true, // /metricz uptime
	// Server.instrument and Server.handleHealthz used to sit here; both
	// now read the injected Server.now clock (see clockinject rule A).
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkRandImports(pass, file)
		checkWallClock(pass, file)
		checkMapOrder(pass, file)
	}
	return nil
}

func checkRandImports(pass *analysis.Pass, file *ast.File) {
	if allowedRandImports[pass.Pkg.Path()] {
		return
	}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "import of %s outside internal/rng: draw from a seeded rng.Source stream instead", path)
		}
	}
}

func checkWallClock(pass *analysis.Pass, file *ast.File) {
	if pass.Pkg.Name() == "main" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if name := fn.Name(); name != "Now" && name != "Since" {
			return true
		}
		if allowedWallClock[qualifiedFunc(pass, file, call.Pos())] {
			return true
		}
		pass.Reportf(call.Pos(), "time.%s outside the wall-clock allowlist: analysis results must be a pure function of the input seed", fn.Name())
		return true
	})
}

// qualifiedFunc names the enclosing declaration as pkgpath.[Recv.]Name
// for allowlist lookup; closures attribute to the named function that
// lexically contains them (declarations do not nest in Go).
func qualifiedFunc(pass *analysis.Pass, file *ast.File, pos token.Pos) string {
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos < fd.End() {
			decl = fd
			break
		}
	}
	if decl == nil {
		return ""
	}
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		if t := baseTypeName(decl.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return pass.Pkg.Path() + "." + name
}

func baseTypeName(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return baseTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	}
	return ""
}

// checkMapOrder flags map-range loops whose bodies leak iteration order
// into appended slices or emitted output.
func checkMapOrder(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, file, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				switch target := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if obj, ok := pass.TypesInfo.ObjectOf(target).(*types.Var); ok && sortedAfter(pass, file, rng, obj) {
						continue
					}
					pass.Reportf(n.Pos(), "appending to %s while ranging over a map without sorting it afterwards: iteration order leaks into the result", target.Name)
				case *ast.IndexExpr:
					// b[k] = append(b[k], ...) keyed by the range's own
					// key/value regroups deterministically (one bucket
					// per iteration variable); any other index
					// accumulates in iteration order.
					if indexUsesRangeVar(pass, rng, target.Index) {
						continue
					}
					pass.Reportf(n.Pos(), "appending to a bucket not keyed by this map range's variables: iteration order leaks into the bucket contents")
				default:
					pass.Reportf(n.Pos(), "append while ranging over a map: iteration order leaks into the result; collect keys and sort first")
				}
			}
		case *ast.CallExpr:
			if emitsOutput(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(), "emitting output while ranging over a map: iteration order leaks into the stream; range over sorted keys instead")
			}
		}
		return true
	})
}

// indexUsesRangeVar reports whether idx references the key or value
// variable bound by rng.
func indexUsesRangeVar(pass *analysis.Pass, rng *ast.RangeStmt, idx ast.Expr) bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	uses := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[pass.TypesInfo.ObjectOf(id)] {
			uses = true
		}
		return !uses
	})
	return uses
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a sort call after the
// range loop, within the same enclosing function.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, obj *types.Var) bool {
	enclosing := analysis.FuncFor(file, rng.Pos())
	if enclosing == nil {
		enclosing = file
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		if !isSortCall(pass.TypesInfo, call) || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.ObjectOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// emitsOutput recognizes calls that serialize directly to a stream:
// fmt printers with a writer, io writes, and json encoding.
func emitsOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.ObjectOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	case "encoding/json":
		return fn.Name() == "Encode" || fn.Name() == "Marshal" || fn.Name() == "MarshalIndent"
	case "io":
		return fn.Name() == "WriteString"
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Writer-shaped methods (io.Writer, strings.Builder, bufio).
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}
