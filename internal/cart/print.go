package cart

import (
	"fmt"
	"strings"

	"rainshine/internal/frame"
)

// String renders the tree in an rpart-like indented format, useful for
// inspecting the splits the MF analysis discovered (e.g. the paper's
// T = 78 °F / RH = 25 % branches in Fig 18).
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CART (%s ~ ", t.Target)
	for i, f := range t.Features {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
	}
	b.WriteString(")\n")
	t.printNode(&b, t.Root, 0, "root")
	return b.String()
}

func (t *Tree) printNode(b *strings.Builder, n *Node, depth int, label string) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s%s -> leaf#%d n=%d value=%.4g\n", indent, label, n.LeafID, n.N, n.Value)
		return
	}
	fmt.Fprintf(b, "%s%s: split on %s n=%d\n", indent, label, t.splitDesc(n), n.N)
	t.printNode(b, n.Left, depth+1, "L")
	t.printNode(b, n.Right, depth+1, "R")
}

// splitDesc renders a node's split condition (the left-branch predicate).
func (t *Tree) splitDesc(n *Node) string {
	f := t.Features[n.Feature]
	if f.Kind != frame.Nominal {
		return fmt.Sprintf("%s <= %.4g", f.Name, n.Threshold)
	}
	var cats []string
	for c, lvl := range f.Levels {
		if n.inLeftSet(c) {
			cats = append(cats, lvl)
		}
	}
	return fmt.Sprintf("%s in {%s}", f.Name, strings.Join(cats, ","))
}

// DescribeLeaf returns the conjunction of split conditions on the path
// from the root to the leaf with the given LeafID. This is the
// "N(X2), ..., N(Xn)" context of the paper's partial dependence notation.
func (t *Tree) DescribeLeaf(leafID int) (string, error) {
	var path []string
	var found bool
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if found {
			return
		}
		if n.IsLeaf() {
			if n.LeafID == leafID {
				path = append([]string(nil), conds...)
				found = true
			}
			return
		}
		desc := t.splitDesc(n)
		walk(n.Left, append(conds, desc))
		walk(n.Right, append(conds, "NOT("+desc+")"))
	}
	walk(t.Root, nil)
	if !found {
		return "", fmt.Errorf("cart: no leaf %d", leafID)
	}
	if len(path) == 0 {
		return "(root)", nil
	}
	return strings.Join(path, " AND "), nil
}
