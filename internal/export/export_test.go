package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"rainshine/internal/failure"
	"rainshine/internal/frame"
	"rainshine/internal/simulate"
	"rainshine/internal/ticket"
)

func TestTicketsCSV(t *testing.T) {
	tickets := []ticket.Ticket{
		{ID: 0, Day: 0, Hour: 3.5, DC: 0, Rack: 7, Fault: ticket.DiskFailure, RepairHours: 8.25},
		{ID: 1, Day: 366, Hour: 23.9, DC: 1, Rack: 2, Fault: ticket.Timeout, FalsePositive: true},
	}
	var buf bytes.Buffer
	if err := TicketsCSV(&buf, tickets); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "id" || rows[0][6] != "category" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "2012-01-01" || rows[1][4] != "DC1" || rows[1][6] != "Hardware" || rows[1][7] != "Disk failure" {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][1] != "2013-01-01" || rows[2][8] != "true" {
		t.Errorf("row 2 = %v", rows[2])
	}
}

func TestEventsJSONL(t *testing.T) {
	events := []simulate.Event{
		{Rack: 3, Day: 59, Hour: 12.5, Component: failure.Disk, RepairHours: 6, Shock: true},
		{Rack: 4, Day: 60, Hour: 0.1, Component: failure.DIMM, RepairHours: 4},
	}
	var buf bytes.Buffer
	if err := EventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "disk" || rec["shock"] != true || rec["date"] != "2012-02-29" {
		t.Errorf("record = %v", rec)
	}
}

func TestFrameCSV(t *testing.T) {
	f := frame.New(2)
	if err := f.AddContinuous("x", []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", []int{0, 1}, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FrameCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "x" || rows[0][1] != "dc" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "1.5" || rows[1][1] != "DC1" || rows[2][1] != "DC2" {
		t.Errorf("rows = %v", rows)
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.after {
		return 0, errWrite
	}
	w.after -= len(p)
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWriterErrorsPropagate(t *testing.T) {
	tickets := make([]ticket.Ticket, 100)
	if err := TicketsCSV(&failingWriter{after: 10}, tickets); err == nil {
		t.Error("TicketsCSV should propagate write errors")
	}
	events := make([]simulate.Event, 100)
	if err := EventsJSONL(&failingWriter{after: 10}, events); err == nil {
		t.Error("EventsJSONL should propagate write errors")
	}
	f := frame.New(100)
	if err := f.AddContinuous("x", make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	if err := FrameCSV(&failingWriter{after: 1}, f); err == nil {
		t.Error("FrameCSV should propagate write errors")
	}
}

func TestReadFrameCSVRoundTrip(t *testing.T) {
	f := frame.New(3)
	if err := f.AddContinuous("temp", []float64{70.5, 80, 65.25}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", []int{0, 1, 0}, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("failures", []float64{0, 2, 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FrameCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrameCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", back.NumRows(), back.NumCols())
	}
	tc := back.MustCol("temp")
	if tc.Kind != frame.Continuous || tc.Data[2] != 65.25 {
		t.Errorf("temp col = %+v", tc)
	}
	dc := back.MustCol("dc")
	if dc.Kind != frame.Nominal || dc.LevelOf(dc.Float(1)) != "DC2" {
		t.Errorf("dc col = %+v", dc)
	}
}

func TestReadFrameCSVErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"a,b\n",      // header only
		"a,b\n1\n",   // ragged row
		",b\n1,2\n",  // empty column name
		"a,a\n1,2\n", // duplicate column
	}
	for _, in := range cases {
		if _, err := ReadFrameCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should error", in)
		}
	}
	// Mixed numeric/text column becomes nominal, not an error.
	f, err := ReadFrameCSV(strings.NewReader("x\n1\nfoo\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.MustCol("x").Kind != frame.Nominal {
		t.Error("mixed column should be nominal")
	}
}
