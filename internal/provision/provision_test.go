package provision

import (
	"testing"

	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

var cachedResult *simulate.Result

// testResult simulates a reduced fleet once and reuses it across tests.
func testResult(t *testing.T) *simulate.Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	res, err := simulate.Run(simulate.Config{
		Seed:            3,
		Days:            365,
		Topology:        topology.Config{RacksPerDC: [2]int{120, 100}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

func TestApproachString(t *testing.T) {
	if LB.String() != "LB" || MF.String() != "MF" || SF.String() != "SF" {
		t.Error("Approach.String broken")
	}
	if Approach(9).String() != "Approach(9)" {
		t.Error("unknown approach string")
	}
}

func TestRackNeedSpares(t *testing.T) {
	n := rackNeed{units: 40, muMax: 6}
	tests := []struct {
		sla  float64
		want int
	}{
		{1.00, 6}, // no allowance
		{0.95, 4}, // allowance floor(0.05*40)=2
		{0.90, 2}, // allowance 4
		{0.80, 0}, // allowance 8 covers everything
	}
	for _, tt := range tests {
		if got := n.spares(tt.sla); got != tt.want {
			t.Errorf("spares(%v) = %d, want %d", tt.sla, got, tt.want)
		}
	}
	// Clamp to units.
	big := rackNeed{units: 10, muMax: 50}
	if big.spares(1.0) != 10 {
		t.Errorf("spares should clamp to units, got %d", big.spares(1.0))
	}
	if (rackNeed{units: 0}).fraction(1.0) != 0 {
		t.Error("zero units fraction should be 0")
	}
}

func TestAnalyzeServerLevelSandwich(t *testing.T) {
	res := testResult(t)
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		for _, g := range []metrics.Granularity{metrics.Daily, metrics.Hourly} {
			sl, err := AnalyzeServerLevel(res, wl, g, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, sla := range sl.SLAs {
				lb := sl.Overprov[LB][i]
				mf := sl.Overprov[MF][i]
				sf := sl.Overprov[SF][i]
				// The structural invariant: LB <= MF <= SF.
				if lb > mf+1e-9 || mf > sf+1e-9 {
					t.Errorf("%v/%v SLA %v: LB=%.3f MF=%.3f SF=%.3f violates LB<=MF<=SF",
						wl, g, sla, lb, mf, sf)
				}
				if sf < 0 || sf > 1 {
					t.Errorf("SF fraction %v out of [0,1]", sf)
				}
			}
			// Requirements grow with SLA.
			for _, a := range []Approach{LB, MF, SF} {
				ov := sl.Overprov[a]
				for i := 1; i < len(ov); i++ {
					if ov[i] < ov[i-1]-1e-9 {
						t.Errorf("%v/%v %v: overprov not monotone in SLA: %v", wl, g, a, ov)
					}
				}
			}
		}
	}
}

func TestMFBeatsSFAt100(t *testing.T) {
	res := testResult(t)
	sl, err := AnalyzeServerLevel(res, topology.W1, metrics.Daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	i := len(sl.SLAs) - 1 // 100% SLA
	mf, sf := sl.Overprov[MF][i], sl.Overprov[SF][i]
	if sf == 0 {
		t.Skip("no failures for workload in reduced test fleet")
	}
	if mf >= sf {
		t.Errorf("MF (%.3f) should improve on SF (%.3f) at 100%% SLA", mf, sf)
	}
}

func TestClusteringPresent(t *testing.T) {
	res := testResult(t)
	sl, err := AnalyzeServerLevel(res, topology.W6, metrics.Daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Clustering == nil {
		t.Fatal("no clustering produced")
	}
	if n := sl.Clustering.NumClusters(); n < 2 || n > maxClusters {
		t.Errorf("clusters = %d, want 2..%d", n, maxClusters)
	}
	// Cluster fractions partition the pooled fractions.
	total := 0
	for _, fs := range sl.ClusterFractions {
		total += len(fs)
	}
	if total != len(sl.PooledFractions) {
		t.Errorf("cluster members %d != racks %d", total, len(sl.PooledFractions))
	}
}

func TestHourlyNotWorseThanDaily(t *testing.T) {
	res := testResult(t)
	daily, err := AnalyzeServerLevel(res, topology.W1, metrics.Daily, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	hourly, err := AnalyzeServerLevel(res, topology.W1, metrics.Hourly, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Temporal multiplexing: the oracle requirement can only shrink at
	// finer granularity.
	if hourly.Overprov[LB][0] > daily.Overprov[LB][0]+1e-9 {
		t.Errorf("hourly LB %.3f > daily LB %.3f", hourly.Overprov[LB][0], daily.Overprov[LB][0])
	}
}

func TestAnalyzeServerLevelErrors(t *testing.T) {
	res := testResult(t)
	if _, err := AnalyzeServerLevel(res, topology.W1, metrics.Daily, []float64{1.5}); err == nil {
		t.Error("SLA > 1 should error")
	}
	if _, err := AnalyzeServerLevel(res, topology.W1, metrics.Daily, []float64{0}); err == nil {
		t.Error("SLA 0 should error")
	}
}

func TestTCOSavings(t *testing.T) {
	res := testResult(t)
	sl, err := AnalyzeServerLevel(res, topology.W6, metrics.Daily, nil)
	if err != nil {
		t.Fatal(err)
	}
	savings, err := sl.TCOSavings(tco.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(savings) != len(sl.SLAs) {
		t.Fatalf("savings len = %d", len(savings))
	}
	for i, s := range savings {
		if s < -1e-9 || s > 1 {
			t.Errorf("savings[%d] = %v out of [0,1]", i, s)
		}
	}
	bad := tco.CostModel{}
	if _, err := sl.TCOSavings(bad); err == nil {
		t.Error("invalid cost model should error")
	}
}

func TestAnalyzeComponentLevel(t *testing.T) {
	res := testResult(t)
	cl, err := AnalyzeComponentLevel(res, topology.W1, metrics.Daily, tco.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Approach{LB, MF, SF} {
		if cl.ComponentCostPct[a] < 0 || cl.ServerCostPct[a] < 0 {
			t.Errorf("%v negative cost", a)
		}
		// LB cost <= SF cost in both schemes.
		if cl.ComponentCostPct[LB] > cl.ComponentCostPct[SF]+1e-9 {
			t.Errorf("component LB %.2f > SF %.2f", cl.ComponentCostPct[LB], cl.ComponentCostPct[SF])
		}
		if cl.ServerCostPct[LB] > cl.ServerCostPct[SF]+1e-9 {
			t.Errorf("server LB %.2f > SF %.2f", cl.ServerCostPct[LB], cl.ServerCostPct[SF])
		}
	}
	// The paper's headline: with MF, component-level pools are cheaper
	// than server-level pools (disk/DIMM spares cost 2%/10% of a server).
	if cl.ComponentCostPct[MF] >= cl.ServerCostPct[MF] {
		t.Errorf("MF component cost %.2f%% should beat server cost %.2f%%",
			cl.ComponentCostPct[MF], cl.ServerCostPct[MF])
	}
}

func TestAnalyzeComponentLevelErrors(t *testing.T) {
	res := testResult(t)
	if _, err := AnalyzeComponentLevel(res, topology.W1, metrics.Daily, tco.CostModel{}); err == nil {
		t.Error("invalid cost model should error")
	}
}
