// Package nansafe guards the serve API's JSON stability contract:
// encoding/json rejects NaN and ±Inf outright, and several report
// fields are NaN by design, so every type that reaches json.Marshal or
// (*json.Encoder).Encode with raw float fields must carry a NaN-safe
// MarshalJSON (the finitePtr idiom in rainshine_json.go).
//
// The pass inspects each marshal call's argument type: named struct
// types (or composites reaching them) with float64/float32 fields that
// do not implement json.Marshaler are reported. Calls lexically inside
// a MarshalJSON method are exempt — they are the safe marshalers
// themselves, whose alias-embedding pattern intentionally touches raw
// floats.
package nansafe

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"rainshine/internal/analysis"
)

// Analyzer is the nansafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "nansafe",
	Doc:  "require a NaN-safe MarshalJSON on types with raw float fields that are JSON-marshaled",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := marshaledArg(pass, call)
			if arg == nil || insideMarshalJSON(file, call) {
				return true
			}
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil {
				return true
			}
			if path := rawFloatPath(t, nil); path != "" {
				pass.Reportf(call.Pos(), "json-marshaling %s whose field %s is a raw float: NaN/Inf would fail to encode; add a NaN-safe MarshalJSON (finitePtr idiom)", types.TypeString(deref(t), types.RelativeTo(pass.Pkg)), path)
			}
			return true
		})
	}
	return nil
}

// marshaledArg returns the value argument of a recognized marshal call.
func marshaledArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	fn := analysis.ObjectOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" || len(call.Args) == 0 {
		return nil
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		return call.Args[0]
	}
	return nil
}

func insideMarshalJSON(file *ast.File, call *ast.CallExpr) bool {
	fd, ok := analysis.FuncFor(file, call.Pos()).(*ast.FuncDecl)
	return ok && fd.Name.Name == "MarshalJSON"
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// jsonMarshalerLike reports whether t (or *t) has a MarshalJSON method.
func jsonMarshalerLike(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "MarshalJSON" {
				return true
			}
		}
	}
	return false
}

// rawFloatPath walks t the way encoding/json would and returns the
// dotted path of the first raw float field reached without passing
// through a custom marshaler, or "" when every float is guarded.
func rawFloatPath(t types.Type, seen []*types.Named) string {
	switch t := t.(type) {
	case *types.Pointer:
		return rawFloatPath(t.Elem(), seen)
	case *types.Named:
		for _, s := range seen {
			if s == t {
				return ""
			}
		}
		if jsonMarshalerLike(t) {
			return ""
		}
		return rawFloatPath(t.Underlying(), append(seen, t))
	case *types.Basic:
		if t.Kind() == types.Float64 || t.Kind() == types.Float32 {
			return "(value)"
		}
	case *types.Slice:
		return prefixPath("[]", rawFloatPath(t.Elem(), seen))
	case *types.Array:
		return prefixPath("[]", rawFloatPath(t.Elem(), seen))
	case *types.Map:
		return prefixPath("[]", rawFloatPath(t.Elem(), seen))
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if !f.Exported() && !f.Embedded() {
				continue // unexported fields are not marshaled
			}
			if tag := t.Tag(i); tagSkipsField(tag) {
				continue
			}
			ft := f.Type()
			if b, ok := ft.Underlying().(*types.Basic); ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32) {
				if _, isNamed := ft.(*types.Named); !isNamed || !jsonMarshalerLike(ft) {
					return f.Name()
				}
				continue
			}
			if p := rawFloatPath(ft, seen); p != "" {
				return prefixPath(f.Name()+".", p)
			}
		}
	}
	return ""
}

func prefixPath(prefix, p string) string {
	if p == "" {
		return ""
	}
	if p == "(value)" {
		if prefix == "[]" {
			return "[] element"
		}
		return prefix[:len(prefix)-1]
	}
	return prefix + p
}

// tagSkipsField reports whether a `json:"-"` tag excludes the field.
func tagSkipsField(tag string) bool {
	name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	return name == "-"
}
