package cart

// Histogram-binned split search: the fleet-scale engine behind
// SplitBinned / SplitAuto. Instead of presorting every feature and
// scanning rows at each node, each continuous feature is quantized once
// per Fit into at most Config.Bins quantile bins (byte codes), and the
// per-node search scans bin histograms — O(bins) per feature per node
// after an O(rows) histogram build, with the sibling histogram obtained
// by subtraction so only the smaller child is ever scanned.
//
// Nominal and ordinal features keep their exact search: their level
// sets are the bins (one level, one bin), so the category-ordering scan
// and the ordinal level-order scan evaluate exactly the split positions
// the exact engine evaluates.
//
// Determinism contract: the quantizer samples on a fixed stride, the
// coding pass is chunked on frame.ChunkRows boundaries with per-chunk
// partials merged in chunk order, per-feature scans run through
// parallel.ForEachWorker with per-slot scratch and reduce in feature
// order, and histogram builds pick their shape (feature-parallel for
// wide frames and single-chunk nodes, chunk x feature-parallel with a
// chunk-ordered merge otherwise) from the data shape alone — never from
// the worker count, which would change float accumulation order. The
// permutation partition is a stable scatter whose parallel two-pass
// form produces the identical permutation to the serial form, so that
// choice alone may consult the worker count. The fitted tree is
// byte-identical for every worker count.
//
// Threshold consistency: training routes rows by byte code, prediction
// routes raw floats by Node.Threshold. The coding pass tracks each
// bin's global min and max; a split after bin p (next occupied bin q)
// gets threshold (binMax[p]+binMin[q])/2, which lies strictly between
// the two bins' value ranges, so code <= p and value <= threshold agree
// on every training row.

import (
	"context"
	"math"
	"slices"

	"rainshine/internal/frame"
	"rainshine/internal/parallel"
)

const (
	// binSample caps the per-feature quantile sample size.
	binSample = 8192
	// binGrid is the resolution of the uniform value grid the byte LUT
	// quantizes through: value -> grid cell -> bin.
	binGrid = 1 << 16
	// wideFrameFeatures is the candidate-feature count at which the
	// histogram build stays feature-parallel for multi-chunk nodes: the
	// feature axis alone saturates the worker pool, and per-feature
	// blocks need no per-chunk slabs or merge. Below it, multi-chunk
	// nodes split each feature's scan across chunks. A shape rule only —
	// it must never consult the worker count (see the determinism
	// contract above).
	wideFrameFeatures = 64
)

// binFeat is the per-feature binning metadata.
type binFeat struct {
	// nb is the number of real bins (byte codes 0..nb-1); missing cells
	// code as missingCode. Zero for an all-missing feature.
	nb int

	// Continuous quantizer: code = lut[clamp(int((v-lo)*invCell))].
	lut     []uint8
	lo      float64
	invCell float64

	// Per-bin value ranges, for threshold construction (continuous:
	// observed global min/max; ordinal: the level index itself; nil for
	// nominal).
	binMin, binMax []float64
}

// bsplit is one candidate split plus the finite-case aggregates the
// winning scan saw, so child statistics are derived arithmetically
// instead of by re-scanning rows.
type bsplit struct {
	feature   int
	bin       int // numeric: last byte code routed left
	threshold float64
	leftSet   []uint64
	gain      float64

	nl, sl, ql float64 // regression: finite-left count/sum/sum-of-squares
	nf, sf, qf float64 // regression: finite-total count/sum/sum-of-squares

	leftCounts, totCounts []float64 // classification: per-class analogues
}

// nodeAgg carries a node's response aggregates down the recursion.
type nodeAgg struct {
	n, sum, sq float64   // regression
	counts     []float64 // classification (owned by the node)
}

// binScratch holds one worker slot's reusable scan buffers.
type binScratch struct {
	present []int
	score   []float64

	left, right, total, bestLeft []float64 // class counts
}

func newBinScratch(nClasses, maxNb int) *binScratch {
	sc := &binScratch{
		present: make([]int, 0, maxNb),
		score:   make([]float64, maxNb),
	}
	if nClasses > 0 {
		sc.left = make([]float64, nClasses)
		sc.right = make([]float64, nClasses)
		sc.total = make([]float64, nClasses)
		sc.bestLeft = make([]float64, nClasses)
	}
	return sc
}

type binnedBuilder struct {
	cfg          Config
	ctx          context.Context
	tree         *Tree
	y            []float64
	n            int
	nClasses     int
	rootImpurity float64
	workers      int

	feats []binFeat
	codes [][]uint8 // per feature, original row order

	// perm is the node-ordered row permutation: each node owns a
	// contiguous [lo, hi) range. Partitions scatter perm stably, so the
	// original row order survives inside every node and histogram
	// builds stream monotonically through the code arrays.
	perm, permTmp []int32

	// Flat histogram layout: feature fi occupies [off[fi], off[fi+1]).
	off     []int
	histLen int
	pool    [][]float64

	featSplit []bsplit
	featOK    []bool
	scratch   []*binScratch

	// histPart is the pooled per-chunk slab buffer of the chunk x
	// feature-parallel histogram build (nChunks x histLen); grown lazily,
	// reused across nodes (the tree grows serially, so at most one
	// buildHist is in flight).
	histPart []float64
	// leftCnt holds the per-chunk left-row counts of the two-pass
	// parallel partition.
	leftCnt []int
}

// fitBinned grows the tree with the histogram engine. The Tree arrives
// with Features, ClassLevels, and importanceRaw already populated.
func fitBinned(ctx context.Context, cfg Config, t *Tree, cols []*frame.Column, y []float64) (*Tree, error) {
	b := &binnedBuilder{cfg: cfg, ctx: ctx, tree: t, y: y, n: len(y)}
	if cfg.Task == Classification {
		b.nClasses = len(t.ClassLevels)
	}
	if err := b.prepare(cols); err != nil {
		return nil, err
	}
	agg := b.rootAgg()
	root := b.makeNode(agg)
	b.rootImpurity = root.Impurity
	hist := b.getHist()
	b.buildHist(0, b.n, hist)
	b.grow(root, agg, 0, b.n, hist, 0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.Root = root
	t.numberLeaves()
	return t, nil
}

// prepare codes every feature to bytes and lays out the histogram
// space. Quantizer construction fans over features; the coding pass
// fans over (feature, chunk) tasks on frame.ChunkRows boundaries with
// per-task min/max partials merged in task order.
func (b *binnedBuilder) prepare(cols []*frame.Column) error {
	nf := len(cols)
	b.workers = parallel.Workers(b.cfg.Workers)
	b.feats = make([]binFeat, nf)
	b.codes = make([][]uint8, nf)
	for fi := range cols {
		b.codes[fi] = make([]uint8, b.n)
	}
	b.featSplit = make([]bsplit, nf)
	b.featOK = make([]bool, nf)
	b.perm = make([]int32, b.n)
	for i := range b.perm {
		b.perm[i] = int32(i)
	}
	b.permTmp = make([]int32, b.n)

	err := parallel.ForEach(b.ctx, b.cfg.Workers, nf, func(fi int) error {
		c := cols[fi]
		ft := &b.feats[fi]
		if c.Kind != frame.Continuous {
			nLevels := len(c.Levels)
			ft.nb = nLevels
			if c.Kind == frame.Ordinal {
				ft.binMin = make([]float64, nLevels)
				ft.binMax = make([]float64, nLevels)
				for l := range ft.binMin {
					ft.binMin[l] = float64(l)
					ft.binMax[l] = float64(l)
				}
			}
			return nil
		}
		b.buildQuantizer(ft, c)
		return nil
	})
	if err != nil {
		return err
	}

	if err := b.codeFeatures(cols); err != nil {
		return err
	}

	statW := 3
	if b.cfg.Task == Classification {
		statW = b.nClasses
	}
	b.off = make([]int, nf+1)
	maxNb := 0
	for fi := range b.feats {
		b.off[fi+1] = b.off[fi] + b.feats[fi].nb*statW
		if b.feats[fi].nb > maxNb {
			maxNb = b.feats[fi].nb
		}
	}
	b.histLen = b.off[nf]
	slots := b.workers
	if slots > nf {
		slots = nf
	}
	if slots < 1 {
		slots = 1
	}
	b.scratch = make([]*binScratch, slots)
	for w := range b.scratch {
		b.scratch[w] = newBinScratch(b.nClasses, maxNb)
	}
	return nil
}

// codeFeatures is the coding pass: every feature's cells become byte
// codes in b.codes, missing cells become missingCode, and continuous
// features collect their per-bin value ranges. Typed categorical
// columns copy their uint8 codes straight through; float64-backed cells
// round-trip through validation. Fans over (feature, chunk) tasks with
// per-task min/max partials merged in task order.
func (b *binnedBuilder) codeFeatures(cols []*frame.Column) error {
	nf := len(cols)
	bounds := frame.ChunkBounds(b.n, frame.ChunkRows)
	nTasks := nf * len(bounds)
	partMin := make([][]float64, nTasks)
	partMax := make([][]float64, nTasks)
	err := parallel.ForEach(b.ctx, b.cfg.Workers, nTasks, func(ti int) error {
		fi, ci := ti/len(bounds), ti%len(bounds)
		c := cols[fi]
		ft := &b.feats[fi]
		codes := b.codes[fi]
		if ft.nb == 0 { // all-missing continuous feature
			for r := bounds[ci][0]; r < bounds[ci][1]; r++ {
				codes[r] = missingCode
			}
			return nil
		}
		ch := c.Chunk(bounds[ci][0], bounds[ci][1])
		nulls := c.Nulls()
		if c.Kind != frame.Continuous {
			nb := ft.nb
			if cc := ch.Codes; cc != nil {
				// Typed columns already hold byte codes: a straight copy,
				// rewriting null-marked and out-of-range cells to the
				// missing sentinel — no float64 round-trip.
				if !nulls.Any() {
					for i, cd := range cc {
						if int(cd) >= nb {
							cd = missingCode
						}
						codes[ch.Lo+i] = cd
					}
					return nil
				}
				for i, cd := range cc {
					r := ch.Lo + i
					if int(cd) >= nb || nulls.Get(r) {
						cd = missingCode
					}
					codes[r] = cd
				}
				return nil
			}
			for i, v := range ch.Data {
				r := ch.Lo + i
				code := uint8(missingCode)
				if !nulls.Get(r) && isFinite(v) {
					if l := int(v); l >= 0 && l < nb && float64(l) == v {
						code = uint8(l)
					}
				}
				codes[r] = code
			}
			return nil
		}
		gmin := make([]float64, ft.nb)
		gmax := make([]float64, ft.nb)
		for i := range gmin {
			gmin[i] = math.Inf(1)
			gmax[i] = math.Inf(-1)
		}
		for i, v := range ch.Data {
			r := ch.Lo + i
			if nulls.Get(r) || !isFinite(v) {
				codes[r] = missingCode
				continue
			}
			g := int((v - ft.lo) * ft.invCell)
			if g < 0 {
				g = 0
			} else if g >= binGrid {
				g = binGrid - 1
			}
			cd := ft.lut[g]
			codes[r] = cd
			if v < gmin[cd] {
				gmin[cd] = v
			}
			if v > gmax[cd] {
				gmax[cd] = v
			}
		}
		partMin[ti], partMax[ti] = gmin, gmax
		return nil
	})
	if err != nil {
		return err
	}
	for ti := 0; ti < nTasks; ti++ {
		if partMin[ti] == nil {
			continue
		}
		ft := &b.feats[ti/len(bounds)]
		for c, v := range partMin[ti] {
			if v < ft.binMin[c] {
				ft.binMin[c] = v
			}
			if partMax[ti][c] > ft.binMax[c] {
				ft.binMax[c] = partMax[ti][c]
			}
		}
	}
	return nil
}

// buildQuantizer derives a feature's byte quantizer from a stride
// sample: sort the sample, spread a binGrid-cell uniform grid over its
// range, and group grid cells into at most Config.Bins bins of roughly
// equal sample mass (every bin holds at least one sample point, hence
// at least one training row).
func (b *binnedBuilder) buildQuantizer(ft *binFeat, c *frame.Column) {
	stride := b.n / binSample
	if stride < 1 {
		stride = 1
	}
	sample := make([]float64, 0, binSample+1)
	for r := 0; r < b.n; r += stride {
		if !c.Missing(r) {
			sample = append(sample, c.Data[r])
		}
	}
	if len(sample) == 0 {
		ft.nb = 0
		return
	}
	slices.Sort(sample)
	lo, hi := sample[0], sample[len(sample)-1]
	ft.lo = lo
	ft.lut = make([]uint8, binGrid)
	if hi == lo {
		ft.nb = 1
		ft.invCell = 0
	} else {
		ft.invCell = float64(binGrid) / (hi - lo)
		cellCnt := make([]int32, binGrid)
		for _, v := range sample {
			g := int((v - lo) * ft.invCell)
			if g >= binGrid {
				g = binGrid - 1
			}
			cellCnt[g]++
		}
		m := len(sample)
		bins := b.cfg.Bins
		bin, cum, lastCum := 0, 0, 0
		for j := 0; j < binGrid; j++ {
			cum += int(cellCnt[j])
			ft.lut[j] = uint8(bin)
			// Close the bin once it holds its share of the sample mass;
			// cum > lastCum keeps every bin non-empty, cum < m keeps
			// mass on the right of every boundary.
			if bin < bins-1 && cum > lastCum && cum < m && cum*bins >= (bin+1)*m {
				bin++
				lastCum = cum
			}
		}
		ft.nb = bin + 1
	}
	ft.binMin = make([]float64, ft.nb)
	ft.binMax = make([]float64, ft.nb)
	for i := range ft.binMin {
		ft.binMin[i] = math.Inf(1)
		ft.binMax[i] = math.Inf(-1)
	}
}

// rootAgg aggregates the full response.
func (b *binnedBuilder) rootAgg() nodeAgg {
	if b.cfg.Task == Regression {
		var sum, sq float64
		for _, v := range b.y {
			sum += v
			sq += v * v
		}
		return nodeAgg{n: float64(b.n), sum: sum, sq: sq}
	}
	counts := make([]float64, b.nClasses)
	for _, v := range b.y {
		counts[int(v)]++
	}
	return nodeAgg{n: float64(b.n), counts: counts}
}

// makeNode materializes a node from its aggregates, mirroring the exact
// engine's per-node statistics.
func (b *binnedBuilder) makeNode(a nodeAgg) *Node {
	n := &Node{N: int(a.n), Feature: -1, LeafID: -1}
	if b.cfg.Task == Regression {
		mean := a.sum / a.n
		n.Value = mean
		n.Impurity = a.sq - a.sum*mean
		if n.Impurity < 0 {
			n.Impurity = 0
		}
		return n
	}
	n.ClassCounts = a.counts
	best, bestC := -1.0, 0
	ss := 0.0
	for c, cnt := range a.counts {
		if cnt > best {
			best, bestC = cnt, c
		}
		p := cnt / a.n
		ss += p * p
	}
	n.Value = float64(bestC)
	n.Impurity = a.n * (1 - ss)
	if n.Impurity < 0 {
		n.Impurity = 0
	}
	return n
}

// grow recursively splits the node owning perm[lo:hi]. hist is the
// node's histogram set; ownership transfers here and the buffer is
// recycled or subtracted in place into a child's histogram.
func (b *binnedBuilder) grow(n *Node, agg nodeAgg, lo, hi int, hist []float64, depth int) {
	if depth >= b.cfg.MaxDepth || n.N < b.cfg.MinSplit || n.Impurity <= 1e-12 {
		b.putHist(hist)
		return
	}
	sp, ok := b.bestSplit(hist)
	minGain := 0.0
	if b.cfg.CP > 0 {
		minGain = b.cfg.CP * b.rootImpurity
	}
	if !ok || sp.gain < minGain {
		b.putHist(hist)
		return
	}
	n.Feature = sp.feature
	n.Threshold = sp.threshold
	n.LeftSet = sp.leftSet
	b.tree.importanceRaw[sp.feature] += sp.gain

	lagg, ragg := b.childAggs(n, agg, sp)
	n.Left = b.makeNode(lagg)
	n.Right = b.makeNode(ragg)

	// Children that can never split need no row range: their statistics
	// came from the split aggregates, so the partition (and both child
	// histograms) can be skipped outright.
	d1 := depth + 1
	growL := d1 < b.cfg.MaxDepth && n.Left.N >= b.cfg.MinSplit && n.Left.Impurity > 1e-12
	growR := d1 < b.cfg.MaxDepth && n.Right.N >= b.cfg.MinSplit && n.Right.Impurity > 1e-12
	if !growL && !growR {
		b.putHist(hist)
		return
	}
	mid := b.partition(n, sp, lo, hi, n.Left.N)
	switch {
	case growL && growR:
		// Build the smaller child's histograms; the sibling's follow by
		// subtraction, reusing the parent's buffer in place.
		if n.Left.N <= n.Right.N {
			lh := b.getHist()
			b.buildHist(lo, mid, lh)
			subtractHist(hist, lh)
			b.grow(n.Left, lagg, lo, mid, lh, d1)
			b.grow(n.Right, ragg, mid, hi, hist, d1)
		} else {
			rh := b.getHist()
			b.buildHist(mid, hi, rh)
			subtractHist(hist, rh)
			b.grow(n.Left, lagg, lo, mid, hist, d1)
			b.grow(n.Right, ragg, mid, hi, rh, d1)
		}
	case growL:
		lh := b.getHist()
		b.buildHist(lo, mid, lh)
		b.putHist(hist)
		b.grow(n.Left, lagg, lo, mid, lh, d1)
	default:
		rh := b.getHist()
		b.buildHist(mid, hi, rh)
		b.putHist(hist)
		b.grow(n.Right, ragg, mid, hi, rh, d1)
	}
}

func (b *binnedBuilder) getHist() []float64 {
	if k := len(b.pool); k > 0 {
		h := b.pool[k-1]
		b.pool = b.pool[:k-1]
		clear(h)
		return h
	}
	return make([]float64, b.histLen)
}

func (b *binnedBuilder) putHist(h []float64) {
	if h != nil {
		b.pool = append(b.pool, h)
	}
}

func subtractHist(parent, child []float64) {
	for i, v := range child {
		parent[i] -= v
	}
}

// buildHist accumulates per-feature histograms over perm[lo:hi] into h
// (which arrives zeroed). Counts exclude missing cells (available-case
// splitting); the stable partition keeps perm monotone inside the
// range, so the gathers stream forward through the arrays.
//
// Two fan-out shapes, chosen by data shape alone — never by worker
// count, which would change the float accumulation order and break the
// byte-identical-for-every--workers contract:
//
//   - feature-parallel: one task per feature, each accumulating its
//     disjoint block of h directly (no atomics, no merge). Engages for
//     wide frames (>= wideFrameFeatures candidates), where the feature
//     axis alone saturates the pool, and for single-chunk nodes.
//   - chunk x feature-parallel: narrow frames with multi-chunk nodes
//     split each feature's scan on fixed frame.ChunkRows boundaries
//     into disjoint per-chunk slabs, then merge each feature's slabs in
//     chunk order — a fixed association whatever the worker count.
//
// A canceled context leaves some blocks zero or partial; the scans then
// find little and growth stops, and fitBinned reports ctx.Err().
func (b *binnedBuilder) buildHist(lo, hi int, h []float64) {
	nf := len(b.codes)
	bounds := frame.ChunkBounds(hi-lo, frame.ChunkRows)
	if nf >= wideFrameFeatures || len(bounds) <= 1 {
		_ = parallel.ForEach(b.ctx, b.cfg.Workers, nf, func(fi int) error {
			o := b.off[fi]
			if width := b.off[fi+1] - o; width > 0 {
				b.histFeature(fi, lo, hi, h[o:o+width])
			}
			return nil
		})
		return
	}
	nc := len(bounds)
	need := nc * b.histLen
	if cap(b.histPart) < need {
		b.histPart = make([]float64, need)
	}
	part := b.histPart[:need]
	clear(part)
	_ = parallel.ForEach(b.ctx, b.cfg.Workers, nf*nc, func(ti int) error {
		fi, ci := ti/nc, ti%nc
		o := b.off[fi]
		if width := b.off[fi+1] - o; width > 0 {
			slab := part[ci*b.histLen+o : ci*b.histLen+o+width]
			b.histFeature(fi, lo+bounds[ci][0], lo+bounds[ci][1], slab)
		}
		return nil
	})
	_ = parallel.ForEach(b.ctx, b.cfg.Workers, nf, func(fi int) error {
		o := b.off[fi]
		width := b.off[fi+1] - o
		if width == 0 {
			return nil
		}
		block := h[o : o+width]
		for ci := 0; ci < nc; ci++ {
			slab := part[ci*b.histLen+o : ci*b.histLen+o+width]
			for j, v := range slab {
				block[j] += v
			}
		}
		return nil
	})
}

// histFeature accumulates feature fi's histogram over perm[lo:hi) into
// block (the feature's statW*nb stats, accumulated in row order).
func (b *binnedBuilder) histFeature(fi, lo, hi int, block []float64) {
	codes := b.codes[fi]
	if b.cfg.Task == Regression {
		for i := lo; i < hi; i++ {
			r := b.perm[i]
			c := codes[r]
			if c == missingCode {
				continue
			}
			yv := b.y[r]
			p := 3 * int(c)
			block[p]++
			block[p+1] += yv
			block[p+2] += yv * yv
		}
		return
	}
	k := b.nClasses
	for i := lo; i < hi; i++ {
		r := b.perm[i]
		c := codes[r]
		if c == missingCode {
			continue
		}
		block[int(c)*k+int(b.y[r])]++
	}
}

// bestSplit scans every feature's histogram for the impurity-minimizing
// split. Features scan concurrently; the winner is reduced in feature
// order with a strict greater-than on gain, the exact engine's
// tie-break.
func (b *binnedBuilder) bestSplit(hist []float64) (bsplit, bool) {
	err := parallel.ForEachWorker(b.ctx, b.cfg.Workers, len(b.codes), func(w, fi int) error {
		if b.feats[fi].nb < 2 {
			b.featOK[fi] = false
			return nil
		}
		block := hist[b.off[fi]:b.off[fi+1]]
		if b.tree.Features[fi].Kind == frame.Nominal {
			b.featSplit[fi], b.featOK[fi] = b.bestNominalBinned(b.scratch[w], fi, block)
		} else {
			b.featSplit[fi], b.featOK[fi] = b.bestNumericBinned(b.scratch[w], fi, block)
		}
		return nil
	})
	best := bsplit{feature: -1}
	if err != nil {
		return best, false // canceled: stop growing everywhere
	}
	for fi := range b.featSplit {
		if b.featOK[fi] && b.featSplit[fi].gain > best.gain {
			best = b.featSplit[fi]
		}
	}
	return best, best.feature >= 0
}

// bestNumericBinned scans a continuous or ordinal feature's bins in
// value order, evaluating a split at every boundary between occupied
// bins — for ordinals (one level, one bin) exactly the positions the
// exact engine's sorted-row scan evaluates.
func (b *binnedBuilder) bestNumericBinned(sc *binScratch, fi int, block []float64) (bsplit, bool) {
	ft := &b.feats[fi]
	minLeaf := float64(b.cfg.MinLeaf)
	if b.cfg.Task == Regression {
		var nf, sf, qf float64
		for c := 0; c < ft.nb; c++ {
			nf += block[3*c]
			sf += block[3*c+1]
			qf += block[3*c+2]
		}
		if nf < 2*minLeaf || nf < 2 {
			return bsplit{}, false
		}
		parentImp := qf - sf*sf/nf
		var accN, accS, accQ float64
		bestGain := 0.0
		bestPrev, bestNext := -1, -1
		var bn, bs, bq float64
		prev := -1
		for c := 0; c < ft.nb; c++ {
			cnt := block[3*c]
			if cnt == 0 {
				continue
			}
			if prev >= 0 && accN >= minLeaf && nf-accN >= minLeaf {
				nl, nr := accN, nf-accN
				childImp := (accQ - accS*accS/nl) +
					((qf - accQ) - (sf-accS)*(sf-accS)/nr)
				if g := parentImp - childImp; g > bestGain {
					bestGain = g
					bestPrev, bestNext = prev, c
					bn, bs, bq = accN, accS, accQ
				}
			}
			accN += cnt
			accS += block[3*c+1]
			accQ += block[3*c+2]
			prev = c
		}
		if bestPrev < 0 || bestGain <= 0 {
			return bsplit{}, false
		}
		thr := (ft.binMax[bestPrev] + ft.binMin[bestNext]) / 2
		return bsplit{
			feature: fi, bin: bestPrev, threshold: thr, gain: bestGain,
			nl: bn, sl: bs, ql: bq, nf: nf, sf: sf, qf: qf,
		}, true
	}

	k := b.nClasses
	total := sc.total[:k]
	left := sc.left[:k]
	for j := range total {
		total[j] = 0
		left[j] = 0
	}
	var nf float64
	for c := 0; c < ft.nb; c++ {
		for j := 0; j < k; j++ {
			total[j] += block[c*k+j]
		}
	}
	for _, v := range total {
		nf += v
	}
	if nf < 2*minLeaf || nf < 2 {
		return bsplit{}, false
	}
	parentImp := giniSSE(total, nf)
	var accN float64
	bestGain := 0.0
	bestPrev, bestNext := -1, -1
	prev := -1
	for c := 0; c < ft.nb; c++ {
		var cnt float64
		for j := 0; j < k; j++ {
			cnt += block[c*k+j]
		}
		if cnt == 0 {
			continue
		}
		if prev >= 0 && accN >= minLeaf && nf-accN >= minLeaf {
			childImp := giniFromLeft(left, total, sc.right[:k], accN, nf-accN)
			if g := parentImp - childImp; g > bestGain {
				bestGain = g
				bestPrev, bestNext = prev, c
				copy(sc.bestLeft, left)
			}
		}
		for j := 0; j < k; j++ {
			left[j] += block[c*k+j]
		}
		accN += cnt
		prev = c
	}
	if bestPrev < 0 || bestGain <= 0 {
		return bsplit{}, false
	}
	thr := (ft.binMax[bestPrev] + ft.binMin[bestNext]) / 2
	return bsplit{
		feature: fi, bin: bestPrev, threshold: thr, gain: bestGain,
		leftCounts: append([]float64(nil), sc.bestLeft[:k]...),
		totCounts:  append([]float64(nil), total...),
	}, true
}

// bestNominalBinned runs the optimal category-ordering scan (sort
// levels by mean response, or by first-class proportion, and scan
// boundaries) directly over the level histogram — the same search the
// exact engine performs, computed from aggregates.
func (b *binnedBuilder) bestNominalBinned(sc *binScratch, fi int, block []float64) (bsplit, bool) {
	ft := &b.feats[fi]
	nLevels := ft.nb
	minLeaf := float64(b.cfg.MinLeaf)
	score := sc.score[:nLevels]
	present := sc.present[:0]
	defer func() { sc.present = present[:0] }()

	if b.cfg.Task == Regression {
		var nf, sf, qf float64
		for c := 0; c < nLevels; c++ {
			cnt := block[3*c]
			nf += cnt
			sf += block[3*c+1]
			qf += block[3*c+2]
			if cnt > 0 {
				present = append(present, c)
				score[c] = block[3*c+1] / cnt
			}
		}
		if nf < 2*minLeaf || nf < 2 || len(present) < 2 {
			return bsplit{}, false
		}
		slices.SortFunc(present, func(a, c int) int {
			switch {
			case score[a] < score[c]:
				return -1
			case score[a] > score[c]:
				return 1
			}
			return 0
		})
		parentImp := qf - sf*sf/nf
		var accN, accS, accQ float64
		bestGain := 0.0
		bestCut := -1
		var bn, bs, bq float64
		for ki := 0; ki < len(present)-1; ki++ {
			c := present[ki]
			accN += block[3*c]
			accS += block[3*c+1]
			accQ += block[3*c+2]
			nl, nr := accN, nf-accN
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			childImp := (accQ - accS*accS/nl) +
				((qf - accQ) - (sf-accS)*(sf-accS)/nr)
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestCut = g, ki
				bn, bs, bq = accN, accS, accQ
			}
		}
		if bestCut < 0 || bestGain <= 0 {
			return bsplit{}, false
		}
		set := make([]uint64, (nLevels+63)/64)
		for ki := 0; ki <= bestCut; ki++ {
			c := present[ki]
			set[c/64] |= 1 << (uint(c) % 64)
		}
		return bsplit{
			feature: fi, leftSet: set, gain: bestGain,
			nl: bn, sl: bs, ql: bq, nf: nf, sf: sf, qf: qf,
		}, true
	}

	k := b.nClasses
	total := sc.total[:k]
	left := sc.left[:k]
	for j := range total {
		total[j] = 0
		left[j] = 0
	}
	var nf float64
	for c := 0; c < nLevels; c++ {
		var cnt float64
		for j := 0; j < k; j++ {
			cnt += block[c*k+j]
			total[j] += block[c*k+j]
		}
		nf += cnt
		if cnt > 0 {
			present = append(present, c)
			score[c] = block[c*k] / cnt // first-class proportion
		}
	}
	if nf < 2*minLeaf || nf < 2 || len(present) < 2 {
		return bsplit{}, false
	}
	slices.SortFunc(present, func(a, c int) int {
		switch {
		case score[a] < score[c]:
			return -1
		case score[a] > score[c]:
			return 1
		}
		return 0
	})
	parentImp := giniSSE(total, nf)
	var accN float64
	bestGain := 0.0
	bestCut := -1
	for ki := 0; ki < len(present)-1; ki++ {
		c := present[ki]
		var cnt float64
		for j := 0; j < k; j++ {
			left[j] += block[c*k+j]
			cnt += block[c*k+j]
		}
		accN += cnt
		nl, nr := accN, nf-accN
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		childImp := giniFromLeft(left, total, sc.right[:k], nl, nr)
		if g := parentImp - childImp; g > bestGain {
			bestGain, bestCut = g, ki
			copy(sc.bestLeft, left)
		}
	}
	if bestCut < 0 || bestGain <= 0 {
		return bsplit{}, false
	}
	set := make([]uint64, (nLevels+63)/64)
	for ki := 0; ki <= bestCut; ki++ {
		c := present[ki]
		set[c/64] |= 1 << (uint(c) % 64)
	}
	return bsplit{
		feature: fi, leftSet: set, gain: bestGain,
		leftCounts: append([]float64(nil), sc.bestLeft[:k]...),
		totCounts:  append([]float64(nil), total...),
	}, true
}

// childAggs derives both children's aggregates from the parent's and
// the winning split's finite-case aggregates: missing rows are the
// difference between the parent and the split feature's finite total,
// and they follow the majority (finite) child, matching the exact
// engine's partition. Sets n.DefaultLeft.
func (b *binnedBuilder) childAggs(n *Node, parent nodeAgg, sp bsplit) (l, r nodeAgg) {
	if b.cfg.Task == Regression {
		missN := parent.n - sp.nf
		missS := parent.sum - sp.sf
		missQ := parent.sq - sp.qf
		n.DefaultLeft = sp.nl >= sp.nf-sp.nl
		l = nodeAgg{n: sp.nl, sum: sp.sl, sq: sp.ql}
		if n.DefaultLeft {
			l.n += missN
			l.sum += missS
			l.sq += missQ
		}
		r = nodeAgg{n: parent.n - l.n, sum: parent.sum - l.sum, sq: parent.sq - l.sq}
		return l, r
	}
	k := b.nClasses
	lc := make([]float64, k)
	var fl, fr float64
	for j := 0; j < k; j++ {
		lc[j] = sp.leftCounts[j]
		fl += sp.leftCounts[j]
		fr += sp.totCounts[j] - sp.leftCounts[j]
	}
	n.DefaultLeft = fl >= fr
	if n.DefaultLeft {
		for j := 0; j < k; j++ {
			lc[j] += parent.counts[j] - sp.totCounts[j]
		}
	}
	rc := make([]float64, k)
	var ln, rn float64
	for j := 0; j < k; j++ {
		rc[j] = parent.counts[j] - lc[j]
		ln += lc[j]
		rn += rc[j]
	}
	l = nodeAgg{n: ln, counts: lc}
	r = nodeAgg{n: rn, counts: rc}
	return l, r
}

// partition stably scatters perm[lo:hi] into [left | right] by byte
// code through a 256-entry route table, so the row scan is branch-free.
// Missing rows (code 255) follow DefaultLeft. Returns the boundary.
//
// Multi-chunk nodes with a real worker pool run a two-pass parallel
// scatter: count each chunk's left rows, prefix-sum the per-chunk
// cursors, then scatter every chunk into its disjoint target ranges.
// Chunk order is row order, so the result is the identical permutation
// the serial scatter produces — which is why this choice alone may
// consult the worker count (unlike histogram shapes, no float
// accumulation is at stake).
func (b *binnedBuilder) partition(n *Node, sp bsplit, lo, hi, leftN int) int {
	var tab [256]uint8
	if b.tree.Features[sp.feature].Kind == frame.Nominal {
		for c := 0; c < b.feats[sp.feature].nb; c++ {
			if n.inLeftSet(c) {
				tab[c] = 1
			}
		}
	} else {
		for c := 0; c <= sp.bin; c++ {
			tab[c] = 1
		}
	}
	if n.DefaultLeft {
		tab[missingCode] = 1
	}
	codes := b.codes[sp.feature]
	tmp := b.permTmp
	if bounds := frame.ChunkBounds(hi-lo, frame.ChunkRows); b.workers > 1 && len(bounds) > 1 {
		nc := len(bounds)
		if cap(b.leftCnt) < nc {
			b.leftCnt = make([]int, nc)
		}
		lefts := b.leftCnt[:nc]
		err := parallel.ForEach(b.ctx, b.cfg.Workers, nc, func(ci int) error {
			cnt := 0
			for i := lo + bounds[ci][0]; i < lo+bounds[ci][1]; i++ {
				cnt += int(tab[codes[b.perm[i]]])
			}
			lefts[ci] = cnt
			return nil
		})
		if err == nil {
			// Cursor bases per chunk: lefts (rights) of earlier chunks
			// land first in the left (right) half.
			leftBefore := 0
			for ci := 0; ci < nc; ci++ {
				lb := leftBefore
				leftBefore += lefts[ci]
				lefts[ci] = lb
			}
			_ = parallel.ForEach(b.ctx, b.cfg.Workers, nc, func(ci int) error {
				l := lo + lefts[ci]
				rr := lo + leftN + (bounds[ci][0] - lefts[ci])
				for i := lo + bounds[ci][0]; i < lo+bounds[ci][1]; i++ {
					row := b.perm[i]
					t := int(tab[codes[row]])
					mask := -t // t==1: all ones selects the left cursor
					pos := (l & mask) | (rr &^ mask)
					tmp[pos] = row
					l += t
					rr += 1 - t
				}
				return nil
			})
			copy(b.perm[lo:hi], tmp[lo:hi])
			return lo + leftN
		}
		// Canceled mid-count: fall through to the serial scatter, whose
		// result is valid regardless; growth stops at the next checkpoint.
	}
	l, rr := lo, lo+leftN
	for i := lo; i < hi; i++ {
		row := b.perm[i]
		t := int(tab[codes[row]])
		mask := -t // t==1: all ones selects the left cursor
		pos := (l & mask) | (rr &^ mask)
		tmp[pos] = row
		l += t
		rr += 1 - t
	}
	copy(b.perm[lo:hi], tmp[lo:hi])
	return lo + leftN
}
