package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/64 draws", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	root := New(11)
	// Consume state from the root; splits must not be affected.
	for i := 0; i < 10; i++ {
		root.Uint64()
	}
	a := root.Split("climate")
	b := New(11).Split("climate")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split depends on parent stream state; it must be pure")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	root := New(3)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("label streams matched %d/64 draws", same)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	root := New(3)
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		v := root.SplitIndex("rack", i).Uint64()
		if j, ok := seen[v]; ok {
			t.Fatalf("SplitIndex %d and %d produced identical first draw", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 20; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(DefaultSeed)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(1)
	for n := 1; n < 40; n++ {
		for i := 0; i < 100; i++ {
			v := s.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := mix(0x12345678)
	total := 0
	for bit := 0; bit < 64; bit++ {
		d := mix(0x12345678 ^ (1 << bit))
		diff := base ^ d
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		total += n
	}
	avg := float64(total) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("mix avalanche average %.1f bits, want ~32", avg)
	}
}
