package faults

import (
	"errors"
	"time"

	"rainshine/internal/rng"
)

// ErrInjectedBuild is the sentinel every chaos-injected build failure
// returns. Its message is deliberately fixed — no attempt numbers, no
// timestamps — so a degraded response that quotes it is byte-stable
// across runs of the same seed.
var ErrInjectedBuild = errors.New("chaos: injected build failure")

// ChaosConfig parameterizes the serving tier's deterministic fault
// plan: which build attempts fail, which requests see latency spikes,
// and which clients drain their responses slowly. Like every injector
// in this package it is seed-driven — the same seed and the same
// attempt/request sequence produce the same faults.
type ChaosConfig struct {
	// Seed roots the chaos decision streams (0 means rng.DefaultSeed).
	Seed uint64
	// BuildFailAfter > 0 fails every build attempt after the Nth per
	// study key: attempt 1..N succeed, N+1.. fail. This is the
	// structural knob the soak test uses — it guarantees a last-good
	// study exists before failures start, independent of scheduling.
	BuildFailAfter int
	// BuildFailRate is the per-attempt probability of an injected build
	// failure, decided deterministically per (seed, key, attempt).
	BuildFailRate float64
	// LatencyRate is the per-request probability of an injected latency
	// spike, uniform in (0, LatencySpike].
	LatencyRate  float64
	LatencySpike time.Duration
	// SlowClientRate is the per-request probability that the response
	// body drains in SlowChunk-byte writes with SlowDelay pauses — the
	// slow-client (trickle-read) simulation.
	SlowClientRate float64
	SlowChunk      int
	SlowDelay      time.Duration

	// Stream-delivery defects: the stream layer perturbs a canonical
	// record sequence with these decisions before replay (see
	// stream.CorruptRecords). Each decision is a pure function of
	// (seed, record sequence position).
	//
	// StreamReorderRate defers a record's delivery into the next
	// observation day — out of order, but within the maintainer's
	// default lateness slack, so no data is lost.
	StreamReorderRate float64
	// StreamDuplicateRate re-delivers an event or ticket record
	// immediately (same sequence number; the maintainer must quarantine
	// the copy as DuplicateEvent).
	StreamDuplicateRate float64
	// StreamLateRate defers a record by StreamLateDays observation
	// days — past the watermark, so the maintainer quarantines it as
	// LateArrival. StreamLateDays zero means 3.
	StreamLateRate float64
	StreamLateDays int
}

// DefaultChaos is the fault mix behind the serve daemon's -chaos flag:
// every class enabled at rates that keep the daemon mostly available
// while exercising all degradation paths.
func DefaultChaos(seed uint64) ChaosConfig {
	return ChaosConfig{
		Seed:           seed,
		BuildFailRate:  0.2,
		LatencyRate:    0.1,
		LatencySpike:   150 * time.Millisecond,
		SlowClientRate: 0.05,
		SlowChunk:      512,
		SlowDelay:      2 * time.Millisecond,
	}
}

// Enabled reports whether any chaos class is active.
func (c ChaosConfig) Enabled() bool {
	return c.BuildFailAfter > 0 || c.BuildFailRate > 0 ||
		c.LatencyRate > 0 || c.SlowClientRate > 0 || c.StreamEnabled()
}

// StreamEnabled reports whether any stream-delivery defect is active.
func (c ChaosConfig) StreamEnabled() bool {
	return c.StreamReorderRate > 0 || c.StreamDuplicateRate > 0 || c.StreamLateRate > 0
}

// Chaos makes the fault plan's per-attempt and per-request decisions.
// Every decision derives a fresh labelled stream from the root seed
// (rng.Source.Split is a pure function of seed and label, consuming no
// shared state), so Chaos is safe for concurrent use and a decision
// depends only on (seed, key, attempt) or (seed, sequence number) —
// never on goroutine interleaving.
type Chaos struct {
	cfg ChaosConfig
	src *rng.Source
}

// NewChaos builds the decision-maker for cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	if cfg.SlowChunk < 1 {
		cfg.SlowChunk = 512
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = time.Millisecond
	}
	return &Chaos{cfg: cfg, src: rng.New(seed).Split("chaos")}
}

// BuildFault decides whether build attempt n (1-based) for the study
// key fails, returning ErrInjectedBuild when it does.
func (c *Chaos) BuildFault(key string, attempt int) error {
	if c == nil {
		return nil
	}
	if c.cfg.BuildFailAfter > 0 && attempt > c.cfg.BuildFailAfter {
		return ErrInjectedBuild
	}
	if c.cfg.BuildFailRate > 0 {
		s := c.src.Split("build:"+key).SplitIndex("attempt", attempt)
		if s.Float64() < c.cfg.BuildFailRate {
			return ErrInjectedBuild
		}
	}
	return nil
}

// Latency returns the injected delay for request seq, zero for most.
func (c *Chaos) Latency(seq uint64) time.Duration {
	if c == nil || c.cfg.LatencyRate <= 0 || c.cfg.LatencySpike <= 0 {
		return 0
	}
	s := c.src.Split("latency").SplitIndex("req", int(seq))
	if s.Float64() >= c.cfg.LatencyRate {
		return 0
	}
	// (0, LatencySpike]: a selected request always stalls a little.
	return time.Duration((1 - s.Float64()) * float64(c.cfg.LatencySpike))
}

// StreamReorder decides whether the record at sequence position pos is
// deferred into the next observation day (out-of-order delivery within
// the lateness slack).
func (c *Chaos) StreamReorder(pos int) bool {
	if c == nil || c.cfg.StreamReorderRate <= 0 {
		return false
	}
	return c.src.Split("stream:reorder").SplitIndex("rec", pos).Float64() < c.cfg.StreamReorderRate
}

// StreamDuplicate decides whether the record at sequence position pos
// is re-delivered immediately after itself.
func (c *Chaos) StreamDuplicate(pos int) bool {
	if c == nil || c.cfg.StreamDuplicateRate <= 0 {
		return false
	}
	return c.src.Split("stream:duplicate").SplitIndex("rec", pos).Float64() < c.cfg.StreamDuplicateRate
}

// StreamLate decides whether the record at sequence position pos is
// delivered late, returning how many observation days its delivery is
// deferred (past the watermark by construction).
func (c *Chaos) StreamLate(pos int) (days int, ok bool) {
	if c == nil || c.cfg.StreamLateRate <= 0 {
		return 0, false
	}
	if c.src.Split("stream:late").SplitIndex("rec", pos).Float64() >= c.cfg.StreamLateRate {
		return 0, false
	}
	days = c.cfg.StreamLateDays
	if days == 0 {
		days = 3
	}
	return days, true
}

// SlowClient decides whether request seq drains its response slowly,
// returning the chunk size and per-chunk delay when it does.
func (c *Chaos) SlowClient(seq uint64) (chunk int, delay time.Duration, ok bool) {
	if c == nil || c.cfg.SlowClientRate <= 0 {
		return 0, 0, false
	}
	s := c.src.Split("slowclient").SplitIndex("req", int(seq))
	if s.Float64() >= c.cfg.SlowClientRate {
		return 0, 0, false
	}
	return c.cfg.SlowChunk, c.cfg.SlowDelay, true
}
