// Package goleak enforces the goroutine-lifecycle contract: every
// `go` statement in production code must be joined or bounded, so a
// crashing or wedged goroutine cannot outlive the work that spawned
// it. A spawn passes if its enclosing function
//
//  1. joins through a sync.WaitGroup (a `.Wait()` call on a WaitGroup
//     anywhere in the function — deferred joins precede the spawn
//     lexically);
//  2. joins through a channel: a receive, select, or range over a
//     channel after the spawn; or
//  3. bounds the goroutine with a cancellable context: the spawned
//     expression references a context that is either a parameter of
//     the enclosing function or was created there via
//     context.WithCancel/WithTimeout/WithDeadline or
//     signal.NotifyContext.
//
// Rule 3 is hollow when the spawned function ignores its context, so
// the analyzer exports a CtxIgnored fact for every function whose
// context parameter has zero uses; `go f(ctx)` against such an f is
// flagged even though ctx is in scope — across package boundaries,
// through the fact store.
package goleak

import (
	"go/ast"
	"go/types"

	"rainshine/internal/analysis"
)

// Analyzer is the goleak pass.
var Analyzer = &analysis.Analyzer{
	Name:      "goleak",
	Doc:       "require every spawned goroutine to be joined (WaitGroup, channel) or bounded by a cancellable context",
	Run:       run,
	FactTypes: []analysis.Fact{&CtxIgnored{}},
}

// CtxIgnored marks a function that takes a context.Context parameter
// and never reads it: passing such a function a cancellable context
// does not bound its lifetime.
type CtxIgnored struct{}

// FactKind implements analysis.Fact.
func (*CtxIgnored) FactKind() string { return "goleak.ctxIgnored" }

func run(pass *analysis.Pass) error {
	// Fact export first, so same-package spawns see their callees'
	// facts in the same pass.
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		exportCtxFacts(pass, file)
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkSpawns(pass, file)
	}
	return nil
}

// exportCtxFacts records CtxIgnored for every declared function whose
// context parameter is never used in its body.
func exportCtxFacts(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Type.Params == nil {
			continue
		}
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil || name.Name == "_" || !isContext(obj.Type()) {
					continue
				}
				if !usesObject(pass.TypesInfo, fd.Body, obj) {
					if def := pass.TypesInfo.Defs[fd.Name]; def != nil {
						pass.ExportObjectFact(def, &CtxIgnored{})
					}
				}
			}
		}
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func usesObject(info *types.Info, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

func checkSpawns(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		enclosing := analysis.FuncFor(file, g.Pos())
		if enclosing == nil {
			return true
		}
		if waitGroupJoined(pass, enclosing) || channelJoined(pass, enclosing, g) {
			return true
		}
		ctxs := contextsReferenced(pass, g)
		bounded := false
		for _, obj := range ctxs {
			if cancellableOrigin(pass, file, obj) {
				bounded = true
				break
			}
		}
		if !bounded {
			pass.Reportf(g.Pos(), "goroutine is never joined: add a WaitGroup or channel join, or bound it with a cancellable context")
			return true
		}
		// The context justification is void when the spawned function
		// provably ignores its context parameter.
		if fn := analysis.ObjectOf(pass.TypesInfo, g.Call); fn != nil {
			if _, ok := pass.ImportObjectFact(fn, (&CtxIgnored{}).FactKind()); ok {
				pass.Reportf(g.Pos(), "goroutine bounded only by a context that %s ignores: honor ctx in the callee or join the goroutine", fn.Name())
			}
		}
		return true
	})
}

// waitGroupJoined reports whether fn contains a sync.WaitGroup Wait
// call anywhere (deferred joins appear before the spawn, loop joins
// after; either orders the shutdown).
func waitGroupJoined(pass *analysis.Pass, fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		f := analysis.ObjectOf(pass.TypesInfo, call)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" && f.Name() == "Wait" {
			found = true
		}
		return !found
	})
	return found
}

// channelJoined reports whether fn contains a channel receive, select,
// or range over a channel lexically after the spawn.
func channelJoined(pass *analysis.Pass, fn ast.Node, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.Pos() <= g.End() && n != fn {
			// Only subtrees that can reach past the spawn matter.
			if n.End() <= g.End() {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.OpPos > g.End() && n.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			if n.Pos() > g.End() {
				found = true
			}
		case *ast.RangeStmt:
			if n.Pos() > g.End() {
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// contextsReferenced collects the context.Context-typed objects the
// spawned call expression references (callee and arguments, including
// captures inside a spawned function literal).
func contextsReferenced(pass *analysis.Pass, g *ast.GoStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] || !isContext(obj.Type()) {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// cancellableOrigin reports whether obj is a context whose cancel is
// reachable from this file: a function parameter (the caller owns the
// cancel) or a local created by a With*/NotifyContext constructor.
func cancellableOrigin(pass *analysis.Pass, file *ast.File, obj types.Object) bool {
	origin := false
	ast.Inspect(file, func(n ast.Node) bool {
		if origin {
			return false
		}
		switch n := n.(type) {
		case *ast.Field:
			for _, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj {
					origin = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				for _, rhs := range n.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isCancellableCtor(pass.TypesInfo, call) {
						origin = true
					}
				}
			}
		}
		return !origin
	})
	return origin
}

func isCancellableCtor(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.ObjectOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "context":
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
			return true
		}
	case "os/signal":
		return fn.Name() == "NotifyContext"
	}
	return false
}
