// Package a exercises the lockorder rules: copied locks, blocking
// while a mutex is held, and lock-order inversions, including the
// Blocks/Locks facts imported from package lockdep.
package a

import (
	"sync"
	"time"

	"lockdep"
)

type cache struct {
	mu    sync.Mutex
	items map[string]int
}

func (c cache) size() int { // want `value receiver but its type contains sync.Mutex`
	return len(c.items)
}

func (c *cache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = map[string]int{}
}

func sum(c cache) int { // want `value containing sync.Mutex`
	return len(c.items)
}

func sumPtr(c *cache) int {
	return len(c.items)
}

func blockUnderLock(c *cache, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items["x"] = <-ch // want `channel receive while a.cache.mu is held`
}

func sleepUnderLock(c *cache) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while a.cache.mu is held`
	c.mu.Unlock()
}

func unlockThenBlock(c *cache, ch chan int) {
	c.mu.Lock()
	c.items["y"] = 1
	c.mu.Unlock()
	<-ch
}

func depBlockUnderLock(c *cache, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items["z"] = lockdep.Fill(ch) // want `call to Fill, which blocks, while a.cache.mu is held`
}

func waitForever(ch chan int) int {
	return lockdep.Fill(ch)
}

func indirectBlockUnderLock(c *cache, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items["w"] = waitForever(ch) // want `call to waitForever, which blocks, while a.cache.mu is held`
}

func depLockUnderLock(c *cache, p *lockdep.Pool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items["v"] = p.Get()
}

func spawnUnderLockIsFine(c *cache, ch chan int) {
	var wg sync.WaitGroup
	c.mu.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	c.mu.Unlock()
	wg.Wait()
}

type left struct {
	mu sync.Mutex
}

type right struct {
	mu sync.Mutex
}

func lockBoth(l *left, r *right) {
	l.mu.Lock()
	r.mu.Lock() // want `lock order inversion: a.left.mu and a.right.mu are acquired in both orders`
	r.mu.Unlock()
	l.mu.Unlock()
}

func lockBothReversed(l *left, r *right) {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}
