// Package frame is the analysistest twin of rainshine/internal/frame:
// just enough surface for the aliasing rules. The analyzer skips the
// package defining Frame, so nothing here is flagged.
package frame

// Frame is a column-oriented table.
type Frame struct {
	cols  map[string][]float64
	names []string
}

// New returns an empty frame the caller owns.
func New() *Frame {
	return &Frame{cols: map[string][]float64{}}
}

// ShallowClone copies the column directory; the caller may attach
// columns without affecting the original.
func (f *Frame) ShallowClone() *Frame {
	g := New()
	g.names = append(g.names, f.names...)
	for k, v := range f.cols {
		g.cols[k] = v
	}
	return g
}

// Subset returns a new frame holding the selected rows.
func (f *Frame) Subset(rows []int) *Frame { return f.ShallowClone() }

// AddContinuous attaches a float column in place.
func (f *Frame) AddContinuous(name string, data []float64) {
	f.cols[name] = data
	f.names = append(f.names, name)
}

// AddNominalInts attaches a categorical column in place.
func (f *Frame) AddNominalInts(name string, data []int) {
	vals := make([]float64, len(data))
	for i, v := range data {
		vals[i] = float64(v)
	}
	f.AddContinuous(name, vals)
}
