// Package frameclone guards the shared-frame aliasing contract: a
// *frame.Frame received as a parameter of an exported function is
// potentially shared with concurrent readers, so attaching columns to
// it (AddContinuous and friends) without first re-pointing the variable
// at a ShallowClone (or another fresh frame) is the exact race class
// the predict/skucmp fixes closed by hand.
//
// The pass tracks, in source order, which frame-typed variables alias a
// parameter: an assignment from ShallowClone/Subset/Filter/Select or
// frame.New cleanses the variable, a plain alias (work := f) inherits
// the taint. Mutating calls on a still-tainted variable are reported.
// Unexported functions are builders operating on locally owned frames
// and are exempt; the package defining Frame is the implementation and
// is skipped entirely.
package frameclone

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rainshine/internal/analysis"
)

// Analyzer is the frameclone pass.
var Analyzer = &analysis.Analyzer{
	Name: "frameclone",
	Doc:  "require ShallowClone before attaching columns to a parameter-received *frame.Frame in exported functions",
	Run:  run,
}

// mutators are the column-attaching frame methods.
var mutators = map[string]bool{
	"AddContinuous":     true,
	"AddNominalInts":    true,
	"AddNominalStrings": true,
	"AddOrdinalInts":    true,
}

// cleansers are the frame methods returning a frame the caller owns.
var cleansers = map[string]bool{
	"ShallowClone": true,
	"Subset":       true,
	"Filter":       true,
	"Select":       true,
}

func run(pass *analysis.Pass) error {
	if definesFrame(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// definesFrame reports whether pkg is the frame implementation itself.
func definesFrame(pkg *types.Package) bool {
	obj, ok := pkg.Scope().Lookup("Frame").(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "ShallowClone" {
			return true
		}
	}
	return false
}

// isFramePtr matches *frame.Frame (any package whose Frame type has a
// ShallowClone method, so the analysistest fixture twin counts too).
func isFramePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Frame" {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "ShallowClone" {
			return true
		}
	}
	return false
}

// event is one taint-relevant statement, replayed in source order.
type event struct {
	pos token.Pos
	run func(tainted map[*types.Var]bool, report func(token.Pos, string))
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Seed the taint set with the frame-typed parameters.
	tainted := map[*types.Var]bool{}
	sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isFramePtr(p.Type()) {
			tainted[p] = true
		}
	}
	if len(tainted) == 0 {
		return
	}

	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, assignEvents(pass, n)...)
		case *ast.CallExpr:
			if ev, ok := mutationEvent(pass, n); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		ev.run(tainted, func(pos token.Pos, name string) {
			pass.Reportf(pos, "attaching a column to %s, which aliases a parameter frame shared with the caller; ShallowClone it first", name)
		})
	}
}

// assignEvents classifies each lhs := rhs pair: cleansing calls clear
// the taint, plain aliases of tainted variables propagate it.
func assignEvents(pass *analysis.Pass, as *ast.AssignStmt) []event {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []event
	for i := range as.Lhs {
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
		if !ok || !isFramePtr(obj.Type()) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		switch {
		case isCleansingExpr(pass, rhs):
			out = append(out, event{as.Pos(), func(t map[*types.Var]bool, _ func(token.Pos, string)) { delete(t, obj) }})
		case aliasSource(pass, rhs) != nil:
			src := aliasSource(pass, rhs)
			out = append(out, event{as.Pos(), func(t map[*types.Var]bool, _ func(token.Pos, string)) {
				if t[src] {
					t[obj] = true
				} else {
					delete(t, obj)
				}
			}})
		default:
			out = append(out, event{as.Pos(), func(t map[*types.Var]bool, _ func(token.Pos, string)) { delete(t, obj) }})
		}
	}
	return out
}

// isCleansingExpr matches f.ShallowClone()/Subset/Filter/Select and
// frame.New-style constructors.
func isCleansingExpr(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.ObjectOf(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return cleansers[fn.Name()] && isFramePtr(sig.Recv().Type())
	}
	return fn.Name() == "New" && isFrameConstructor(fn)
}

func isFrameConstructor(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isFramePtr(sig.Results().At(0).Type())
}

// aliasSource returns the variable a bare identifier RHS refers to.
func aliasSource(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// mutationEvent matches x.AddContinuous(...) etc. with x a tracked var.
func mutationEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return event{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return event{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isFramePtr(sig.Recv().Type()) {
		return event{}, false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return event{}, false
	}
	obj, ok := pass.TypesInfo.ObjectOf(recv).(*types.Var)
	if !ok {
		return event{}, false
	}
	return event{call.Pos(), func(t map[*types.Var]bool, report func(token.Pos, string)) {
		if t[obj] {
			report(call.Pos(), recv.Name)
		}
	}}, true
}
