// Package tco is the parametric total-cost-of-ownership model behind the
// paper's savings estimates (Table IV, Fig 13, and the Q2 procurement
// scenarios). It follows the structure of Kontorinis et al. [24], which
// the paper cites: a share of TCO scales with provisioned server count
// (server capex, power infrastructure), the rest is fixed (facility,
// staffing, base energy). Relative component prices come from the
// commercial estimator the paper used: server:disk:DIMM = 100:2:10.
package tco

import (
	"errors"
	"fmt"
)

// CostModel holds the cost parameters.
type CostModel struct {
	// Unit costs in arbitrary consistent units (paper ratio 100:2:10).
	ServerUnit float64
	DiskUnit   float64
	DIMMUnit   float64
	// ScalingShare is the fraction of TCO proportional to provisioned
	// server capacity (capex + power infrastructure); FixedShare is the
	// remainder. They must sum to 1.
	ScalingShare float64
	FixedShare   float64
	// RepairCost is the maintenance cost per failure event, in the same
	// units as ServerUnit (truck roll + part + labour).
	RepairCost float64
}

// Default returns the calibrated model.
func Default() CostModel {
	return CostModel{
		ServerUnit:   100,
		DiskUnit:     2,
		DIMMUnit:     10,
		ScalingShare: 0.75,
		FixedShare:   0.25,
		RepairCost:   8,
	}
}

// Validate checks internal consistency.
func (m CostModel) Validate() error {
	if m.ServerUnit <= 0 || m.DiskUnit <= 0 || m.DIMMUnit <= 0 {
		return errors.New("tco: unit costs must be positive")
	}
	if m.ScalingShare < 0 || m.FixedShare < 0 {
		return errors.New("tco: negative shares")
	}
	if s := m.ScalingShare + m.FixedShare; s < 0.999 || s > 1.001 {
		return fmt.Errorf("tco: shares sum to %v, want 1", s)
	}
	return nil
}

// RelativeSavings returns the fractional TCO savings of provisioning at
// over-provision fraction fAlt instead of fBase (both as fractions of
// base capacity, e.g. 0.20 for 20% spares). Positive means fAlt is
// cheaper. Savings saturate through the fixed share: halving spares does
// not halve TCO.
func (m CostModel) RelativeSavings(fBase, fAlt float64) float64 {
	base := m.FixedShare + m.ScalingShare*(1+fBase)
	alt := m.FixedShare + m.ScalingShare*(1+fAlt)
	return (base - alt) / base
}

// SpareCost prices a spare pool.
func (m CostModel) SpareCost(servers, disks, dimms float64) float64 {
	return servers*m.ServerUnit + disks*m.DiskUnit + dimms*m.DIMMUnit
}

// ProcurementScenario compares two SKUs for hosting a workload on
// nServers, given their spare requirements (fractions), their average
// failure rates (repairs per server per year), their relative prices,
// and a time horizon. It returns the relative TCO savings of choosing
// SKU A over SKU B (positive = A cheaper). This is the Q2 decision:
// the SF and MF approaches disagree on spareFrac/failPerServerYear
// inputs, and therefore on the verdict.
type ProcurementScenario struct {
	Model        CostModel
	HorizonYears float64
	// PriceA and PriceB are per-server prices relative to ServerUnit
	// (1.0 = baseline).
	PriceA, PriceB float64
	// SpareFracA/B is the spare capacity each SKU needs.
	SpareFracA, SpareFracB float64
	// FailPerServerYearA/B drives maintenance cost.
	FailPerServerYearA, FailPerServerYearB float64
}

// Savings returns the relative TCO savings of SKU A over SKU B.
func (s ProcurementScenario) Savings() (float64, error) {
	if err := s.Model.Validate(); err != nil {
		return 0, err
	}
	if s.HorizonYears <= 0 {
		return 0, errors.New("tco: non-positive horizon")
	}
	costA := s.perServerTCO(s.PriceA, s.SpareFracA, s.FailPerServerYearA)
	costB := s.perServerTCO(s.PriceB, s.SpareFracB, s.FailPerServerYearB)
	return (costB - costA) / costB, nil
}

// perServerTCO computes the per-server cost over the horizon: hardware
// (with spares), the fixed facility share, and repairs.
func (s ProcurementScenario) perServerTCO(price, spareFrac, failPerYear float64) float64 {
	m := s.Model
	hardware := price * m.ServerUnit * (1 + spareFrac)
	// Fixed facility share, expressed per unit of baseline server cost
	// so that hardware:fixed follows ScalingShare:FixedShare at baseline.
	fixed := m.ServerUnit * m.FixedShare / m.ScalingShare
	repairs := failPerYear * s.HorizonYears * m.RepairCost
	return hardware + fixed + repairs
}
