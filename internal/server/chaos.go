package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rainshine"
	"rainshine/internal/faults"
)

// chaosState pairs the deterministic fault plan with the request
// sequence counter that indexes its per-request decisions.
type chaosState struct {
	ch  *faults.Chaos
	seq atomic.Uint64
}

// chaosMiddleware injects seeded latency spikes and slow-client
// (trickle-write) simulation into the request path when chaos mode is
// on. Fault *selection* is deterministic per (seed, request sequence
// number); only timing is perturbed, never response bytes, so chaos
// runs still satisfy the byte-determinism contract.
func (s *Server) chaosMiddleware(next http.Handler) http.Handler {
	if s.chaos == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		seq := s.chaos.seq.Add(1)
		if d := s.chaos.ch.Latency(seq); d > 0 {
			s.metrics.ChaosLatency()
			sleepCtx(r.Context(), d)
		}
		if chunk, delay, ok := s.chaos.ch.SlowClient(seq); ok {
			s.metrics.ChaosSlowClient()
			w = &slowWriter{ResponseWriter: w, chunk: chunk, delay: delay, ctx: r.Context()}
		}
		next.ServeHTTP(w, r)
	})
}

// sleepCtx pauses for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d) //lint:allow clockinject injected chaos latency only delays delivery; no timestamp reaches a response
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// slowWriter drains response bodies in small chunks with pauses,
// simulating a slow client holding a connection (and its admission
// slot) open. Headers and status pass through untouched.
type slowWriter struct {
	http.ResponseWriter
	chunk int
	delay time.Duration
	ctx   context.Context
}

func (sw *slowWriter) Write(p []byte) (int, error) {
	var n int
	for len(p) > 0 {
		c := sw.chunk
		if c > len(p) {
			c = len(p)
		}
		m, err := sw.ResponseWriter.Write(p[:c])
		n += m
		if err != nil {
			return n, err
		}
		p = p[c:]
		if len(p) > 0 {
			sleepCtx(sw.ctx, sw.delay)
			if sw.ctx.Err() != nil {
				return n, sw.ctx.Err()
			}
		}
	}
	return n, nil
}

// chaosBuildFunc wraps a buildFunc with deterministic injected
// failures: the chaos plan decides per (study key, attempt number)
// whether the build fails before any real work starts. Attempt numbers
// count per key, so the decision sequence for a given study is
// independent of what other studies are doing.
func chaosBuildFunc(inner buildFunc, ch *faults.Chaos, m *Metrics) buildFunc {
	var mu sync.Mutex
	attempts := make(map[string]int)
	return func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		key := cfg.Key()
		mu.Lock()
		attempts[key]++
		n := attempts[key]
		mu.Unlock()
		if err := ch.BuildFault(key, n); err != nil {
			m.ChaosBuildFault()
			return nil, err
		}
		return inner(ctx, cfg)
	}
}
