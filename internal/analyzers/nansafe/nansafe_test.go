package nansafe_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/nansafe"
)

func TestNansafe(t *testing.T) {
	analysistest.Run(t, "testdata", nansafe.Analyzer, "a")
}
