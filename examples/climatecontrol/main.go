// Climate control (the paper's Q3): how far can temperature and
// humidity set points stray before disk reliability degrades?
//
// The multi-factor tree normalizes hardware, workload, spatial, and
// seasonal factors and then reads the environmental thresholds from the
// residual structure: in the adiabatically cooled DC1 the paper (and
// this reproduction) finds a temperature knee near 78 F and an extra
// penalty for very dry hot air; the chilled-water DC2 never leaves its
// comfort zone.
//
// Run with:
//
//	go run ./examples/climatecontrol
package main

import (
	"fmt"
	"log"
	"math"

	"rainshine"
)

func main() {
	// Q3 needs the full seasonal range to expose hot/dry excursions, so
	// this example runs the paper-scale study (~5 s).
	study, err := rainshine.NewStudy(rainshine.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	rep, err := study.ClimateGuidance()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Environmental set-point guidance from the MF analysis:")
	if math.IsNaN(rep.TempThresholdF) {
		fmt.Println("  no temperature threshold found (fleet too small?)")
		return
	}
	fmt.Printf("  temperature knee: %.1f F (paper: 78 F)\n", rep.TempThresholdF)
	if !math.IsNaN(rep.RHThreshold) {
		fmt.Printf("  dry-air knee (when hot): %.1f %% RH (paper: 25 %%)\n", rep.RHThreshold)
	}
	fmt.Println()
	for _, dc := range []string{"DC1", "DC2"} {
		hot, ok := rep.HotPenalty[dc]
		if !ok {
			fmt.Printf("  %s: stays inside the envelope; reliability is insensitive to its climate\n", dc)
			continue
		}
		fmt.Printf("  %s: disks fail %.0f%% more above the knee", dc, 100*(hot-1))
		if dry, ok := rep.DryPenalty[dc]; ok {
			fmt.Printf(", and another %.0f%% more when the hot air is dry", 100*(dry-1))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Operational takeaway: raising set points saves cooling OpEx, but each")
	fmt.Println("DC/failure-type pair needs its own limits — one global rule misprices both.")
}
