// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time and reports position-anchored
// diagnostics. The repository vendors no external modules, so the suite
// in internal/analyzers builds on this package instead of x/tools; the
// API mirrors x/tools closely enough that migrating later is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Run inspects a single
// package via its Pass and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
	// FactTypes declares prototype values of every Fact kind the
	// analyzer exports or imports, so the driver can register them for
	// cross-process serialization.
	FactTypes []Fact
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed source files (tests excluded:
	// the invariants guard production code, and test fixtures violate
	// them on purpose).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// TestFiles holds syntax-only parses of the package's *_test.go
	// files (no type information — they are never type-checked).
	// Analyzers that audit test-side artifacts (benchgate's snapshot
	// gates) read them; everything else ignores them.
	TestFiles []*ast.File
	// Dir is the package's source directory, for analyzers that must
	// consult sibling build artifacts (benchgate's Makefile lookup).
	Dir string
	// Facts is the run-wide fact store shared by every pass. Facts
	// exported while analyzing a dependency are importable here.
	Facts *FactStore

	// Report delivers one diagnostic. The driver attributes it to the
	// running analyzer and applies `//lint:allow` suppression.
	Report func(Diagnostic)
}

// TextEdit is one replacement: the bytes in [Pos, End) become NewText.
// An insertion has Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one machine-applicable resolution of a diagnostic,
// applied by `rainshinelint -fix` and verified against golden .fixed
// files by the analysistest harness. Edits must not overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// SuggestedFixes, when non-empty, resolve the finding mechanically.
	// Every fix in the list is applied by -fix (they must be disjoint
	// aspects of the same finding, not alternatives).
	SuggestedFixes []SuggestedFix
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Preorder walks every file in the pass in depth-first preorder,
// invoking fn on each node matching one of the types of the values in
// filter (or every node when filter is empty). It is the moral
// equivalent of the x/tools inspect pass for a suite this size.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// FuncFor returns the innermost enclosing function declaration or
// literal for pos within file, or nil.
func FuncFor(file *ast.File, pos token.Pos) ast.Node {
	var enclosing ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees that do not contain pos
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			enclosing = n
		}
		return true
	})
	return enclosing
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Drivers that feed test files through the suite (the vettool
// protocol does) use it to keep the invariants production-only.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// ObjectOf resolves the called function object for a call expression,
// unwrapping parenthesized callees. Returns nil for calls through
// non-function expressions (conversions, function-valued variables).
func ObjectOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
