// Package lockorder enforces the locking discipline that keeps the
// serving tier deadlock-free:
//
//  1. a type containing a sync lock (Mutex, RWMutex, WaitGroup, Once,
//     Cond, Pool, Map) must not be copied: methods need pointer
//     receivers (auto-fixable) and parameters must be pointers;
//  2. no blocking operation — channel send/receive, select, range over
//     a channel, time.Sleep, WaitGroup.Wait, net/os I/O, or a call to
//     a function known to block — may run while a mutex is held; the
//     held region is lexical, from the Lock call to the first matching
//     Unlock on the same expression (deferred unlocks hold to the end
//     of the function);
//  3. two locks acquired in both orders anywhere in the package graph
//     are a deadlock waiting for contention; the per-package lock-site
//     graph is assembled from direct acquisitions plus the Locks facts
//     of callees, so an inversion spanning a package boundary is still
//     caught.
//
// Two facts cross function and package boundaries: Blocks (the
// function may block) and Locks (the lock sites the function may
// acquire, transitively). Both are computed to a fixpoint over the
// in-package call graph and exported for dependents.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rainshine/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "forbid copied locks, blocking calls under a held mutex, and lock-order inversions",
	Run:       run,
	FactTypes: []analysis.Fact{&Blocks{}, &Locks{}},
}

// Blocks marks a function that may block: it performs a channel
// operation, waits, sleeps, does I/O, or calls something that does.
type Blocks struct{}

// FactKind implements analysis.Fact.
func (*Blocks) FactKind() string { return "lockorder.blocks" }

// Locks lists the lock sites ("pkg.Type.field") a function may
// acquire, directly or through its callees.
type Locks struct {
	Sites []string `json:"sites"`
}

// FactKind implements analysis.Fact.
func (*Locks) FactKind() string { return "lockorder.locks" }

// lockRegion is one lexically-held stretch of a mutex within one
// scope (a function body or a function literal's body — literals are
// separate scopes, so a lock balanced inside a deferred closure does
// not appear held for the rest of the enclosing function).
type lockRegion struct {
	site       string
	start, end token.Pos
	scope      ast.Node
}

// acquire is one direct lock acquisition.
type acquire struct {
	site string
	pos  token.Pos
}

// funcInfo is the per-declaration summary rules 2 and 3 consume.
type funcInfo struct {
	decl         *ast.FuncDecl
	obj          *types.Func
	directBlocks bool
	calls        []*types.Func
	regions      []lockRegion
	acquires     []acquire
}

func run(pass *analysis.Pass) error {
	var infos []*funcInfo
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkCopies(pass, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				infos = append(infos, collect(pass, fd))
			}
		}
	}
	blocks, locks := fixpoint(pass, infos)
	exportFacts(pass, infos, blocks, locks)
	edges := map[[2]string]token.Pos{}
	for _, fi := range infos {
		checkRegions(pass, fi, blocks, locks, edges)
	}
	reportInversions(pass, edges)
	return nil
}

// ---- rule 1: copied locks ----

func checkCopies(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			rt := fd.Recv.List[0].Type
			if _, isPtr := ast.Unparen(rt).(*ast.StarExpr); !isPtr {
				if lock, ok := lockInExpr(pass, rt); ok {
					pass.Report(analysis.Diagnostic{
						Pos:      rt.Pos(),
						Message:  "method " + fd.Name.Name + " has a value receiver but its type contains " + lock + ": every call copies the lock",
						Analyzer: pass.Analyzer.Name,
						SuggestedFixes: []analysis.SuggestedFix{{
							Message: "take the receiver by pointer",
							TextEdits: []analysis.TextEdit{{
								Pos: rt.Pos(), End: rt.Pos(), NewText: []byte("*"),
							}},
						}},
					})
				}
			}
		}
		if fd.Type.Params == nil {
			continue
		}
		for _, field := range fd.Type.Params.List {
			if _, isPtr := ast.Unparen(field.Type).(*ast.StarExpr); isPtr {
				continue
			}
			if lock, ok := lockInExpr(pass, field.Type); ok {
				pass.Reportf(field.Pos(), "parameter passes a value containing %s: pass a pointer so the lock is shared, not copied", lock)
			}
		}
	}
}

func lockInExpr(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	return lockIn(tv.Type, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name(), true
			}
		}
		return lockIn(named.Underlying(), seen)
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if name, ok := lockIn(st.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	}
	return "", false
}

// ---- collection ----

func collect(pass *analysis.Pass, fd *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{decl: fd}
	if def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		fi.obj = def
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() != pass.Pkg.Path() {
			// Cross-package callee: fold its exported facts in as if
			// the behavior were local.
			if _, ok := pass.ImportObjectFact(fn, (&Blocks{}).FactKind()); ok {
				fi.directBlocks = true
			}
		}
		fi.calls = append(fi.calls, fn)
		return true
	})
	collectScopeRegions(pass, fi, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			collectScopeRegions(pass, fi, fl.Body)
		}
		return true
	})
	fi.directBlocks = fi.directBlocks || hasDirectBlocking(pass, fd.Body)
	return fi
}

// collectScopeRegions finds the lock-held regions of one scope,
// ignoring nested function literals (each is its own scope). An
// unlock that is itself the call of a `defer` runs at scope exit, so
// it does not close the region; an unlock inside a deferred closure
// belongs to that closure's scope instead.
func collectScopeRegions(pass *analysis.Pass, fi *funcInfo, scope *ast.BlockStmt) {
	deferred := map[*ast.CallExpr]bool{}
	inScope := func(walk func(n ast.Node) bool) {
		ast.Inspect(scope, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return walk(n)
		})
	}
	inScope(func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	type lockCall struct {
		expr string
		sel  *ast.SelectorExpr
		call *ast.CallExpr
	}
	type unlockCall struct {
		expr string
		pos  token.Pos
	}
	var lockCalls []lockCall
	var unlocks []unlockCall
	inScope(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock":
			fi.acquires = append(fi.acquires, acquire{site: siteName(pass, sel.X), pos: call.Pos()})
			lockCalls = append(lockCalls, lockCall{expr: types.ExprString(sel.X), sel: sel, call: call})
		case "Unlock", "RUnlock":
			if !deferred[call] {
				unlocks = append(unlocks, unlockCall{expr: types.ExprString(sel.X), pos: call.Pos()})
			}
		}
		return true
	})
	for _, lc := range lockCalls {
		end := scope.End()
		for _, u := range unlocks {
			if u.expr == lc.expr && u.pos > lc.call.End() && u.pos < end {
				end = u.pos
			}
		}
		fi.regions = append(fi.regions, lockRegion{site: siteName(pass, lc.sel.X), start: lc.call.End(), end: end, scope: scope})
	}
}

// siteName renders a lock expression as a stable graph node:
// "pkg.Type.field" for struct-field locks, falling back to the
// package-qualified expression text.
func siteName(pass *analysis.Pass, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
			}
		}
	}
	return pass.Pkg.Path() + "." + types.ExprString(recv)
}

// hasDirectBlocking reports whether body performs a blocking operation
// outside nested function literals.
func hasDirectBlocking(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := analysis.ObjectOf(pass.TypesInfo, n); fn != nil {
				if _, ok := blockingStdlib(fn); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// blockingStdlib classifies well-known blocking standard-library calls.
func blockingStdlib(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "sync Wait", true
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "Listen", "Accept":
			return "net I/O", true
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "Serve", "ListenAndServe":
			return "net/http I/O", true
		}
	case "os":
		switch fn.Name() {
		case "ReadFile", "WriteFile", "Open", "Create", "OpenFile", "Read", "Write", "Sync":
			return "os I/O", true
		}
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "ReadAll", "ReadFull":
			return "io transfer", true
		}
	}
	return "", false
}

// ---- fixpoint + facts ----

func fixpoint(pass *analysis.Pass, infos []*funcInfo) (map[*types.Func]bool, map[*types.Func]map[string]bool) {
	byObj := map[*types.Func]*funcInfo{}
	for _, fi := range infos {
		if fi.obj != nil {
			byObj[fi.obj] = fi
		}
	}
	blocks := map[*types.Func]bool{}
	locks := map[*types.Func]map[string]bool{}
	for _, fi := range infos {
		if fi.obj == nil {
			continue
		}
		blocks[fi.obj] = fi.directBlocks
		set := map[string]bool{}
		for _, a := range fi.acquires {
			set[a.site] = true
		}
		for _, callee := range fi.calls {
			if callee.Pkg() != nil && callee.Pkg().Path() != pass.Pkg.Path() {
				if f, ok := pass.ImportObjectFact(callee, (&Locks{}).FactKind()); ok {
					for _, s := range f.(*Locks).Sites {
						set[s] = true
					}
				}
			}
		}
		locks[fi.obj] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.obj == nil {
				continue
			}
			for _, callee := range fi.calls {
				if _, inPkg := byObj[callee]; !inPkg {
					continue
				}
				if blocks[callee] && !blocks[fi.obj] {
					blocks[fi.obj] = true
					changed = true
				}
				for s := range locks[callee] {
					if !locks[fi.obj][s] {
						locks[fi.obj][s] = true
						changed = true
					}
				}
			}
		}
	}
	return blocks, locks
}

func exportFacts(pass *analysis.Pass, infos []*funcInfo, blocks map[*types.Func]bool, locks map[*types.Func]map[string]bool) {
	for _, fi := range infos {
		if fi.obj == nil {
			continue
		}
		if blocks[fi.obj] {
			pass.ExportObjectFact(fi.obj, &Blocks{})
		}
		if set := locks[fi.obj]; len(set) > 0 {
			sites := make([]string, 0, len(set))
			for s := range set {
				sites = append(sites, s)
			}
			sort.Strings(sites)
			pass.ExportObjectFact(fi.obj, &Locks{Sites: sites})
		}
	}
}

// ---- rule 2 + 3: held regions ----

func checkRegions(pass *analysis.Pass, fi *funcInfo, blocks map[*types.Func]bool, locks map[*types.Func]map[string]bool, edges map[[2]string]token.Pos) {
	for _, region := range fi.regions {
		ast.Inspect(region.scope, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				// A literal defined here runs later; a deferred call
				// runs at return, normally after the unlock.
				return false
			}
			if n == nil || n.Pos() <= region.start || n.Pos() >= region.end {
				// Still descend: children may fall inside the region
				// even when this node starts before it.
				return n == nil || n.End() > region.start
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send while %s is held: release the lock before communicating", region.site)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while %s is held: release the lock before communicating", region.site)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select while %s is held: release the lock before communicating", region.site)
				return false
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over a channel while %s is held: release the lock before communicating", region.site)
					}
				}
			case *ast.CallExpr:
				fn := analysis.ObjectOf(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					switch fn.Name() {
					case "Lock", "RLock":
						if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
							if b := siteName(pass, sel.X); b != region.site {
								addEdge(edges, region.site, b, n.Pos())
							}
						}
						return true
					case "Unlock", "RUnlock", "TryLock", "TryRLock":
						return true
					}
				}
				if desc, ok := blockingStdlib(fn); ok {
					pass.Reportf(n.Pos(), "%s while %s is held: release the lock before blocking", desc, region.site)
					return true
				}
				if blocks[fn] {
					pass.Reportf(n.Pos(), "call to %s, which blocks, while %s is held: release the lock first", fn.Name(), region.site)
				}
				if _, ok := pass.ImportObjectFact(fn, (&Blocks{}).FactKind()); ok && !blocks[fn] {
					pass.Reportf(n.Pos(), "call to %s, which blocks, while %s is held: release the lock first", fn.Name(), region.site)
				}
				for s := range lockSitesOf(pass, fn, locks) {
					if s != region.site {
						addEdge(edges, region.site, s, n.Pos())
					}
				}
			}
			return true
		})
	}
}

func lockSitesOf(pass *analysis.Pass, fn *types.Func, locks map[*types.Func]map[string]bool) map[string]bool {
	if set, ok := locks[fn]; ok {
		return set
	}
	if f, ok := pass.ImportObjectFact(fn, (&Locks{}).FactKind()); ok {
		set := map[string]bool{}
		for _, s := range f.(*Locks).Sites {
			set[s] = true
		}
		return set
	}
	return nil
}

func addEdge(edges map[[2]string]token.Pos, from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := edges[key]; !ok {
		edges[key] = pos
	}
}

// reportInversions flags every lock pair acquired in both orders, once
// per pair, at the lexically-first edge site.
func reportInversions(pass *analysis.Pass, edges map[[2]string]token.Pos) {
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if k[0] >= k[1] {
			continue
		}
		if _, rev := edges[[2]string{k[1], k[0]}]; rev {
			pass.Reportf(edges[k], "lock order inversion: %s and %s are acquired in both orders; pick one order and hold to it", k[0], k[1])
		}
	}
}
