package calendar

import (
	"testing"
	"time"
)

func TestEpochProperties(t *testing.T) {
	// 1 Jan 2012 was a Sunday.
	if Weekday(0) != 0 {
		t.Errorf("day 0 weekday = %d, want 0 (Sunday)", Weekday(0))
	}
	if !IsWeekend(0) {
		t.Error("day 0 should be weekend")
	}
	if IsWeekend(2) { // Tuesday
		t.Error("day 2 should be a weekday")
	}
	if Month(0) != 0 || YearIndex(0) != 0 || DayOfYear(0) != 0 {
		t.Errorf("day 0 = month %d year %d doy %d", Month(0), YearIndex(0), DayOfYear(0))
	}
}

func TestLeapYear2012(t *testing.T) {
	// 2012 is a leap year: day 59 is Feb 29, day 60 is Mar 1.
	if got := Date(59); got.Month() != time.February || got.Day() != 29 {
		t.Errorf("day 59 = %v, want Feb 29", got)
	}
	if Month(60) != 2 {
		t.Errorf("day 60 month = %d, want 2 (March)", Month(60))
	}
	// Day 366 is 1 Jan 2013.
	if YearIndex(366) != 1 || Month(366) != 0 {
		t.Errorf("day 366 = year %d month %d", YearIndex(366), Month(366))
	}
}

func TestWeekdayCycles(t *testing.T) {
	for d := 0; d < 365; d++ {
		if Weekday(d) != (Weekday(0)+d)%7 {
			t.Fatalf("weekday not cyclic at day %d", d)
		}
	}
}

func TestNameTables(t *testing.T) {
	if len(WeekdayNames) != 7 || WeekdayNames[0] != "Sun" || WeekdayNames[6] != "Sat" {
		t.Errorf("WeekdayNames = %v", WeekdayNames)
	}
	if len(MonthNames) != 12 || MonthNames[0] != "Jan" || MonthNames[11] != "Dec" {
		t.Errorf("MonthNames = %v", MonthNames)
	}
}

func TestYearIndexAcrossWindow(t *testing.T) {
	// The 930-day window spans 2012 (366d), 2013 (365d), and part of 2014.
	if YearIndex(365) != 0 {
		t.Error("day 365 should still be 2012")
	}
	if YearIndex(366+364) != 1 {
		t.Error("day 730 should be 2013")
	}
	if YearIndex(731) != 2 {
		t.Error("day 731 should be 2014")
	}
}

func TestWeekOfYear(t *testing.T) {
	if WeekOfYear(0) != 0 || WeekOfYear(6) != 0 || WeekOfYear(7) != 1 {
		t.Errorf("week boundaries: %d %d %d", WeekOfYear(0), WeekOfYear(6), WeekOfYear(7))
	}
	// Day 364 of a leap year is week 52; the spill day clamps to 52.
	if WeekOfYear(364) != 52 || WeekOfYear(365) != 52 {
		t.Errorf("year-end weeks: %d %d", WeekOfYear(364), WeekOfYear(365))
	}
	// Resets with the new year.
	if WeekOfYear(366) != 0 {
		t.Errorf("new year week = %d", WeekOfYear(366))
	}
	names := WeekNames()
	if len(names) != 53 || names[0] != "W01" || names[52] != "W53" {
		t.Errorf("WeekNames = %v...", names[:2])
	}
}
