package ingest

import (
	"rainshine/internal/simulate"
)

// Scrub runs the full pipeline over a simulation result's recorded
// streams, repairing in place: tickets are validated, deduplicated, and
// their repeat counters restored; sensor series are gap-detected and
// imputed. Failure events are ground truth, not telemetry, and are
// never touched. Returns the DataQuality report of the pass.
func Scrub(res *simulate.Result) (*Report, error) {
	return scrub(res, true)
}

// Audit runs the same detection pass without modifying the result —
// the quality view of a stream the caller does not want rewritten.
func Audit(res *simulate.Result) (*Report, error) {
	return scrub(res, false)
}

func scrub(res *simulate.Result, repair bool) (*Report, error) {
	rep := &Report{}
	bounds := TicketBounds{Days: res.Days, Racks: len(res.Fleet.Racks), DCs: len(res.Fleet.DCs)}
	scrubbed := ScrubTickets(res.Tickets, bounds, rep, repair)
	if repair {
		res.Tickets = scrubbed
	}
	if err := RepairClimate(res.Climate, rep, repair); err != nil {
		return nil, err
	}
	return rep, nil
}
