package figures

import (
	"fmt"
	"math"
	"testing"

	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

var cachedData *Data

// testData simulates a mid-size fleet once for all figure tests.
func testData(t *testing.T) *Data {
	t.Helper()
	if cachedData != nil {
		return cachedData
	}
	d, err := NewData(simulate.Config{
		Seed:     rngSeedForTests,
		Days:     540,
		Topology: topology.Config{RacksPerDC: [2]int{160, 140}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedData = d
	return d
}

const rngSeedForTests = 42

func barMap(bars []BarPoint) map[string]BarPoint {
	m := map[string]BarPoint{}
	for _, b := range bars {
		m[b.Label] = b
	}
	return m
}

func TestTableI(t *testing.T) {
	d := testData(t)
	rows := d.TableI()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Cooling != "Adiabatic" || rows[1].Cooling != "Chilled water" {
		t.Errorf("cooling = %+v", rows)
	}
	if rows[0].Availability != "3 nines" || rows[1].Availability != "5 nines" {
		t.Errorf("availability = %+v", rows)
	}
}

func TestTableII(t *testing.T) {
	d := testData(t)
	rows := d.TableII()
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 fault types", len(rows))
	}
	var dc1Total float64
	for _, r := range rows {
		dc1Total += r.DC1Pct
		// Generated mix within 8 points of the paper for each type.
		if math.Abs(r.DC1Pct-r.PaperDC1) > 8 {
			t.Errorf("%s DC1 = %.1f%%, paper %.1f%%", r.Fault, r.DC1Pct, r.PaperDC1)
		}
		if math.Abs(r.DC2Pct-r.PaperDC2) > 8 {
			t.Errorf("%s DC2 = %.1f%%, paper %.1f%%", r.Fault, r.DC2Pct, r.PaperDC2)
		}
	}
	if math.Abs(dc1Total-100) > 0.5 {
		t.Errorf("DC1 percentages sum to %v", dc1Total)
	}
}

func TestTableIII(t *testing.T) {
	d := testData(t)
	rows := d.TableIII()
	if len(rows) < 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Type != "C" && r.Type != "N" && r.Type != "O" {
			t.Errorf("row %q type %q", r.Name, r.Type)
		}
	}
}

func TestTableIV(t *testing.T) {
	d := testData(t)
	rows, err := d.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.SavingsPct < -1 || r.SavingsPct > 60 {
			t.Errorf("%s/%s SLA %v: savings %.1f%% implausible", r.Granularity, r.Workload, r.SLA, r.SavingsPct)
		}
	}
	// Headline: savings at 100% SLA are the largest per series and
	// material (paper: 14.6-36.4%).
	bySeries := map[string][]TCOSaving{}
	for _, r := range rows {
		k := r.Granularity + "-" + r.Workload
		bySeries[k] = append(bySeries[k], r)
	}
	for k, series := range bySeries {
		last := series[len(series)-1]
		if last.SLA != 1.0 {
			t.Fatalf("%s: series not SLA-ordered", k)
		}
		if last.SavingsPct < 3 {
			t.Errorf("%s: savings at 100%% SLA only %.1f%%", k, last.SavingsPct)
		}
	}
}

func TestFig1(t *testing.T) {
	d := testData(t)
	series, err := d.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("series = %d, want pooled + 2 groups", len(series))
	}
	for _, s := range series {
		for i := 1; i < len(s.P); i++ {
			if s.P[i] < s.P[i-1] || s.X[i] < s.X[i-1] {
				t.Fatalf("series %s not monotone", s.Name)
			}
		}
	}
}

func TestFig2RegionStructure(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 7 {
		t.Fatalf("regions = %d, want 7", len(bars))
	}
	m := barMap(bars)
	// DC1 regions on average above DC2 regions; DC1-1 the hottest.
	dc1avg := (m["DC1-1"].Mean + m["DC1-2"].Mean + m["DC1-3"].Mean + m["DC1-4"].Mean) / 4
	dc2avg := (m["DC2-1"].Mean + m["DC2-2"].Mean + m["DC2-3"].Mean) / 3
	if dc1avg <= dc2avg {
		t.Errorf("DC1 avg %v should exceed DC2 avg %v", dc1avg, dc2avg)
	}
	if m["DC1-1"].Normalized != 1 {
		t.Errorf("DC1-1 should be the max region, got %+v", bars)
	}
}

func TestFig3WeekdayEffect(t *testing.T) {
	d := testData(t)
	series, err := d.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("years = %d", len(series))
	}
	for _, s := range series {
		m := barMap(s.Bars)
		weekday := (m["Tue"].Mean + m["Wed"].Mean) / 2
		weekend := (m["Sun"].Mean + m["Sat"].Mean) / 2
		if weekday <= weekend {
			t.Errorf("year %s: weekday %v not above weekend %v", s.Series, weekday, weekend)
		}
	}
}

func TestFig4SeasonalEffect(t *testing.T) {
	d := testData(t)
	series, err := d.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	m := barMap(series[0].Bars) // 2012 covers all 12 months
	if len(series[0].Bars) != 12 {
		t.Fatalf("months = %d", len(series[0].Bars))
	}
	h1 := (m["Jan"].Mean + m["Feb"].Mean + m["Mar"].Mean) / 3
	h2 := (m["Aug"].Mean + m["Sep"].Mean + m["Oct"].Mean) / 3
	if h2 <= h1 {
		t.Errorf("second half (%v) should exceed first half (%v)", h2, h1)
	}
}

func TestFig5LowHumidityElevated(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	m := barMap(bars)
	dry := m["<20"]
	mid := m["40-50"]
	if dry.N < 100 || mid.N < 100 {
		t.Skip("humidity bins underpopulated in reduced fleet")
	}
	if dry.Mean <= mid.Mean {
		t.Errorf("dry bin (%v) should exceed mid bin (%v)", dry.Mean, mid.Mean)
	}
}

func TestFig6WorkloadOrdering(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	m := barMap(bars)
	if m["W2"].Normalized != 1 {
		t.Errorf("W2 should be the max workload: %+v", bars)
	}
	if m["W3"].Mean >= m["W2"].Mean/2 {
		t.Errorf("W3 (HPC, %v) should be far below W2 (%v)", m["W3"].Mean, m["W2"].Mean)
	}
	// Storage-data below compute.
	if (m["W5"].Mean+m["W6"].Mean)/2 >= (m["W1"].Mean+m["W2"].Mean)/2 {
		t.Error("storage workloads should fail less than compute")
	}
}

func TestFig7SKUs(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 4 {
		t.Fatalf("bars = %d", len(bars))
	}
	m := barMap(bars)
	if m["S2"].Mean <= m["S4"].Mean {
		t.Error("S2 should show the highest rate in the SF view")
	}
}

func TestFig8PowerEffect(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) < 5 {
		t.Fatalf("power levels = %d", len(bars))
	}
	m := barMap(bars)
	if m["13"].Mean <= m["6"].Mean {
		t.Errorf("high-power racks (%v) should fail more than low-power (%v)", m["13"].Mean, m["6"].Mean)
	}
}

func TestFig9InfantMortality(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	m := barMap(bars)
	if m["0-5"].Mean <= m["20-25"].Mean {
		t.Errorf("new equipment (%v) should fail more than mid-life (%v)", m["0-5"].Mean, m["20-25"].Mean)
	}
}

func TestFig10MFBetweenLBAndSF(t *testing.T) {
	d := testData(t)
	cells, err := d.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*3*3 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(wl string, sla float64, a string) float64 {
		for _, c := range cells {
			if c.Workload == wl && c.SLA == sla && c.Approach == a {
				return c.Pct
			}
		}
		t.Fatalf("missing cell %s/%v/%s", wl, sla, a)
		return 0
	}
	for _, wl := range []string{"W1", "W6"} {
		lb, mf, sf := get(wl, 1.0, "LB"), get(wl, 1.0, "MF"), get(wl, 1.0, "SF")
		if !(lb <= mf && mf <= sf) {
			t.Errorf("%s: LB %.1f MF %.1f SF %.1f not sandwiched", wl, lb, mf, sf)
		}
		// Headline: MF less than roughly half of SF at 100% SLA.
		if sf > 0 && mf > 0.7*sf {
			t.Errorf("%s: MF %.1f%% not clearly below SF %.1f%%", wl, mf, sf)
		}
	}
}

func TestFig11ClusterSpread(t *testing.T) {
	d := testData(t)
	panels, err := d.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		if len(p.Series) < 3 {
			t.Errorf("%s: only %d series (need SF + >=2 clusters)", p.Workload, len(p.Series))
		}
	}
}

func TestFig12HourlyMFBelowDaily(t *testing.T) {
	d := testData(t)
	daily, err := d.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	hourly, err := d.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	get := func(cells []OverprovCell, wl string, a string) float64 {
		for _, c := range cells {
			if c.Workload == wl && c.SLA == 1.0 && c.Approach == a {
				return c.Pct
			}
		}
		return -1
	}
	for _, wl := range []string{"W1", "W6"} {
		dm, hm := get(daily, wl, "MF"), get(hourly, wl, "MF")
		if hm > dm+1e-9 {
			t.Errorf("%s: hourly MF %.1f%% above daily %.1f%%", wl, hm, dm)
		}
	}
}

func TestFig13ComponentBeatsServerUnderMF(t *testing.T) {
	d := testData(t)
	cells, err := d.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	get := func(wl, scheme, a string) float64 {
		for _, c := range cells {
			if c.Workload == wl && c.Scheme == scheme && c.Approach == a {
				return c.Pct
			}
		}
		t.Fatalf("missing %s/%s/%s", wl, scheme, a)
		return 0
	}
	for _, wl := range []string{"W1", "W6"} {
		if comp, srv := get(wl, "component", "MF"), get(wl, "server", "MF"); comp >= srv {
			t.Errorf("%s: MF component cost %.2f%% should beat server %.2f%%", wl, comp, srv)
		}
	}
}

func TestFig14SFView(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 8 {
		t.Fatalf("bars = %d (4 SKUs x 2 metrics)", len(bars))
	}
	get := func(sku, metric string) SKUBar {
		for _, b := range bars {
			if b.SKU == sku && b.Metric == metric {
				return b
			}
		}
		t.Fatalf("missing %s/%s", sku, metric)
		return SKUBar{}
	}
	// Paper: S2 has by far the highest average rate.
	if get("S2", "avg").Normalized != 1 {
		t.Error("S2 should have the top SF average rate")
	}
	ratio := get("S2", "avg").Value / get("S4", "avg").Value
	if ratio < 5 {
		t.Errorf("SF S2/S4 avg ratio = %.1f, want confound-inflated (>5, paper 10)", ratio)
	}
}

func TestFig15MFView(t *testing.T) {
	d := testData(t)
	sf, err := d.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	mf, err := d.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(bars []SKUBar, sku string) float64 {
		for _, b := range bars {
			if b.SKU == sku && b.Metric == "avg" {
				return b.Value
			}
		}
		t.Fatalf("missing %s", sku)
		return 0
	}
	sfRatio := avg(sf, "S2") / avg(sf, "S4")
	mfRatio := avg(mf, "S2") / avg(mf, "S4")
	if mfRatio >= sfRatio*0.8 {
		t.Errorf("MF ratio %.1f not clearly below SF ratio %.1f", mfRatio, sfRatio)
	}
	if mfRatio < 1.5 {
		t.Errorf("MF ratio %.1f lost the true effect (want >1.5)", mfRatio)
	}
}

func TestFig16FlatMeansHighVariance(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 5 {
		t.Fatalf("bins = %d", len(bars))
	}
	// The paper's point: within-bin variation dwarfs between-bin means.
	for _, b := range bars {
		if b.N > 500 && b.StdDev < b.Mean {
			t.Errorf("bin %s: sd %v below mean %v; expected high within-bin variance", b.Label, b.StdDev, b.Mean)
		}
	}
}

func TestFig17DiskTrend(t *testing.T) {
	d := testData(t)
	bars, err := d.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	// Hottest populated bin above coolest populated bin.
	var first, last BarPoint
	for _, b := range bars {
		if b.N > 200 {
			if first.N == 0 {
				first = b
			}
			last = b
		}
	}
	if last.Mean <= first.Mean {
		t.Errorf("disk rate should rise with temperature: %v -> %v", first.Mean, last.Mean)
	}
}

func TestFig18Thresholds(t *testing.T) {
	d := testData(t)
	res, err := d.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.TempThresholdF) || res.TempThresholdF < 72 || res.TempThresholdF > 84 {
		t.Errorf("temp threshold = %v, want near 78", res.TempThresholdF)
	}
	get := func(dc, group string) EnvGroup {
		for _, g := range res.Groups {
			if g.DC == dc && g.Group == group {
				return g
			}
		}
		t.Fatalf("missing group %s/%s", dc, group)
		return EnvGroup{}
	}
	tLbl := "T>" + trimFloat(res.TempThresholdF) + "F"
	cool := get("DC1", "T<="+trimFloat(res.TempThresholdF)+"F")
	hot := get("DC1", tLbl)
	if hot.N < 100 || cool.N < 100 {
		t.Fatal("DC1 groups underpopulated")
	}
	ratio := hot.Mean / cool.Mean
	if ratio < 1.2 {
		t.Errorf("DC1 hot/cool = %.2f, want >= 1.2 (paper ~1.5)", ratio)
	}
}

func trimFloat(v float64) string { return fmt.Sprintf("%.1f", v) }
