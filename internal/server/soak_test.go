package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"rainshine/internal/leakcheck"
	"strings"
	"sync"
	"testing"
	"time"

	"rainshine/internal/faults"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
)

// soakConfigs are four small (fast-building) study configs the chaos
// soak mixes — the load test's fleet scale, which is large enough for
// every analysis (vendor comparison needs stratified variety). Four
// configs against a two-slot primary cache guarantee eviction churn,
// and therefore rebuild attempts for chaos to fail.
var soakConfigs = []string{
	"seed=42&days=150&racks=30,26",
	"seed=43&days=150&racks=30,26",
	"seed=44&days=150&racks=30,26",
	"seed=45&days=150&racks=30,26",
}

// Soak SLOs, asserted here and recorded in BENCH_serve.json's "soak"
// section so `make soak` fails on regression. Overall availability is
// dominated by the deliberately tight q3 class shedding its overload;
// the cheap cached reads must stay essentially always-on — that split
// is the "shed expensive grid work before cheap reads" contract.
const (
	soakAvailabilityMin      = 0.70   // all requests answered 200
	soakCheapAvailabilityMin = 0.99   // non-q3 requests answered 200
	soakCheapP99MaxMS        = 2000.0 // /v1/quality p99 under overload
	soakQ3P99MaxMS           = 5000.0 // /v1/q3 p99 under overload
)

// scriptStep is one recorded response of the deterministic degradation
// script: everything a client can observe, for byte-comparison across
// independent server instances.
type scriptStep struct {
	path       string
	status     int
	degraded   string // X-Rainshine-Degraded header
	retryAfter string
	body       string
}

// runDegradationScript drives a fixed request sequence against a fresh
// chaos-mode server: two studies build cleanly, then every rebuild is
// an injected failure, the breaker trips, and the last-good copies
// serve. Responses are returned in order for byte-comparison.
func runDegradationScript(t *testing.T) []scriptStep {
	t.Helper()
	s := New(Config{
		CacheSize: 1,
		Timeout:   time.Minute,
		Logf:      func(string, ...any) {},
		Resilience: ResilienceConfig{
			BreakerThreshold: 3,
			BreakerCooldown:  time.Hour, // never probes within the script
		},
		// BuildFailAfter is the structural chaos knob: attempt 1 per
		// study succeeds (a last-good copy exists), every rebuild fails.
		Chaos: &faults.ChaosConfig{Seed: 7, BuildFailAfter: 1},
	})
	paths := []string{
		"/v1/quality?" + soakConfigs[0],                // fresh build
		"/v1/quality?" + soakConfigs[1],                // fresh build, evicts [0]
		"/v1/quality?" + soakConfigs[0],                // rebuild fails -> degraded (1)
		"/v1/q1?" + soakConfigs[0] + "&workload=W6",    // degraded (2)
		"/v1/q2?" + soakConfigs[0] + "&ratios=1.0,2.0", // degraded (3) -> breaker opens
		"/v1/quality?" + soakConfigs[0],                // degraded, reason breaker_open
		"/v1/quality?" + soakConfigs[2],                // no last-good copy -> 503 shed
		"/v1/quality?" + soakConfigs[1],                // still cached -> fresh
	}
	var steps []scriptStep
	for _, path := range paths {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		steps = append(steps, scriptStep{
			path:       path,
			status:     rr.Code,
			degraded:   rr.Header().Get("X-Rainshine-Degraded"),
			retryAfter: rr.Header().Get("Retry-After"),
			body:       rr.Body.String(),
		})
	}
	// The script's side effects are themselves deterministic.
	snap := s.Metrics().Snapshot(1)
	if snap.Builds.Started != 5 || snap.Builds.Completed != 2 || snap.Builds.Failed != 3 {
		t.Errorf("builds = %+v, want 5 started / 2 completed / 3 failed", snap.Builds)
	}
	res := snap.Resilience
	if res.DegradedServed != 4 || res.ShedBreakerOpen != 1 ||
		res.ChaosBuildFaults != 3 || res.BreakerOpens != 1 || res.BreakerState != "open" {
		t.Errorf("resilience = %+v, want 4 degraded / 1 breaker shed / 3 chaos faults / breaker open", res)
	}
	return steps
}

// TestChaosSoakDeterministicDegradation asserts the graceful-degradation
// contract: for a fixed chaos seed, two independent servers walked
// through the same request script produce byte-identical responses —
// including every degraded (last-good) body — and the degraded envelope
// wraps exactly the bytes a healthy server serves for the same query.
func TestChaosSoakDeterministicDegradation(t *testing.T) {
	leakcheck.Check(t)
	first := runDegradationScript(t)
	second := runDegradationScript(t)

	wantStatus := []int{200, 200, 200, 200, 200, 200, 503, 200}
	wantDegraded := []string{"", "", "build_failure", "build_failure", "build_failure", "breaker_open", "", ""}
	for i, st := range first {
		if st.status != wantStatus[i] {
			t.Errorf("step %d (%s): status = %d, want %d: %s", i, st.path, st.status, wantStatus[i], st.body)
		}
		if st.degraded != wantDegraded[i] {
			t.Errorf("step %d (%s): degraded = %q, want %q", i, st.path, st.degraded, wantDegraded[i])
		}
		if st != second[i] {
			t.Errorf("step %d (%s): responses differ across identically-seeded servers\nfirst:  %+v\nsecond: %+v",
				i, st.path, st, second[i])
		}
	}
	// The breaker shed carries machine-readable retry advice.
	if shed := first[6]; shed.retryAfter != "3600" {
		t.Errorf("breaker shed Retry-After = %q, want 3600 (the 1h cooldown)", shed.retryAfter)
	}

	// A degraded body's data field is byte-for-byte the healthy answer:
	// degradation changes the envelope, never the analysis.
	healthy := New(Config{CacheSize: 1, Timeout: time.Minute, Logf: func(string, ...any) {}})
	rr := httptest.NewRecorder()
	healthy.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/quality?"+soakConfigs[0], nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthy server: %d: %s", rr.Code, rr.Body.String())
	}
	var env struct {
		Degraded bool            `json:"degraded"`
		Reason   string          `json:"reason"`
		Detail   string          `json:"detail"`
		Data     json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(first[2].body), &env); err != nil {
		t.Fatal(err)
	}
	if !env.Degraded || env.Reason != "build_failure" || env.Detail != faults.ErrInjectedBuild.Error() {
		t.Errorf("envelope = %+v, want degraded build_failure quoting the chaos sentinel", env)
	}
	if want := strings.TrimSuffix(rr.Body.String(), "\n"); string(env.Data) != want {
		t.Errorf("degraded data differs from the healthy answer\ndegraded: %.120s\nhealthy:  %.120s", env.Data, want)
	}
}

// TestChaosSoakStream wires streaming into the chaos soak: the follower
// tails a log whose delivery order was corrupted by the seeded stream
// chaos plan (duplicates, one-day reordering, arrivals past the
// watermark) while the log grows underneath it and concurrent clients
// long-poll /v1/stream. The contract under chaos: every response is a
// clean 200 with a monotonic watermark, delivery defects land as
// quarantine counters rather than errors, and those counters are a
// deterministic function of the chaos seed — exactly the counts an
// offline replay of the same corrupted record sequence produces.
func TestChaosSoakStream(t *testing.T) {
	leakcheck.Check(t)
	study := StudyConfig{Seed: 12, Days: 60, Racks: [2]int{4, 3}}
	res, err := simulate.Run(study.simConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := stream.Records(res)
	if err != nil {
		t.Fatal(err)
	}
	ch := faults.NewChaos(faults.ChaosConfig{
		Seed:                9,
		StreamReorderRate:   0.10,
		StreamDuplicateRate: 0.08,
		StreamLateRate:      0.04,
	})
	corrupted := stream.CorruptRecords(recs, ch)

	// Expected counters come from an offline replay of the identical
	// corrupted sequence — the live follower must land on the same ones.
	var buf bytes.Buffer
	if err := stream.WriteLog(&buf, corrupted); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rd, err := stream.NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.Replay(context.Background(), rd, stream.Config{
		Sim: study.simConfig(1), DisableRefit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStats := want.Stats()
	if wantStats.Late == 0 || wantStats.Duplicates == 0 {
		t.Fatalf("chaos plan injected no stream defects: %+v", wantStats)
	}

	// The log grows under the follower: a third to start, the rest
	// appended while clients are parked on long-polls. Cut points are
	// frame boundaries by construction (whole records re-encoded).
	var third bytes.Buffer
	if err := stream.WriteLog(&third, corrupted[:len(corrupted)/3]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chaos.log")
	if err := os.WriteFile(path, third.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers: 1,
		Logf:    func(string, ...any) {},
		build:   failingBuild(),
		Follow: &FollowConfig{
			Path:         path,
			Study:        study,
			PollInterval: 2 * time.Millisecond,
			LongPoll:     5 * time.Second,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Follow(ctx) }()
	go func() {
		time.Sleep(30 * time.Millisecond)
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Errorf("appending log: %v", err)
		}
	}()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			watermark := -1
			deadline := time.Now().Add(30 * time.Second)
			for {
				url := ts.URL + "/v1/stream"
				if watermark >= 0 {
					url = fmt.Sprintf("%s?watermark=%d", url, watermark)
				}
				body, resp := getStreamStatus(t, url)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/v1/stream = %d, want 200 under stream chaos", resp.StatusCode)
					return
				}
				if body.Error != "" {
					t.Errorf("follower surfaced an error under stream chaos: %s", body.Error)
					return
				}
				if body.Watermark < watermark {
					t.Errorf("watermark went backwards: %d -> %d", watermark, body.Watermark)
					return
				}
				watermark = body.Watermark
				if body.Sealed {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("stream never sealed (watermark %d)", watermark)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("Follow: %v", err)
	}

	snap := fetchSnapshot(t, ts.URL)
	if snap.Stream == nil {
		t.Fatal("/metricz has no stream section")
	}
	if !snap.Stream.Sealed || snap.Stream.Watermark != study.Days || snap.Stream.Lag != 0 {
		t.Fatalf("stream counters = %+v, want sealed at %d with zero lag", snap.Stream, study.Days)
	}
	if snap.Stream.Late != wantStats.Late || snap.Stream.Duplicates != wantStats.Duplicates {
		t.Fatalf("quarantines not deterministic: live %d late / %d dup, offline replay %d late / %d dup",
			snap.Stream.Late, snap.Stream.Duplicates, wantStats.Late, wantStats.Duplicates)
	}
	if snap.Stream.RecordsIn != wantStats.RecordsIn {
		t.Fatalf("records in = %d, offline replay saw %d", snap.Stream.RecordsIn, wantStats.RecordsIn)
	}
	if snap.Stream.Refits == 0 {
		t.Fatal("live refitter never ran under stream chaos")
	}
}

// TestChaosSoakOverload is the concurrent chaos soak: hundreds of
// clients, every chaos class on, a deliberately tight q3 admission
// class, and a cache smaller than the working set. It asserts the
// daemon's overload contract — every response is a typed 200/429/503,
// degraded bodies are byte-stable per (path, reason), availability and
// latency SLOs hold — and records the run in BENCH_serve.json.
func TestChaosSoakOverload(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("soak is not a -short test")
	}
	const (
		clients           = 200
		requestsPerClient = 5
		q3Burst           = 64
	)
	srv := New(Config{
		CacheSize: 2, // < len(soakConfigs): guarantees rebuild attempts
		Timeout:   30 * time.Second,
		Warmup:    true,
		Logf:      func(string, ...any) {},
		Resilience: ResilienceConfig{
			MaxConcurrent: 32,
			MaxQueue:      512, // cheap endpoints queue rather than shed
			Q3Concurrent:  2,
			Q3Queue:       2, // the grid endpoint sheds under the burst
			// The breaker trips and recovers repeatedly as injected
			// rebuild failures cluster; every study has a last-good copy,
			// so breaker-open windows degrade instead of shedding.
			BreakerThreshold: 5,
			BreakerCooldown:  50 * time.Millisecond,
		},
		Chaos: &faults.ChaosConfig{
			Seed:           7,
			BuildFailAfter: 1, // warmed once, every rebuild fails
			LatencyRate:    0.05,
			LatencySpike:   5 * time.Millisecond,
			SlowClientRate: 0.05,
			SlowChunk:      256,
			SlowDelay:      time.Millisecond,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm phase: build each study once (attempt 1 always succeeds), so
	// chaos failures always have a last-good copy to fall back on.
	for _, cfg := range soakConfigs {
		body := fetchBody(t, ts.URL+"/v1/quality?"+cfg)
		if body == "" {
			t.Fatal("empty warmup response")
		}
	}

	endpoints := []string{
		"/v1/quality?%s",
		"/v1/predict?%s",
		"/v1/q2?%s",
		"/v1/q1?%s&workload=W6",
		"/v1/q3?%s",
	}
	var (
		mu           sync.Mutex
		statusCounts = map[int]int64{}
		// cheap (non-q3) requests tracked separately: they must stay
		// almost perfectly available while q3 sheds its overload.
		cheapTotal, cheapOK int64
		// degraded bodies keyed by (path, reason): all byte-identical.
		degradedBodies = map[string]string{}
	)
	record := func(path string, resp *http.Response, body []byte) {
		mu.Lock()
		defer mu.Unlock()
		statusCounts[resp.StatusCode]++
		if !strings.HasPrefix(path, "/v1/q3") {
			cheapTotal++
			if resp.StatusCode == http.StatusOK {
				cheapOK++
			}
		}
		if reason := resp.Header.Get("X-Rainshine-Degraded"); reason != "" {
			key := path + "|" + reason
			if prev, ok := degradedBodies[key]; ok {
				if prev != string(body) {
					t.Errorf("degraded body for %s not byte-stable", key)
				}
			} else {
				degradedBodies[key] = string(body)
			}
		}
	}
	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("GET %s = %d (outside the 200/429/503 contract): %.200s",
				path, resp.StatusCode, body)
		}
		record(path, resp, body)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for j := 0; j < requestsPerClient; j++ {
				cfg := soakConfigs[(c+j)%len(soakConfigs)]
				get(fmt.Sprintf(endpoints[(c*requestsPerClient+j)%len(endpoints)], cfg))
			}
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()

	// Synchronized q3 bursts against the 2+2 q3 class until sheds are
	// observed (a single burst suffices in practice; the loop removes
	// any scheduling luck).
	for attempt := 0; attempt < 5; attempt++ {
		burstStart := make(chan struct{})
		var bwg sync.WaitGroup
		for i := 0; i < q3Burst; i++ {
			bwg.Add(1)
			go func() {
				defer bwg.Done()
				<-burstStart
				get("/v1/q3?" + soakConfigs[0])
			}()
		}
		close(burstStart)
		bwg.Wait()
		if fetchSnapshot(t, ts.URL).Resilience.ShedTotal() > 0 {
			break
		}
	}
	wall := time.Since(t0)

	snap := fetchSnapshot(t, ts.URL)
	var total, ok200 int64
	mu.Lock()
	for code, n := range statusCounts {
		total += n
		if code == http.StatusOK {
			ok200 += n
		}
	}
	cheapAvailability := float64(cheapOK) / float64(cheapTotal)
	mu.Unlock()
	availability := float64(ok200) / float64(total)

	if snap.Resilience.ShedTotal() == 0 {
		t.Error("soak produced zero sheds: admission control never engaged")
	}
	if snap.Resilience.DegradedServed == 0 {
		t.Error("soak produced zero degraded responses: fallback path never engaged")
	}
	if snap.Resilience.ChaosBuildFaults == 0 {
		t.Error("chaos injected zero build faults")
	}
	if availability < soakAvailabilityMin {
		t.Errorf("availability = %.3f, SLO floor %.2f (statuses: %v)",
			availability, soakAvailabilityMin, statusCounts)
	}
	if cheapAvailability < soakCheapAvailabilityMin {
		t.Errorf("cheap-endpoint availability = %.4f, SLO floor %.2f — overload leaked past the q3 class",
			cheapAvailability, soakCheapAvailabilityMin)
	}
	if p99 := snap.Requests["/v1/quality"].LatencyMS.P99; p99 > soakCheapP99MaxMS {
		t.Errorf("/v1/quality p99 = %.1fms, SLO %.0fms", p99, soakCheapP99MaxMS)
	}
	if p99 := snap.Requests["/v1/q3"].LatencyMS.P99; p99 > soakQ3P99MaxMS {
		t.Errorf("/v1/q3 p99 = %.1fms, SLO %.0fms", p99, soakQ3P99MaxMS)
	}

	t.Logf("%d requests in %v (%.0f req/s): availability %.3f (cheap %.4f), sheds %d (queue %d, breaker %d), degraded %d, chaos faults %d/%d/%d",
		total, wall, float64(total)/wall.Seconds(), availability, cheapAvailability,
		snap.Resilience.ShedTotal(), snap.Resilience.ShedQueueFull, snap.Resilience.ShedBreakerOpen,
		snap.Resilience.DegradedServed,
		snap.Resilience.ChaosBuildFaults, snap.Resilience.ChaosLatencies, snap.Resilience.ChaosSlowClients)

	statusJSON := map[string]int64{}
	mu.Lock()
	for code, n := range statusCounts {
		statusJSON[fmt.Sprintf("%d", code)] = n
	}
	mu.Unlock()
	writeBenchSection(t, "soak", struct {
		Test              string                      `json:"test"`
		Clients           int                         `json:"clients"`
		Requests          int64                       `json:"requests"`
		WallSeconds       float64                     `json:"wall_seconds"`
		RequestsPerSecond float64                     `json:"requests_per_second"`
		Availability      float64                     `json:"availability"`
		CheapAvailability float64                     `json:"cheap_availability"`
		SLO               map[string]float64          `json:"slo"`
		StatusCounts      map[string]int64            `json:"status_counts"`
		Resilience        ResilienceCounters          `json:"resilience"`
		Builds            BuildCounters               `json:"builds"`
		Endpoints         map[string]EndpointSnapshot `json:"endpoints"`
	}{
		Test:              "TestChaosSoakOverload",
		Clients:           clients,
		Requests:          total,
		WallSeconds:       wall.Seconds(),
		RequestsPerSecond: float64(total) / wall.Seconds(),
		Availability:      availability,
		CheapAvailability: cheapAvailability,
		SLO: map[string]float64{
			"availability_min":       soakAvailabilityMin,
			"cheap_availability_min": soakCheapAvailabilityMin,
			"quality_p99_max_ms":     soakCheapP99MaxMS,
			"q3_p99_max_ms":          soakQ3P99MaxMS,
		},
		StatusCounts: statusJSON,
		Resilience:   snap.Resilience,
		Builds:       snap.Builds,
		Endpoints:    snap.Requests,
	})
}
