package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rainshine"
	"rainshine/internal/resilience"
)

// StudyConfig canonically identifies one study: every request parameter
// that feeds simulation. Two requests with equal (normalized) configs
// share one cached study; everything else about a request (workload,
// granularity, price ratios) is an evaluation parameter and never forces
// a rebuild.
type StudyConfig struct {
	Seed   uint64
	Days   int
	Racks  [2]int
	Faults bool
}

// Normalize resolves defaulted fields so that "unset" and "explicitly
// set to the default" map to the same cache key.
func (c StudyConfig) Normalize() StudyConfig {
	if c.Seed == 0 {
		c.Seed = rainshine.DefaultSeed
	}
	if c.Days == 0 {
		c.Days = 930
	}
	if c.Racks[0] == 0 && c.Racks[1] == 0 {
		c.Racks = [2]int{331, 290} // paper-scale fleet (Table I)
	}
	return c
}

// Key is the canonical cache key.
func (c StudyConfig) Key() string {
	c = c.Normalize()
	return fmt.Sprintf("seed=%d days=%d racks=%d,%d faults=%t",
		c.Seed, c.Days, c.Racks[0], c.Racks[1], c.Faults)
}

// Options translates the config to rainshine functional options.
func (c StudyConfig) Options() []rainshine.Option {
	c = c.Normalize()
	opts := []rainshine.Option{
		rainshine.WithSeed(c.Seed),
		rainshine.WithDays(c.Days),
		rainshine.WithRacks(c.Racks[0], c.Racks[1]),
	}
	if c.Faults {
		opts = append(opts, rainshine.WithFaults(rainshine.DefaultFaults()))
	}
	return opts
}

// buildFunc constructs a study; swapped out by tests.
type buildFunc func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error)

// buildStudyWith returns the production buildFunc. workers bounds each
// study's simulation and analysis fan-out (cart.Config.Workers
// semantics: 0 means GOMAXPROCS, 1 forces serial); it is a server-level
// tuning knob, not part of the cache key, because every worker count
// produces byte-identical studies.
func buildStudyWith(workers int) buildFunc {
	return func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		opts := cfg.Options()
		if workers != 0 {
			opts = append(opts, rainshine.WithWorkers(workers))
		}
		return rainshine.NewStudyContext(ctx, opts...)
	}
}

// BuildError wraps a failed study build for which no last-good fallback
// exists. The server maps it to a typed 503: the request was well
// formed, the service could not produce the answer right now.
type BuildError struct {
	Key string
	Err error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("study build failed (%s): %v", e.Key, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// Degradation marks a response served from the last-good stale copy of
// a study instead of a fresh build. Reason and Detail are derived only
// from the failure class and its (deterministic) error text, never from
// the clock or attempt counters, so degraded response bodies are
// byte-stable for a fixed seed.
type Degradation struct {
	// Reason is "build_failure", "build_timeout", or "breaker_open".
	Reason string
	// Detail is the deterministic cause description.
	Detail string
}

// buildCall is one in-flight study construction shared by every request
// that asked for the same config while it ran (singleflight). The build
// runs detached from any single request's context; instead each waiter
// holds a reference, and when the last waiter abandons (timeout, client
// gone) the build itself is canceled — a study nobody is waiting for is
// never simulated to completion. Independently of any waiter, the build
// is bounded by the registry's buildTimeout so a detached build can
// never run forever.
type buildCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int

	// set before done is closed
	study *rainshine.Study
	err   error
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key   string
	study *rainshine.Study
}

// lruCache is a tiny LRU used for both the primary study cache and the
// last-good stale store. Not safe for concurrent use on its own; the
// registry's mutex guards it.
type lruCache struct {
	capacity int
	order    []*cacheEntry // front = most recently used
	byKey    map[string]*cacheEntry
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, byKey: make(map[string]*cacheEntry)}
}

// get returns the cached study and touches it to the front.
func (c *lruCache) get(key string) (*rainshine.Study, bool) {
	e, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.touch(e)
	return e.study, true
}

// touch moves e to the front of the order.
func (c *lruCache) touch(e *cacheEntry) {
	for i, x := range c.order {
		if x == e {
			copy(c.order[1:i+1], c.order[:i])
			c.order[0] = e
			return
		}
	}
}

// put inserts (or refreshes) key, evicting from the tail past capacity.
// evicted reports how many entries fell off.
func (c *lruCache) put(key string, st *rainshine.Study) (evicted int) {
	if old, ok := c.byKey[key]; ok {
		// A racing build of the same key landed first; keep the old
		// entry (identical by determinism) and just refresh it.
		c.touch(old)
		return 0
	}
	e := &cacheEntry{key: key, study: st}
	c.byKey[key] = e
	c.order = append([]*cacheEntry{e}, c.order...)
	for len(c.order) > c.capacity {
		last := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		delete(c.byKey, last.key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return len(c.order) }

// registryOptions parameterize newRegistry.
type registryOptions struct {
	capacity     int
	buildTimeout time.Duration       // bounds each detached build; 0 means 10m
	breaker      *resilience.Breaker // nil disables the build breaker
	metrics      *Metrics
	build        buildFunc
}

// registry is the study cache: singleflight deduplication in front of a
// size-bounded LRU, with a circuit breaker around builds and a
// last-good stale store for graceful degradation. All methods are safe
// for concurrent use.
type registry struct {
	build        buildFunc
	buildTimeout time.Duration
	breaker      *resilience.Breaker
	metrics      *Metrics

	mu       sync.Mutex
	cache    *lruCache // fresh studies
	stale    *lruCache // last-good fallbacks, retained past primary eviction
	inflight map[string]*buildCall
}

// newRegistry assembles the cache. The stale store is sized at twice
// the primary capacity so a fallback survives one generation of primary
// eviction — long enough to cover a failed rebuild of a recently
// evicted study.
func newRegistry(opts registryOptions) *registry {
	if opts.build == nil {
		opts.build = buildStudyWith(0)
	}
	if opts.buildTimeout <= 0 {
		opts.buildTimeout = 10 * time.Minute
	}
	capacity := opts.capacity
	if capacity < 1 {
		capacity = 1
	}
	return &registry{
		build:        opts.build,
		buildTimeout: opts.buildTimeout,
		breaker:      opts.breaker,
		metrics:      opts.metrics,
		cache:        newLRU(capacity),
		stale:        newLRU(2 * capacity),
		inflight:     make(map[string]*buildCall),
	}
}

// Study returns the cached study for cfg, joining an in-flight build or
// starting one as needed. It blocks until the study is ready or ctx is
// done. On build failure (or an open breaker) it degrades: if a
// last-good copy of the same study exists it is returned with a non-nil
// Degradation marker; otherwise the failure surfaces as a typed error
// (BuildError, or the breaker's ShedError). Build errors are never
// cached.
func (r *registry) Study(ctx context.Context, cfg StudyConfig) (*rainshine.Study, *Degradation, error) {
	key := cfg.Key()

	r.mu.Lock()
	if st, ok := r.cache.get(key); ok {
		r.mu.Unlock()
		r.metrics.CacheHit()
		return st, nil, nil
	}
	bc, joined := r.inflight[key]
	if joined {
		bc.waiters++
	} else {
		// An open breaker means builds are currently failing: don't
		// start another, serve the last-good copy or shed.
		if err := r.breaker.Allow(); err != nil {
			st, ok := r.stale.get(key)
			r.mu.Unlock()
			if ok {
				return st, &Degradation{
					Reason: "breaker_open",
					Detail: "study build circuit open; serving last-good study",
				}, nil
			}
			return nil, nil, err
		}
		// The build is singleflight-shared: it must outlive the first
		// requester's deadline, so it detaches from the request ctx and
		// is canceled when every waiter abandons it (see run) or when
		// its own build timeout expires — whichever comes first.
		//lint:allow ctxflow detached singleflight build outlives any one request
		bctx, cancel := context.WithTimeout(context.Background(), r.buildTimeout)
		bc = &buildCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
		r.inflight[key] = bc
		go r.run(bctx, key, cfg, bc)
	}
	r.mu.Unlock()
	r.metrics.CacheMiss(joined)

	select {
	case <-bc.done:
		if bc.err != nil {
			return r.degrade(key, bc.err)
		}
		return bc.study, nil, nil
	case <-ctx.Done():
		r.mu.Lock()
		bc.waiters--
		abandoned := bc.waiters == 0
		r.mu.Unlock()
		if abandoned {
			bc.cancel()
		}
		return nil, nil, ctx.Err()
	}
}

// degrade resolves a failed build: the last-good stale copy when one
// exists, a typed BuildError otherwise. The Detail strings quote only
// deterministic error text (the chaos sentinel, context errors), so
// degraded bodies are byte-stable.
func (r *registry) degrade(key string, buildErr error) (*rainshine.Study, *Degradation, error) {
	r.mu.Lock()
	st, ok := r.stale.get(key)
	r.mu.Unlock()
	if !ok {
		return nil, nil, &BuildError{Key: key, Err: buildErr}
	}
	reason := "build_failure"
	if errors.Is(buildErr, context.DeadlineExceeded) {
		reason = "build_timeout"
	}
	return st, &Degradation{Reason: reason, Detail: buildErr.Error()}, nil
}

// run executes one build and publishes its result. A panicking build
// becomes an error for its waiters: builds run outside any request
// goroutine, so the HTTP panic-recovery middleware cannot catch them.
// The breaker and build counters are recorded before done is closed so
// a strictly sequential client observes state transitions
// deterministically.
func (r *registry) run(ctx context.Context, key string, cfg StudyConfig, bc *buildCall) {
	defer bc.cancel()
	r.metrics.BuildStarted()
	study, err := func() (st *rainshine.Study, err error) {
		defer func() {
			if p := recover(); p != nil {
				st, err = nil, fmt.Errorf("server: study build panicked: %v", p)
			}
		}()
		return r.build(ctx, cfg)
	}()

	r.mu.Lock()
	bc.study, bc.err = study, err
	delete(r.inflight, key)
	if err == nil {
		r.insert(key, study)
	}
	r.mu.Unlock()

	switch {
	case err == nil:
		r.breaker.RecordSuccess()
		r.metrics.BuildCompleted()
	case errors.Is(context.Cause(ctx), context.Canceled):
		// Abandoned by every waiter: not judged, not a service failure.
		r.breaker.RecordCanceled()
		r.metrics.BuildCanceled()
	case errors.Is(err, context.DeadlineExceeded):
		// The detached build's own timeout: a failure mode.
		r.breaker.RecordFailure()
		r.metrics.BuildTimedOut()
		r.metrics.BuildFailed()
	default:
		r.breaker.RecordFailure()
		r.metrics.BuildFailed()
	}
	close(bc.done)
}

// insert publishes a built study as both the primary cache entry and
// the last-good fallback. Caller holds r.mu.
func (r *registry) insert(key string, st *rainshine.Study) {
	for i := r.cache.put(key, st); i > 0; i-- {
		r.metrics.CacheEvicted()
	}
	r.stale.put(key, st)
	r.metrics.CacheSize(r.cache.len())
}

// Len reports the number of cached (fresh) studies.
func (r *registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.len()
}
