package goleak_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/goleak"
)

func TestGoleak(t *testing.T) {
	// ctxdep first: package a imports its CtxIgnored facts.
	analysistest.Run(t, "testdata", goleak.Analyzer, "ctxdep", "a")
}
