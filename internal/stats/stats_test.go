package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance of this classic sample is 4; unbiased is 32/7.
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance of empty = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatalf("Quantile err: %v", err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(empty) should error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("Quantile(p<0) should error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("Quantile(p>1) should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("Quantile(NaN) should error")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		a := math.Abs(math.Mod(p1, 1))
		b := math.Abs(math.Mod(p2, 1))
		if a > b {
			a, b = b, a
		}
		qa, err1 := Quantile(xs, a)
		qb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return qa <= qb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Min != 1 || s.Max != 10 || !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.P50, 5.5, 1e-12) {
		t.Errorf("P50 = %v, want 5.5", s.P50)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson anti = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v", r, err)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 2, 4})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", got)
		}
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize all-zero = %v", zero)
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{1, 2}
	Normalize(in)
	if in[0] != 1 || in[1] != 2 {
		t.Error("Normalize mutated its input")
	}
}

func TestNormalizeTo(t *testing.T) {
	got := NormalizeTo([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("NormalizeTo = %v", got)
	}
	same := NormalizeTo([]float64{2, 4}, 0)
	if same[0] != 2 || same[1] != 4 {
		t.Errorf("NormalizeTo ref=0 = %v", same)
	}
}

func TestNormalizeMaxIsOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				continue
			}
			xs = append(xs, v)
		}
		out := Normalize(xs)
		m, err := Max(out)
		if err != nil {
			return true // empty after filtering
		}
		return m == 0 || almostEqual(m, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSumMatchesSort(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3}
	if got := Sum(xs); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("Sum = %v", got)
	}
	// Sum must not reorder.
	if !sort.Float64sAreSorted(xs) {
		t.Error("Sum mutated input order")
	}
}
