// Package ingest is the validation / quarantine / repair layer between
// recorded telemetry and the analyses. The paper's central premise is
// that Q1-Q3 decisions must be drawn from messy production data — RMA
// streams with duplicates and impossible dates, BMS feeds with dropouts
// and wedged sensors, inventories with missing fields — and the related
// failure-study literature (Meza; the Cloud Uptime Archive) is explicit
// that scrubbing and coverage accounting dominate real analysis work.
//
// The pipeline has three stages per stream:
//
//	validate  — classify each record against a typed defect taxonomy
//	quarantine — records that cannot be trusted are dropped and counted
//	repair    — records that can be fixed deterministically are fixed
//	            (ticket dedup, repeat-order restoration, sensor gap
//	            imputation), and counted separately
//
// Every decision lands in a DataQuality Report, so an analysis never
// silently runs on less data than the operator thinks it has: the
// facade surfaces the report and the Q1-Q3 reports carry an effective
// coverage figure instead of failing.
package ingest

import "errors"

// Class identifies one defect class of the taxonomy. Classes are stable
// identifiers: reports key on them and tests assert on them.
type Class int

// Defect classes, grouped by stream: tickets, sensors, frames.
const (
	// DuplicateTicket is a record identical to an earlier one in every
	// field but the ID (a double-submitted RMA).
	DuplicateTicket Class = iota
	// TicketOutOfRange is a ticket whose day, rack, or DC lies outside
	// the observation window or fleet (clock skew past the window edge,
	// decommissioned assets, fat-fingered IDs).
	TicketOutOfRange
	// TicketBadHour is an onset hour outside [0, 24).
	TicketBadHour
	// TicketBadRepair is a negative or non-finite repair duration.
	TicketBadRepair
	// TicketUnknownFault is a fault code outside the taxonomy.
	TicketUnknownFault
	// RepeatInversion is a hardware ticket whose RMA re-open counter
	// disagrees with time order (a skewed timestamp inside the window).
	RepeatInversion
	// SensorGap is a rack-day with no sensor reading (BMS dropout).
	SensorGap
	// SensorStuck is a rack-day inside a stuck-at run: the sensor
	// repeating one reading verbatim for implausibly long.
	SensorStuck
	// NonFiniteCell is a NaN/Inf cell in an ingested frame.
	NonFiniteCell
	// MissingColumn is a required factor column absent from an ingested
	// frame.
	MissingColumn
	// LateArrival is a stream record that arrived after the watermark
	// closed its day: the day's books are already committed, so the
	// record is quarantined rather than silently rewriting history.
	LateArrival
	// DuplicateEvent is a stream record re-delivered with a sequence
	// number the maintainer has already committed (at-least-once
	// transports retrying a send).
	DuplicateEvent
	// NumClasses bounds the taxonomy.
	NumClasses
)

// Sentinel errors, one per defect class; classification and tests use
// errors.Is against these.
var (
	ErrDuplicateTicket    = errors.New("ingest: duplicate ticket")
	ErrTicketOutOfRange   = errors.New("ingest: ticket out of range")
	ErrTicketBadHour      = errors.New("ingest: ticket hour out of range")
	ErrTicketBadRepair    = errors.New("ingest: bad repair duration")
	ErrTicketUnknownFault = errors.New("ingest: unknown fault code")
	ErrRepeatInversion    = errors.New("ingest: repeat counter out of order")
	ErrSensorGap          = errors.New("ingest: sensor dropout")
	ErrSensorStuck        = errors.New("ingest: stuck sensor")
	ErrNonFiniteCell      = errors.New("ingest: non-finite cell")
	ErrMissingColumn      = errors.New("ingest: missing column")
	ErrLateArrival        = errors.New("ingest: late arrival past watermark")
	ErrDuplicateEvent     = errors.New("ingest: duplicate stream event")
)

var classErrs = [NumClasses]error{
	ErrDuplicateTicket, ErrTicketOutOfRange, ErrTicketBadHour,
	ErrTicketBadRepair, ErrTicketUnknownFault, ErrRepeatInversion,
	ErrSensorGap, ErrSensorStuck, ErrNonFiniteCell, ErrMissingColumn,
	ErrLateArrival, ErrDuplicateEvent,
}

var classNames = [NumClasses]string{
	"duplicate-ticket", "ticket-out-of-range", "ticket-bad-hour",
	"ticket-bad-repair", "ticket-unknown-fault", "repeat-inversion",
	"sensor-gap", "sensor-stuck", "non-finite-cell", "missing-column",
	"late-arrival", "duplicate-event",
}

// Err returns the class's sentinel error.
func (c Class) Err() error {
	if c < 0 || c >= NumClasses {
		return errors.New("ingest: unknown defect class")
	}
	return classErrs[c]
}

// String names the class as reports print it.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "unknown"
	}
	return classNames[c]
}

// Report is the DataQuality accounting of one scrub pass: what came in,
// what was quarantined per defect class, what was repaired, and how much
// sensor coverage survives. The zero value reads as a clean pass over
// zero records.
type Report struct {
	// TicketsIn and TicketsKept bracket the ticket stream: records
	// received vs records surviving quarantine and dedup.
	TicketsIn   int
	TicketsKept int
	// Quarantined counts records dropped, per defect class.
	Quarantined [NumClasses]int
	// Repaired counts records fixed in place, per defect class
	// (deduped tickets count under Quarantined, restored repeat
	// counters and imputed sensor readings under Repaired).
	Repaired [NumClasses]int
	// SensorSamples is the total rack-day sensor readings examined;
	// SensorNative of them were observed directly, SensorImputed were
	// reconstructed, SensorMissing remain unusable.
	SensorSamples int
	SensorNative  int
	SensorImputed int
	SensorMissing int
}

// TicketCoverage is the fraction of received tickets kept.
func (r *Report) TicketCoverage() float64 {
	if r.TicketsIn == 0 {
		return 1
	}
	return float64(r.TicketsKept) / float64(r.TicketsIn)
}

// SensorNativeCoverage is the fraction of rack-day readings observed
// directly (neither imputed nor missing).
func (r *Report) SensorNativeCoverage() float64 {
	if r.SensorSamples == 0 {
		return 1
	}
	return float64(r.SensorNative) / float64(r.SensorSamples)
}

// SensorCoverage is the fraction of rack-day readings usable after
// repair (native plus imputed).
func (r *Report) SensorCoverage() float64 {
	if r.SensorSamples == 0 {
		return 1
	}
	return float64(r.SensorNative+r.SensorImputed) / float64(r.SensorSamples)
}

// Coverage is the effective data coverage of downstream analyses: the
// smaller of ticket and usable-sensor coverage.
func (r *Report) Coverage() float64 {
	tc, sc := r.TicketCoverage(), r.SensorCoverage()
	if tc < sc {
		return tc
	}
	return sc
}

// Defects totals quarantined and repaired records across all classes.
func (r *Report) Defects() int {
	n := 0
	for c := Class(0); c < NumClasses; c++ {
		n += r.Quarantined[c] + r.Repaired[c]
	}
	return n
}

// Clean reports whether the pass found nothing to quarantine or repair.
func (r *Report) Clean() bool { return r.Defects() == 0 }
