package ingest

import (
	"fmt"
	"math"
	"strings"

	"rainshine/internal/frame"
)

// FrameQuality is the DataQuality accounting for one ingested frame:
// how many factor cells are usable, per column, after sanitization.
type FrameQuality struct {
	Rows int
	// ContinuousCols is the number of continuous columns examined (the
	// denominator of Coverage alongside Rows).
	ContinuousCols int
	// MissingCells[col] counts unusable cells (NaN on arrival, or Inf
	// demoted to missing) in each damaged continuous column.
	MissingCells map[string]int
	// InfCells counts the subset of missing cells that arrived as ±Inf.
	InfCells int
	// MissingColumns lists requested columns the frame does not carry.
	MissingColumns []string
}

// Coverage is the fraction of examined continuous cells that are usable.
func (q *FrameQuality) Coverage() float64 {
	total := q.Rows * q.ContinuousCols
	if total == 0 {
		return 1
	}
	missing := 0
	for _, n := range q.MissingCells {
		missing += n
	}
	return float64(total-missing) / float64(total)
}

// SanitizeFrame hardens an externally supplied frame for analysis:
// required columns must be present (a typed ErrMissingColumn otherwise),
// and every non-finite cell in a continuous column is normalized to NaN
// — the single missing-value representation the tree learner tolerates —
// and recorded in the column's null bitmap, so downstream consumers
// (the binned CART engine, the exporter) can test missingness without
// re-probing every float. The damage is itemized per column. The input
// frame is modified in place only by this quarantine marking; values
// are never invented here (imputation is a sensor-stage concern, and
// the learner's available-case handling covers sparse cells better
// than fake data).
func SanitizeFrame(f *frame.Frame, required []string, rep *Report) (*FrameQuality, error) {
	q := &FrameQuality{Rows: f.NumRows(), MissingCells: map[string]int{}}
	for _, name := range required {
		if _, err := f.Col(name); err != nil {
			q.MissingColumns = append(q.MissingColumns, name)
		}
	}
	if len(q.MissingColumns) > 0 {
		if rep != nil {
			rep.Quarantined[MissingColumn] += len(q.MissingColumns)
		}
		return q, fmt.Errorf("%w: %s", ErrMissingColumn, strings.Join(q.MissingColumns, ", "))
	}
	for _, name := range f.Names() {
		c, err := f.Col(name)
		if err != nil {
			return q, err
		}
		if c.Kind != frame.Continuous {
			continue
		}
		q.ContinuousCols++
		missing := 0
		for i, v := range c.Data {
			switch {
			case math.IsInf(v, 0):
				q.InfCells++
				fallthrough
			case math.IsNaN(v):
				// The in-place quarantine IS this function's documented
				// contract: callers hand over ownership for repair.
				c.SetMissing(i) //lint:allow frameclone sanitize owns the frame during quarantine; marking is the advertised in-place repair
				missing++
			}
		}
		if missing > 0 {
			q.MissingCells[name] = missing
			if rep != nil {
				rep.Quarantined[NonFiniteCell] += missing
			}
		}
	}
	return q, nil
}

// AvailableFeatures filters a candidate feature list to the columns the
// frame actually carries — the graceful-degradation path for frames
// with missing factor columns. The second return lists what was
// dropped.
func AvailableFeatures(f *frame.Frame, candidates []string) (have, dropped []string) {
	for _, name := range candidates {
		if _, err := f.Col(name); err != nil {
			dropped = append(dropped, name)
			continue
		}
		have = append(have, name)
	}
	return have, dropped
}
