// Package a exercises the ctxflow threading and Background rules.
package a

import "context"

// WorkContext is the cancellable variant.
func WorkContext(ctx context.Context, n int) int { return n }

// Work is WorkContext with context.Background() — a documented facade
// shim (negative case).
func Work(n int) int {
	return WorkContext(context.Background(), n)
}

// FetchContext is the cancellable variant of Fetch.
func FetchContext(ctx context.Context, n int) int { return n }

// Fetch forgets to name its variant in this comment.
func Fetch(n int) int {
	return FetchContext(context.Background(), n) // want `facade shim Fetch must name FetchContext in its doc comment`
}

// Sneaky mints a context outside the facade shape.
func Sneaky() int {
	ctx := context.Background() // want `outside main, tests, and facade shims`
	<-ctx.Done()
	return 0
}

// Driver holds a ctx but calls the ctx-free entry point.
func Driver(ctx context.Context) int {
	return Work(1) // want `call to Work ignores its context-aware variant WorkContext`
}

// Threaded passes its ctx through (negative case).
func Threaded(ctx context.Context) int {
	return WorkContext(ctx, 2)
}

// Client exercises the method-set sibling lookup.
type Client struct{}

// Get is the ctx-free method.
func (c *Client) Get() int { return 0 }

// GetContext is its cancellable sibling.
func (c *Client) GetContext(ctx context.Context) int { return 0 }

// UseClient drops its ctx on the floor.
func UseClient(ctx context.Context, c *Client) int {
	return c.Get() // want `call to Get ignores its context-aware variant GetContext`
}

// UseClientCtx threads it (negative case).
func UseClientCtx(ctx context.Context, c *Client) int {
	return c.GetContext(ctx)
}
