package server

import (
	"context"
	"fmt"
	"sync"

	"rainshine"
)

// StudyConfig canonically identifies one study: every request parameter
// that feeds simulation. Two requests with equal (normalized) configs
// share one cached study; everything else about a request (workload,
// granularity, price ratios) is an evaluation parameter and never forces
// a rebuild.
type StudyConfig struct {
	Seed   uint64
	Days   int
	Racks  [2]int
	Faults bool
}

// Normalize resolves defaulted fields so that "unset" and "explicitly
// set to the default" map to the same cache key.
func (c StudyConfig) Normalize() StudyConfig {
	if c.Seed == 0 {
		c.Seed = rainshine.DefaultSeed
	}
	if c.Days == 0 {
		c.Days = 930
	}
	if c.Racks[0] == 0 && c.Racks[1] == 0 {
		c.Racks = [2]int{331, 290} // paper-scale fleet (Table I)
	}
	return c
}

// Key is the canonical cache key.
func (c StudyConfig) Key() string {
	c = c.Normalize()
	return fmt.Sprintf("seed=%d days=%d racks=%d,%d faults=%t",
		c.Seed, c.Days, c.Racks[0], c.Racks[1], c.Faults)
}

// Options translates the config to rainshine functional options.
func (c StudyConfig) Options() []rainshine.Option {
	c = c.Normalize()
	opts := []rainshine.Option{
		rainshine.WithSeed(c.Seed),
		rainshine.WithDays(c.Days),
		rainshine.WithRacks(c.Racks[0], c.Racks[1]),
	}
	if c.Faults {
		opts = append(opts, rainshine.WithFaults(rainshine.DefaultFaults()))
	}
	return opts
}

// buildFunc constructs a study; swapped out by tests.
type buildFunc func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error)

// buildStudyWith returns the production buildFunc. workers bounds each
// study's simulation and analysis fan-out (cart.Config.Workers
// semantics: 0 means GOMAXPROCS, 1 forces serial); it is a server-level
// tuning knob, not part of the cache key, because every worker count
// produces byte-identical studies.
func buildStudyWith(workers int) buildFunc {
	return func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		opts := cfg.Options()
		if workers != 0 {
			opts = append(opts, rainshine.WithWorkers(workers))
		}
		return rainshine.NewStudyContext(ctx, opts...)
	}
}

// buildCall is one in-flight study construction shared by every request
// that asked for the same config while it ran (singleflight). The build
// runs detached from any single request's context; instead each waiter
// holds a reference, and when the last waiter abandons (timeout, client
// gone) the build itself is canceled — a study nobody is waiting for is
// never simulated to completion.
type buildCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int

	// set before done is closed
	study *rainshine.Study
	err   error
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key   string
	study *rainshine.Study
}

// registry is the study cache: singleflight deduplication in front of a
// size-bounded LRU. All methods are safe for concurrent use.
type registry struct {
	build    buildFunc
	capacity int
	metrics  *Metrics

	mu       sync.Mutex
	order    []*cacheEntry // front = most recently used
	byKey    map[string]*cacheEntry
	inflight map[string]*buildCall
}

// newRegistry sizes the cache; capacity < 1 is coerced to 1.
func newRegistry(capacity int, m *Metrics, build buildFunc) *registry {
	if capacity < 1 {
		capacity = 1
	}
	if build == nil {
		build = buildStudyWith(0)
	}
	return &registry{
		build:    build,
		capacity: capacity,
		metrics:  m,
		byKey:    make(map[string]*cacheEntry),
		inflight: make(map[string]*buildCall),
	}
}

// Study returns the cached study for cfg, joining an in-flight build or
// starting one as needed. It blocks until the study is ready or ctx is
// done. Build errors are returned to every waiter and never cached.
func (r *registry) Study(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
	key := cfg.Key()

	r.mu.Lock()
	if e, ok := r.byKey[key]; ok {
		r.touch(e)
		r.mu.Unlock()
		r.metrics.CacheHit()
		return e.study, nil
	}
	bc, joined := r.inflight[key]
	if joined {
		bc.waiters++
	} else {
		// The build is singleflight-shared: it must outlive the first
		// requester's deadline, so it detaches from the request ctx and
		// is canceled only when every waiter abandons it (see run).
		//lint:allow ctxflow detached singleflight build outlives any one request
		bctx, cancel := context.WithCancel(context.Background())
		bc = &buildCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
		r.inflight[key] = bc
		go r.run(bctx, key, cfg, bc)
	}
	r.mu.Unlock()
	r.metrics.CacheMiss(joined)

	select {
	case <-bc.done:
		return bc.study, bc.err
	case <-ctx.Done():
		r.mu.Lock()
		bc.waiters--
		abandoned := bc.waiters == 0
		r.mu.Unlock()
		if abandoned {
			bc.cancel()
		}
		return nil, ctx.Err()
	}
}

// run executes one build and publishes its result. A panicking build
// becomes an error for its waiters: builds run outside any request
// goroutine, so the HTTP panic-recovery middleware cannot catch them.
func (r *registry) run(ctx context.Context, key string, cfg StudyConfig, bc *buildCall) {
	defer bc.cancel()
	r.metrics.BuildStarted()
	study, err := func() (st *rainshine.Study, err error) {
		defer func() {
			if p := recover(); p != nil {
				st, err = nil, fmt.Errorf("server: study build panicked: %v", p)
			}
		}()
		return r.build(ctx, cfg)
	}()

	r.mu.Lock()
	bc.study, bc.err = study, err
	delete(r.inflight, key)
	if err == nil {
		r.insert(&cacheEntry{key: key, study: study})
	}
	r.mu.Unlock()
	close(bc.done)

	switch {
	case err == nil:
		r.metrics.BuildCompleted()
	case context.Cause(ctx) != nil:
		r.metrics.BuildCanceled()
	default:
		r.metrics.BuildFailed()
	}
}

// touch moves e to the front of the LRU order. Caller holds r.mu.
func (r *registry) touch(e *cacheEntry) {
	for i, x := range r.order {
		if x == e {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = e
			return
		}
	}
}

// insert adds a fresh entry, evicting from the LRU tail past capacity.
// Caller holds r.mu.
func (r *registry) insert(e *cacheEntry) {
	if old, ok := r.byKey[e.key]; ok {
		// A racing build of the same key landed first; keep the old
		// entry (identical by determinism) and just refresh it.
		r.touch(old)
		return
	}
	r.byKey[e.key] = e
	r.order = append([]*cacheEntry{e}, r.order...)
	for len(r.order) > r.capacity {
		last := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		delete(r.byKey, last.key)
		r.metrics.CacheEvicted()
	}
	r.metrics.CacheSize(len(r.order))
}

// Len reports the number of cached studies.
func (r *registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
