// Vendor selection (the paper's Q2): should you pay a premium for the
// SKU that "looks" 10x more reliable?
//
// The single-factor view histograms failures per SKU and wildly
// overestimates the gap, because the worse SKU also sits in the hotter
// datacenter, runs the heavier workload, draws more power, and is
// younger. The multi-factor view isolates the SKU's own effect — and at
// a 1.5x price premium the two views reach opposite procurement
// verdicts.
//
// Run with:
//
//	go run ./examples/vendorselection
package main

import (
	"fmt"
	"log"

	"rainshine"
)

func main() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(540),
		rainshine.WithRacks(160, 140),
	)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := study.VendorComparison(1.0, 1.25, 1.5, 2.0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("How much less reliable is SKU S2 than SKU S4?")
	fmt.Printf("  single-factor estimate: %4.1fx   (paper: ~10x)\n", rep.RatioSF)
	fmt.Printf("  multi-factor estimate:  %4.1fx   (paper:  ~4x)\n", rep.RatioMF)
	fmt.Println()
	fmt.Println("TCO verdict for buying S4 instead of S2 (3-year horizon):")
	fmt.Printf("  %-12s %14s %14s\n", "S4 price", "SF estimate", "MF estimate")
	for _, v := range rep.Verdicts {
		fmt.Printf("  %-12s %+13.1f%% %+13.1f%%\n",
			fmt.Sprintf("%.2fx", v.PriceRatio), 100*v.SavingsSF, 100*v.SavingsMF)
	}
	fmt.Println()
	fmt.Println("Where SF is positive but MF is negative, trusting the naive histogram")
	fmt.Println("means paying a premium for reliability the hardware does not deliver.")
}
