// Command rainshinelint runs the repository's invariant suite — the
// nine analyzers in internal/analyzers — in two modes:
//
//	rainshinelint [-fix] ./...            standalone: loads packages itself
//	go vet -vettool=rainshinelint ./...   unitchecker protocol
//
// Standalone mode resolves the module by walking up to go.mod and
// type-checks everything from source (stdlib included), so it needs no
// network, no module cache, and no pre-built export data. Packages are
// analyzed in dependency order over one shared fact store, so facts
// exported while analyzing internal/resilience are visible while
// analyzing internal/server. The vettool mode speaks cmd/go's JSON
// .cfg protocol, type-checks against the export data files the go
// command supplies, and round-trips facts through the .vetx files the
// go command threads between per-package invocations.
//
// -fix (standalone only) applies every suggested fix carried by an
// unsuppressed diagnostic and rewrites the files in place. Fixable
// findings do not count against the exit status once applied; a second
// run finds nothing to fix, which is the idempotence CI checks.
//
// Exit status: 0 clean, 1 findings or usage error (standalone),
// 2 findings (vettool protocol, matching x/tools unitchecker).
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rainshine/internal/analysis"
	"rainshine/internal/analysis/load"
	"rainshine/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	// go vet handshake: version for build caching, flag discovery.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			fmt.Println("rainshinelint version 2 (invariant suite: benchgate clockinject ctxflow detrand frameclone goleak lockorder nansafe parsafe)")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	fix := false
	var patterns []string
	for _, a := range args {
		if a == "-fix" || a == "--fix" {
			fix = true
			continue
		}
		patterns = append(patterns, a)
	}
	os.Exit(standalone(patterns, fix))
}

// newFactStore builds a store with every suite fact type registered.
func newFactStore() *analysis.FactStore {
	facts := analysis.NewFactStore()
	for _, a := range analyzers.All() {
		facts.Register(a.FactTypes...)
	}
	return facts
}

// diag is one finding ready for printing.
type diag struct {
	pos      token.Position
	analyzer string
	message  string
	fixable  bool
}

func (d diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.pos, d.message, d.analyzer)
}

// suiteResult carries one package's findings: the printable list and
// the raw diagnostics whose suggested fixes -fix can apply.
type suiteResult struct {
	diags   []diag
	fixable []analysis.Diagnostic
}

// runSuite applies every analyzer to one package and returns the
// findings that survive //lint:allow suppression. Test files take part
// as syntax-only parses: benchgate audits them, and allow annotations
// inside them are honored.
func runSuite(fset *token.FileSet, files, testFiles []*ast.File, dir string, pkg *types.Package, info *types.Info, facts *analysis.FactStore) suiteResult {
	allFiles := append(append([]*ast.File(nil), files...), testFiles...)
	allows := analysis.CollectAllows(fset, allFiles)
	var res suiteResult
	for _, pos := range allows.Invalid {
		res.diags = append(res.diags, diag{fset.Position(pos), "lint", "malformed //lint:allow: need `//lint:allow <analyzer> <reason>`", false})
	}
	for _, a := range analyzers.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			TestFiles: testFiles,
			Dir:       dir,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if allows.Allowed(fset, d) {
				return
			}
			res.diags = append(res.diags, diag{fset.Position(d.Pos), d.Analyzer, d.Message, len(d.SuggestedFixes) > 0})
			if len(d.SuggestedFixes) > 0 {
				res.fixable = append(res.fixable, d)
			}
		}
		if err := a.Run(pass); err != nil {
			res.diags = append(res.diags, diag{token.Position{}, a.Name, fmt.Sprintf("analyzer error: %v", err), false})
		}
	}
	sort.Slice(res.diags, func(i, j int) bool {
		if res.diags[i].pos.Filename != res.diags[j].pos.Filename {
			return res.diags[i].pos.Filename < res.diags[j].pos.Filename
		}
		return res.diags[i].pos.Offset < res.diags[j].pos.Offset
	})
	// Nested constructs (a map range inside a map range) can surface
	// the same finding twice; report each once.
	dedup := res.diags[:0]
	for i, d := range res.diags {
		if i == 0 || d != res.diags[i-1] {
			dedup = append(dedup, d)
		}
	}
	res.diags = dedup
	return res
}

// standalone lints the module containing the working directory.
func standalone(patterns []string, fix bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, root, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	paths, err := expand(module, root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	loader := load.NewLoader(module, root)
	facts := newFactStore()
	results := map[string]suiteResult{}
	analyzed := map[string]bool{}
	loadErrs := 0
	// visit analyzes path after its module-internal imports, so every
	// pass sees its dependencies' facts.
	var visit func(path string) error
	visit = func(path string) error {
		if analyzed[path] {
			return nil
		}
		analyzed[path] = true
		p, err := loader.Load(path)
		if err != nil {
			return err
		}
		imports := make([]string, 0, len(p.Types.Imports()))
		for _, imp := range p.Types.Imports() {
			if ip := imp.Path(); ip == module || strings.HasPrefix(ip, module+"/") {
				imports = append(imports, ip)
			}
		}
		sort.Strings(imports)
		for _, ip := range imports {
			if err := visit(ip); err != nil {
				return err
			}
		}
		results[path] = runSuite(p.Fset, p.Files, load.ParseTestFiles(p.Fset, p.Dir), p.Dir, p.Types, p.Info, facts)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			fmt.Fprintf(os.Stderr, "rainshinelint: %v\n", err)
			loadErrs++
		}
	}
	var fixableAll []analysis.Diagnostic
	for _, path := range paths {
		fixableAll = append(fixableAll, results[path].fixable...)
	}
	fixedPositions := map[token.Position]bool{}
	if fix && len(fixableAll) > 0 {
		fixed, err := analysis.ApplyFixes(loader.Fset, fixableAll, os.ReadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainshinelint: applying fixes:", err)
			return 1
		}
		names := make([]string, 0, len(fixed))
		for name := range fixed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mode := os.FileMode(0o644)
			if fi, err := os.Stat(name); err == nil {
				mode = fi.Mode().Perm()
			}
			if err := os.WriteFile(name, fixed[name], mode); err != nil {
				fmt.Fprintln(os.Stderr, "rainshinelint:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "rainshinelint: fixed %s\n", name)
		}
		for _, d := range fixableAll {
			fixedPositions[loader.Fset.Position(d.Pos)] = true
		}
	}
	bad := loadErrs
	for _, path := range paths {
		for _, d := range results[path].diags {
			if fix && d.fixable && fixedPositions[d.pos] {
				fmt.Fprintf(os.Stderr, "%s (fixed)\n", d)
				continue
			}
			fmt.Fprintln(os.Stderr, d)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// findModule walks up from the working directory to go.mod.
func findModule() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(m), dir, nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns: "./..." (or "all") covers the whole
// module, other entries are import paths or ./-relative directories.
func expand(module, root string, patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == module+"/...":
			all, err := load.ModulePackages(module, root)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(module)
			} else {
				add(module + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// --- go vet -vettool protocol -----------------------------------------

// vetConfig mirrors the JSON config cmd/go hands a vettool per package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rainshinelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	facts := newFactStore()
	// Merge the facts of every dependency the go command already
	// analyzed; unreadable or legacy content is skipped silently.
	depVetx := make([]string, 0, len(cfg.PackageVetx))
	for _, vf := range cfg.PackageVetx {
		depVetx = append(depVetx, vf)
	}
	sort.Strings(depVetx)
	for _, vf := range depVetx {
		if data, err := os.ReadFile(vf); err == nil {
			if err := facts.DecodeInto(data); err != nil {
				fmt.Fprintln(os.Stderr, "rainshinelint:", err)
				return 1
			}
		}
	}
	// writeVetx persists this package's facts; the go command caches
	// and threads the file to dependents.
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		data, err := facts.EncodePackage(cfg.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainshinelint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rainshinelint:", err)
			return 1
		}
		return 0
	}
	if isTestVariant(cfg.ImportPath) {
		// The invariants are production-only; test variants contribute
		// no facts but the go command still expects the output file.
		return writeVetx()
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			fmt.Fprintln(os.Stderr, "rainshinelint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, Error: func(error) {}}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "rainshinelint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	res := runSuite(fset, files, load.ParseTestFiles(fset, cfg.Dir), cfg.Dir, pkg, info, facts)
	if rc := writeVetx(); rc != 0 {
		return rc
	}
	if cfg.VetxOnly {
		return 0
	}
	found := 0
	for _, d := range res.diags {
		fmt.Fprintln(os.Stderr, d)
		found++
	}
	if found > 0 {
		return 2
	}
	return 0
}

// isTestVariant recognizes the per-package test builds go vet also
// feeds the tool; the invariants are production-only.
func isTestVariant(importPath string) bool {
	return strings.Contains(importPath, " [") ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test")
}
