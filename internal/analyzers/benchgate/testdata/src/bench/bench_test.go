package bench

import "testing"

func TestBenchGood(t *testing.T) {
	d := &doc{Results: map[string]float64{}}
	d.Results["fit_fast"] = 1
	if d.Budget("fit_fast", 2) > 2 {
		t.Fatal("over budget")
	}
}

func TestBenchVarKey(t *testing.T) {
	d := &doc{Results: map[string]float64{}}
	for _, name := range []string{"a", "b"} {
		d.Results[name] = 1
	}
}

func TestBenchBaselineOnly(t *testing.T) {
	d := &doc{Baselines: map[string]float64{}}
	d.Baselines["reference_run"] = 42
}

func TestBenchNoRead(t *testing.T) {
	d := &doc{Results: map[string]float64{}}
	d.Results["orphan_mark"] = 1 // want `snapshot mark "orphan_mark" is written but never read back`
}

func helperNotAGate() {
	d := &doc{Results: map[string]float64{}}
	d.Results["hidden_mark"] = 1 // want `benchmark snapshot write outside a TestBench\* gate`
}

func TestBenchUnwired(t *testing.T) {
	d := &doc{Results: map[string]float64{}}
	d.Results["unwired_mark"] = 1 // want `gate TestBenchUnwired is not wired into Makefile`
	_ = d.Budget("unwired_mark", 2)
}
