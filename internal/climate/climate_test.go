package climate

import (
	"testing"

	"rainshine/internal/rng"
	"rainshine/internal/stats"
	"rainshine/internal/topology"
)

func buildModel(t *testing.T, days int) (*Model, *topology.Fleet) {
	t.Helper()
	src := rng.New(rng.DefaultSeed)
	fleet, err := topology.Build(src.Split("topology"), topology.Config{ObservationDays: days})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(src.Split("climate"), fleet, days)
	if err != nil {
		t.Fatal(err)
	}
	return m, fleet
}

func TestBoundsRespected(t *testing.T) {
	m, fleet := buildModel(t, 365)
	for ri := 0; ri < len(fleet.Racks); ri += 7 {
		for d := 0; d < 365; d += 11 {
			c, err := m.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			if c.TempF < MinTempF || c.TempF > MaxTempF {
				t.Fatalf("rack %d day %d temp %v out of [%v,%v]", ri, d, c.TempF, MinTempF, MaxTempF)
			}
			if c.RH < MinRH || c.RH > MaxRH {
				t.Fatalf("rack %d day %d RH %v out of [%v,%v]", ri, d, c.RH, MinRH, MaxRH)
			}
		}
	}
}

func TestAtErrors(t *testing.T) {
	m, _ := buildModel(t, 30)
	if _, err := m.At(-1, 0); err == nil {
		t.Error("negative rack should error")
	}
	if _, err := m.At(0, -1); err == nil {
		t.Error("negative day should error")
	}
	if _, err := m.At(0, 30); err == nil {
		t.Error("day past end should error")
	}
	if _, err := New(rng.New(1), &topology.Fleet{}, 0); err == nil {
		t.Error("zero days should error")
	}
	if m.Days() != 30 {
		t.Errorf("Days = %d", m.Days())
	}
}

func TestDC2IsFlatDC1Swings(t *testing.T) {
	m, fleet := buildModel(t, 365)
	var dc1Temps, dc2Temps []float64
	for ri := range fleet.Racks {
		for d := 0; d < 365; d += 5 {
			c, err := m.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			if fleet.Racks[ri].DC == 0 {
				dc1Temps = append(dc1Temps, c.TempF)
			} else {
				dc2Temps = append(dc2Temps, c.TempF)
			}
		}
	}
	sd1 := stats.StdDev(dc1Temps)
	sd2 := stats.StdDev(dc2Temps)
	if sd1 < 2*sd2 {
		t.Errorf("DC1 temp sd %v should dwarf DC2 sd %v", sd1, sd2)
	}
	// DC1 must see meaningful time above 78F (the Fig 18 split) and
	// DC2 essentially none.
	hot1 := fracAbove(dc1Temps, 78)
	hot2 := fracAbove(dc2Temps, 78)
	if hot1 < 0.03 {
		t.Errorf("DC1 time above 78F = %v, want >= 3%%", hot1)
	}
	if hot2 > 0.01 {
		t.Errorf("DC2 time above 78F = %v, want ~0", hot2)
	}
}

func TestDC1HasDrySpells(t *testing.T) {
	m, fleet := buildModel(t, 365)
	var dc1RH []float64
	for ri := range fleet.Racks {
		if fleet.Racks[ri].DC != 0 {
			continue
		}
		for d := 0; d < 365; d += 3 {
			c, err := m.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			dc1RH = append(dc1RH, c.RH)
		}
	}
	dry := 0
	for _, rh := range dc1RH {
		if rh < 25 {
			dry++
		}
	}
	if frac := float64(dry) / float64(len(dc1RH)); frac < 0.05 {
		t.Errorf("DC1 RH<25%% fraction = %v, want >= 5%%", frac)
	}
}

func TestHotRegionIsHotter(t *testing.T) {
	m, fleet := buildModel(t, 180)
	var region0, region2 []float64
	for ri := range fleet.Racks {
		r := &fleet.Racks[ri]
		if r.DC != 0 {
			continue
		}
		for d := 0; d < 180; d += 7 {
			c, err := m.At(ri, d)
			if err != nil {
				t.Fatal(err)
			}
			switch r.Region {
			case 0:
				region0 = append(region0, c.TempF)
			case 2:
				region2 = append(region2, c.TempF)
			}
		}
	}
	if stats.Mean(region0) < stats.Mean(region2)+2 {
		t.Errorf("region 0 mean %v not clearly hotter than region 2 mean %v",
			stats.Mean(region0), stats.Mean(region2))
	}
}

func TestSeasonality(t *testing.T) {
	m, fleet := buildModel(t, 365)
	// Compare January vs July mean inlet temperature in DC1.
	var jan, jul []float64
	for ri := range fleet.Racks {
		if fleet.Racks[ri].DC != 0 {
			continue
		}
		for d := 0; d < 28; d++ {
			c, _ := m.At(ri, d)
			jan = append(jan, c.TempF)
		}
		for d := 185; d < 213; d++ {
			c, _ := m.At(ri, d)
			jul = append(jul, c.TempF)
		}
	}
	if stats.Mean(jul) < stats.Mean(jan)+3 {
		t.Errorf("July mean %v not clearly above January mean %v", stats.Mean(jul), stats.Mean(jan))
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := buildModel(t, 60)
	b, _ := buildModel(t, 60)
	for ri := 0; ri < 50; ri++ {
		for d := 0; d < 60; d += 13 {
			ca, _ := a.At(ri, d)
			cb, _ := b.At(ri, d)
			if ca != cb {
				t.Fatalf("climate not deterministic at rack %d day %d", ri, d)
			}
		}
	}
}

func fracAbove(xs []float64, thr float64) float64 {
	n := 0
	for _, x := range xs {
		if x > thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
