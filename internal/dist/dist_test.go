package dist

import (
	"math"
	"testing"
	"testing/quick"

	"rainshine/internal/rng"
	"rainshine/internal/stats"
)

func sampleN(s Sampler, src *rng.Source, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Sample(src)
	}
	return xs
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		name   string
		lambda float64
	}{
		{"tiny", 0.1},
		{"small", 3},
		{"boundary", 29.9},
		{"ptrs", 50},
		{"large", 400},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := rng.New(7).Split(tt.name)
			xs := sampleN(Poisson{Lambda: tt.lambda}, src, 40000)
			m := stats.Mean(xs)
			v := stats.Variance(xs)
			tol := 4 * math.Sqrt(tt.lambda/40000) // ~4 sigma of the mean estimator
			if math.Abs(m-tt.lambda) > tol {
				t.Errorf("mean = %v, want %v +- %v", m, tt.lambda, tol)
			}
			if math.Abs(v-tt.lambda)/tt.lambda > 0.1 {
				t.Errorf("variance = %v, want ~%v", v, tt.lambda)
			}
		})
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	src := rng.New(1)
	if got := (Poisson{Lambda: 0}).SampleInt(src); got != 0 {
		t.Errorf("Poisson(0) sample = %d", got)
	}
	if got := (Poisson{Lambda: -1}).SampleInt(src); got != 0 {
		t.Errorf("Poisson(-1) sample = %d", got)
	}
	if got := (Poisson{Lambda: -1}).Mean(); got != 0 {
		t.Errorf("Poisson(-1) mean = %v", got)
	}
}

func TestPoissonPMF(t *testing.T) {
	p := Poisson{Lambda: 2}
	// P(X=0) = e^-2, P(X=2) = 2 e^-2.
	if got, want := p.PMF(0), math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(0) = %v, want %v", got, want)
	}
	if got, want := p.PMF(2), 2*math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(2) = %v, want %v", got, want)
	}
	if p.PMF(-1) != 0 {
		t.Error("PMF(-1) should be 0")
	}
	// PMF sums to ~1.
	sum := 0.0
	for k := 0; k < 40; k++ {
		sum += p.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sum = %v", sum)
	}
}

func TestPoissonPMFMatchesSamples(t *testing.T) {
	src := rng.New(3)
	p := Poisson{Lambda: 5}
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[p.SampleInt(src)]++
	}
	for k := 0; k <= 10; k++ {
		want := p.PMF(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(X=%d): sampled %v, pmf %v", k, got, want)
		}
	}
}

func TestExponential(t *testing.T) {
	src := rng.New(11)
	e := Exponential{Rate: 0.5}
	xs := sampleN(e, src, 40000)
	if m := stats.Mean(xs); math.Abs(m-2) > 0.05 {
		t.Errorf("mean = %v, want 2", m)
	}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := e.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got, want := e.CDF(2), 1-math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(2) = %v, want %v", got, want)
	}
	if e.Mean() != 2 {
		t.Errorf("Mean = %v", e.Mean())
	}
}

func TestWeibullRegimes(t *testing.T) {
	// Shape < 1: hazard decreasing; shape > 1: increasing.
	infant := Weibull{K: 0.5, Lambda: 100}
	if infant.Hazard(1) <= infant.Hazard(10) {
		t.Error("K<1 hazard should decrease with age")
	}
	wearout := Weibull{K: 3, Lambda: 100}
	if wearout.Hazard(1) >= wearout.Hazard(10) {
		t.Error("K>1 hazard should increase with age")
	}
	// K=1 reduces to Exponential.
	exp1 := Weibull{K: 1, Lambda: 2}
	if math.Abs(exp1.Hazard(1)-0.5) > 1e-9 || math.Abs(exp1.Hazard(7)-0.5) > 1e-9 {
		t.Error("K=1 hazard should be constant 1/lambda")
	}
}

func TestWeibullMoments(t *testing.T) {
	src := rng.New(13)
	w := Weibull{K: 2, Lambda: 10}
	xs := sampleN(w, src, 40000)
	want := w.Mean() // 10*Gamma(1.5) = 8.862...
	if m := stats.Mean(xs); math.Abs(m-want)/want > 0.02 {
		t.Errorf("mean = %v, want %v", m, want)
	}
}

func TestWeibullCDFInverseProperty(t *testing.T) {
	w := Weibull{K: 1.7, Lambda: 5}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		x := w.Sample(src)
		c := w.CDF(x)
		return x >= 0 && c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if w.CDF(-3) != 0 {
		t.Error("CDF(-3) should be 0")
	}
}

func TestNormal(t *testing.T) {
	src := rng.New(17)
	n := Normal{Mu: 5, Sigma: 2}
	xs := sampleN(n, src, 40000)
	if m := stats.Mean(xs); math.Abs(m-5) > 0.05 {
		t.Errorf("mean = %v", m)
	}
	if sd := stats.StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %v", sd)
	}
	if got := n.CDF(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(mu) = %v", got)
	}
	if got := n.CDF(5 + 2*1.959964); math.Abs(got-0.975) > 1e-4 {
		t.Errorf("CDF(mu+1.96sd) = %v", got)
	}
}

func TestLogNormal(t *testing.T) {
	src := rng.New(19)
	l := LogNormal{Mu: 1, Sigma: 0.5}
	xs := sampleN(l, src, 60000)
	want := l.Mean()
	if m := stats.Mean(xs); math.Abs(m-want)/want > 0.03 {
		t.Errorf("mean = %v, want %v", m, want)
	}
	for _, x := range xs[:100] {
		if x <= 0 {
			t.Fatal("log-normal sample <= 0")
		}
	}
}

func TestBernoulli(t *testing.T) {
	src := rng.New(23)
	b := Bernoulli{P: 0.3}
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if b.Sample(src) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("frequency = %v, want 0.3", frac)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	c, err := NewCategorical(weights)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	src := rng.New(29)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(src)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d freq = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	c, err := NewCategorical([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 10; i++ {
		if c.Sample(src) != 0 {
			t.Fatal("single-category sample != 0")
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	c, err := NewCategorical([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	for i := 0; i < 20000; i++ {
		if c.Sample(src) == 1 {
			t.Fatal("zero-weight category was sampled")
		}
	}
}

func TestCategoricalErrors(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}}
	for _, w := range cases {
		if _, err := NewCategorical(w); err == nil {
			t.Errorf("NewCategorical(%v) should error", w)
		}
	}
}
