package cart

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"rainshine/internal/frame"
)

// RefitConfig tunes the incremental refit-on-drift policy around the
// base growth rules.
type RefitConfig struct {
	Config Config
	// LeafDrift is the relative population change (vs the last
	// structural fit) that marks a leaf's subtree stale. Zero means
	// 0.15; negative disables drift refits entirely (stats refresh
	// only).
	LeafDrift float64
	// GlobalDrift is the fraction of all rows that may sit in stale
	// leaves before the incremental path gives up and refits the whole
	// tree. Zero means 0.35.
	GlobalDrift float64
}

func (c RefitConfig) withDefaults() RefitConfig {
	c.Config = c.Config.withDefaults()
	if c.LeafDrift == 0 {
		c.LeafDrift = 0.15
	}
	if c.GlobalDrift == 0 {
		c.GlobalDrift = 0.35
	}
	return c
}

// RefitOutcome says what a Refit call did.
type RefitOutcome int

const (
	// RefitInitial is the first fit over the accumulated rows.
	RefitInitial RefitOutcome = iota
	// RefitStats means no leaf drifted past the threshold: leaf
	// statistics were refreshed in place, structure untouched.
	RefitStats
	// RefitSubtrees means only the drifted leaves' subtrees were
	// regrown; the rest of the tree (and its presorted row views) was
	// reused.
	RefitSubtrees
	// RefitFull means drift was global and the whole tree was regrown
	// (still reusing the incrementally merged presorted orders, so no
	// re-sort happens even here).
	RefitFull
)

// String names the outcome.
func (o RefitOutcome) String() string {
	switch o {
	case RefitInitial:
		return "initial"
	case RefitStats:
		return "stats"
	case RefitSubtrees:
		return "subtrees"
	case RefitFull:
		return "full"
	default:
		return fmt.Sprintf("RefitOutcome(%d)", int(o))
	}
}

// RefitStatsReport summarizes one Refit call.
type RefitStatsReport struct {
	Outcome      RefitOutcome
	Rows         int // training rows after this refit
	RowsAppended int // rows added since the previous refit
	Leaves       int // leaves before the refit (0 on initial)
	Drifted      int // leaves past the drift threshold
}

// Refitter maintains a CART model over an append-only training set: new
// rows arrive in batches (a streamed day of rack-day rows), and Refit
// brings the tree current without re-sorting history. Each feature's
// presorted order is maintained by merging the sorted batch into the
// existing order (O(n + k log k) per feature instead of O(n log n)),
// and structure is regrown only under the drifted leaves — rows are
// routed through the current tree, leaves whose populations shifted
// beyond RefitConfig.LeafDrift get their subtrees refit on their row
// subsets, and only global drift falls back to a whole-tree regrowth.
//
// Refit results are deterministic: row order is append order, the
// regrowth uses the same worker-count-independent split search as Fit,
// and two Refitters fed the same batches produce byte-identical trees.
// The Refitter always uses the exact (presorted) engine: its unit of
// reuse is the sorted order itself.
type Refitter struct {
	cfg         RefitConfig
	target      string
	feats       []Feature
	classLevels []string

	cols   [][]float64
	y      []float64
	sorted [][]int32 // per feature, finite rows by (value, row); nil for nominal

	tree      *Tree
	baseLeafN []int // leaf populations at the last structural fit
	appended  int

	// Reused per-Refit scratch.
	x       []float64
	rowLeaf []int32
}

// NewRefitter prepares an empty incremental learner. feats fixes the
// feature schema (order matters: it is the row layout Append expects);
// classLevels must be non-empty for classification tasks and nil for
// regression.
func NewRefitter(target string, feats []Feature, classLevels []string, cfg RefitConfig) (*Refitter, error) {
	if target == "" {
		return nil, errors.New("cart: empty refit target")
	}
	if len(feats) == 0 {
		return nil, errors.New("cart: no refit features")
	}
	cfg = cfg.withDefaults()
	if cfg.Config.Task == Classification && len(classLevels) == 0 {
		return nil, errors.New("cart: classification refitter needs class levels")
	}
	if cfg.Config.Task == Regression && len(classLevels) > 0 {
		return nil, errors.New("cart: regression refitter got class levels")
	}
	r := &Refitter{
		cfg:         cfg,
		target:      target,
		feats:       slices.Clone(feats),
		classLevels: slices.Clone(classLevels),
		cols:        make([][]float64, len(feats)),
		sorted:      make([][]int32, len(feats)),
		x:           make([]float64, len(feats)),
	}
	return r, nil
}

// Rows returns the number of accumulated training rows.
func (r *Refitter) Rows() int { return len(r.y) }

// Tree returns the current model (nil before the first Refit).
func (r *Refitter) Tree() *Tree { return r.tree }

// Append adds a batch of rows (each of len(feats) feature values, NaN
// for missing) with their targets, merging each numeric feature's
// sorted batch into the maintained presorted order.
func (r *Refitter) Append(rows [][]float64, y []float64) error {
	if len(rows) != len(y) {
		return fmt.Errorf("cart: %d rows vs %d targets", len(rows), len(y))
	}
	if len(rows) == 0 {
		return nil
	}
	base := len(r.y)
	for i, row := range rows {
		if len(row) != len(r.feats) {
			return fmt.Errorf("cart: row %d has %d values, want %d", i, len(row), len(r.feats))
		}
		if r.cfg.Config.Task == Classification {
			cl := int(y[i])
			if float64(cl) != y[i] || cl < 0 || cl >= len(r.classLevels) {
				return fmt.Errorf("cart: row %d class %v out of range [0,%d)", i, y[i], len(r.classLevels))
			}
		} else if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return fmt.Errorf("cart: row %d has non-finite target", i)
		}
	}
	r.y = append(r.y, y...)
	for fi := range r.feats {
		col := r.cols[fi]
		for _, row := range rows {
			col = append(col, row[fi])
		}
		r.cols[fi] = col
		if r.feats[fi].Kind == frame.Nominal {
			continue
		}
		r.sorted[fi] = mergeSorted(r.sorted[fi], col, base, len(rows))
	}
	r.appended += len(rows)
	return nil
}

// mergeSorted merges the finite new rows [base, base+k) — sorted by
// (value, row index) — into the existing presorted order over col.
func mergeSorted(old []int32, col []float64, base, k int) []int32 {
	batch := make([]int32, 0, k)
	for i := base; i < base+k; i++ {
		if isFinite(col[i]) {
			batch = append(batch, int32(i))
		}
	}
	slices.SortFunc(batch, func(a, c int32) int {
		va, vc := col[a], col[c]
		switch {
		case va < vc:
			return -1
		case va > vc:
			return 1
		case a < c:
			return -1
		case a > c:
			return 1
		}
		return 0
	})
	if len(batch) == 0 {
		return old
	}
	merged := make([]int32, 0, len(old)+len(batch))
	i, j := 0, 0
	for i < len(old) && j < len(batch) {
		// Old rows always have smaller indices, so value ties break
		// toward the old side.
		if col[old[i]] <= col[batch[j]] {
			merged = append(merged, old[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, old[i:]...)
	merged = append(merged, batch[j:]...)
	return merged
}

// Refit brings the tree current over the accumulated rows. See the
// Refitter doc for the policy; the returned report says which path ran.
func (r *Refitter) Refit(ctx context.Context) (RefitStatsReport, error) {
	rep := RefitStatsReport{Rows: len(r.y), RowsAppended: r.appended}
	if len(r.y) == 0 {
		return rep, errors.New("cart: refit with no rows")
	}
	defer func() { r.appended = 0 }()

	if r.tree == nil {
		rep.Outcome = RefitInitial
		t, err := r.fullFit(ctx)
		if err != nil {
			return rep, err
		}
		r.adopt(t)
		return rep, nil
	}
	rep.Leaves = r.tree.NumLeaves()

	// Route every row through the current structure.
	leafN := make([]int, r.tree.NumLeaves())
	if cap(r.rowLeaf) < len(r.y) {
		r.rowLeaf = make([]int32, len(r.y))
	}
	rowLeaf := r.rowLeaf[:len(r.y)]
	for row := range r.y {
		for fi := range r.cols {
			r.x[fi] = r.cols[fi][row]
		}
		id := r.tree.leafFor(r.x).LeafID
		rowLeaf[row] = int32(id)
		leafN[id]++
	}

	stale := make([]bool, len(leafN))
	staleRows, drifted := 0, 0
	if r.cfg.LeafDrift >= 0 {
		for l, n := range leafN {
			base := r.baseLeafN[l]
			if base < 1 {
				base = 1
			}
			if math.Abs(float64(n-r.baseLeafN[l]))/float64(base) > r.cfg.LeafDrift {
				stale[l] = true
				staleRows += n
				drifted++
			}
		}
	}
	rep.Drifted = drifted

	if drifted == 0 {
		rep.Outcome = RefitStats
		r.refreshLeafStats(rowLeaf, leafN, nil)
		return rep, nil
	}
	if float64(staleRows) > r.cfg.GlobalDrift*float64(len(r.y)) {
		rep.Outcome = RefitFull
		t, err := r.fullFit(ctx)
		if err != nil {
			return rep, err
		}
		r.adopt(t)
		return rep, nil
	}
	rep.Outcome = RefitSubtrees
	if err := r.refitSubtrees(ctx, rowLeaf, leafN, stale); err != nil {
		return rep, err
	}
	return rep, nil
}

// adopt installs a freshly grown tree and rebases drift accounting.
func (r *Refitter) adopt(t *Tree) {
	r.tree = t
	r.baseLeafN = make([]int, t.NumLeaves())
	for l, leaf := range t.Leaves() {
		r.baseLeafN[l] = leaf.N
	}
}

// newBuilder assembles a builder over the accumulated storage for a
// tree shell sharing the refitter's schema.
func (r *Refitter) newBuilder(ctx context.Context, t *Tree) *builder {
	b := &builder{cfg: r.cfg.Config, ctx: ctx, tree: t, y: r.y, cols: r.cols}
	if r.cfg.Config.Task == Classification {
		b.nClasses = len(r.classLevels)
	}
	b.initBuffers(len(r.y))
	return b
}

func (r *Refitter) newTreeShell() *Tree {
	return &Tree{
		Target:        r.target,
		Task:          r.cfg.Config.Task,
		Features:      slices.Clone(r.feats),
		ClassLevels:   r.classLevels,
		importanceRaw: make([]float64, len(r.feats)),
	}
}

// fullFit regrows the whole tree, reusing the maintained presorted
// orders (cloned, since partitioning rearranges them in place).
func (r *Refitter) fullFit(ctx context.Context) (*Tree, error) {
	t := r.newTreeShell()
	b := r.newBuilder(ctx, t)
	idx := make([]int, len(r.y))
	for i := range idx {
		idx[i] = i
	}
	sorted := make([][]int32, len(r.sorted))
	for fi, s := range r.sorted {
		if s != nil {
			sorted[fi] = slices.Clone(s)
		}
	}
	b.rows = nodeRows{idx: idx, sorted: sorted}
	root := b.node(idx)
	b.rootImpurity = root.Impurity
	b.grow(root, b.rows, 0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.Root = root
	t.numberLeaves()
	return t, nil
}

// refreshLeafStats recomputes N/Value/Impurity (and class counts) for
// every kept leaf from the routed rows. skip marks leaves about to be
// replaced by regrown subtrees.
func (r *Refitter) refreshLeafStats(rowLeaf []int32, leafN []int, skip []bool) {
	leaves := r.tree.Leaves()
	idxOf := make([][]int, len(leaves))
	for l := range leaves {
		if (skip == nil || !skip[l]) && leafN[l] > 0 {
			idxOf[l] = make([]int, 0, leafN[l])
		}
	}
	for row, l := range rowLeaf {
		if idxOf[l] != nil {
			idxOf[l] = append(idxOf[l], row)
		}
	}
	stat := &builder{cfg: r.cfg.Config, y: r.y}
	if r.cfg.Config.Task == Classification {
		stat.nClasses = len(r.classLevels)
	}
	for l, leaf := range leaves {
		if skip != nil && skip[l] {
			continue
		}
		if leafN[l] == 0 {
			// A leaf no new data reaches keeps its fitted stats; its
			// population is simply zero now.
			leaf.N = 0
			continue
		}
		fresh := stat.node(idxOf[l])
		leaf.N = fresh.N
		leaf.Value = fresh.Value
		leaf.Impurity = fresh.Impurity
		leaf.ClassCounts = fresh.ClassCounts
	}
}

// refitSubtrees regrows just the stale leaves' subtrees on their routed
// row subsets, reusing the globally maintained presorted orders by a
// single filtering pass per feature.
func (r *Refitter) refitSubtrees(ctx context.Context, rowLeaf []int32, leafN []int, stale []bool) error {
	t := r.tree
	leaves := t.Leaves()

	// Keep the surviving structure's stats current first.
	r.refreshLeafStats(rowLeaf, leafN, stale)

	// Row sets per stale leaf, in ascending row order (the same order a
	// full fit's root partition would deliver them in).
	idxOf := make([][]int, len(leaves))
	for l := range leaves {
		if stale[l] {
			idxOf[l] = make([]int, 0, leafN[l])
		}
	}
	for row, l := range rowLeaf {
		if stale[l] {
			idxOf[l] = append(idxOf[l], row)
		}
	}
	// One pass per numeric feature distributes its global sorted order
	// into per-leaf sorted views — the presorted-order reuse that makes
	// the incremental path cheaper than re-sorting.
	sortedOf := make([][][]int32, len(leaves))
	for l := range leaves {
		if stale[l] {
			sortedOf[l] = make([][]int32, len(r.feats))
		}
	}
	for fi, s := range r.sorted {
		if s == nil {
			continue
		}
		for _, row := range s {
			if l := rowLeaf[row]; stale[l] {
				sortedOf[l][fi] = append(sortedOf[l][fi], row)
			}
		}
	}

	depth, parent, leftOf := r.leafTopology()

	// Regrow each stale leaf in LeafID order (deterministic), sharing
	// one builder whose scratch is sized to the full row count. The
	// temporary shell collects subtree importance, folded into the
	// live tree's totals afterwards.
	shell := r.newTreeShell()
	b := r.newBuilder(ctx, shell)
	// CP gates splits against the *current* root impurity over all
	// rows, the same yardstick a full refit would use.
	allIdx := make([]int, len(r.y))
	for i := range allIdx {
		allIdx[i] = i
	}
	b.rootImpurity = b.node(allIdx).Impurity
	for l, leaf := range leaves {
		if !stale[l] {
			continue
		}
		if len(idxOf[l]) == 0 {
			// Drifted to empty: keep the leaf with zero population.
			leaf.N = 0
			continue
		}
		rows := nodeRows{idx: idxOf[l], sorted: sortedOf[l]}
		fresh := b.node(rows.idx)
		b.grow(fresh, rows, depth[l])
		if err := ctx.Err(); err != nil {
			return err
		}
		switch {
		case parent[l] == nil:
			t.Root = fresh
		case leftOf[l]:
			parent[l].Left = fresh
		default:
			parent[l].Right = fresh
		}
	}
	for fi, g := range shell.importanceRaw {
		t.importanceRaw[fi] += g
	}
	t.numberLeaves()
	r.baseLeafN = make([]int, t.NumLeaves())
	for l, leaf := range t.Leaves() {
		r.baseLeafN[l] = leaf.N
	}
	return nil
}

// leafTopology returns, per LeafID, the leaf's depth, parent node (nil
// for a root leaf), and whether it is its parent's left child.
func (r *Refitter) leafTopology() (depth []int, parent []*Node, leftOf []bool) {
	n := r.tree.NumLeaves()
	depth = make([]int, n)
	parent = make([]*Node, n)
	leftOf = make([]bool, n)
	var walk func(nd, par *Node, left bool, d int)
	walk = func(nd, par *Node, left bool, d int) {
		if nd.IsLeaf() {
			depth[nd.LeafID] = d
			parent[nd.LeafID] = par
			leftOf[nd.LeafID] = left
			return
		}
		walk(nd.Left, nd, true, d+1)
		walk(nd.Right, nd, false, d+1)
	}
	walk(r.tree.Root, nil, false, 0)
	return depth, parent, leftOf
}
