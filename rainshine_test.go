package rainshine

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"rainshine/internal/cart"
)

var cachedStudy *Study

// testStudy builds one reduced-fleet study shared by the facade tests.
func testStudy(t *testing.T) *Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := NewStudy(WithSeed(42), WithDays(540), WithRacks(160, 140))
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = s
	return s
}

func TestNewStudyBasics(t *testing.T) {
	s := testStudy(t)
	if s.NumRacks() != 300 {
		t.Errorf("racks = %d", s.NumRacks())
	}
	if s.NumServers() < 5000 {
		t.Errorf("servers = %d", s.NumServers())
	}
	if s.Days() != 540 {
		t.Errorf("days = %d", s.Days())
	}
	if len(s.Tickets()) == 0 {
		t.Error("no tickets")
	}
	if s.Figures() == nil {
		t.Error("Figures() nil")
	}
}

func TestWithoutSoftwareTickets(t *testing.T) {
	s, err := NewStudy(WithSeed(1), WithDays(60), WithRacks(20, 20), WithoutSoftwareTickets())
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range s.Tickets() {
		if !tk.FalsePositive && tk.Category().String() != "Hardware" {
			t.Fatal("software ticket produced despite option")
		}
	}
}

func TestSpareProvisioningReport(t *testing.T) {
	s := testStudy(t)
	rep, err := s.SpareProvisioning(W6, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "W6" || rep.Granularity != "daily" {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.SLAs) != 3 || len(rep.TCOSavingsPct) != 3 {
		t.Fatalf("SLAs/savings = %d/%d", len(rep.SLAs), len(rep.TCOSavingsPct))
	}
	for _, a := range []string{"LB", "MF", "SF"} {
		if len(rep.OverprovPct[a]) != 3 {
			t.Fatalf("missing approach %s", a)
		}
	}
	last := len(rep.SLAs) - 1
	if rep.OverprovPct["MF"][last] > rep.OverprovPct["SF"][last] {
		t.Error("MF should not exceed SF")
	}
	if len(rep.Clusters) < 2 {
		t.Errorf("clusters = %d", len(rep.Clusters))
	}
	for _, c := range rep.Clusters {
		if c.Racks == 0 || c.Conditions == "" {
			t.Errorf("bad cluster: %+v", c)
		}
	}
	if len(rep.FactorRanking) == 0 {
		t.Error("no factor ranking")
	}
	// Hourly variant also runs.
	if _, err := s.SpareProvisioning(W1, true); err != nil {
		t.Fatal(err)
	}
}

func TestVendorComparisonReport(t *testing.T) {
	s := testStudy(t)
	rep, err := s.VendorComparison() // default 1.0, 1.5
	if err != nil {
		t.Fatal(err)
	}
	if rep.RatioSF <= rep.RatioMF {
		t.Errorf("SF ratio %v should exceed MF ratio %v", rep.RatioSF, rep.RatioMF)
	}
	if rep.RatioMF < 1 {
		t.Errorf("MF ratio %v lost the ordering", rep.RatioMF)
	}
	if len(rep.Verdicts) != 2 {
		t.Fatalf("verdicts = %d", len(rep.Verdicts))
	}
	// At price parity both say buy S4; SF must always be the more
	// optimistic estimate.
	if rep.Verdicts[0].SavingsSF <= 0 || rep.Verdicts[0].SavingsMF <= 0 {
		t.Errorf("parity verdicts = %+v", rep.Verdicts[0])
	}
	for _, v := range rep.Verdicts {
		if v.SavingsSF < v.SavingsMF {
			t.Errorf("SF less optimistic than MF at ratio %v", v.PriceRatio)
		}
	}
}

func TestClimateGuidanceReport(t *testing.T) {
	s := testStudy(t)
	rep, err := s.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.TempThresholdF) {
		t.Fatal("no temperature threshold")
	}
	if rep.TempThresholdF < 70 || rep.TempThresholdF > 85 {
		t.Errorf("temp threshold = %v", rep.TempThresholdF)
	}
	if rep.HotPenalty["DC1"] < 1.2 {
		t.Errorf("DC1 hot penalty = %v, want >= 1.2", rep.HotPenalty["DC1"])
	}
	if rep.Tree == nil {
		t.Error("tree missing")
	}
}

func TestSplitPolicyOptions(t *testing.T) {
	s, err := NewStudy(WithSeed(7), WithDays(30), WithRacks(10, 10), WithBins(64), WithExactSplits())
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.cartConfig()
	if cfg.Bins != 64 {
		t.Errorf("cartConfig Bins = %d, want 64", cfg.Bins)
	}
	if cfg.Split != cart.SplitExact {
		t.Errorf("cartConfig Split = %v, want SplitExact", cfg.Split)
	}
	// Defaults: auto split selection, package-default bin cap.
	d, err := NewStudy(WithSeed(7), WithDays(30), WithRacks(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if dc := d.cartConfig(); dc.Split != cart.SplitAuto || dc.Bins != 0 {
		t.Errorf("default cartConfig = %+v", dc)
	}
	// The small-study Q3 path is below the auto-binning threshold, so
	// the forced-exact study must agree with the default byte for byte.
	re, err := s.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStudy(WithSeed(7), WithDays(30), WithRacks(10, 10), WithBins(64))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := sd.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	if re.Tree.String() != rd.Tree.String() {
		t.Errorf("exact vs auto small-study trees differ:\n%s\n%s", re.Tree, rd.Tree)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := NewStudy(WithSeed(9), WithDays(60), WithRacks(15, 15))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(WithSeed(9), WithDays(60), WithRacks(15, 15))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tickets()) != len(b.Tickets()) {
		t.Fatalf("ticket counts differ: %d vs %d", len(a.Tickets()), len(b.Tickets()))
	}
}

func TestFailurePredictionReport(t *testing.T) {
	s := testStudy(t)
	rep, err := s.FailurePrediction()
	if err != nil {
		t.Fatal(err)
	}
	if rep.AUC < 0.55 {
		t.Errorf("AUC = %v, want clearly above chance", rep.AUC)
	}
	if rep.TrainRows == 0 || rep.TestRows == 0 {
		t.Error("empty split")
	}
	if len(rep.TopFactors) == 0 {
		t.Error("no factor ranking")
	}
	if rep.PositiveRate <= 0 || rep.PositiveRate >= 0.5 {
		t.Errorf("positive rate = %v", rep.PositiveRate)
	}
}

func TestPoolingAnalysisReport(t *testing.T) {
	s := testStudy(t)
	reqs, err := s.PoolingAnalysis(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("scopes = %d", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Spares > reqs[i-1].Spares {
			t.Errorf("pooling not monotone: %+v", reqs)
		}
	}
	if _, err := s.PoolingAnalysis(true); err != nil {
		t.Fatal(err)
	}
}

func TestRepairPolicyReport(t *testing.T) {
	s := testStudy(t)
	recs, err := s.RepairPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recommendations = %d", len(recs))
	}
	seenDiskReplace := false
	for _, r := range recs {
		if r.Component.String() == "disk" && r.Better.String() == "replace" {
			seenDiskReplace = true
		}
	}
	if !seenDiskReplace {
		t.Error("cheap disks should be replaced, not serviced")
	}
}

func TestEnvironmentAlarmsReport(t *testing.T) {
	s := testStudy(t)
	sums, err := s.EnvironmentAlarms()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	dc1 := sums[0].TempHigh + sums[0].TempLow + sums[0].RHHigh + sums[0].RHLow
	dc2 := sums[1].TempHigh + sums[1].TempLow + sums[1].RHHigh + sums[1].RHLow
	if dc1 <= dc2 {
		t.Errorf("DC1 alarms (%d) should exceed DC2's (%d)", dc1, dc2)
	}
}

func TestExportAndExternalAnalysis(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.ExportRackDaysCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatalf("export too small: %d bytes", buf.Len())
	}
	rep, err := AnalyzeClimateCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.TempThresholdF) {
		t.Fatal("external analysis found no temperature threshold")
	}
	if rep.TempThresholdF < 70 || rep.TempThresholdF > 85 {
		t.Errorf("external threshold = %v", rep.TempThresholdF)
	}
	var tickets bytes.Buffer
	if err := s.ExportTicketsCSV(&tickets); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tickets.String(), "id,date") {
		t.Error("ticket CSV header missing")
	}
}

func TestAnalyzeClimateCSVErrors(t *testing.T) {
	if _, err := AnalyzeClimateCSV(strings.NewReader("not,a,rackday\n1,2,3\n")); err == nil {
		t.Error("CSV without the analysis columns should error")
	}
	if _, err := AnalyzeClimateCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should error")
	}
}

func TestNewStudyRejectsBadBins(t *testing.T) {
	// The check runs before any simulation, so even paper-scale options
	// fail instantly.
	_, err := NewStudy(WithBins(1))
	var bre *cart.BinsRangeError
	if !errors.As(err, &bre) || bre.Bins != 1 {
		t.Fatalf("NewStudy(WithBins(1)) err = %v, want *cart.BinsRangeError", err)
	}
}
