// Package repair answers another of Section II's OpEx questions: "Is it
// better to replace a server/component, as opposed to servicing it?"
//
// Two policies are compared over the simulated failure stream:
//
//   - Replace: swap the failed unit for stock immediately. Fast (the
//     simulated repair times model this), but consumes a part every
//     time.
//   - Service: diagnose and fix in place. Cheaper in material, slower,
//     and a fraction of serviced units fail again shortly after (an
//     imperfect-repair model).
//
// The comparison prices downtime, parts, and labour in the TCO model's
// units, per component class — because a disk costs 2% of a server, the
// verdict differs by class.
package repair

import (
	"errors"
	"fmt"

	"rainshine/internal/dist"
	"rainshine/internal/failure"
	"rainshine/internal/rng"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
)

// Policy selects the repair strategy.
type Policy int

// Policies.
const (
	Replace Policy = iota
	Service
)

// String names the policy.
func (p Policy) String() string {
	if p == Replace {
		return "replace"
	}
	return "service"
}

// Params tunes the service-policy penalty model.
type Params struct {
	// ServiceSlowdown multiplies repair durations under Service
	// (diagnosis and in-place fix take longer than a swap). Zero means
	// 1.8.
	ServiceSlowdown float64
	// RefailProb is the probability a serviced unit fails again within
	// RefailWindowDays (imperfect repair). Zero means 0.15.
	RefailProb float64
	// RefailWindowDays bounds how soon the re-failure lands. Zero
	// means 30.
	RefailWindowDays int
	// SwapLabor is the labour cost of a replacement (hot-swaps are
	// quick). Zero means 2.
	SwapLabor float64
	// ServiceLabor is the per-service labour cost in TCO units
	// (in-place diagnosis and rework is the expensive kind of labour).
	// Zero means 6.
	ServiceLabor float64
	// PartCostFrac is the fraction of the device price consumed per
	// replacement (refurbished stock makes it < 1). Zero means 0.9.
	PartCostFrac float64
	// DowntimeCostPerServerHour prices unavailability (lost capacity /
	// SLA credits) in TCO units. Zero means 0.05.
	DowntimeCostPerServerHour float64
}

func (p Params) withDefaults() Params {
	if p.ServiceSlowdown == 0 {
		p.ServiceSlowdown = 1.8
	}
	if p.RefailProb == 0 {
		p.RefailProb = 0.15
	}
	if p.RefailWindowDays == 0 {
		p.RefailWindowDays = 30
	}
	if p.SwapLabor == 0 {
		p.SwapLabor = 2
	}
	if p.ServiceLabor == 0 {
		p.ServiceLabor = 6
	}
	if p.PartCostFrac == 0 {
		p.PartCostFrac = 0.9
	}
	if p.DowntimeCostPerServerHour == 0 {
		p.DowntimeCostPerServerHour = 0.05
	}
	return p
}

// Outcome is one policy's cost breakdown for one component class.
type Outcome struct {
	Component failure.Component
	Policy    Policy
	// Events is the number of primary failures handled.
	Events int
	// Refails counts the additional failures caused by imperfect
	// service (zero under Replace).
	Refails int
	// DowntimeHours is total device downtime.
	DowntimeHours float64
	// MaterialCost, LaborCost, DowntimeCost, and TotalCost are in TCO
	// units (1 server = 100).
	MaterialCost float64
	LaborCost    float64
	DowntimeCost float64
	TotalCost    float64
}

// unitCost prices one device of the class.
func unitCost(m tco.CostModel, c failure.Component) float64 {
	switch c {
	case failure.Disk:
		return m.DiskUnit
	case failure.DIMM:
		return m.DIMMUnit
	default:
		return m.ServerUnit
	}
}

// Evaluate prices a policy over the simulated event stream, per
// component class. Deterministic given the seed.
func Evaluate(res *simulate.Result, policy Policy, m tco.CostModel, p Params, seed uint64) ([]Outcome, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if policy != Replace && policy != Service {
		return nil, fmt.Errorf("repair: unknown policy %d", policy)
	}
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	src := rng.New(seed).Split("repair/" + policy.String())
	outs := make([]Outcome, failure.NumComponents)
	for c := range outs {
		outs[c].Component = failure.Component(c)
		outs[c].Policy = policy
	}
	refail := dist.Bernoulli{P: p.RefailProb}
	for _, ev := range res.Events {
		o := &outs[ev.Component]
		o.Events++
		unit := unitCost(m, ev.Component)
		switch policy {
		case Replace:
			o.DowntimeHours += ev.RepairHours
			o.MaterialCost += unit * p.PartCostFrac
			o.LaborCost += p.SwapLabor
		case Service:
			hours := ev.RepairHours * p.ServiceSlowdown
			o.DowntimeHours += hours
			o.LaborCost += p.ServiceLabor
			// Imperfect repair: the unit may bounce, costing a second
			// (this time replacing) visit.
			if refail.Sample(src) {
				o.Refails++
				o.DowntimeHours += ev.RepairHours
				o.MaterialCost += unit * p.PartCostFrac
				o.LaborCost += p.SwapLabor
			}
		}
	}
	for c := range outs {
		o := &outs[c]
		o.DowntimeCost = o.DowntimeHours * p.DowntimeCostPerServerHour
		o.TotalCost = o.MaterialCost + o.LaborCost + o.DowntimeCost
	}
	return outs, nil
}

// Recommendation is the per-class verdict.
type Recommendation struct {
	Component failure.Component
	// Better is the cheaper policy; SavingsPct its relative advantage.
	Better     Policy
	SavingsPct float64
	Replace    Outcome
	Service    Outcome
}

// Compare evaluates both policies and recommends per component class.
func Compare(res *simulate.Result, m tco.CostModel, p Params, seed uint64) ([]Recommendation, error) {
	rep, err := Evaluate(res, Replace, m, p, seed)
	if err != nil {
		return nil, err
	}
	svc, err := Evaluate(res, Service, m, p, seed)
	if err != nil {
		return nil, err
	}
	if len(rep) != len(svc) {
		return nil, errors.New("repair: outcome length mismatch")
	}
	out := make([]Recommendation, len(rep))
	for c := range rep {
		r := Recommendation{Component: rep[c].Component, Replace: rep[c], Service: svc[c]}
		hi, lo := rep[c].TotalCost, svc[c].TotalCost
		r.Better = Service
		if lo > hi {
			hi, lo = lo, hi
			r.Better = Replace
		}
		if hi > 0 {
			r.SavingsPct = 100 * (hi - lo) / hi
		}
		out[c] = r
	}
	return out, nil
}
