package frame

import (
	"fmt"
	"math"
)

// Column is one typed dense column. For Continuous columns Data holds
// raw values; for Nominal/Ordinal columns Data holds level indices into
// Levels. Missing cells are carried two ways, and a cell is missing if
// either marks it:
//
//   - a non-finite value (NaN/±Inf) in Data — the legacy sentinel every
//     import path can produce;
//   - a set bit in the null bitmap — the explicit marking the ingest
//     quarantine/repair pipeline writes, which can coexist with a
//     finite (suspect) raw value kept for forensics.
type Column struct {
	Name   string
	Kind   Kind
	Data   []float64
	Levels []string // nil for Continuous

	// nulls marks cells quarantined by ingest; nil means none.
	nulls *Bitmap
}

// LevelOf returns the level string for a value of a categorical column.
// Continuous values format as numbers. A categorical value whose level
// index is out of range is corrupted data and returns the marked form
// "<invalid:i>" so it surfaces in reports instead of masquerading as a
// measurement.
func (c *Column) LevelOf(v float64) string {
	if c.Kind == Continuous {
		return fmt.Sprintf("%g", v)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v != math.Trunc(v) {
		return fmt.Sprintf("<invalid:%g>", v)
	}
	i := int(v)
	if i < 0 || i >= len(c.Levels) {
		return fmt.Sprintf("<invalid:%d>", i)
	}
	return c.Levels[i]
}

// MarkNull sets the null bit for row i, leaving Data untouched so the
// quarantined raw value stays inspectable. Analyses that honor the
// bitmap treat the cell as missing regardless of the stored value.
func (c *Column) MarkNull(i int) {
	if c.nulls == nil {
		c.nulls = NewBitmap(len(c.Data))
	}
	c.nulls.Set(i)
}

// SetMissing marks row i null and overwrites Data[i] with NaN, the
// sentinel legacy consumers that read Data directly understand.
func (c *Column) SetMissing(i int) {
	c.MarkNull(i)
	c.Data[i] = math.NaN()
}

// Missing reports whether the cell at row i is unusable: null-marked or
// non-finite.
func (c *Column) Missing(i int) bool {
	if c.nulls.Get(i) {
		return true
	}
	v := c.Data[i]
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// HasNulls reports whether any cell carries an explicit null mark. It
// deliberately ignores NaN sentinels; use MissingCount for the union.
func (c *Column) HasNulls() bool { return c.nulls.Any() }

// NullCount returns the number of explicitly null-marked cells.
func (c *Column) NullCount() int { return c.nulls.Count() }

// MissingCount returns the number of missing cells: the union of
// null-marked and non-finite entries.
func (c *Column) MissingCount() int {
	total := 0
	for i, v := range c.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) || c.nulls.Get(i) {
			total++
		}
	}
	return total
}

// Nulls returns the column's null bitmap, or nil when no cell was ever
// marked. The bitmap is shared storage, like Data: treat it as
// read-only unless the column is exclusively owned.
func (c *Column) Nulls() *Bitmap { return c.nulls }

// Clone returns a deep copy of the column — its own Data and null
// bitmap — safe to mutate regardless of who else holds the original.
func (c *Column) Clone() *Column {
	return &Column{
		Name:   c.Name,
		Kind:   c.Kind,
		Data:   append([]float64(nil), c.Data...),
		Levels: c.Levels,
		nulls:  c.nulls.Clone(),
	}
}
