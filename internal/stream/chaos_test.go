package stream_test

import (
	"bytes"
	"context"
	"testing"

	"rainshine/internal/faults"
	"rainshine/internal/ingest"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
	"rainshine/internal/topology"
)

func chaosStudyRecords(t *testing.T) (simulate.Config, []stream.Record) {
	t.Helper()
	cfg := simulate.Config{
		Seed:     31,
		Days:     120,
		Topology: topology.Config{RacksPerDC: [2]int{8, 6}},
		Workers:  1,
	}
	res, err := simulate.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := stream.Records(res)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, recs
}

// logBytes renders a record sequence to its log encoding, the cheapest
// way to compare sequences including NaN payloads exactly.
func logBytes(t *testing.T, recs []stream.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stream.WriteLog(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func replayRecords(t *testing.T, cfg simulate.Config, recs []stream.Record) *stream.Maintainer {
	t.Helper()
	ctx := context.Background()
	m, err := stream.NewMaintainer(stream.Config{Sim: cfg, DisableRefit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := m.Apply(ctx, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestChaosCorruptRecordsDeterministic: the perturbation is a pure
// function of the chaos seed and the sequence — two corruptions of the
// same log are byte-identical.
func TestChaosCorruptRecordsDeterministic(t *testing.T) {
	_, recs := chaosStudyRecords(t)
	cfg := faults.ChaosConfig{Seed: 7, StreamReorderRate: 0.2,
		StreamDuplicateRate: 0.1, StreamLateRate: 0.05}
	a := stream.CorruptRecords(recs, faults.NewChaos(cfg))
	b := stream.CorruptRecords(recs, faults.NewChaos(cfg))
	if !bytes.Equal(logBytes(t, a), logBytes(t, b)) {
		t.Fatal("chaos perturbation is not deterministic")
	}
	if len(a) <= len(recs) {
		t.Fatalf("no duplicates injected: %d -> %d records", len(recs), len(a))
	}
}

// TestChaosReorderPreservesByteIdentity: out-of-order delivery within
// the lateness slack loses nothing — the finalized study is
// byte-identical to the one replayed from the canonical order.
func TestChaosReorderPreservesByteIdentity(t *testing.T) {
	simCfg, recs := chaosStudyRecords(t)
	perturbed := stream.CorruptRecords(recs,
		faults.NewChaos(faults.ChaosConfig{Seed: 7, StreamReorderRate: 0.25}))

	ctx := context.Background()
	base := replayRecords(t, simCfg, recs)
	reord := replayRecords(t, simCfg, perturbed)
	if s := reord.Stats(); s.Late != 0 || s.Duplicates != 0 {
		t.Fatalf("reorder-only stream quarantined records: %+v", s)
	}
	dBase, err := base.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dReord, err := reord.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	envBase, err := stream.EnvelopeJSON(ctx, dBase)
	if err != nil {
		t.Fatal(err)
	}
	envReord, err := stream.EnvelopeJSON(ctx, dReord)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(envBase, envReord) {
		t.Fatalf("reordered replay diverged:\nbase:    %s\nreorder: %s", envBase, envReord)
	}
}

// TestChaosLateAndDuplicateQuarantine: late and duplicated deliveries
// are quarantined under the stream defect classes, deterministically.
func TestChaosLateAndDuplicateQuarantine(t *testing.T) {
	simCfg, recs := chaosStudyRecords(t)
	perturbed := stream.CorruptRecords(recs,
		faults.NewChaos(faults.ChaosConfig{Seed: 11,
			StreamDuplicateRate: 0.08, StreamLateRate: 0.04}))
	m := replayRecords(t, simCfg, perturbed)
	s := m.Stats()
	if s.Duplicates == 0 {
		t.Fatal("no duplicate deliveries quarantined")
	}
	if s.Late == 0 {
		t.Fatal("no late deliveries quarantined")
	}
	q := m.Quality()
	if int64(q.Quarantined[ingest.DuplicateEvent]) != s.Duplicates {
		t.Fatalf("duplicate accounting: stats %d, quality %d",
			s.Duplicates, q.Quarantined[ingest.DuplicateEvent])
	}
	if int64(q.Quarantined[ingest.LateArrival]) != s.Late {
		t.Fatalf("late accounting: stats %d, quality %d",
			s.Late, q.Quarantined[ingest.LateArrival])
	}
	// The replayed study still finalizes (late data lost, not fatal).
	if _, err := m.Finalize(context.Background()); err != nil {
		t.Fatal(err)
	}

	// And the quarantine counts are a pure function of the chaos seed.
	m2 := replayRecords(t, simCfg, stream.CorruptRecords(recs,
		faults.NewChaos(faults.ChaosConfig{Seed: 11,
			StreamDuplicateRate: 0.08, StreamLateRate: 0.04})))
	s2 := m2.Stats()
	if s2.Late != s.Late || s2.Duplicates != s.Duplicates {
		t.Fatalf("quarantine counts not deterministic: %+v vs %+v", s, s2)
	}
}
