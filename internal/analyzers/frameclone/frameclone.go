// Package frameclone guards the shared-frame aliasing contract: a
// *frame.Frame received as a parameter of an exported function is
// potentially shared with concurrent readers, so attaching columns to
// it (AddContinuous and friends) without first re-pointing the variable
// at a ShallowClone (or another fresh frame) is the exact race class
// the predict/skucmp fixes closed by hand.
//
// The pass tracks two taints, in source order. The attach taint covers
// the column directory: an assignment from ShallowClone/Subset/Filter/
// Select or frame.New cleanses it, a plain alias (work := f) inherits
// it, and a mutating Add* call on a still-tainted variable is reported.
// The deep taint covers cell storage: ShallowClone and Select copy the
// directory but share the column Data slices and null bitmaps, so only
// Subset/Filter/New — which copy cells — cleanse it. Columns derived
// from a deep-tainted frame (Col/MustCol/ColAt) and chunks derived from
// such columns (Chunk/Chunks) alias caller-visible storage; calling
// MarkNull/SetMissing on them is reported unless the column was first
// re-pointed at a Clone. Codes() on such a column hands out the backing
// byte-code array itself, so element stores through the returned slice
// are reported the same way. Unexported functions are builders operating on
// locally owned frames and are exempt; the package defining Frame is
// the implementation and is skipped entirely.
package frameclone

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rainshine/internal/analysis"
)

// Analyzer is the frameclone pass.
var Analyzer = &analysis.Analyzer{
	Name: "frameclone",
	Doc:  "require ShallowClone before attaching columns to, and Subset/Clone before mutating cells of, a parameter-received *frame.Frame in exported functions",
	Run:  run,
}

// mutators are the column-attaching frame methods (attach taint).
var mutators = map[string]bool{
	"AddContinuous":     true,
	"AddNominalInts":    true,
	"AddNominalStrings": true,
	"AddOrdinalInts":    true,
	"AddNominalCodes":   true,
	"AddOrdinalCodes":   true,
	"AddColumn":         true,
}

// cellMutators are the null-bitmap writers on columns and chunks (deep
// taint): they reach through shared Data/bitmap storage.
var cellMutators = map[string]bool{
	"MarkNull":   true,
	"SetMissing": true,
}

// cleansers are the frame methods returning a frame the caller owns
// at the directory level. Only the subset that copies cell storage
// (deepCleansers) also clears the deep taint.
var cleansers = map[string]bool{
	"ShallowClone": true,
	"Subset":       true,
	"Filter":       true,
	"Select":       true,
}

// deepCleansers copy cell storage, not just the column directory.
var deepCleansers = map[string]bool{
	"Subset": true,
	"Filter": true,
}

// colDerivers hand out *Column views into a frame's storage.
var colDerivers = map[string]bool{
	"Col":     true,
	"MustCol": true,
	"ColAt":   true,
}

// chunkDerivers hand out Chunk views into a column's storage.
var chunkDerivers = map[string]bool{
	"Chunk":  true,
	"Chunks": true,
}

func run(pass *analysis.Pass) error {
	if definesFrame(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// definesFrame reports whether pkg is the frame implementation itself.
func definesFrame(pkg *types.Package) bool {
	obj, ok := pkg.Scope().Lookup("Frame").(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "ShallowClone" {
			return true
		}
	}
	return false
}

// isFramePtr matches *frame.Frame (any package whose Frame type has a
// ShallowClone method, so the analysistest fixture twin counts too).
func isFramePtr(t types.Type) bool {
	return isNamedPtrWithMethod(t, "Frame", "ShallowClone")
}

// isColumnPtr matches *frame.Column by its MarkNull method.
func isColumnPtr(t types.Type) bool {
	return isNamedPtrWithMethod(t, "Column", "MarkNull")
}

// isChunk matches the value type frame.Chunk by its MarkNull method.
func isChunk(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Chunk" {
		return false
	}
	return hasMethod(named, "MarkNull")
}

func isNamedPtrWithMethod(t types.Type, name, method string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	return hasMethod(named, method)
}

func hasMethod(named *types.Named, method string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == method {
			return true
		}
	}
	return false
}

// state is the per-function taint record the events replay over.
type state struct {
	attach map[*types.Var]bool // frame vars whose column directory is shared
	deep   map[*types.Var]bool // frame vars whose cell storage is shared
	col    map[*types.Var]bool // column vars viewing shared cell storage
	chunk  map[*types.Var]bool // chunk vars viewing shared cell storage
	codes  map[*types.Var]bool // byte slices from Codes() of shared columns
}

// event is one taint-relevant statement, replayed in source order.
type event struct {
	pos token.Pos
	run func(st *state, report func(token.Pos, string))
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Seed both taints with the frame-typed parameters.
	st := &state{
		attach: map[*types.Var]bool{},
		deep:   map[*types.Var]bool{},
		col:    map[*types.Var]bool{},
		chunk:  map[*types.Var]bool{},
		codes:  map[*types.Var]bool{},
	}
	sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isFramePtr(p.Type()) {
			st.attach[p] = true
			st.deep[p] = true
		}
	}
	if len(st.attach) == 0 {
		return
	}

	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, assignEvents(pass, n)...)
			events = append(events, codesStoreEvents(pass, n)...)
		case *ast.RangeStmt:
			if ev, ok := rangeEvent(pass, n); ok {
				events = append(events, ev)
			}
		case *ast.CallExpr:
			if ev, ok := mutationEvent(pass, n); ok {
				events = append(events, ev)
			}
			if ev, ok := cellMutationEvent(pass, n); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		ev.run(st, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s", msg)
		})
	}
}

// assignEvents classifies each assignment: cleansing calls clear the
// relevant taint, derivers inherit the receiver's taint, plain aliases
// of tainted variables propagate it. Tuple assignments (c, err :=
// f.Col(...); g, err := f.Select(...)) carry the single call on the
// right to the first value-position variable on the left.
func assignEvents(pass *analysis.Pass, as *ast.AssignStmt) []event {
	if len(as.Lhs) != len(as.Rhs) {
		// Tuple form: one multi-value call on the right.
		if len(as.Rhs) != 1 {
			return nil
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return nil
		}
		obj, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
		if !ok {
			return nil
		}
		if ev, ok := classifyAssign(pass, as.Pos(), obj, call); ok {
			return []event{ev}
		}
		return nil
	}
	var out []event
	for i := range as.Lhs {
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
		if !ok {
			continue
		}
		if ev, ok := classifyAssign(pass, as.Pos(), obj, ast.Unparen(as.Rhs[i])); ok {
			out = append(out, ev)
		}
	}
	return out
}

// classifyAssign builds the taint-update event for lhs = rhs, keyed on
// the static type of the left-hand variable.
func classifyAssign(pass *analysis.Pass, pos token.Pos, obj *types.Var, rhs ast.Expr) (event, bool) {
	switch {
	case isFramePtr(obj.Type()):
		return frameAssign(pass, pos, obj, rhs), true
	case isColumnPtr(obj.Type()):
		return columnAssign(pass, pos, obj, rhs), true
	case isChunk(obj.Type()):
		return chunkAssign(pass, pos, obj, rhs), true
	case isByteSlice(obj.Type()):
		return codesAssign(pass, pos, obj, rhs), true
	}
	return event{}, false
}

// isByteSlice matches []uint8 (equivalently []byte), the type Codes()
// hands out.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// codesAssign tracks byte slices: Codes() on a shared column hands out
// the column's backing code array itself, so the slice inherits the
// column's view taint; a plain alias propagates it; anything else (a
// fresh make, an owned buffer) clears it.
func codesAssign(pass *analysis.Pass, pos token.Pos, obj *types.Var, rhs ast.Expr) event {
	if name, recv, ok := methodCall(pass, rhs, isColumnPtr); ok && name == "Codes" {
		return event{pos, func(st *state, _ func(token.Pos, string)) {
			setTaint(st.codes, obj, recv != nil && st.col[recv])
		}}
	}
	if src := aliasSource(pass, rhs); src != nil {
		return event{pos, func(st *state, _ func(token.Pos, string)) { setTaint(st.codes, obj, st.codes[src]) }}
	}
	return event{pos, func(st *state, _ func(token.Pos, string)) { delete(st.codes, obj) }}
}

// codesStoreEvents matches element stores (codes[i] = v, including
// op-assigns) through a tracked byte slice: writing there rewrites the
// shared column's cells in place.
func codesStoreEvents(pass *analysis.Pass, as *ast.AssignStmt) []event {
	var out []event
	for _, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(ix.X).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || !isByteSlice(obj.Type()) {
			continue
		}
		out = append(out, event{as.Pos(), func(st *state, report func(token.Pos, string)) {
			if st.codes[obj] {
				report(ix.Pos(), "writing through "+id.Name+", which aliases a shared column's byte-code storage; Clone the column first")
			}
		}})
	}
	return out
}

func frameAssign(pass *analysis.Pass, pos token.Pos, obj *types.Var, rhs ast.Expr) event {
	if name, recv, ok := methodCall(pass, rhs, isFramePtr); ok && cleansers[name] {
		deepClean := deepCleansers[name]
		return event{pos, func(st *state, _ func(token.Pos, string)) {
			delete(st.attach, obj)
			if deepClean || recv == nil || !st.deep[recv] {
				delete(st.deep, obj)
			} else {
				// ShallowClone/Select: directory copied, cells shared.
				st.deep[obj] = true
			}
		}}
	}
	if src := aliasSource(pass, rhs); src != nil {
		return event{pos, func(st *state, _ func(token.Pos, string)) {
			setTaint(st.attach, obj, st.attach[src])
			setTaint(st.deep, obj, st.deep[src])
		}}
	}
	return event{pos, func(st *state, _ func(token.Pos, string)) {
		delete(st.attach, obj)
		delete(st.deep, obj)
	}}
}

func columnAssign(pass *analysis.Pass, pos token.Pos, obj *types.Var, rhs ast.Expr) event {
	if name, recv, ok := methodCall(pass, rhs, isFramePtr); ok && colDerivers[name] {
		return event{pos, func(st *state, _ func(token.Pos, string)) {
			setTaint(st.col, obj, recv != nil && st.deep[recv])
		}}
	}
	if name, _, ok := methodCall(pass, rhs, isColumnPtr); ok && name == "Clone" {
		return event{pos, func(st *state, _ func(token.Pos, string)) { delete(st.col, obj) }}
	}
	if src := aliasSource(pass, rhs); src != nil {
		return event{pos, func(st *state, _ func(token.Pos, string)) { setTaint(st.col, obj, st.col[src]) }}
	}
	return event{pos, func(st *state, _ func(token.Pos, string)) { delete(st.col, obj) }}
}

func chunkAssign(pass *analysis.Pass, pos token.Pos, obj *types.Var, rhs ast.Expr) event {
	if name, recv, ok := methodCall(pass, rhs, isColumnPtr); ok && chunkDerivers[name] {
		return event{pos, func(st *state, _ func(token.Pos, string)) {
			setTaint(st.chunk, obj, recv != nil && st.col[recv])
		}}
	}
	if src := aliasSource(pass, rhs); src != nil {
		return event{pos, func(st *state, _ func(token.Pos, string)) { setTaint(st.chunk, obj, st.chunk[src]) }}
	}
	return event{pos, func(st *state, _ func(token.Pos, string)) { delete(st.chunk, obj) }}
}

// rangeEvent handles `for _, ch := range c.Chunks(n)`: each chunk
// inherits the column's view taint.
func rangeEvent(pass *analysis.Pass, rng *ast.RangeStmt) (event, bool) {
	if rng.Value == nil {
		return event{}, false
	}
	val, ok := ast.Unparen(rng.Value).(*ast.Ident)
	if !ok {
		return event{}, false
	}
	obj, ok := pass.TypesInfo.ObjectOf(val).(*types.Var)
	if !ok || !isChunk(obj.Type()) {
		return event{}, false
	}
	name, recv, ok := methodCall(pass, ast.Unparen(rng.X), isColumnPtr)
	if !ok || !chunkDerivers[name] {
		return event{}, false
	}
	return event{rng.Pos(), func(st *state, _ func(token.Pos, string)) {
		setTaint(st.chunk, obj, recv != nil && st.col[recv])
	}}, true
}

// methodCall matches recv.Name(...) where the receiver type satisfies
// wantRecv, returning the method name and (when the receiver is a bare
// identifier) the receiver variable.
func methodCall(pass *analysis.Pass, e ast.Expr, wantRecv func(types.Type) bool) (string, *types.Var, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", nil, false
	}
	fn := analysis.ObjectOf(pass.TypesInfo, call)
	if fn == nil {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !wantRecv(sig.Recv().Type()) {
		return "", nil, false
	}
	var recv *types.Var
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			recv, _ = pass.TypesInfo.ObjectOf(id).(*types.Var)
		}
	}
	return fn.Name(), recv, true
}

func setTaint(m map[*types.Var]bool, v *types.Var, on bool) {
	if on {
		m[v] = true
	} else {
		delete(m, v)
	}
}

// aliasSource returns the variable a bare identifier RHS refers to.
func aliasSource(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// mutationEvent matches x.AddContinuous(...) etc. with x a tracked var.
func mutationEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return event{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return event{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isFramePtr(sig.Recv().Type()) {
		return event{}, false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return event{}, false
	}
	obj, ok := pass.TypesInfo.ObjectOf(recv).(*types.Var)
	if !ok {
		return event{}, false
	}
	return event{call.Pos(), func(st *state, report func(token.Pos, string)) {
		if st.attach[obj] {
			report(call.Pos(), "attaching a column to "+recv.Name+", which aliases a parameter frame shared with the caller; ShallowClone it first")
		}
	}}, true
}

// cellMutationEvent matches c.MarkNull(i)/c.SetMissing(i) with c a
// tracked column or chunk viewing shared storage.
func cellMutationEvent(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !cellMutators[sel.Sel.Name] {
		return event{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return event{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return event{}, false
	}
	isCol := isColumnPtr(sig.Recv().Type())
	if !isCol && !isChunk(sig.Recv().Type()) {
		return event{}, false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return event{}, false
	}
	obj, ok := pass.TypesInfo.ObjectOf(recv).(*types.Var)
	if !ok {
		return event{}, false
	}
	return event{call.Pos(), func(st *state, report func(token.Pos, string)) {
		if (isCol && st.col[obj]) || (!isCol && st.chunk[obj]) {
			report(call.Pos(), "marking nulls on "+recv.Name+", which views cell storage shared with the caller; Subset/Filter the frame or Clone the column first")
		}
	}}, true
}
