package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"rainshine/internal/resilience"
)

// ResilienceConfig groups the serving tier's overload-protection knobs.
// The zero value means "defaults": generous limits that never shed a
// modest workload but still bound the damage a demand shock can do.
type ResilienceConfig struct {
	// MaxConcurrent bounds concurrently-served /v1 requests outside q3
	// (default 256); MaxQueue bounds how many more may wait for a slot
	// before shedding (default 512).
	MaxConcurrent int
	MaxQueue      int
	// Q3Concurrent / Q3Queue are the same bounds for /v1/q3, the
	// expensive grid endpoint. They are deliberately smaller (defaults
	// 32 / 64): under overload the daemon sheds q3 grid work first and
	// keeps serving cheap cached reads.
	Q3Concurrent int
	Q3Queue      int
	// RPS caps admitted requests per second across all /v1 endpoints
	// via a token bucket (default 0: unlimited). Burst is the bucket
	// depth (default 2×RPS, minimum 1).
	RPS   float64
	Burst int
	// BreakerThreshold is the consecutive build failures that trip the
	// study-build circuit breaker (default 5; negative disables).
	// BreakerCooldown is how long the breaker stays open before probing
	// (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// BuildTimeout bounds each detached singleflight study build
	// regardless of waiters (default 10m).
	BuildTimeout time.Duration
}

func (rc ResilienceConfig) withDefaults() ResilienceConfig {
	if rc.MaxConcurrent == 0 {
		rc.MaxConcurrent = 256
	}
	if rc.MaxQueue == 0 {
		rc.MaxQueue = 512
	}
	if rc.Q3Concurrent == 0 {
		rc.Q3Concurrent = 32
	}
	if rc.Q3Queue == 0 {
		rc.Q3Queue = 64
	}
	if rc.Burst == 0 {
		rc.Burst = int(2 * rc.RPS)
	}
	if rc.BreakerThreshold == 0 {
		rc.BreakerThreshold = 5
	}
	if rc.BreakerCooldown <= 0 {
		rc.BreakerCooldown = 30 * time.Second
	}
	if rc.BuildTimeout <= 0 {
		rc.BuildTimeout = 10 * time.Minute
	}
	return rc
}

// admission holds the server's assembled overload controls.
type admission struct {
	api  *resilience.Limiter     // every /v1 endpoint except q3
	q3   *resilience.Limiter     // the expensive grid endpoint
	rate *resilience.TokenBucket // global, nil = unlimited
}

func newAdmission(rc ResilienceConfig, now func() time.Time) *admission {
	return &admission{
		api:  resilience.NewLimiter(rc.MaxConcurrent, rc.MaxQueue, time.Second),
		q3:   resilience.NewLimiter(rc.Q3Concurrent, rc.Q3Queue, 2*time.Second),
		rate: resilience.NewTokenBucket(rc.RPS, rc.Burst, now),
	}
}

// exemptPath reports whether a path bypasses admission control and
// chaos injection: liveness probes and metrics must stay readable while
// the daemon sheds everything else, or the operator flies blind exactly
// when it matters.
func exemptPath(path string) bool {
	return path == "/healthz" || path == "/metricz"
}

// admit is the admission-control middleware: the global token bucket
// first (cheapest check), then the endpoint class's semaphore with its
// bounded wait queue. Sheds never reach the study registry.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if err := s.adm.rate.Allow(); err != nil {
			s.writeError(w, http.StatusTooManyRequests, err)
			return
		}
		lim := s.adm.api
		if r.URL.Path == "/v1/q3" {
			lim = s.adm.q3
		}
		if err := lim.Acquire(r.Context()); err != nil {
			s.writeError(w, http.StatusTooManyRequests, err)
			return
		}
		defer lim.Release()
		next.ServeHTTP(w, r)
	})
}

// writeShed renders a typed refusal: queue and rate sheds are the
// caller's cue to back off (429), an open breaker is the service's own
// fault (503). Both carry Retry-After, in the header and the body.
func (s *Server) writeShed(w http.ResponseWriter, e *resilience.ShedError) {
	s.metrics.Shed(e.Reason)
	secs := int(e.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	status := http.StatusTooManyRequests
	if e.Reason == resilience.BreakerOpen {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, status, apiError{
		Error:             e.Error(),
		Reason:            string(e.Reason),
		RetryAfterSeconds: secs,
	})
}

// writeBuildFailure renders a failed build with no fallback: a typed
// 503 with a short constant Retry-After (the next attempt may well
// succeed — build errors are never cached).
func (s *Server) writeBuildFailure(w http.ResponseWriter, e *BuildError) {
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusServiceUnavailable, apiError{
		Error:             e.Error(),
		Reason:            "build_failure",
		RetryAfterSeconds: 1,
	})
}

// asShed unwraps err to a ShedError, nil otherwise.
func asShed(err error) *resilience.ShedError {
	var se *resilience.ShedError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// asBuildError unwraps err to a BuildError, nil otherwise.
func asBuildError(err error) *BuildError {
	var be *BuildError
	if errors.As(err, &be) {
		return be
	}
	return nil
}
