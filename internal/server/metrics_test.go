package server

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"testing"
	"time"
)

// decoderAt returns a reader over s positioned at the final byte of
// marker (the opening brace of the object to decode).
func decoderAt(s, marker string) io.Reader {
	i := strings.Index(s, marker)
	if i < 0 {
		return strings.NewReader("")
	}
	return strings.NewReader(s[i+len(marker)-1:])
}

// TestSnapshotStableOrdering asserts the /metricz body is byte-stable:
// repeated snapshots of the same counters serialize identically, with
// endpoint paths in sorted order.
func TestSnapshotStableOrdering(t *testing.T) {
	m := NewMetrics()
	paths := []string{"/v1/q3", "/healthz", "/v1/q1", "/metricz", "/v1/predict", "/v1/q2", "/v1/stream"}
	for i, p := range paths {
		m.Observe(p, time.Duration(i+1)*time.Millisecond, i%2 == 0)
	}
	m.SetStream(StreamCounters{
		Following: true, RecordsIn: 315, Watermark: 38, MaxDaySeen: 39,
		Lag: 2, Late: 3, Duplicates: 1, Refits: 5,
	})

	marshal := func() string {
		s := m.Snapshot(4)
		s.UptimeSeconds = 0 // wall-clock: the only field allowed to differ
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	first := marshal()
	for i := 0; i < 20; i++ {
		if got := marshal(); got != first {
			t.Fatalf("snapshot %d differs:\n%s\nwant\n%s", i, got, first)
		}
	}

	// The stream section must be present with its counters intact.
	var withStream struct {
		Stream *StreamCounters `json:"stream"`
	}
	if err := json.Unmarshal([]byte(first), &withStream); err != nil {
		t.Fatal(err)
	}
	if withStream.Stream == nil || withStream.Stream.Watermark != 38 ||
		withStream.Stream.Lag != 2 || withStream.Stream.Late != 3 {
		t.Fatalf("stream section = %+v, want watermark 38 lag 2 late 3", withStream.Stream)
	}

	// The emitted request rows must cover every path, in sorted order.
	var body struct {
		Requests map[string]EndpointSnapshot `json:"requests"`
	}
	if err := json.Unmarshal([]byte(first), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Requests) != len(paths) {
		t.Fatalf("requests has %d rows, want %d", len(body.Requests), len(paths))
	}
	want := append([]string(nil), paths...)
	sort.Strings(want)
	var order []string
	dec := json.NewDecoder(decoderAt(first, `"requests":{`))
	if _, err := dec.Token(); err != nil { // consume '{'
		t.Fatal(err)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, tok.(string))
		var es EndpointSnapshot
		if err := dec.Decode(&es); err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != len(want) {
		t.Fatalf("emitted %d paths %v, want %d", len(order), order, len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("emitted path order %v, want sorted %v", order, want)
		}
	}
}
