// Command rainshinelint runs the repository's invariant suite — the
// five analyzers in internal/analyzers — in two modes:
//
//	rainshinelint ./...          standalone: loads packages itself
//	go vet -vettool=rainshinelint ./...   unitchecker protocol
//
// Standalone mode resolves the module by walking up to go.mod and
// type-checks everything from source (stdlib included), so it needs no
// network, no module cache, and no pre-built export data. The vettool
// mode speaks cmd/go's JSON .cfg protocol and type-checks against the
// export data files the go command supplies.
//
// Exit status: 0 clean, 1 findings or usage error (standalone),
// 2 findings (vettool protocol, matching x/tools unitchecker).
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rainshine/internal/analysis"
	"rainshine/internal/analysis/load"
	"rainshine/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	// go vet handshake: version for build caching, flag discovery.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			fmt.Println("rainshinelint version 1 (invariant suite: ctxflow detrand frameclone nansafe parsafe)")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	os.Exit(standalone(args))
}

// diag is one finding ready for printing.
type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

func (d diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.pos, d.message, d.analyzer)
}

// runSuite applies every analyzer to one loaded package and returns the
// findings that survive //lint:allow suppression.
func runSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []diag {
	allows := analysis.CollectAllows(fset, files)
	var out []diag
	for _, pos := range allows.Invalid {
		out = append(out, diag{fset.Position(pos), "lint", "malformed //lint:allow: need `//lint:allow <analyzer> <reason>`"})
	}
	for _, a := range analyzers.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if !allows.Allowed(fset, d) {
				out = append(out, diag{fset.Position(d.Pos), d.Analyzer, d.Message})
			}
		}
		if err := a.Run(pass); err != nil {
			out = append(out, diag{token.Position{}, a.Name, fmt.Sprintf("analyzer error: %v", err)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		return out[i].pos.Offset < out[j].pos.Offset
	})
	// Nested constructs (a map range inside a map range) can surface
	// the same finding twice; report each once.
	dedup := out[:0]
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			dedup = append(dedup, d)
		}
	}
	return dedup
}

// standalone lints the module containing the working directory.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, root, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	paths, err := expand(module, root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	loader := load.NewLoader(module, root)
	bad := 0
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rainshinelint: %v\n", err)
			bad++
			continue
		}
		for _, d := range runSuite(p.Fset, p.Files, p.Types, p.Info) {
			fmt.Fprintln(os.Stderr, d)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// findModule walks up from the working directory to go.mod.
func findModule() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(m), dir, nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns: "./..." (or "all") covers the whole
// module, other entries are import paths or ./-relative directories.
func expand(module, root string, patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == module+"/...":
			all, err := load.ModulePackages(module, root)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(module)
			} else {
				add(module + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// --- go vet -vettool protocol -----------------------------------------

// vetConfig mirrors the JSON config cmd/go hands a vettool per package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainshinelint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rainshinelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts are not used by this suite, but the go command caches the
	// output file, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rainshinelint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "rainshinelint:", err)
			return 1
		}
	}
	if cfg.VetxOnly || isTestVariant(cfg.ImportPath) {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "rainshinelint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, Error: func(error) {}}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rainshinelint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	found := 0
	for _, d := range runSuite(fset, files, pkg, info) {
		fmt.Fprintln(os.Stderr, d)
		found++
	}
	if found > 0 {
		return 2
	}
	return 0
}

// isTestVariant recognizes the per-package test builds go vet also
// feeds the tool; the invariants are production-only.
func isTestVariant(importPath string) bool {
	return strings.Contains(importPath, " [") ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test")
}
