package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rainshine"
)

var cachedStudy *rainshine.Study

// tinyStudy builds a very small fleet once for renderer tests.
func tinyStudy(t *testing.T) *rainshine.Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(180),
		rainshine.WithRacks(40, 35),
	)
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = s
	return s
}

func render(t *testing.T, f func(r *renderer) error) string {
	t.Helper()
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := f(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSummaryRenders(t *testing.T) {
	out := render(t, (*renderer).summary)
	for _, want := range []string{"Fleet:", "Software", "Hardware"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for _, tbl := range []string{"1", "2", "3", "4"} {
		out := render(t, func(r *renderer) error { return r.table(tbl) })
		if len(out) < 50 {
			t.Errorf("table %s output too short:\n%s", tbl, out)
		}
	}
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := r.table("9"); err == nil {
		t.Error("unknown table should error")
	}
}

func TestFiguresRender(t *testing.T) {
	for n := 1; n <= 18; n++ {
		out := render(t, func(r *renderer) error { return r.figure(n) })
		if len(out) < 30 {
			t.Errorf("figure %d output too short:\n%s", n, out)
		}
	}
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := r.figure(99); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestAnalysesRender(t *testing.T) {
	out := render(t, func(r *renderer) error { return r.q1(rainshine.W6, false) })
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "MF clusters") {
		t.Errorf("q1 output:\n%s", out)
	}
	out = render(t, (*renderer).q2)
	if !strings.Contains(out, "S2:S4") {
		t.Errorf("q2 output:\n%s", out)
	}
	out = render(t, (*renderer).q3)
	if !strings.Contains(out, "thresholds") {
		t.Errorf("q3 output:\n%s", out)
	}
	out = render(t, (*renderer).predict)
	if !strings.Contains(out, "precision") {
		t.Errorf("predict output:\n%s", out)
	}
	out = render(t, (*renderer).ablate)
	if !strings.Contains(out, "Gap closed") {
		t.Errorf("ablate output:\n%s", out)
	}
	out = render(t, (*renderer).tree)
	if !strings.Contains(out, "CART") {
		t.Errorf("tree output:\n%s", out)
	}
}

func TestExportRenders(t *testing.T) {
	out := render(t, func(r *renderer) error { return r.export("tickets") })
	if !strings.HasPrefix(out, "id,date,day,hour") {
		t.Errorf("tickets export header:\n%.100s", out)
	}
	out = render(t, func(r *renderer) error { return r.export("events") })
	if !strings.Contains(out, `"component"`) {
		t.Errorf("events export:\n%.100s", out)
	}
	out = render(t, func(r *renderer) error { return r.export("rackdays") })
	if !strings.Contains(out, "temp,rh") {
		t.Errorf("rackdays export header:\n%.100s", out)
	}
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := r.export("nope"); err == nil {
		t.Error("unknown export target should error")
	}
}

func TestParseWorkload(t *testing.T) {
	w, err := parseWorkload("w3")
	if err != nil || w != rainshine.W3 {
		t.Errorf("parseWorkload = %v, %v", w, err)
	}
	if _, err := parseWorkload("W9"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestRunArgErrors(t *testing.T) {
	// Post-study error cases carry a tiny-fleet prefix so the test does
	// not pay for a full-scale simulation just to hit an arg error.
	tiny := []string{"-racks", "8,8", "-days", "45"}
	withTiny := func(args ...string) []string { return append(append([]string{}, tiny...), args...) }
	cases := [][]string{
		{},                         // missing command
		{"-racks", "1", "summary"}, // malformed racks (pre-study)
		{"-racks", "a,b", "summary"},
		{"-racks", "1,b", "summary"},
		{"-racks", "0,10", "summary"},  // zero rack count rejected
		{"-racks", "10,-5", "summary"}, // negative rack count rejected
		{"climate-csv"},                // missing CSV path (pre-study)
		withTiny("bogus"),              // unknown command
		withTiny("table"),              // missing table number
		withTiny("fig"),                // missing figure number
		withTiny("fig", "abc"),         // bad figure number
		withTiny("export"),             // missing export target
		withTiny("q1", "nope"),         // bad workload
		{"-bins", "1", "summary"},      // bin budget below 2 (pre-study)
		{"-bins", "256", "summary"},    // bin budget past the byte range
		{"-bins", "-3", "summary"},     // negative bin budget
		{"-cpuprofile", "/nonexistent-dir/cpu.out", "summary"}, // unwritable profile path (pre-study)
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

// TestProfileFlagsWriteFiles runs a tiny study with both profile flags
// and checks that non-empty pprof files land where asked.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	args := []string{"-racks", "8,8", "-days", "45", "-cpuprofile", cpu, "-memprofile", mem, "summary"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestParseServeFlags(t *testing.T) {
	cfg, err := parseServeFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.cache != 4 || cfg.timeout != 5*time.Minute {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.buildTimeout != 10*time.Minute || cfg.maxConcurrent != 256 || cfg.maxQueue != 512 ||
		cfg.q3Concurrent != 32 || cfg.q3Queue != 64 || cfg.rps != 0 ||
		cfg.breakerThreshold != 5 || cfg.breakerCooldown != 30*time.Second || cfg.chaos {
		t.Errorf("resilience defaults = %+v", cfg)
	}
	cfg, err = parseServeFlags([]string{"-addr", "127.0.0.1:9090", "-cache", "2", "-timeout", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9090" || cfg.cache != 2 || cfg.timeout != 30*time.Second {
		t.Errorf("parsed = %+v", cfg)
	}
	// -cache-size is the backward-compatible alias for -cache.
	if cfg, err = parseServeFlags([]string{"-cache-size", "3"}); err != nil || cfg.cache != 3 {
		t.Errorf("-cache-size alias: cfg=%+v err=%v", cfg, err)
	}
	cfg, err = parseServeFlags([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"})
	if err != nil || cfg.cpuprofile != "cpu.out" || cfg.memprofile != "mem.out" {
		t.Errorf("profile flags: cfg=%+v err=%v", cfg, err)
	}
	cfg, err = parseServeFlags([]string{
		"-build-timeout", "2m", "-max-concurrent", "64", "-max-queue", "0",
		"-q3-concurrent", "4", "-q3-queue", "8", "-rps", "100", "-burst", "50",
		"-breaker-threshold", "0", "-breaker-cooldown", "5s",
		"-chaos", "-chaos-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.buildTimeout != 2*time.Minute || cfg.maxConcurrent != 64 || cfg.maxQueue != 0 ||
		cfg.q3Concurrent != 4 || cfg.q3Queue != 8 || cfg.rps != 100 || cfg.burst != 50 ||
		cfg.breakerThreshold != 0 || cfg.breakerCooldown != 5*time.Second ||
		!cfg.chaos || cfg.chaosSeed != 7 {
		t.Errorf("resilience flags = %+v", cfg)
	}
	// "0" flag spellings translate to the server's explicit-disable
	// spelling (negative), never to "use the default".
	sc := cfg.serverConfig()
	if sc.Resilience.MaxQueue != -1 || sc.Resilience.BreakerThreshold != -1 {
		t.Errorf("serverConfig zero translation = %+v", sc.Resilience)
	}
	if sc.Chaos == nil || sc.Chaos.Seed != 7 || !sc.Chaos.Enabled() {
		t.Errorf("serverConfig chaos = %+v", sc.Chaos)
	}
	if sc := mustParseServe(t, nil).serverConfig(); sc.Chaos != nil {
		t.Errorf("chaos config without -chaos: %+v", sc.Chaos)
	}
	bad := [][]string{
		{"-cache", "0"},
		{"-cache-size", "-3"},
		{"-timeout", "0s"},
		{"-timeout", "-1m"},
		{"-addr", ""},
		{"-bogus"},
		{"surplus", "args"},
		{"-build-timeout", "0s"},
		{"-max-concurrent", "0"},
		{"-q3-concurrent", "-1"},
		{"-max-queue", "-1"},
		{"-q3-queue", "-2"},
		{"-rps", "-5"},
		{"-burst", "-1"},
		{"-burst", "10"},     // burst without rps
		{"-chaos-seed", "9"}, // chaos-seed without chaos
		{"-breaker-cooldown", "0s"},
	}
	for _, args := range bad {
		if _, err := parseServeFlags(args); err == nil {
			t.Errorf("parseServeFlags(%v) should error", args)
		}
	}
}

func mustParseServe(t *testing.T, args []string) serveConfig {
	t.Helper()
	cfg, err := parseServeFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestRunDispatchesServeFlagErrors(t *testing.T) {
	// Bad serve flags must surface through run() without ever binding a
	// port (parseServeFlags rejects them before the listener exists).
	for _, args := range [][]string{
		{"serve", "-cache-size", "0"},
		{"serve", "-timeout", "-5s"},
		{"serve", "-no-such-flag"},
		{"serve", "positional"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

func TestPoolingAndOpexRender(t *testing.T) {
	out := render(t, func(r *renderer) error { return r.pooling(false) })
	if !strings.Contains(out, "per-rack") || !strings.Contains(out, "global") {
		t.Errorf("pooling output:\n%s", out)
	}
	out = render(t, (*renderer).opex)
	if !strings.Contains(out, "disk") || !strings.Contains(out, "Cheaper policy") {
		t.Errorf("opex output:\n%s", out)
	}
}

func TestClimateCSVCommand(t *testing.T) {
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := r.export("rackdays"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/rackdays.csv"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := analyzeClimateCSV(path, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "temperature knee") {
		t.Errorf("output:\n%s", out.String())
	}
	if err := analyzeClimateCSV(dir+"/missing.csv", &out); err == nil {
		t.Error("missing file should error")
	}
}

func TestAllRenders(t *testing.T) {
	var buf bytes.Buffer
	r := &renderer{study: tinyStudy(t), out: &buf}
	if err := r.all(false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Table 4 ==", "== Figure 18 ==", "Q1:", "Q2:", "Q3:"} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}
