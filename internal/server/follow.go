package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"rainshine/internal/faults"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
	"rainshine/internal/topology"
)

// FollowConfig attaches a live stream follower to the daemon: a
// goroutine tails an append-only stream log, drives a watermark
// maintainer, and publishes its state through /v1/stream (long-poll)
// and the /metricz stream section.
type FollowConfig struct {
	// Path is the stream log file to tail.
	Path string
	// Study identifies the study the stream belongs to; the maintainer
	// rebuilds its deterministic substrate from this config.
	Study StudyConfig
	// Lateness is the maintainer's out-of-order slack in days
	// (stream.Config semantics: 0 means 1, negative means none).
	Lateness int
	// PollInterval is the tail cadence when the log has no new bytes
	// (default 200ms).
	PollInterval time.Duration
	// LongPoll bounds how long /v1/stream holds a request waiting for
	// the watermark to advance (default 10s).
	LongPoll time.Duration
}

func (c FollowConfig) withDefaults() FollowConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Millisecond
	}
	if c.LongPoll <= 0 {
		c.LongPoll = 10 * time.Second
	}
	return c
}

// simConfig translates the study key to the simulation config the
// stream maintainer rebuilds its substrate from.
func (c StudyConfig) simConfig(workers int) simulate.Config {
	c = c.Normalize()
	sc := simulate.Config{
		Seed:     c.Seed,
		Days:     c.Days,
		Topology: topology.Config{RacksPerDC: c.Racks},
		Workers:  workers,
	}
	if c.Faults {
		fc := faults.Defaults()
		sc.Faults = &fc
	}
	return sc
}

// follower tails one stream log. State is published under a lock; the
// change channel is closed and replaced whenever the watermark moves,
// which is what /v1/stream long-polls on.
type follower struct {
	cfg     FollowConfig
	workers int
	metrics *Metrics
	logf    func(format string, args ...any)

	mu        sync.Mutex
	running   bool
	stats     stream.Stats
	lastClose stream.DayClose
	err       error
	change    chan struct{}
}

func newFollower(cfg FollowConfig, workers int, m *Metrics, logf func(string, ...any)) *follower {
	return &follower{
		cfg:     cfg.withDefaults(),
		workers: workers,
		metrics: m,
		logf:    logf,
		change:  make(chan struct{}),
	}
}

// snapshot returns the published state plus the channel that closes on
// the next watermark advance.
func (f *follower) snapshot() (stream.Stats, stream.DayClose, error, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats, f.lastClose, f.err, f.change
}

// publish updates the observable state; wake says whether long-polls
// should be released (the watermark moved, the stream sealed, or the
// follower failed).
func (f *follower) publish(st stream.Stats, dc stream.DayClose, err error, wake bool) {
	f.mu.Lock()
	f.stats = st
	f.lastClose = dc
	if err != nil {
		f.err = err
	}
	if wake {
		close(f.change)
		f.change = make(chan struct{})
	}
	f.mu.Unlock()
	f.metrics.SetStream(StreamCounters{
		Following:  true,
		RecordsIn:  st.RecordsIn,
		Watermark:  st.Watermark,
		MaxDaySeen: st.MaxDaySeen,
		Lag:        st.Lag,
		Late:       st.Late,
		Duplicates: st.Duplicates,
		Sealed:     st.Sealed,
		Refits:     st.Refits,
	})
}

// tailReader turns a growing file into a blocking stream: at end of
// data it polls for appended bytes instead of reporting EOF, so a torn
// tail mid-append reads as "not yet written" rather than truncation.
// Context cancellation surfaces as a clean EOF.
type tailReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll): //lint:allow clockinject tail poll cadence is timing-only; bytes read are position-addressed
		}
	}
}

// run tails the log until the stream seals, the context ends, or the
// log turns out to be corrupt. It is the body of Server.Follow.
func (f *follower) run(ctx context.Context) error {
	m, err := stream.NewMaintainer(stream.Config{
		Sim:      f.cfg.Study.simConfig(f.workers),
		Lateness: f.cfg.Lateness,
	})
	if err != nil {
		return fmt.Errorf("server: stream maintainer: %w", err)
	}
	file, err := os.Open(f.cfg.Path)
	if err != nil {
		f.publish(m.Stats(), m.LastClose(), err, true)
		return fmt.Errorf("server: stream log: %w", err)
	}
	defer file.Close()
	f.publish(m.Stats(), m.LastClose(), nil, false)

	rd, err := stream.NewReader(&tailReader{ctx: ctx, r: file, poll: f.cfg.PollInterval})
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.publish(m.Stats(), m.LastClose(), err, true)
		return fmt.Errorf("server: stream log: %w", err)
	}
	for {
		rec, err := rd.Next()
		if err != nil {
			if ctx.Err() != nil {
				// Shutdown mid-frame reads as truncation; not a log defect.
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) {
				// Only reachable when the tail reader is released by
				// cancellation between frames.
				return ctx.Err()
			}
			f.publish(m.Stats(), m.LastClose(), err, true)
			return fmt.Errorf("server: stream log: %w", err)
		}
		before := m.Watermark()
		if err := m.Apply(ctx, &rec); err != nil {
			f.publish(m.Stats(), m.LastClose(), err, true)
			return fmt.Errorf("server: stream replay: %w", err)
		}
		sealed := m.Sealed()
		f.publish(m.Stats(), m.LastClose(), nil, m.Watermark() != before || sealed)
		if sealed {
			f.logf("server: stream sealed at watermark %d (%d records, %d late, %d duplicates)",
				m.Watermark(), m.Stats().RecordsIn, m.Stats().Late, m.Stats().Duplicates)
			return nil
		}
	}
}

// Follow tails the configured stream log until the stream seals or ctx
// ends. It returns an error only for a corrupt or unreadable log; a
// cancelled context is a clean shutdown. Calling Follow on a server
// without a Follow config is an error.
func (s *Server) Follow(ctx context.Context) error {
	if s.follower == nil {
		return errors.New("server: no stream follow configured")
	}
	s.follower.mu.Lock()
	if s.follower.running {
		s.follower.mu.Unlock()
		return errors.New("server: stream follower already running")
	}
	s.follower.running = true
	s.follower.mu.Unlock()
	err := s.follower.run(ctx)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// streamStatus is the /v1/stream response body.
type streamStatus struct {
	stream.Stats
	LastClose stream.DayClose `json:"last_close"`
	Error     string          `json:"error,omitempty"`
}

// handleStream serves the stream's live state. With ?watermark=N the
// request long-polls: it returns as soon as the watermark exceeds N
// (or the stream seals / fails / the long-poll window ends), so a
// client can follow day-closes without busy-waiting. The current
// watermark always rides the X-Rainshine-Watermark header.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.follower == nil {
		s.writeError(w, http.StatusNotFound, errors.New("no stream attached (serve -follow <log>)"))
		return
	}
	since := -1
	if v := r.URL.Query().Get("watermark"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad watermark %q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	wait := time.NewTimer(s.follower.cfg.LongPoll) //lint:allow clockinject long-poll deadline bounds the wait; the response carries only watermark state
	defer wait.Stop()
	for {
		st, dc, ferr, change := s.follower.snapshot()
		if st.Watermark > since || st.Sealed || ferr != nil {
			s.writeStreamStatus(w, st, dc, ferr)
			return
		}
		select {
		case <-r.Context().Done():
			s.writeStreamStatus(w, st, dc, ferr)
			return
		case <-wait.C:
			s.writeStreamStatus(w, st, dc, ferr)
			return
		case <-change:
		}
	}
}

func (s *Server) writeStreamStatus(w http.ResponseWriter, st stream.Stats, dc stream.DayClose, ferr error) {
	w.Header().Set("X-Rainshine-Watermark", strconv.Itoa(st.Watermark))
	body := streamStatus{Stats: st, LastClose: dc}
	if ferr != nil {
		body.Error = ferr.Error()
	}
	s.writeJSON(w, http.StatusOK, body)
}
