// Package analyzers registers the rainshinelint suite: the nine custom
// passes that machine-check the repository's determinism, aliasing,
// context, concurrency-lifecycle, locking, clock-injection, JSON-
// stability, and benchmark-gating invariants (see DESIGN.md, "Enforced
// invariants").
package analyzers

import (
	"rainshine/internal/analysis"
	"rainshine/internal/analyzers/benchgate"
	"rainshine/internal/analyzers/clockinject"
	"rainshine/internal/analyzers/ctxflow"
	"rainshine/internal/analyzers/detrand"
	"rainshine/internal/analyzers/frameclone"
	"rainshine/internal/analyzers/goleak"
	"rainshine/internal/analyzers/lockorder"
	"rainshine/internal/analyzers/nansafe"
	"rainshine/internal/analyzers/parsafe"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		benchgate.Analyzer,
		clockinject.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		frameclone.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
		nansafe.Analyzer,
		parsafe.Analyzer,
	}
}
