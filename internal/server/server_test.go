package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rainshine"
)

func TestStudyConfigKeyCanonicalization(t *testing.T) {
	zero := StudyConfig{}
	explicit := StudyConfig{Seed: 42, Days: 930, Racks: [2]int{331, 290}}
	if zero.Key() != explicit.Key() {
		t.Errorf("default and explicit-default keys differ:\n%s\n%s", zero.Key(), explicit.Key())
	}
	other := StudyConfig{Seed: 43}
	if zero.Key() == other.Key() {
		t.Error("distinct seeds share a key")
	}
	dirty := StudyConfig{Faults: true}
	if zero.Key() == dirty.Key() {
		t.Error("dirty and clean configs share a key")
	}
}

// newTestRegistry builds a registry with the pre-resilience defaults
// (no breaker, 10m build timeout) so the cache-semantics tests stay
// focused on singleflight and LRU behavior.
func newTestRegistry(capacity int, m *Metrics, build buildFunc) *registry {
	return newRegistry(registryOptions{capacity: capacity, metrics: m, build: build})
}

// study fetches ignoring the degradation marker (none of the
// cache-semantics tests degrade).
func (r *registry) study(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
	st, deg, err := r.Study(ctx, cfg)
	if deg != nil {
		panic("unexpected degraded study in cache-semantics test")
	}
	return st, err
}

// fakeBuild returns a build func that counts invocations and returns a
// distinct (nil-backed, never dereferenced) study per call site.
func fakeBuild(calls *atomic.Int64, delay time.Duration) buildFunc {
	return func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		calls.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &rainshine.Study{}, nil
	}
}

func TestRegistrySingleflight(t *testing.T) {
	var calls atomic.Int64
	m := NewMetrics()
	reg := newTestRegistry(4, m, fakeBuild(&calls, 20*time.Millisecond))

	const clients = 64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.study(context.Background(), StudyConfig{Seed: 7}); err != nil {
				t.Errorf("Study: %v", err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	snap := m.Snapshot(4)
	if snap.Builds.Started != 1 || snap.Builds.Completed != 1 {
		t.Errorf("builds = %+v, want 1 started/completed", snap.Builds)
	}
	// Every lookup either hit the cache (arrived after the build) or
	// was a miss; all misses but the build-starter piggybacked.
	if snap.Cache.Hits+snap.Cache.Misses != clients {
		t.Errorf("hits+misses = %d+%d, want %d", snap.Cache.Hits, snap.Cache.Misses, clients)
	}
	if snap.Cache.DedupJoins != snap.Cache.Misses-1 {
		t.Errorf("dedup joins = %d, want misses-1 = %d", snap.Cache.DedupJoins, snap.Cache.Misses-1)
	}

	// A follow-up lookup is a pure cache hit.
	hitsBefore := snap.Cache.Hits
	if _, err := reg.study(context.Background(), StudyConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot(4).Cache.Hits; got != hitsBefore+1 {
		t.Errorf("hits = %d, want %d", got, hitsBefore+1)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	var calls atomic.Int64
	m := NewMetrics()
	reg := newTestRegistry(2, m, fakeBuild(&calls, 0))

	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := reg.study(context.Background(), StudyConfig{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != 2 {
		t.Errorf("cache len = %d, want 2", reg.Len())
	}
	if got := m.Snapshot(2).Cache.Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Seed 1 was evicted (LRU tail): asking again rebuilds.
	before := calls.Load()
	if _, err := reg.study(context.Background(), StudyConfig{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Error("evicted study did not rebuild")
	}
	// Seed 3 is still resident: no rebuild.
	before = calls.Load()
	if _, err := reg.study(context.Background(), StudyConfig{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Error("resident study rebuilt")
	}
}

func TestRegistryTouchKeepsHotEntry(t *testing.T) {
	var calls atomic.Int64
	reg := newTestRegistry(2, NewMetrics(), fakeBuild(&calls, 0))
	bg := context.Background()
	reg.study(bg, StudyConfig{Seed: 1})
	reg.study(bg, StudyConfig{Seed: 2})
	reg.study(bg, StudyConfig{Seed: 1}) // touch: 1 becomes MRU
	reg.study(bg, StudyConfig{Seed: 3}) // evicts 2, not 1
	before := calls.Load()
	reg.study(bg, StudyConfig{Seed: 1})
	if calls.Load() != before {
		t.Error("touched entry was evicted")
	}
}

func TestRegistryAbandonedBuildCancels(t *testing.T) {
	canceled := make(chan struct{})
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	}
	m := NewMetrics()
	reg := newTestRegistry(4, m, build)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := reg.study(ctx, StudyConfig{Seed: 9}); err == nil {
		t.Fatal("abandoned Study returned no error")
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("build never saw cancellation after its last waiter left")
	}
	// The canceled build must not be cached, and must be counted.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m.Snapshot(4).Builds.Canceled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("builds = %+v, want 1 canceled", m.Snapshot(4).Builds)
		}
		time.Sleep(time.Millisecond)
	}
	if reg.Len() != 0 {
		t.Error("canceled build was cached")
	}
}

func TestRegistryBuildErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		calls.Add(1)
		return nil, context.DeadlineExceeded
	}
	m := NewMetrics()
	reg := newTestRegistry(4, m, build)
	for i := 0; i < 2; i++ {
		if _, err := reg.study(context.Background(), StudyConfig{Seed: 5}); err == nil {
			t.Fatal("build error not surfaced")
		}
	}
	if calls.Load() != 2 {
		t.Errorf("failed build was cached: %d calls, want 2", calls.Load())
	}
	if reg.Len() != 0 {
		t.Error("failed build entered the LRU")
	}
}

func TestRegistryBuildPanicBecomesError(t *testing.T) {
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		panic("kaboom")
	}
	reg := newTestRegistry(4, NewMetrics(), build)
	_, err := reg.study(context.Background(), StudyConfig{})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want build panic surfaced", err)
	}
}

func TestParseStudyConfig(t *testing.T) {
	good := url.Values{"seed": {"7"}, "days": {"120"}, "racks": {"12,10"}, "faults": {"true"}}
	cfg, err := parseStudyConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	want := StudyConfig{Seed: 7, Days: 120, Racks: [2]int{12, 10}, Faults: true}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if d := mustParse(t, url.Values{}); d != (StudyConfig{Seed: 42, Days: 930, Racks: [2]int{331, 290}}) {
		t.Errorf("defaults = %+v", d)
	}
	bad := []url.Values{
		{"seed": {"-1"}},
		{"seed": {"x"}},
		{"days": {"0"}},
		{"days": {"99999"}},
		{"racks": {"12"}},
		{"racks": {"0,10"}},   // the validation satellite: zero rejected
		{"racks": {"12,-10"}}, // ... and negative
		{"racks": {"a,b"}},
		{"faults": {"maybe"}},
	}
	for _, q := range bad {
		if _, err := parseStudyConfig(q); err == nil {
			t.Errorf("parseStudyConfig(%v) should error", q)
		}
	}
}

func mustParse(t *testing.T, q url.Values) StudyConfig {
	t.Helper()
	cfg, err := parseStudyConfig(q)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseQ1Params(t *testing.T) {
	wl, hourly, err := parseQ1Params(url.Values{"workload": {"w3"}, "hourly": {"true"}})
	if err != nil || wl != rainshine.W3 || !hourly {
		t.Errorf("got %v %v %v", wl, hourly, err)
	}
	if wl, hourly, err = parseQ1Params(url.Values{}); err != nil || wl != rainshine.W6 || hourly {
		t.Errorf("defaults: %v %v %v", wl, hourly, err)
	}
	for _, q := range []url.Values{{"workload": {"W9"}}, {"hourly": {"x"}}} {
		if _, _, err := parseQ1Params(q); err == nil {
			t.Errorf("parseQ1Params(%v) should error", q)
		}
	}
}

func TestParseRatios(t *testing.T) {
	rs, err := parseRatios(url.Values{"ratios": {"1.0, 1.5,2"}})
	if err != nil || len(rs) != 3 || rs[2] != 2 {
		t.Errorf("got %v %v", rs, err)
	}
	if rs, err = parseRatios(url.Values{}); err != nil || rs != nil {
		t.Errorf("default: %v %v", rs, err)
	}
	for _, v := range []string{"0", "-1", "x", "1.0,,2"} {
		if _, err := parseRatios(url.Values{"ratios": {v}}); err == nil {
			t.Errorf("parseRatios(%q) should error", v)
		}
	}
}

func TestMetricsLatencyQuantiles(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("/v1/q3", time.Duration(i)*time.Millisecond, false)
	}
	es := m.Snapshot(1).Requests["/v1/q3"]
	if es.Count != 100 || es.Errors != 0 {
		t.Errorf("count/errors = %d/%d", es.Count, es.Errors)
	}
	lat := es.LatencyMS
	if lat.P50 < 45 || lat.P50 > 55 || lat.P99 < 95 || lat.Max != 100 {
		t.Errorf("latency quantiles off: %+v", lat)
	}
}

// discard spins up a test server with the given build func.
func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, m
}

func TestHealthzAndMetricz(t *testing.T) {
	var calls atomic.Int64
	ts := testServer(t, Config{CacheSize: 2, build: fakeBuild(&calls, 0), Logf: t.Logf})

	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, body)
	}
	code, body = getJSON(t, ts.URL+"/metricz")
	if code != http.StatusOK {
		t.Errorf("metricz status = %d", code)
	}
	for _, k := range []string{"uptime_seconds", "requests", "cache", "builds"} {
		if _, ok := body[k]; !ok {
			t.Errorf("metricz missing %q: %v", k, body)
		}
	}
}

func TestBadParamsAre400(t *testing.T) {
	var calls atomic.Int64
	ts := testServer(t, Config{build: fakeBuild(&calls, 0), Logf: t.Logf})
	urls := []string{
		"/v1/q1?racks=0,10",
		"/v1/q1?workload=W9",
		"/v1/q2?ratios=-1",
		"/v1/q3?days=bogus",
		"/v1/predict?seed=-3",
		"/v1/quality?faults=perhaps",
	}
	for _, u := range urls {
		code, body := getJSON(t, ts.URL+u)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d %v, want 400", u, code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", u)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("bad params triggered %d study builds", calls.Load())
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	var calls atomic.Int64
	ts := testServer(t, Config{build: fakeBuild(&calls, 0), Logf: t.Logf})
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/q3", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	// A nil study makes every evaluation handler dereference nil; the
	// recovery middleware must convert that into a JSON 500, not a
	// dropped connection.
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		return nil, nil
	}
	ts := testServer(t, Config{build: build, Logf: t.Logf})
	code, body := getJSON(t, ts.URL+"/v1/q3")
	if code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("error = %v, want panic mention", body["error"])
	}
}

func TestRequestTimeout(t *testing.T) {
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := testServer(t, Config{Timeout: 30 * time.Millisecond, build: build, Logf: t.Logf})
	code, body := getJSON(t, ts.URL+"/v1/q3")
	if code != http.StatusGatewayTimeout {
		t.Errorf("status = %d %v, want 504", code, body)
	}
}
