package resilience

import (
	"sync"
	"time"
)

// TokenBucket is a clock-injected token-bucket rate limiter: tokens
// refill continuously at rate per second up to burst, and each admitted
// request spends one. A nil *TokenBucket admits everything, which is
// how "no rate limit" is spelled.
//
// All methods are safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	retry  time.Duration
}

// NewTokenBucket builds a limiter admitting rate requests per second
// with the given burst headroom (coerced to at least 1). rate <= 0
// returns nil: unlimited. now is the injected clock; nil means
// time.Now.
func NewTokenBucket(rate float64, burst int, now func() time.Time) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{
		rate:  rate,
		burst: float64(burst),
		now:   now,
		// One token's worth of refill, rounded up: a static value so
		// rate-limit shed bodies are byte-stable.
		retry: retryAfter(time.Duration(float64(time.Second) / rate)),
	}
}

// Allow spends one token if available, otherwise returns a ShedError.
func (tb *TokenBucket) Allow() error {
	if tb == nil {
		return nil
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	t := tb.now()
	if tb.last.IsZero() {
		tb.tokens = tb.burst
	} else if dt := t.Sub(tb.last); dt > 0 {
		tb.tokens += dt.Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = t
	if tb.tokens >= 1 {
		tb.tokens--
		return nil
	}
	return &ShedError{Reason: RateLimited, RetryAfter: tb.retry}
}
