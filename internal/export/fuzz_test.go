package export

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFrameCSV feeds arbitrary bytes into the CSV importer: it must
// either return a well-formed frame or an error — never panic, and any
// returned frame must satisfy basic invariants.
func FuzzReadFrameCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,x\n")
	f.Add("temp,dc\n70.5,DC1\n80,DC2\n")
	f.Add("x\n\n")
	f.Add("a,a\n1,2\n")
	f.Add("\"q\"\"uote\",c\n1,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		fr, err := ReadFrameCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if fr.NumRows() < 1 || fr.NumCols() < 1 {
			t.Fatalf("accepted degenerate frame %dx%d from %q", fr.NumRows(), fr.NumCols(), in)
		}
		// Round-trip: a frame we accepted must serialize cleanly.
		var buf bytes.Buffer
		if err := FrameCSV(&buf, fr); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}
