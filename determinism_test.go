package rainshine

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestWorkersDeterministic is the end-to-end determinism guarantee: the
// JSON-encoded Q1-Q3 and prediction reports of a study built and
// analyzed with any worker count are byte-identical to the serial
// (workers=1) study. This is what lets the serve daemon treat Workers as
// a tuning knob instead of a cache-key dimension.
func TestWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three studies; skipped in -short")
	}
	reports := func(w int) map[string][]byte {
		t.Helper()
		s, err := NewStudy(WithSeed(42), WithDays(150), WithRacks(30, 26), WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		out := make(map[string][]byte)
		add := func(name string, rep any, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("workers=%d: %s: %v", w, name, err)
			}
			buf, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("workers=%d: encoding %s: %v", w, name, err)
			}
			out[name] = buf
		}
		q1, err := s.SpareProvisioning(W6, false)
		add("q1", q1, err)
		q2, err := s.VendorComparison()
		add("q2", q2, err)
		q3, err := s.ClimateGuidance()
		add("q3", q3, err)
		pred, err := s.FailurePrediction()
		add("predict", pred, err)
		return out
	}

	want := reports(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := reports(w)
		for name, wantBuf := range want {
			if string(got[name]) != string(wantBuf) {
				t.Errorf("workers=%d: %s JSON differs from serial\nserial:   %.200s\nparallel: %.200s",
					w, name, wantBuf, got[name])
			}
		}
	}
}
