// JSON encoding for the report types. encoding/json rejects NaN and
// ±Inf outright, and several report fields are NaN by design (an RH
// threshold that was never found, a p-value with too few strata, a
// precision with no positive predictions). The custom marshalers below
// map non-finite values to JSON null in both directions, so every
// report type round-trips stably — the contract the `rainshine serve`
// API relies on.
package rainshine

import (
	"encoding/json"
	"math"
)

// finitePtr boxes v for encoding, with non-finite values becoming null.
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// floatVal unboxes a decoded pointer; null decodes to NaN.
func floatVal(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON encodes the report with undefined thresholds as null.
func (r ClimateReport) MarshalJSON() ([]byte, error) {
	type alias ClimateReport
	return json.Marshal(struct {
		alias
		TempThresholdF *float64 `json:"temp_threshold_f"`
		RHThreshold    *float64 `json:"rh_threshold"`
	}{alias(r), finitePtr(r.TempThresholdF), finitePtr(r.RHThreshold)})
}

// UnmarshalJSON inverts MarshalJSON (null thresholds decode to NaN).
func (r *ClimateReport) UnmarshalJSON(b []byte) error {
	type alias ClimateReport
	aux := struct {
		*alias
		TempThresholdF *float64 `json:"temp_threshold_f"`
		RHThreshold    *float64 `json:"rh_threshold"`
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	r.TempThresholdF = floatVal(aux.TempThresholdF)
	r.RHThreshold = floatVal(aux.RHThreshold)
	return nil
}

// MarshalJSON encodes the report with an undefined p-value or ratio as
// null.
func (r VendorReport) MarshalJSON() ([]byte, error) {
	type alias VendorReport
	return json.Marshal(struct {
		alias
		RatioSF *float64 `json:"ratio_sf"`
		RatioMF *float64 `json:"ratio_mf"`
		PValue  *float64 `json:"p_value"`
	}{alias(r), finitePtr(r.RatioSF), finitePtr(r.RatioMF), finitePtr(r.PValue)})
}

// UnmarshalJSON inverts MarshalJSON.
func (r *VendorReport) UnmarshalJSON(b []byte) error {
	type alias VendorReport
	aux := struct {
		*alias
		RatioSF *float64 `json:"ratio_sf"`
		RatioMF *float64 `json:"ratio_mf"`
		PValue  *float64 `json:"p_value"`
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	r.RatioSF = floatVal(aux.RatioSF)
	r.RatioMF = floatVal(aux.RatioMF)
	r.PValue = floatVal(aux.PValue)
	return nil
}

// MarshalJSON encodes the report with undefined metrics as null.
func (r PredictionReport) MarshalJSON() ([]byte, error) {
	type alias PredictionReport
	return json.Marshal(struct {
		alias
		Precision    *float64 `json:"precision"`
		Recall       *float64 `json:"recall"`
		F1           *float64 `json:"f1"`
		Accuracy     *float64 `json:"accuracy"`
		AUC          *float64 `json:"auc"`
		PositiveRate *float64 `json:"positive_rate"`
	}{
		alias(r), finitePtr(r.Precision), finitePtr(r.Recall), finitePtr(r.F1),
		finitePtr(r.Accuracy), finitePtr(r.AUC), finitePtr(r.PositiveRate),
	})
}

// UnmarshalJSON inverts MarshalJSON.
func (r *PredictionReport) UnmarshalJSON(b []byte) error {
	type alias PredictionReport
	aux := struct {
		*alias
		Precision    *float64 `json:"precision"`
		Recall       *float64 `json:"recall"`
		F1           *float64 `json:"f1"`
		Accuracy     *float64 `json:"accuracy"`
		AUC          *float64 `json:"auc"`
		PositiveRate *float64 `json:"positive_rate"`
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	r.Precision = floatVal(aux.Precision)
	r.Recall = floatVal(aux.Recall)
	r.F1 = floatVal(aux.F1)
	r.Accuracy = floatVal(aux.Accuracy)
	r.AUC = floatVal(aux.AUC)
	r.PositiveRate = floatVal(aux.PositiveRate)
	return nil
}
