// Package cart implements Classification and Regression Trees (Breiman
// et al., 1984) from scratch: the learner behind the paper's multi-factor
// (MF) analysis, equivalent in role to the R rpart package the authors
// used.
//
// Capabilities:
//   - regression trees (variance / SSE splitting) and classification
//     trees (Gini impurity);
//   - continuous, ordinal, and nominal features; nominal splits use the
//     optimal category-ordering theorem (sort categories by mean response
//     and scan, which is exact for regression and two-class problems);
//   - missing-value tolerance: non-finite feature cells are treated as
//     missing — splits are searched over available cases only, and
//     missing rows follow the majority child (rpart's surrogate-free
//     fallback), at training and prediction time alike;
//   - stopping rules (max depth, minimum node/leaf sizes, minimum
//     relative improvement, mirroring rpart's cp);
//   - weakest-link cost-complexity pruning;
//   - relative variable importance (rpart-style, scaled to 100);
//   - leaf extraction and row→leaf assignment, which the paper uses to
//     cluster racks with similar failure behaviour (Q1).
//
// Performance model: two split-search engines share one growing loop.
// The exact engine sorts each continuous/ordinal feature once per Fit;
// child nodes inherit the sorted order by a stable in-place partition
// (rank filtering) instead of re-sorting. The histogram-binned engine
// (LightGBM-style) engages automatically at fleet scale (Config.Split,
// AutoBinRows): continuous features are quantized once to at most
// Config.Bins quantile bins, nodes accumulate per-bin statistics and
// scan bins instead of rows, and each child's histogram is built from
// the smaller side and subtracted from the parent's for the sibling.
// Nominal and ordinal features use their level sets as bins, so their
// search stays exact in either engine. Null bitmaps on frame columns
// are honored natively: bitmap-marked cells code to the missing
// sentinel without materializing NaNs. In both engines the per-node
// search fans the candidate features across a bounded worker pool
// (Config.Workers), and trees are byte-identical for every worker
// count: the winning split is reduced in feature order with the same
// strict impurity tie-break the serial scan applies.
package cart

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"rainshine/internal/frame"
	"rainshine/internal/parallel"
)

// Task selects the tree type.
type Task int

const (
	// Regression grows a tree minimizing sum of squared errors.
	Regression Task = iota
	// Classification grows a tree minimizing Gini impurity. The target
	// column must be categorical.
	Classification
)

// SplitMethod selects the split-search engine.
type SplitMethod int

const (
	// SplitAuto (the zero value) picks the engine by training size:
	// exact below AutoBinRows rows, binned at or above. Small fits —
	// everything the paper-scale pipelines feed through Q1/Q2 — keep
	// the exact engine and stay byte-identical with earlier releases.
	SplitAuto SplitMethod = iota
	// SplitExact forces the presort-based exact search.
	SplitExact
	// SplitBinned forces the histogram-binned search. Continuous
	// features are quantized to at most Config.Bins quantile bins;
	// nominal and ordinal features use their level sets as bins, which
	// keeps their search exact. Falls back to the exact engine when any
	// categorical feature has more than 255 levels (the level index
	// must fit a byte alongside the missing sentinel).
	SplitBinned
)

const (
	// DefaultBins is the bin budget per continuous feature when
	// Config.Bins is zero: the largest count a byte code can address
	// once 255 is reserved for missing cells.
	DefaultBins = 255
	// AutoBinRows is the training size at which SplitAuto switches
	// from exact to binned search: 4 full frame chunks, past which the
	// O(n log n) presort and per-node O(n) scans dominate fit time.
	AutoBinRows = 4 * frame.ChunkRows
	// missingCode is the reserved byte code for missing feature cells
	// in the binned engine.
	missingCode = 255
)

// BinsRangeError reports a Config.Bins value outside the representable
// range. The binned engine needs at least two bins to express a split
// and at most 255 so every bin code plus the missing sentinel fits a
// byte. Option and flag layers surface this at configuration time
// (errors.As-matchable); Config.withDefaults still clamps silently for
// callers that construct a Config directly.
type BinsRangeError struct {
	Bins int
}

func (e *BinsRangeError) Error() string {
	return fmt.Sprintf("cart: bins %d out of range [2, 255] (0 means the default %d)", e.Bins, DefaultBins)
}

// ValidateBins checks a bin-budget setting at configuration time: 0 is
// "use DefaultBins"; anything else must land in [2, 255]. Returns a
// *BinsRangeError otherwise.
func ValidateBins(n int) error {
	if n == 0 || (n >= 2 && n <= 255) {
		return nil
	}
	return &BinsRangeError{Bins: n}
}

// Config holds the stopping and growth rules.
type Config struct {
	Task Task
	// MaxDepth limits tree depth; root is depth 0. Zero means 10.
	MaxDepth int
	// MinSplit is the minimum number of rows a node needs before a
	// split is attempted. Zero means 20 (rpart default).
	MinSplit int
	// MinLeaf is the minimum number of rows in each child. Zero means
	// MinSplit/3, floor 1 (rpart default).
	MinLeaf int
	// CP is the complexity parameter: a split must reduce the tree's
	// total impurity by at least CP * root impurity. Zero means 0.01
	// (rpart default). Negative means no improvement threshold.
	CP float64
	// Workers bounds the goroutines used by the per-node split search
	// (and by CrossValidate's fold fan-out). Below 1 means GOMAXPROCS;
	// 1 forces the serial path. The fitted tree is byte-identical for
	// every worker count.
	Workers int
	// Split selects the split-search engine; see SplitMethod. The zero
	// value (SplitAuto) switches by training size at AutoBinRows.
	Split SplitMethod
	// Bins caps the number of histogram bins per continuous feature in
	// the binned engine. Zero means DefaultBins; values are clamped to
	// [2, 255]. Ignored by the exact engine.
	Bins int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MinSplit == 0 {
		c.MinSplit = 20
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = c.MinSplit / 3
		if c.MinLeaf < 1 {
			c.MinLeaf = 1
		}
	}
	if c.CP == 0 {
		c.CP = 0.01
	}
	if c.Bins == 0 {
		c.Bins = DefaultBins
	}
	if c.Bins < 2 {
		c.Bins = 2
	}
	if c.Bins > 255 {
		c.Bins = 255
	}
	return c
}

// Feature describes one predictor used by a tree.
type Feature struct {
	Name   string
	Kind   frame.Kind
	Levels []string // for categorical features
}

// Node is one tree node. Leaves have Left == Right == nil.
type Node struct {
	// Split definition (internal nodes only).
	Feature   int     // index into Tree.Features
	Threshold float64 // continuous/ordinal: left if x <= Threshold
	LeftSet   []uint64
	// DefaultLeft routes values unseen at training time (e.g. a nominal
	// level absent from this node) toward the larger child.
	DefaultLeft bool

	Left, Right *Node

	// Statistics (all nodes).
	N           int
	Value       float64   // mean response (regression) or majority class index
	Impurity    float64   // SSE (regression) or weighted Gini (classification)
	ClassCounts []float64 // classification only

	// LeafID numbers leaves left-to-right; -1 for internal nodes.
	LeafID int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// inLeftSet reports whether category c routes left.
func (n *Node) inLeftSet(c int) bool {
	w := c / 64
	if w < 0 || w >= len(n.LeftSet) {
		return false
	}
	return n.LeftSet[w]&(1<<(uint(c)%64)) != 0
}

// Tree is a fitted CART model.
type Tree struct {
	Root     *Node
	Features []Feature
	Target   string
	Task     Task
	// ClassLevels holds target levels for classification trees.
	ClassLevels []string
	// importanceRaw accumulates impurity decrease per feature.
	importanceRaw []float64
	leaves        []*Node
}

// Fit grows a tree predicting target from the named feature columns of
// f. It is FitContext with context.Background(); use that variant to
// make a long fit cancellable.
func Fit(f *frame.Frame, target string, features []string, cfg Config) (*Tree, error) {
	return FitContext(context.Background(), f, target, features, cfg)
}

// FitContext is Fit under a context: when ctx is canceled the split
// search stops at its next checkpoint and the context's error is
// returned instead of a partially grown tree.
func FitContext(ctx context.Context, f *frame.Frame, target string, features []string, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if f.NumRows() == 0 {
		return nil, errors.New("cart: empty frame")
	}
	if len(features) == 0 {
		return nil, errors.New("cart: no features")
	}
	tc, err := f.Col(target)
	if err != nil {
		return nil, err
	}
	t := &Tree{Target: target, Task: cfg.Task}
	// Materialize the target (Values decodes typed label columns to
	// dense float64 class indices). Missing targets — in-band sentinels
	// or ingest null marks alike — are an error: a row without a
	// response cannot train.
	var y []float64
	switch cfg.Task {
	case Regression:
	case Classification:
		if tc.Kind == frame.Continuous {
			return nil, fmt.Errorf("cart: classification target %q must be categorical", target)
		}
		t.ClassLevels = tc.Levels
	default:
		return nil, fmt.Errorf("cart: unknown task %d", cfg.Task)
	}
	for i, n := 0, tc.Len(); i < n; i++ {
		if tc.Missing(i) {
			return nil, fmt.Errorf("cart: missing target at row %d", i)
		}
	}
	y = tc.Values()
	// Materialize features.
	colRefs := make([]*frame.Column, len(features))
	for i, name := range features {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if name == target {
			return nil, fmt.Errorf("cart: target %q used as feature", name)
		}
		// Missing feature cells are legal: they are handled by
		// available-case splitting and majority-side routing.
		colRefs[i] = c
		t.Features = append(t.Features, Feature{Name: name, Kind: c.Kind, Levels: c.Levels})
	}
	t.importanceRaw = make([]float64, len(features))

	if chooseBinned(cfg, f.NumRows(), t.Features) {
		return fitBinned(ctx, cfg, t, colRefs, y)
	}

	// Exact engine: flatten each feature to a dense value slice, with
	// missing cells — null marks and in-band sentinels alike — surfaced
	// as the NaN sentinel the scans expect.
	cols := make([][]float64, len(colRefs))
	for i, c := range colRefs {
		cols[i] = c.Values()
	}
	b := &builder{cfg: cfg, ctx: ctx, tree: t, y: y, cols: cols}
	if cfg.Task == Classification {
		b.nClasses = len(t.ClassLevels)
	}
	if err := b.prepare(f.NumRows()); err != nil {
		return nil, err
	}
	root := b.node(b.rows.idx)
	b.rootImpurity = root.Impurity
	b.grow(root, b.rows, 0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.Root = root
	t.numberLeaves()
	return t, nil
}

// nodeRows is the per-node view of the training rows: the row set in
// partition order, plus — for every continuous/ordinal feature — the
// finite subset presorted by (value, row index). Children inherit the
// sorted order through a stable in-place partition, so sorting happens
// exactly once per Fit.
type nodeRows struct {
	idx    []int
	sorted [][]int32 // per feature; nil for nominal features
}

type builder struct {
	cfg          Config
	ctx          context.Context
	tree         *Tree
	y            []float64
	cols         [][]float64
	nClasses     int
	rootImpurity float64

	rows    nodeRows
	workers int

	// Reused builder-lifetime buffers (the tree grows serially; only the
	// per-node feature search fans out, through per-worker scratch).
	side      []bool    // row → routed to the left child
	idxTmp    []int     // partition scratch for idx
	sortTmps  [][]int32 // per worker: partition scratch for sorted lists
	featSplit []split
	featOK    []bool
	scratch   []*scratch
}

// scratch holds one worker's reusable split-search buffers, sized to the
// largest level/class cardinality the tree can meet.
type scratch struct {
	left, total, right []float64 // class counts for numeric scans
	counts             []int     // nominal: per-category row counts
	score              []float64 // nominal: category order keys
	catSum, catSq      []float64 // nominal regression accumulators
	catClass           [][]float64
	present            []int
}

// initBuffers sizes the builder-lifetime scratch (partition side table,
// per-worker split/search buffers) for nRows training rows. Shared by
// prepare and by the incremental refitter, which supplies its own
// presorted row views instead of re-sorting.
func (b *builder) initBuffers(nRows int) {
	nf := len(b.cols)
	b.workers = parallel.Workers(b.cfg.Workers)
	b.side = make([]bool, nRows)
	b.idxTmp = make([]int, nRows)
	b.featSplit = make([]split, nf)
	b.featOK = make([]bool, nf)

	slots := b.workers
	if slots > nf {
		slots = nf
	}
	if slots < 1 {
		slots = 1
	}
	maxLevels := 0
	for fi := range b.cols {
		if n := len(b.tree.Features[fi].Levels); n > maxLevels {
			maxLevels = n
		}
	}
	b.scratch = make([]*scratch, slots)
	b.sortTmps = make([][]int32, slots)
	for w := range b.scratch {
		b.scratch[w] = newScratch(b.nClasses, maxLevels)
		b.sortTmps[w] = make([]int32, 0, nRows)
	}
}

// prepare builds the root row view: every feature's finite rows sorted
// once by (value, row index) — the canonical order rank filtering
// preserves down the tree. The per-feature sorts run through the pool.
func (b *builder) prepare(nRows int) error {
	nf := len(b.cols)
	b.initBuffers(nRows)

	idx := make([]int, nRows)
	for i := range idx {
		idx[i] = i
	}
	b.rows = nodeRows{idx: idx, sorted: make([][]int32, nf)}

	return parallel.ForEach(b.ctx, b.cfg.Workers, nf, func(fi int) error {
		if b.tree.Features[fi].Kind == frame.Nominal {
			return nil
		}
		col := b.cols[fi]
		s := make([]int32, 0, nRows)
		for r := 0; r < nRows; r++ {
			if isFinite(col[r]) {
				s = append(s, int32(r))
			}
		}
		slices.SortFunc(s, func(a, c int32) int {
			va, vc := col[a], col[c]
			switch {
			case va < vc:
				return -1
			case va > vc:
				return 1
			case a < c: // total order: ties break by row index
				return -1
			case a > c:
				return 1
			}
			return 0
		})
		b.rows.sorted[fi] = s
		return nil
	})
}

func newScratch(nClasses, maxLevels int) *scratch {
	sc := &scratch{
		counts:  make([]int, maxLevels),
		score:   make([]float64, maxLevels),
		catSum:  make([]float64, maxLevels),
		catSq:   make([]float64, maxLevels),
		present: make([]int, 0, maxLevels),
	}
	if nClasses > 0 {
		sc.left = make([]float64, nClasses)
		sc.total = make([]float64, nClasses)
		sc.right = make([]float64, nClasses)
		sc.catClass = make([][]float64, maxLevels)
	}
	return sc
}

// node computes leaf statistics for the rows in idx.
func (b *builder) node(idx []int) *Node {
	n := &Node{N: len(idx), Feature: -1, LeafID: -1}
	if b.cfg.Task == Regression {
		sum, sq := 0.0, 0.0
		for _, r := range idx {
			v := b.y[r]
			sum += v
			sq += v * v
		}
		mean := sum / float64(len(idx))
		n.Value = mean
		n.Impurity = sq - sum*mean // SSE = sum(y^2) - n*mean^2
		if n.Impurity < 0 {
			n.Impurity = 0 // guard against rounding
		}
		return n
	}
	counts := make([]float64, b.nClasses)
	for _, r := range idx {
		counts[int(b.y[r])]++
	}
	n.ClassCounts = counts
	best, bestC := -1.0, 0
	ss := 0.0
	total := float64(len(idx))
	for c, cnt := range counts {
		if cnt > best {
			best, bestC = cnt, c
		}
		p := cnt / total
		ss += p * p
	}
	n.Value = float64(bestC)
	n.Impurity = total * (1 - ss) // N-weighted Gini
	return n
}

// grow recursively splits node over the rows view.
func (b *builder) grow(n *Node, rows nodeRows, depth int) {
	if depth >= b.cfg.MaxDepth || len(rows.idx) < b.cfg.MinSplit || n.Impurity <= 1e-12 {
		return
	}
	sp := b.bestSplit(rows)
	if sp.feature < 0 {
		return
	}
	minGain := 0.0
	if b.cfg.CP > 0 {
		minGain = b.cfg.CP * b.rootImpurity
	}
	if sp.gain < minGain {
		return
	}
	n.Feature = sp.feature
	n.Threshold = sp.threshold
	n.LeftSet = sp.leftSet
	b.tree.importanceRaw[sp.feature] += sp.gain

	left, right := b.partition(n, rows)
	n.Left = b.node(left.idx)
	n.Right = b.node(right.idx)
	b.grow(n.Left, left, depth+1)
	b.grow(n.Right, right, depth+1)
}

// partition routes the node's rows through its split. Rows with a
// missing split value follow the majority child, the same route unseen
// values take at prediction time. The row set is rearranged in place to
// [left | right] (each side keeping available rows in order, then the
// missing rows), and every feature's presorted list is stably split so
// children never re-sort.
func (b *builder) partition(n *Node, rows nodeRows) (left, right nodeRows) {
	feat := b.tree.Features[n.Feature]
	col := b.cols[n.Feature]
	idx := rows.idx

	nl, nr, nm := 0, 0, 0
	for _, r := range idx {
		v := col[r]
		switch {
		case !isFinite(v):
			nm++
		case routeLeft(feat.Kind, n, v):
			nl++
		default:
			nr++
		}
	}
	n.DefaultLeft = nl >= nr
	leftTotal := nl
	if n.DefaultLeft {
		leftTotal += nm
	}
	// Scatter into [finite-left, missing?][finite-right, missing?],
	// preserving the original row order within each group — the exact
	// sequence the append-based partition produced.
	tmp := b.idxTmp[:len(idx)]
	pLeft, pRight := 0, leftTotal
	pMiss := nl
	if !n.DefaultLeft {
		pMiss = leftTotal + nr
	}
	for _, r := range idx {
		v := col[r]
		switch {
		case !isFinite(v):
			tmp[pMiss] = r
			pMiss++
			b.side[r] = n.DefaultLeft
		case routeLeft(feat.Kind, n, v):
			tmp[pLeft] = r
			pLeft++
			b.side[r] = true
		default:
			tmp[pRight] = r
			pRight++
			b.side[r] = false
		}
	}
	copy(idx, tmp)

	left = nodeRows{idx: idx[:leftTotal], sorted: make([][]int32, len(rows.sorted))}
	right = nodeRows{idx: idx[leftTotal:], sorted: make([][]int32, len(rows.sorted))}

	// Rank filtering: stable in-place partition of each feature's sorted
	// rows by child side; the relative (value, row) order survives, so
	// children reuse it directly. Fanned across the pool — each feature's
	// list is independent and each worker slot has its own spill buffer.
	parallel.ForEachWorker(b.ctx, b.cfg.Workers, len(rows.sorted), func(w, fi int) error {
		s := rows.sorted[fi]
		if s == nil {
			return nil
		}
		spill := b.sortTmps[w][:0]
		k := 0
		for _, r := range s {
			if b.side[r] {
				s[k] = r
				k++
			} else {
				spill = append(spill, r)
			}
		}
		copy(s[k:], spill)
		b.sortTmps[w] = spill[:0]
		left.sorted[fi] = s[:k]
		right.sorted[fi] = s[k:]
		return nil
	})
	return left, right
}

// isFinite reports whether a feature cell carries a usable value.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// chooseBinned decides whether the fit runs on the histogram-binned
// engine. Structural limit: every categorical level index must fit a
// byte code next to the missing sentinel, else the exact engine runs
// regardless of the requested method.
func chooseBinned(cfg Config, rows int, feats []Feature) bool {
	switch cfg.Split {
	case SplitExact:
		return false
	case SplitBinned:
	default: // SplitAuto
		if rows < AutoBinRows {
			return false
		}
	}
	for _, ft := range feats {
		if len(ft.Levels) > missingCode {
			return false
		}
	}
	return true
}

func routeLeft(kind frame.Kind, n *Node, v float64) bool {
	if kind == frame.Nominal {
		return n.inLeftSet(int(v))
	}
	return v <= n.Threshold
}

type split struct {
	feature   int
	threshold float64
	leftSet   []uint64
	gain      float64
}

// bestSplit searches all features for the impurity-minimizing split.
// Features are searched concurrently; the winner is reduced in feature
// order with a strict greater-than on gain, so ties break toward the
// lower feature index exactly as the serial scan does.
func (b *builder) bestSplit(rows nodeRows) split {
	nf := len(b.cols)
	err := parallel.ForEachWorker(b.ctx, b.cfg.Workers, nf, func(w, fi int) error {
		if b.tree.Features[fi].Kind == frame.Nominal {
			b.featSplit[fi], b.featOK[fi] = b.bestNominalSplit(b.scratch[w], fi, rows.idx)
		} else {
			b.featSplit[fi], b.featOK[fi] = b.bestNumericSplit(b.scratch[w], fi, rows.sorted[fi])
		}
		return nil
	})
	best := split{feature: -1}
	if err != nil {
		return best // canceled: stop growing everywhere
	}
	for fi := range b.featSplit {
		if b.featOK[fi] && b.featSplit[fi].gain > best.gain {
			best = b.featSplit[fi]
		}
	}
	return best
}

// bestNumericSplit scans the presorted finite rows of a continuous or
// ordinal feature. Missing cells were excluded when the sorted view was
// built (available-case splitting), and the node's view arrives already
// ordered, so the scan is a single O(n) pass.
func (b *builder) bestNumericSplit(sc *scratch, fi int, sorted []int32) (split, bool) {
	col := b.cols[fi]
	n := len(sorted)
	if n < 2*b.cfg.MinLeaf || n < 2 {
		return split{}, false
	}

	bestPos, bestGain := -1, 0.0
	if b.cfg.Task == Regression {
		totalSum, totalSq := 0.0, 0.0
		for _, r := range sorted {
			totalSum += b.y[r]
			totalSq += b.y[r] * b.y[r]
		}
		parentImp := totalSq - totalSum*totalSum/float64(n)
		leftSum, leftSq := 0.0, 0.0
		for i := 0; i < n-1; i++ {
			r := sorted[i]
			leftSum += b.y[r]
			leftSq += b.y[r] * b.y[r]
			if col[sorted[i]] == col[sorted[i+1]] {
				continue // cannot split between equal values
			}
			nl, nr := i+1, n-i-1
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestPos = g, i
			}
		}
	} else {
		// Class-count buffers come from the worker slot's scratch: two
		// numeric scans never share a slot concurrently, so zeroing is
		// the only per-call cost.
		total := sc.total[:b.nClasses]
		left := sc.left[:b.nClasses]
		for cl := range total {
			total[cl] = 0
			left[cl] = 0
		}
		for _, r := range sorted {
			total[int(b.y[r])]++
		}
		parentImp := giniSSE(total, float64(n))
		for i := 0; i < n-1; i++ {
			left[int(b.y[sorted[i]])]++
			if col[sorted[i]] == col[sorted[i+1]] {
				continue
			}
			nl, nr := i+1, n-i-1
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			childImp := giniFromLeft(left, total, sc.right[:b.nClasses], float64(nl), float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestPos = g, i
			}
		}
	}
	if bestPos < 0 || bestGain <= 0 {
		return split{}, false
	}
	thr := (col[sorted[bestPos]] + col[sorted[bestPos+1]]) / 2
	return split{feature: fi, threshold: thr, gain: bestGain}, true
}

// giniSSE returns n * Gini for class counts.
func giniSSE(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	ss := 0.0
	for _, c := range counts {
		p := c / n
		ss += p * p
	}
	return n * (1 - ss)
}

// giniFromLeft computes the summed child impurity, filling the caller's
// right-count buffer instead of allocating.
func giniFromLeft(left, total, right []float64, nl, nr float64) float64 {
	lImp := giniSSE(left, nl)
	for i := range total {
		right[i] = total[i] - left[i]
	}
	return lImp + giniSSE(right[:len(total)], nr)
}

// bestNominalSplit orders categories by mean response (regression) or by
// first-class proportion (classification) and scans boundaries. The
// ordering is provably optimal for regression and two-class targets
// (Breiman et al., Thm 4.5); for multiclass it is a standard heuristic.
// All accumulators come from the worker slot's scratch, so the hot loop
// allocates nothing.
func (b *builder) bestNominalSplit(sc *scratch, fi int, idx []int) (split, bool) {
	col := b.cols[fi]
	// Available-case filtering: rows missing this feature sit out the
	// search and follow the majority child at partition time.
	avail := idx
	for _, r := range idx {
		if !isFinite(col[r]) {
			avail = make([]int, 0, len(idx))
			for _, r2 := range idx {
				if isFinite(col[r2]) {
					avail = append(avail, r2)
				}
			}
			break
		}
	}
	idx = avail
	if len(idx) < 2*b.cfg.MinLeaf || len(idx) < 2 {
		return split{}, false
	}
	nLevels := len(b.tree.Features[fi].Levels)
	counts := sc.counts[:nLevels]
	score := sc.score[:nLevels]
	for c := range counts {
		counts[c] = 0
		score[c] = 0
	}
	if b.cfg.Task == Regression {
		sums := sc.catSum[:nLevels]
		for c := range sums {
			sums[c] = 0
		}
		for _, r := range idx {
			c := int(col[r])
			counts[c]++
			sums[c] += b.y[r]
		}
		for c := range score {
			if counts[c] > 0 {
				score[c] = sums[c] / float64(counts[c])
			}
		}
	} else {
		firstClass := sc.catSum[:nLevels]
		for c := range firstClass {
			firstClass[c] = 0
		}
		for _, r := range idx {
			c := int(col[r])
			counts[c]++
			if int(b.y[r]) == 0 {
				firstClass[c]++
			}
		}
		for c := range score {
			if counts[c] > 0 {
				score[c] = firstClass[c] / float64(counts[c])
			}
		}
	}
	present := sc.present[:0]
	for c, n := range counts {
		if n > 0 {
			present = append(present, c)
		}
	}
	sc.present = present[:0]
	if len(present) < 2 {
		return split{}, false
	}
	slices.SortFunc(present, func(a, c int) int {
		switch {
		case score[a] < score[c]:
			return -1
		case score[a] > score[c]:
			return 1
		}
		return 0
	})

	// Scan over the category ordering: rows are processed category by
	// category, reusing the numeric machinery over a virtual ordering.
	n := len(idx)
	bestGain := 0.0
	bestCut := -1
	if b.cfg.Task == Regression {
		totalSum, totalSq := 0.0, 0.0
		catSum := sc.catSum[:nLevels]
		catSq := sc.catSq[:nLevels]
		for c := range catSum {
			catSum[c] = 0
			catSq[c] = 0
		}
		for _, r := range idx {
			c := int(col[r])
			catSum[c] += b.y[r]
			catSq[c] += b.y[r] * b.y[r]
			totalSum += b.y[r]
			totalSq += b.y[r] * b.y[r]
		}
		parentImp := totalSq - totalSum*totalSum/float64(n)
		leftSum, leftSq, nl := 0.0, 0.0, 0
		for k := 0; k < len(present)-1; k++ {
			c := present[k]
			leftSum += catSum[c]
			leftSq += catSq[c]
			nl += counts[c]
			nr := n - nl
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestCut = g, k
			}
		}
	} else {
		total := sc.total[:b.nClasses]
		for cl := range total {
			total[cl] = 0
		}
		catClass := sc.catClass[:nLevels]
		for _, r := range idx {
			c := int(col[r])
			if catClass[c] == nil {
				catClass[c] = make([]float64, b.nClasses)
			}
			catClass[c][int(b.y[r])]++
			total[int(b.y[r])]++
		}
		parentImp := giniSSE(total, float64(n))
		left := sc.left[:b.nClasses]
		for cl := range left {
			left[cl] = 0
		}
		nl := 0
		for k := 0; k < len(present)-1; k++ {
			c := present[k]
			for cl := range left {
				left[cl] += catClass[c][cl]
			}
			nl += counts[c]
			nr := n - nl
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			childImp := giniFromLeft(left, total, sc.right[:b.nClasses], float64(nl), float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestCut = g, k
			}
		}
		// Reset the per-category class counts we touched for the next
		// call on this worker slot.
		for _, cc := range catClass {
			for cl := range cc {
				cc[cl] = 0
			}
		}
	}
	if bestCut < 0 || bestGain <= 0 {
		return split{}, false
	}
	set := make([]uint64, (nLevels+63)/64)
	for k := 0; k <= bestCut; k++ {
		c := present[k]
		set[c/64] |= 1 << (uint(c) % 64)
	}
	return split{feature: fi, leftSet: set, gain: bestGain}, true
}

// numberLeaves assigns LeafID values in left-to-right order and caches
// the leaf list.
func (t *Tree) numberLeaves() {
	t.leaves = t.leaves[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.LeafID = len(t.leaves)
			t.leaves = append(t.leaves, n)
			return
		}
		n.LeafID = -1
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

// Leaves returns the tree's leaves in left-to-right order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// Depth returns the depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var d func(n *Node) int
	d = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		l, r := d(n.Left), d(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.Root)
}

// leafFor routes one row (given as per-feature values) to its leaf.
func (t *Tree) leafFor(x []float64) *Node {
	n := t.Root
	for !n.IsLeaf() {
		feat := t.Features[n.Feature]
		v := x[n.Feature]
		var goLeft bool
		switch {
		case !isFinite(v):
			// Missing value: follow the majority child, mirroring the
			// training-time assignment.
			goLeft = n.DefaultLeft
		case feat.Kind == frame.Nominal:
			c := int(v)
			if c < 0 || c >= len(feat.Levels) {
				goLeft = n.DefaultLeft
			} else {
				goLeft = n.inLeftSet(c)
			}
		default:
			goLeft = v <= n.Threshold
		}
		if goLeft {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Predict returns the model output for one row of feature values, in the
// order of Tree.Features. For regression this is the leaf mean; for
// classification the majority class index.
func (t *Tree) Predict(x []float64) (float64, error) {
	if len(x) != len(t.Features) {
		return 0, fmt.Errorf("cart: got %d features, want %d", len(x), len(t.Features))
	}
	return t.leafFor(x).Value, nil
}

// PredictProba returns the class-probability vector for one row of a
// classification tree (the class frequencies of the reached leaf).
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if t.Task != Classification {
		return nil, errors.New("cart: PredictProba requires a classification tree")
	}
	if len(x) != len(t.Features) {
		return nil, fmt.Errorf("cart: got %d features, want %d", len(x), len(t.Features))
	}
	leaf := t.leafFor(x)
	out := make([]float64, len(leaf.ClassCounts))
	total := 0.0
	for _, c := range leaf.ClassCounts {
		total += c
	}
	if total == 0 {
		return out, nil
	}
	for i, c := range leaf.ClassCounts {
		out[i] = c / total
	}
	return out, nil
}

// ProbaFrame returns, for every row of f, the probability of the class
// with the given index (classification trees only). It is
// ProbaFrameContext with context.Background() and a single worker.
func (t *Tree) ProbaFrame(f *frame.Frame, class int) ([]float64, error) {
	return t.ProbaFrameContext(context.Background(), f, class, 1)
}

// ProbaFrameContext is ProbaFrame with the per-row routing fanned over
// workers (rows are independent; the output is index-addressed, so the
// result is identical for every worker count).
func (t *Tree) ProbaFrameContext(ctx context.Context, f *frame.Frame, class, workers int) ([]float64, error) {
	if t.Task != Classification {
		return nil, errors.New("cart: ProbaFrame requires a classification tree")
	}
	if class < 0 || class >= len(t.ClassLevels) {
		return nil, fmt.Errorf("cart: class %d out of range [0,%d)", class, len(t.ClassLevels))
	}
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, f.NumRows())
	err = t.forEachRowChunk(ctx, workers, f.NumRows(), cols, func(r int, leaf *Node) {
		total := 0.0
		for _, cc := range leaf.ClassCounts {
			total += cc
		}
		if total > 0 {
			out[r] = leaf.ClassCounts[class] / total
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictFrame predicts every row of f, which must contain the tree's
// feature columns. It is PredictFrameContext with context.Background()
// and a single worker.
func (t *Tree) PredictFrame(f *frame.Frame) ([]float64, error) {
	return t.PredictFrameContext(context.Background(), f, 1)
}

// PredictFrameContext is PredictFrame with the per-row routing fanned
// over workers; results are identical for every worker count.
func (t *Tree) PredictFrameContext(ctx context.Context, f *frame.Frame, workers int) ([]float64, error) {
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, f.NumRows())
	err = t.forEachRowChunk(ctx, workers, f.NumRows(), cols, func(r int, leaf *Node) {
		out[r] = leaf.Value
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachRowChunk routes every row to its leaf, chunked across the pool;
// each chunk keeps its own feature buffer.
func (t *Tree) forEachRowChunk(ctx context.Context, workers, rows int, cols [][]float64, visit func(r int, leaf *Node)) error {
	chunks := parallel.Chunks(rows, parallel.Workers(workers))
	return parallel.ForEach(ctx, workers, len(chunks), func(ci int) error {
		x := make([]float64, len(cols))
		for r := chunks[ci][0]; r < chunks[ci][1]; r++ {
			for i, c := range cols {
				x[i] = c[r]
			}
			visit(r, t.leafFor(x))
		}
		return nil
	})
}

// AssignLeaves returns the LeafID for every row of f. The paper uses
// this to cluster racks into groups with similar failure behaviour.
func (t *Tree) AssignLeaves(f *frame.Frame) ([]int, error) {
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]int, f.NumRows())
	x := make([]float64, len(cols))
	for r := range out {
		for i, c := range cols {
			x[i] = c[r]
		}
		out[r] = t.leafFor(x).LeafID
	}
	return out, nil
}

func (t *Tree) featureCols(f *frame.Frame) ([][]float64, error) {
	cols := make([][]float64, len(t.Features))
	for i, feat := range t.Features {
		c, err := f.Col(feat.Name)
		if err != nil {
			return nil, err
		}
		// Missing cells route like any other missing value (majority
		// child), so surface them as the NaN sentinel leafFor checks.
		cols[i] = c.Values()
	}
	return cols, nil
}

// Importance returns per-feature relative importance scaled so the most
// important feature scores 100 (rpart's convention). Features never used
// in a split score 0.
func (t *Tree) Importance() map[string]float64 {
	out := make(map[string]float64, len(t.Features))
	maxRaw := 0.0
	for _, v := range t.importanceRaw {
		if v > maxRaw {
			maxRaw = v
		}
	}
	for i, feat := range t.Features {
		if maxRaw == 0 {
			out[feat.Name] = 0
			continue
		}
		// Divide before scaling so the top feature is exactly 100 (the
		// other order can overshoot by an ulp).
		out[feat.Name] = 100 * (t.importanceRaw[i] / maxRaw)
	}
	return out
}

// RankedFeatures returns feature names ordered by decreasing importance.
func (t *Tree) RankedFeatures() []string {
	type fi struct {
		name string
		imp  float64
	}
	list := make([]fi, len(t.Features))
	imp := t.Importance()
	for i, f := range t.Features {
		list[i] = fi{f.Name, imp[f.Name]}
	}
	slices.SortStableFunc(list, func(a, b fi) int {
		switch {
		case a.imp > b.imp:
			return -1
		case a.imp < b.imp:
			return 1
		}
		return 0
	})
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}
