package cart

import (
	"errors"
	"math"
	"strings"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// regressionFrame builds a frame where y is exactly determined by a
// threshold on x: y = 1 if x > 5 else 0.
func thresholdFrame(t *testing.T, n int) *frame.Frame {
	t.Helper()
	src := rng.New(1)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = src.Float64() * 10
		if x[i] > 5 {
			y[i] = 1
		}
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegressionRecoversThreshold(t *testing.T) {
	f := thresholdFrame(t, 500)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("tree did not split")
	}
	if math.Abs(tree.Root.Threshold-5) > 0.3 {
		t.Errorf("threshold = %v, want ~5", tree.Root.Threshold)
	}
	lo, err := tree.Predict([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := tree.Predict([]float64{8})
	if lo > 0.05 || hi < 0.95 {
		t.Errorf("predictions lo=%v hi=%v", lo, hi)
	}
}

func TestRegressionNominalSplit(t *testing.T) {
	// Categories a,c have mean 0; b,d have mean 10. The optimal split
	// must group {a,c} vs {b,d} even though they interleave.
	n := 400
	codes := make([]int, n)
	y := make([]float64, n)
	src := rng.New(2)
	for i := range codes {
		codes[i] = i % 4
		base := 0.0
		if codes[i] == 1 || codes[i] == 3 {
			base = 10
		}
		y[i] = base + src.NormFloat64()*0.1
	}
	f := frame.New(n)
	if err := f.AddNominalInts("cat", codes, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"cat"}, Config{Task: Regression, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("no split found")
	}
	// a(0), c(2) must route together; b(1), d(3) together.
	if tree.Root.inLeftSet(0) != tree.Root.inLeftSet(2) {
		t.Error("a and c split apart")
	}
	if tree.Root.inLeftSet(1) != tree.Root.inLeftSet(3) {
		t.Error("b and d split apart")
	}
	if tree.Root.inLeftSet(0) == tree.Root.inLeftSet(1) {
		t.Error("low and high groups not separated")
	}
}

func TestClassificationGini(t *testing.T) {
	// Two classes perfectly separated by x <= 0.
	n := 300
	x := make([]float64, n)
	yc := make([]int, n)
	src := rng.New(3)
	for i := range x {
		x[i] = src.NormFloat64()
		if x[i] > 0 {
			yc[i] = 1
		}
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("cls", yc, []string{"neg", "pos"}); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "cls", []string{"x"}, Config{Task: Classification, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := tree.Predict([]float64{-1})
	p1, _ := tree.Predict([]float64{1})
	if p0 != 0 || p1 != 1 {
		t.Errorf("class predictions = %v, %v", p0, p1)
	}
	if len(tree.ClassLevels) != 2 {
		t.Errorf("ClassLevels = %v", tree.ClassLevels)
	}
}

func TestClassificationRejectsContinuousTarget(t *testing.T) {
	f := thresholdFrame(t, 50)
	if _, err := Fit(f, "y", []string{"x"}, Config{Task: Classification}); err == nil {
		t.Error("classification with continuous target should error")
	}
}

func TestFitErrors(t *testing.T) {
	f := thresholdFrame(t, 50)
	if _, err := Fit(f, "nope", []string{"x"}, Config{}); err == nil {
		t.Error("missing target should error")
	}
	if _, err := Fit(f, "y", []string{"nope"}, Config{}); err == nil {
		t.Error("missing feature should error")
	}
	if _, err := Fit(f, "y", nil, Config{}); err == nil {
		t.Error("no features should error")
	}
	if _, err := Fit(f, "y", []string{"y"}, Config{}); err == nil {
		t.Error("target-as-feature should error")
	}
	if _, err := Fit(frame.New(0), "y", []string{"x"}, Config{}); err == nil {
		t.Error("empty frame should error")
	}
	if _, err := Fit(f, "y", []string{"x"}, Config{Task: Task(9)}); err == nil {
		t.Error("unknown task should error")
	}
}

func TestFitToleratesMissingFeatures(t *testing.T) {
	// NaN feature cells are missing values, not errors: the tree must
	// fit on the available cases and still find the x threshold.
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		if i >= n/2 {
			y[i] = 10
		}
		if i%10 == 3 {
			x[i] = math.NaN() // 10% missing
		}
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression})
	if err != nil {
		t.Fatalf("fit with missing cells: %v", err)
	}
	root := tree.Root
	if root.IsLeaf() {
		t.Fatal("no split found despite clear threshold")
	}
	if root.Threshold < 80 || root.Threshold > 120 {
		t.Errorf("threshold = %v, want near 100", root.Threshold)
	}
	// Leaf populations must cover every row: missing rows follow the
	// majority child, none are dropped.
	total := 0
	for _, leaf := range tree.Leaves() {
		total += leaf.N
	}
	if total != n {
		t.Errorf("leaves cover %d rows, want %d", total, n)
	}
	// Prediction with a missing value routes via DefaultLeft, not panic.
	if _, err := tree.Predict([]float64{math.NaN()}); err != nil {
		t.Errorf("predict on missing value: %v", err)
	}
}

func TestFitRejectsNonFiniteTarget(t *testing.T) {
	f2 := frame.New(2)
	if err := f2.AddContinuous("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f2.AddContinuous("y", []float64{1, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(f2, "y", []string{"x"}, Config{Task: Regression}); err == nil {
		t.Error("Inf target should error")
	}
}

func TestMinLeafRespected(t *testing.T) {
	f := thresholdFrame(t, 100)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MinLeaf: 30, MinSplit: 60, MaxDepth: 8, CP: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		if leaf.N < 30 {
			t.Errorf("leaf with %d < MinLeaf rows", leaf.N)
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	f := thresholdFrame(t, 500)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 3, CP: -1, MinSplit: 4, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Errorf("depth = %d > 3", d)
	}
}

func TestCPStopsUselessSplits(t *testing.T) {
	// Pure-noise target: with default cp the tree should stay a stump.
	n := 300
	src := rng.New(5)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = src.Float64()
		y[i] = src.NormFloat64()
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, CP: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() > 2 {
		t.Errorf("noise tree grew %d leaves", tree.NumLeaves())
	}
}

func TestPredictErrors(t *testing.T) {
	f := thresholdFrame(t, 100)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestPredictFrameMatchesLeafMeans(t *testing.T) {
	f := thresholdFrame(t, 400)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 4, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := tree.PredictFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := tree.AssignLeaves(f)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant: prediction equals the mean target of the rows assigned
	// to the same leaf.
	sums := make(map[int]float64)
	counts := make(map[int]int)
	y := f.MustCol("y").Data
	for r, leaf := range leaves {
		sums[leaf] += y[r]
		counts[leaf]++
	}
	for r, leaf := range leaves {
		want := sums[leaf] / float64(counts[leaf])
		if math.Abs(preds[r]-want) > 1e-9 {
			t.Fatalf("row %d pred %v != leaf mean %v", r, preds[r], want)
		}
	}
}

func TestAssignLeavesIDsValid(t *testing.T) {
	f := thresholdFrame(t, 300)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 4, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := tree.AssignLeaves(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id < 0 || id >= tree.NumLeaves() {
			t.Fatalf("leaf id %d out of range", id)
		}
	}
	if _, err := tree.AssignLeaves(frame.New(0)); err == nil {
		t.Error("frame missing feature columns should error")
	}
}

func TestImportance(t *testing.T) {
	// y depends on x1 strongly, x2 not at all.
	n := 500
	src := rng.New(7)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		x1[i] = src.Float64()
		x2[i] = src.Float64()
		y[i] = 5 * x1[i]
	}
	f := frame.New(n)
	for _, c := range []struct {
		name string
		data []float64
	}{{"x1", x1}, {"x2", x2}, {"y", y}} {
		if err := f.AddContinuous(c.name, c.data); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Fit(f, "y", []string{"x1", "x2"}, Config{Task: Regression, MaxDepth: 4, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.Importance()
	if imp["x1"] != 100 {
		t.Errorf("x1 importance = %v, want 100", imp["x1"])
	}
	if imp["x2"] > 5 {
		t.Errorf("x2 importance = %v, want ~0", imp["x2"])
	}
	ranked := tree.RankedFeatures()
	if ranked[0] != "x1" {
		t.Errorf("ranked = %v", ranked)
	}
}

func TestImportanceAllZero(t *testing.T) {
	// Stump: no splits, all importances zero.
	f := thresholdFrame(t, 50)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 1, MinSplit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if imp := tree.Importance(); imp["x"] != 0 {
		t.Errorf("stump importance = %v", imp["x"])
	}
}

func TestOrdinalSplitsRespectOrder(t *testing.T) {
	// Ordinal month 0..11 with a jump after month 6; split must be a
	// contiguous threshold, not an arbitrary subset.
	n := 360
	codes := make([]int, n)
	y := make([]float64, n)
	for i := range codes {
		codes[i] = i % 12
		if codes[i] > 6 {
			y[i] = 2
		}
	}
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	f := frame.New(n)
	if err := f.AddOrdinalInts("month", codes, months); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"month"}, Config{Task: Regression, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("no split")
	}
	if tree.Root.Threshold < 6 || tree.Root.Threshold > 7 {
		t.Errorf("ordinal threshold = %v, want in (6,7)", tree.Root.Threshold)
	}
}

func TestUnseenNominalLevelRoutesDefault(t *testing.T) {
	n := 200
	codes := make([]int, n)
	y := make([]float64, n)
	for i := range codes {
		codes[i] = i % 2 // levels 0,1 used; level 2 never seen
		y[i] = float64(codes[i]) * 10
	}
	f := frame.New(n)
	if err := f.AddNominalInts("cat", codes, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"cat"}, Config{Task: Regression, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Level 2 ("c") was not in training; prediction must not panic and
	// must return one of the two leaf values.
	v, err := tree.Predict([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 && v != 10 {
		t.Errorf("unseen level prediction = %v", v)
	}
	// Out-of-range code must also be safe.
	if _, err := tree.Predict([]float64{99}); err != nil {
		t.Errorf("out-of-range code errored: %v", err)
	}
}

func TestPruneReducesLeaves(t *testing.T) {
	f := thresholdFrame(t, 500)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 8, CP: -1, MinSplit: 4, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.NumLeaves()
	if before < 3 {
		t.Skipf("tree too small to prune (%d leaves)", before)
	}
	tree.Prune(0.5)
	after := tree.NumLeaves()
	if after >= before {
		t.Errorf("prune did not shrink tree: %d -> %d", before, after)
	}
	// The real split (x<=5) explains nearly all variance, so even heavy
	// pruning must keep it.
	if after < 2 {
		t.Errorf("prune removed the dominant split entirely")
	}
}

func TestPruneToLeaves(t *testing.T) {
	f := thresholdFrame(t, 500)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 8, CP: -1, MinSplit: 4, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree.PruneToLeaves(2)
	if tree.NumLeaves() > 2 {
		t.Errorf("PruneToLeaves(2) left %d leaves", tree.NumLeaves())
	}
	tree.PruneToLeaves(0) // clamps to 1
	if tree.NumLeaves() != 1 {
		t.Errorf("PruneToLeaves(0) left %d leaves", tree.NumLeaves())
	}
}

func TestPruneNoopOnStumpAndZeroAlpha(t *testing.T) {
	f := thresholdFrame(t, 100)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.NumLeaves()
	tree.Prune(0)
	if tree.NumLeaves() != before {
		t.Error("Prune(0) changed the tree")
	}
}

func TestStringAndDescribeLeaf(t *testing.T) {
	f := thresholdFrame(t, 300)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 2, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if !strings.Contains(s, "CART (y ~ x)") || !strings.Contains(s, "leaf#") {
		t.Errorf("String() = %q", s)
	}
	desc, err := tree.DescribeLeaf(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "x") && desc != "(root)" {
		t.Errorf("DescribeLeaf = %q", desc)
	}
	if _, err := tree.DescribeLeaf(999); err == nil {
		t.Error("bad leaf id should error")
	}
}

func TestDescribeLeafRootOnly(t *testing.T) {
	f := thresholdFrame(t, 50)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MinSplit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := tree.DescribeLeaf(0)
	if err != nil || desc != "(root)" {
		t.Errorf("DescribeLeaf = %q, %v", desc, err)
	}
}

func TestLeafIDsAreSequential(t *testing.T) {
	f := thresholdFrame(t, 500)
	tree, err := Fit(f, "y", []string{"x"}, Config{Task: Regression, MaxDepth: 5, CP: 0.001, MinSplit: 10, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, leaf := range tree.Leaves() {
		if leaf.LeafID != i {
			t.Fatalf("leaf %d has id %d", i, leaf.LeafID)
		}
	}
}

func TestTwoFeatureInteraction(t *testing.T) {
	// y = 1 only when dc == DC1 AND temp > 78: the tree must find both
	// splits (this is the Fig 18 structure in miniature).
	n := 2000
	src := rng.New(11)
	dc := make([]int, n)
	temp := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		dc[i] = src.IntN(2)
		temp[i] = 56 + src.Float64()*34
		if dc[i] == 0 && temp[i] > 78 {
			y[i] = 1 + src.NormFloat64()*0.05
		} else {
			y[i] = src.NormFloat64() * 0.05
		}
	}
	f := frame.New(n)
	if err := f.AddNominalInts("dc", dc, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("temp", temp); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := Fit(f, "y", []string{"dc", "temp"}, Config{Task: Regression, MaxDepth: 3, CP: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	hot1, _ := tree.Predict([]float64{0, 85})
	cold1, _ := tree.Predict([]float64{0, 60})
	hot2, _ := tree.Predict([]float64{1, 85})
	if hot1 < 0.8 {
		t.Errorf("DC1 hot prediction = %v, want ~1", hot1)
	}
	if cold1 > 0.2 || hot2 > 0.2 {
		t.Errorf("cold/DC2 predictions = %v, %v, want ~0", cold1, hot2)
	}
	imp := tree.Importance()
	if imp["temp"] == 0 || imp["dc"] == 0 {
		t.Errorf("importance missing interaction factor: %v", imp)
	}
}

func TestValidateBins(t *testing.T) {
	for _, n := range []int{0, 2, 64, 255} {
		if err := ValidateBins(n); err != nil {
			t.Errorf("ValidateBins(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{1, 256, -3} {
		err := ValidateBins(n)
		if err == nil {
			t.Errorf("ValidateBins(%d) = nil, want error", n)
			continue
		}
		var bre *BinsRangeError
		if !errors.As(err, &bre) || bre.Bins != n {
			t.Errorf("ValidateBins(%d) = %v, want *BinsRangeError carrying %d", n, err, n)
		}
		if !strings.Contains(err.Error(), "[2, 255]") {
			t.Errorf("ValidateBins(%d) error %q does not state the range", n, err)
		}
	}
}
