package faults

import (
	"math"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// CorruptFrame returns a dirty copy of an exported rack-day frame:
// columns named in cfg.DropColumns vanish (missing inventory fields) and
// continuous factor cells flip to NaN / ±Inf at the configured rates.
// Columns named in protect (the analysis targets and row identifiers)
// are exempt from cell corruption so a dirty export still describes the
// same failure history. The source frame is never modified.
func CorruptFrame(src *rng.Source, f *frame.Frame, cfg Config, protect ...string) (*frame.Frame, error) {
	cfg = cfg.withDefaults()
	drop := make(map[string]bool, len(cfg.DropColumns))
	for _, n := range cfg.DropColumns {
		drop[n] = true
	}
	protected := make(map[string]bool, len(protect))
	for _, n := range protect {
		protected[n] = true
	}
	out := frame.New(f.NumRows())
	for _, name := range f.Names() {
		if drop[name] {
			continue
		}
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Kind != frame.Continuous || protected[name] || (cfg.CellNaN <= 0 && cfg.CellInf <= 0) {
			// Carried over untouched, sharing cell storage whatever the
			// physical layout (CorruptFrame never mutates carried columns).
			if err := out.AddColumn(*c); err != nil {
				return nil, err
			}
			continue
		}
		data := append([]float64(nil), c.Data...)
		for i := range data {
			switch {
			case cfg.CellNaN > 0 && src.Float64() < cfg.CellNaN:
				data[i] = math.NaN()
			case cfg.CellInf > 0 && src.Float64() < cfg.CellInf:
				data[i] = math.Inf(1 - 2*src.IntN(2))
			}
		}
		if err := out.AddContinuous(name, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}
