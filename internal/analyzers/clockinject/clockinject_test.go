package clockinject_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/clockinject"
)

func TestClockinject(t *testing.T) {
	// clockdep first: clockinj imports its WallClock facts.
	analysistest.RunWithSuggestedFixes(t, "testdata", clockinject.Analyzer, "clockdep", "clockinj", "a")
}
