package rainshine

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// roundTrip marshals v, unmarshals into fresh (zeroed *T), re-marshals,
// and asserts byte-stability — the property the serve API relies on:
// encode(decode(encode(x))) == encode(x). It also rejects any NaN/Inf
// leaking into the encoding (encoding/json would error, but guard the
// text too) and requires every exported field to appear under a
// snake_case key, i.e. struct tags are present.
func roundTrip[T any](t *testing.T, v *T) []byte {
	t.Helper()
	first, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if bytes.Contains(first, []byte(bad)) {
			t.Errorf("%T encoding leaks %s: %s", v, bad, first)
		}
	}
	// Struct tags: encoding/json only emits Go-cased names when a tag is
	// missing; all our wire names are lower snake_case.
	var generic map[string]json.RawMessage
	if err := json.Unmarshal(first, &generic); err != nil {
		t.Fatalf("unmarshal %T to map: %v", v, err)
	}
	for k := range generic {
		if k != strings.ToLower(k) {
			t.Errorf("%T: field %q escaped without a struct tag", v, k)
		}
	}
	decoded := new(T)
	if err := json.Unmarshal(first, decoded); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatalf("re-marshal %T: %v", v, err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("%T round-trip unstable:\nfirst:  %s\nsecond: %s", v, first, second)
	}
	return first
}

func TestReportJSONRoundTrip(t *testing.T) {
	s := testStudy(t)

	q1, err := s.SpareProvisioning(W6, false)
	if err != nil {
		t.Fatal(err)
	}
	body := roundTrip(t, q1)
	for _, key := range []string{`"workload"`, `"overprov_pct"`, `"tco_savings_pct"`, `"clusters"`, `"data_coverage"`} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("q1 JSON missing %s: %.200s", key, body)
		}
	}

	q2, err := s.VendorComparison(1.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	body = roundTrip(t, q2)
	for _, key := range []string{`"ratio_sf"`, `"ratio_mf"`, `"verdicts"`, `"price_ratio"`, `"p_value"`} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("q2 JSON missing %s: %.200s", key, body)
		}
	}

	q3, err := s.ClimateGuidance()
	if err != nil {
		t.Fatal(err)
	}
	body = roundTrip(t, q3)
	for _, key := range []string{`"temp_threshold_f"`, `"rh_threshold"`, `"hot_penalty"`} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("q3 JSON missing %s: %.200s", key, body)
		}
	}

	pred, err := s.FailurePrediction()
	if err != nil {
		t.Fatal(err)
	}
	body = roundTrip(t, pred)
	for _, key := range []string{`"precision"`, `"auc"`, `"top_factors"`, `"train_rows"`} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("predict JSON missing %s: %.200s", key, body)
		}
	}

	qual, err := s.Quality()
	if err != nil {
		t.Fatal(err)
	}
	body = roundTrip(t, qual)
	for _, key := range []string{`"tickets_in"`, `"coverage"`, `"sensor_samples"`} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("quality JSON missing %s: %.200s", key, body)
		}
	}
}

// TestReportJSONNonFinite pins the NaN/Inf contract directly: undefined
// values encode as null and decode back to NaN, so reports from
// degenerate inputs (no RH split, undefined precision) stay servable.
func TestReportJSONNonFinite(t *testing.T) {
	cr := &ClimateReport{
		TempThresholdF: 78,
		RHThreshold:    math.NaN(),
		HotPenalty:     map[string]float64{"DC1": 1.5},
		DryPenalty:     map[string]float64{},
		DataCoverage:   1,
	}
	buf := roundTrip(t, cr)
	if !bytes.Contains(buf, []byte(`"rh_threshold":null`)) {
		t.Errorf("NaN RH threshold should encode as null: %s", buf)
	}
	var back ClimateReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.RHThreshold) {
		t.Errorf("null should decode to NaN, got %v", back.RHThreshold)
	}
	if back.TempThresholdF != 78 {
		t.Errorf("finite threshold mangled: %v", back.TempThresholdF)
	}

	pr := &PredictionReport{Precision: math.Inf(1), Recall: 0.5, AUC: math.NaN()}
	buf = roundTrip(t, pr)
	for _, key := range []string{`"precision":null`, `"auc":null`, `"recall":0.5`} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Errorf("prediction encoding missing %s: %s", key, buf)
		}
	}

	vr := &VendorReport{RatioSF: 10, RatioMF: 4, PValue: math.NaN()}
	buf = roundTrip(t, vr)
	if !bytes.Contains(buf, []byte(`"p_value":null`)) {
		t.Errorf("NaN p-value should encode as null: %s", buf)
	}
}
