// Package dist implements the probability distributions the simulator
// draws from: Poisson failure counts, Exponential/Weibull lifetimes,
// Normal/LogNormal repair durations, Bernoulli outcomes, and Categorical
// mixtures (alias method).
//
// Samplers take an explicit *rng.Source so every draw is attributable to
// a labelled deterministic stream.
package dist

import (
	"errors"
	"fmt"
	"math"

	"rainshine/internal/rng"
)

// Sampler draws one variate from a distribution.
type Sampler interface {
	Sample(src *rng.Source) float64
}

// Poisson is a Poisson distribution with mean Lambda.
type Poisson struct {
	Lambda float64
}

var _ Sampler = Poisson{}

// Sample draws a Poisson variate. For small means it uses Knuth's
// multiplication method; for large means it uses the PTRS transformed
// rejection sampler (Hörmann 1993), which is O(1).
func (p Poisson) Sample(src *rng.Source) float64 {
	return float64(p.SampleInt(src))
}

// SampleInt draws a Poisson variate as an int.
func (p Poisson) SampleInt(src *rng.Source) int {
	switch {
	case p.Lambda <= 0:
		return 0
	case p.Lambda < 30:
		return poissonKnuth(src, p.Lambda)
	default:
		return poissonPTRS(src, p.Lambda)
	}
}

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	if k < 0 || p.Lambda <= 0 {
		if k == 0 && p.Lambda <= 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - lg)
}

// Mean returns the distribution mean.
func (p Poisson) Mean() float64 { return math.Max(p.Lambda, 0) }

func poissonKnuth(src *rng.Source, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	prod := src.Float64()
	for prod > l {
		k++
		prod *= src.Float64()
	}
	return k
}

// poissonPTRS implements Hörmann's transformed rejection with squeeze.
func poissonPTRS(src *rng.Source, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := src.Float64() - 0.5
		v := src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Exponential is an exponential distribution with the given Rate (1/mean).
type Exponential struct {
	Rate float64
}

var _ Sampler = Exponential{}

// Sample draws an exponential variate.
func (e Exponential) Sample(src *rng.Source) float64 {
	return src.ExpFloat64() / e.Rate
}

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Weibull is a Weibull distribution with shape K and scale Lambda.
// K < 1 gives the decreasing-hazard (infant mortality) regime; K > 1 the
// increasing-hazard (wear-out) regime — the two ends of the bathtub.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

var _ Sampler = Weibull{}

// Sample draws a Weibull variate by inverse transform.
func (w Weibull) Sample(src *rng.Source) float64 {
	u := src.Float64()
	// Avoid log(0).
	for u == 0 {
		u = src.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Hazard returns the instantaneous hazard rate at age x.
func (w Weibull) Hazard(x float64) float64 {
	if x <= 0 {
		x = math.SmallestNonzeroFloat64
	}
	return (w.K / w.Lambda) * math.Pow(x/w.Lambda, w.K-1)
}

// Mean returns the distribution mean.
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// Normal is a normal distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

var _ Sampler = Normal{}

// Sample draws a normal variate.
func (n Normal) Sample(src *rng.Source) float64 {
	return n.Mu + n.Sigma*src.NormFloat64()
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// LogNormal is the distribution of exp(N(Mu, Sigma)). Repair durations
// are drawn from it: most repairs are quick, a heavy tail takes days.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

var _ Sampler = LogNormal{}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(src *rng.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*src.NormFloat64())
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Bernoulli returns true with probability P.
type Bernoulli struct {
	P float64
}

// Sample draws a Bernoulli trial.
func (b Bernoulli) Sample(src *rng.Source) bool {
	return src.Float64() < b.P
}

// Categorical samples indices proportionally to fixed weights using the
// Vose alias method: O(n) setup, O(1) per draw. Used for picking ticket
// categories, fault types, and device indices.
type Categorical struct {
	prob  []float64
	alias []int
}

// NewCategorical builds an alias table for the given non-negative
// weights. At least one weight must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("dist: empty weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: invalid weight %v at %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("dist: all weights zero")
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	c := &Categorical{prob: make([]float64, n), alias: make([]int, n)}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c, nil
}

// Sample draws one index.
func (c *Categorical) Sample(src *rng.Source) int {
	i := src.IntN(len(c.prob))
	if src.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.prob) }
