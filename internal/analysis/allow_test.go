package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// collectFrom parses src as one file and returns its AllowSet plus the
// fset used, so tests can build diagnostics at chosen lines.
func collectFrom(t *testing.T, src string) (*token.FileSet, *AllowSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, CollectAllows(fset, []*ast.File{f})
}

func diagAt(fset *token.FileSet, line int, analyzer string) Diagnostic {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return Diagnostic{Pos: pos, Analyzer: analyzer, Message: "test"}
}

func TestAllowSameLine(t *testing.T) {
	fset, s := collectFrom(t, `package p

func f() int {
	return 1 //lint:allow nansafe finite by construction
}
`)
	if !s.Allowed(fset, diagAt(fset, 4, "nansafe")) {
		t.Error("trailing annotation did not suppress its own line")
	}
	if s.Allowed(fset, diagAt(fset, 4, "detrand")) {
		t.Error("annotation suppressed a different analyzer")
	}
	if len(s.Invalid) != 0 {
		t.Errorf("valid annotation marked invalid: %v", s.Invalid)
	}
}

func TestAllowLineAbove(t *testing.T) {
	fset, s := collectFrom(t, `package p

func f() int {
	//lint:allow nansafe hours are finite
	return 1
}
`)
	if !s.Allowed(fset, diagAt(fset, 5, "nansafe")) {
		t.Error("annotation on its own line did not cover the next line")
	}
	if !s.Allowed(fset, diagAt(fset, 4, "nansafe")) {
		t.Error("annotation did not cover its own line")
	}
	if s.Allowed(fset, diagAt(fset, 6, "nansafe")) {
		t.Error("annotation leaked two lines down")
	}
}

func TestAllowMissingReasonIsInvalid(t *testing.T) {
	fset, s := collectFrom(t, `package p

//lint:allow nansafe
func f() {}
`)
	if len(s.Invalid) != 1 {
		t.Fatalf("got %d invalid annotations, want 1", len(s.Invalid))
	}
	if s.Allowed(fset, diagAt(fset, 4, "nansafe")) {
		t.Error("reasonless annotation suppressed a diagnostic")
	}
}

func TestAllowBareAndMalformedAreInvalid(t *testing.T) {
	_, s := collectFrom(t, `package p

//lint:allow
func f() {}

//lint:allowgoleak smushed together
func g() {}
`)
	if len(s.Invalid) != 2 {
		t.Fatalf("got %d invalid annotations, want 2 (bare and smushed)", len(s.Invalid))
	}
}

func TestAllowWhitespaceReasonIsInvalid(t *testing.T) {
	_, s := collectFrom(t, "package p\n\n//lint:allow nansafe    \t \nfunc f() {}\n")
	if len(s.Invalid) != 1 {
		t.Fatalf("got %d invalid annotations, want 1", len(s.Invalid))
	}
}

func TestAllowDistinctAnalyzersOnAdjacentLines(t *testing.T) {
	fset, s := collectFrom(t, `package p

func f() int {
	//lint:allow detrand clock read feeds only the latency histogram
	return 1 //lint:allow nansafe finite by construction
}
`)
	for _, name := range []string{"detrand", "nansafe"} {
		if !s.Allowed(fset, diagAt(fset, 5, name)) {
			t.Errorf("%s not suppressed on line 5", name)
		}
	}
	if s.Allowed(fset, diagAt(fset, 5, "goleak")) {
		t.Error("unnamed analyzer suppressed")
	}
}

func TestAllowOtherLintDirectivesIgnored(t *testing.T) {
	_, s := collectFrom(t, `package p

//lint:ignore SA1000 other tools' directives are not ours
func f() {}
`)
	if len(s.Invalid) != 0 {
		t.Errorf("foreign //lint directive marked invalid: %v", s.Invalid)
	}
}
