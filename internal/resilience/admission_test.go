package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToConcurrency(t *testing.T) {
	l := NewLimiter(3, 0, time.Second)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.InUse(); got != 3 {
		t.Errorf("InUse = %d, want 3", got)
	}
	// Slots full, queue zero: the next acquire sheds immediately.
	err := l.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != QueueFull {
		t.Fatalf("acquire over capacity = %v, want queue_full ShedError", err)
	}
	if shed.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %s, want >= 1s", shed.RetryAfter)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

func TestLimiterBoundedQueue(t *testing.T) {
	l := NewLimiter(1, 2, time.Second)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Fill the queue with two waiters, then assert the third sheds.
	var acquired atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(ctx); err == nil {
				acquired.Add(1)
				l.Release()
			}
		}()
	}
	waitFor(t, func() bool { return l.Waiting() == 2 })
	err := l.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != QueueFull {
		t.Fatalf("acquire with full queue = %v, want queue_full", err)
	}
	// Releasing the slot drains the queue: both waiters eventually run.
	l.Release()
	wg.Wait()
	if got := acquired.Load(); got != 2 {
		t.Errorf("queued acquires = %d, want 2", got)
	}
}

func TestLimiterQueuedAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1, 4, time.Second)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want deadline exceeded", err)
	}
	if got := l.Waiting(); got != 0 {
		t.Errorf("Waiting after abandoned queue wait = %d, want 0", got)
	}
}

func TestLimiterCoercesDegenerateSizes(t *testing.T) {
	l := NewLimiter(0, -5, 0)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire on coerced limiter: %v", err)
	}
	if err := l.Acquire(context.Background()); err == nil {
		t.Fatal("second acquire should shed (capacity coerced to 1, queue to 0)")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
