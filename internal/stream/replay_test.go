package stream_test

import (
	"bytes"
	"context"
	"testing"

	"rainshine"
	"rainshine/internal/faults"
	"rainshine/internal/ingest"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
	"rainshine/internal/topology"
)

// replayEnvelope streams a freshly simulated study through a log and a
// maintainer and returns the finalized study's canonical envelope.
func replayEnvelope(t *testing.T, ctx context.Context, cfg simulate.Config) []byte {
	t.Helper()
	res, err := simulate.RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stream.WriteStudyLog(&buf, res); err != nil {
		t.Fatal(err)
	}
	rd, err := stream.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := stream.Replay(ctx, rd, stream.Config{Sim: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sealed() {
		t.Fatal("replay did not reach the seal")
	}
	d, err := m.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	env, err := stream.EnvelopeJSON(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// batchEnvelope builds the same study through the public batch facade.
func batchEnvelope(t *testing.T, ctx context.Context, opts ...rainshine.Option) []byte {
	t.Helper()
	s, err := rainshine.NewStudyContext(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	env, err := stream.EnvelopeJSON(ctx, s.Figures())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestStreamReplayByteIdenticalClean is the acceptance bar of the
// streaming layer: a seeded study streamed record by record from its
// log, closed by the watermark, and finalized must produce exactly the
// bytes the batch pipeline produces — not approximately, byte for byte.
func TestStreamReplayByteIdenticalClean(t *testing.T) {
	ctx := context.Background()
	cfg := simulate.Config{
		Seed:     21,
		Days:     360,
		Topology: topology.Config{RacksPerDC: [2]int{24, 20}},
		Workers:  2,
	}
	streamed := replayEnvelope(t, ctx, cfg)
	batch := batchEnvelope(t, ctx,
		rainshine.WithSeed(21), rainshine.WithDays(360),
		rainshine.WithRacks(24, 20), rainshine.WithWorkers(2))
	if !bytes.Equal(streamed, batch) {
		t.Fatalf("streamed study != batch study:\nstream: %s\nbatch:  %s", streamed, batch)
	}
}

// TestStreamReplayByteIdenticalDirty repeats the bar in dirty-data
// mode: NaN sensor readings, duplicate tickets, and clock-skewed
// out-of-window tickets all round-trip through the log, and the
// finalized scrub quarantines exactly what the batch scrub does.
func TestStreamReplayByteIdenticalDirty(t *testing.T) {
	ctx := context.Background()
	fc := faults.Defaults()
	cfg := simulate.Config{
		Seed:     22,
		Days:     300,
		Topology: topology.Config{RacksPerDC: [2]int{20, 16}},
		Workers:  2,
		Faults:   &fc,
	}
	streamed := replayEnvelope(t, ctx, cfg)
	batch := batchEnvelope(t, ctx,
		rainshine.WithSeed(22), rainshine.WithDays(300),
		rainshine.WithRacks(20, 16), rainshine.WithWorkers(2),
		rainshine.WithFaults(rainshine.DefaultFaults()))
	if !bytes.Equal(streamed, batch) {
		t.Fatalf("dirty streamed study != batch study:\nstream: %s\nbatch:  %s", streamed, batch)
	}
}

// smallMaintainer builds a maintainer over a tiny fleet for watermark
// semantics tests.
func smallMaintainer(t *testing.T, lateness int) *stream.Maintainer {
	t.Helper()
	m, err := stream.NewMaintainer(stream.Config{
		Sim: simulate.Config{
			Seed:     5,
			Days:     60,
			Topology: topology.Config{RacksPerDC: [2]int{4, 3}},
			Workers:  1,
		},
		Lateness:     lateness,
		DisableRefit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func climateRec(rack, day int32) *stream.Record {
	return &stream.Record{Kind: stream.KindClimate, Rack: rack, Day: day, TempF: 70, RH: 40}
}

func TestMaintainerWatermarkAdvance(t *testing.T) {
	m := smallMaintainer(t, 1)
	ctx := context.Background()
	for d := int32(0); d <= 5; d++ {
		if err := m.Apply(ctx, climateRec(0, d)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	// Day 5 is the newest observation; with one day of lateness slack,
	// days 0-3 have closed and days 4-5 are still open.
	if s.Watermark != 4 {
		t.Fatalf("watermark = %d, want 4", s.Watermark)
	}
	if s.MaxDaySeen != 5 || s.Lag != 2 {
		t.Fatalf("maxDaySeen/lag = %d/%d, want 5/2", s.MaxDaySeen, s.Lag)
	}
	if s.Late != 0 || s.Duplicates != 0 || s.Sealed {
		t.Fatalf("unexpected quarantines or seal: %+v", s)
	}
}

func TestMaintainerLateArrival(t *testing.T) {
	m := smallMaintainer(t, -1) // negative = no slack: strictly ordered stream
	ctx := context.Background()
	if err := m.Apply(ctx, climateRec(0, 10)); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Watermark; got != 10 {
		t.Fatalf("watermark = %d, want 10", got)
	}
	// A day-3 event arrives after day 3 closed: quarantined, not an error.
	rec := &stream.Record{Kind: stream.KindEvent, Seq: 1}
	rec.Event.Rack, rec.Event.Day = 0, 3
	if err := m.Apply(ctx, rec); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Late != 1 {
		t.Fatalf("late = %d, want 1", s.Late)
	}
	if got := m.Quality().Quarantined[ingest.LateArrival]; got != 1 {
		t.Fatalf("LateArrival quarantine = %d, want 1", got)
	}
}

func TestMaintainerDuplicate(t *testing.T) {
	m := smallMaintainer(t, 1)
	ctx := context.Background()
	rec := &stream.Record{Kind: stream.KindEvent, Seq: 7}
	rec.Event.Rack, rec.Event.Day = 1, 2
	if err := m.Apply(ctx, rec); err != nil {
		t.Fatal(err)
	}
	dup := *rec
	if err := m.Apply(ctx, &dup); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", s.Duplicates)
	}
	if got := m.Quality().Quarantined[ingest.DuplicateEvent]; got != 1 {
		t.Fatalf("DuplicateEvent quarantine = %d, want 1", got)
	}
}

func TestMaintainerRejectsImpossibleRecords(t *testing.T) {
	m := smallMaintainer(t, 1)
	ctx := context.Background()
	if err := m.Apply(ctx, climateRec(9999, 0)); err == nil {
		t.Fatal("out-of-fleet rack accepted")
	}
	if err := m.Apply(ctx, &stream.Record{Kind: stream.Kind(42)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
