// External data: run the multi-factor analyses on telemetry that did
// NOT come from this repository's simulator.
//
// An operator with real failure data exports one row per rack-day with
// the factor columns (the shape `rainshine export rackdays` documents)
// and feeds the CSV to rainshine.AnalyzeClimateCSV. To demonstrate the
// path end-to-end without shipping production data, this example first
// produces such a CSV (from a simulated study), then forgets where it
// came from and analyzes it purely as an external file.
//
// Run with:
//
//	go run ./examples/externaldata
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"sort"

	"rainshine"
)

func main() {
	// Step 1 (stand-in for "your telemetry pipeline"): materialize a
	// rack-day CSV. Swap this block for reading your own file.
	csvData, err := makeRackDayCSV()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ingesting %d bytes of rack-day CSV (no simulator state attached)...\n", csvData.Len())

	// Step 2: the actual analysis — works on any CSV in this shape.
	rep, err := rainshine.AnalyzeClimateCSV(csvData)
	if err != nil {
		log.Fatal(err)
	}
	if math.IsNaN(rep.TempThresholdF) {
		fmt.Println("No temperature threshold found in this dataset.")
		return
	}
	fmt.Printf("MF-discovered temperature knee: %.1f F\n", rep.TempThresholdF)
	if !math.IsNaN(rep.RHThreshold) {
		fmt.Printf("MF-discovered dry-air knee (when hot): %.1f %% RH\n", rep.RHThreshold)
	}
	// Sorted DCs keep the example's output byte-identical run to run.
	dcs := make([]string, 0, len(rep.HotPenalty))
	for dc := range rep.HotPenalty {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	for _, dc := range dcs {
		fmt.Printf("%s: disks fail %.0f%% more above the knee\n", dc, 100*(rep.HotPenalty[dc]-1))
	}
	fmt.Println()
	fmt.Println("The same entry point accepts your production rack-day table: columns")
	fmt.Println("temp, rh, dc, region, sku, workload, power_kw, age_months, month,")
	fmt.Println("disk_failures — see `rainshine export rackdays` for the exact shape.")
}

// makeRackDayCSV builds the demonstration CSV.
func makeRackDayCSV() (*bytes.Buffer, error) {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(540),
		rainshine.WithRacks(160, 140),
		rainshine.WithoutSoftwareTickets(),
	)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := study.ExportRackDaysCSV(&buf); err != nil {
		return nil, err
	}
	return &buf, nil
}
