package export

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"rainshine/internal/frame"
)

// ReadFrameCSV parses a CSV (as written by FrameCSV, or assembled from
// an operator's own telemetry) into a frame. Column kinds are inferred:
// a column whose every value parses as a float becomes continuous,
// anything else becomes nominal with levels built from the distinct
// strings. This is the bring-your-own-data entry point: a real failure
// dataset in this shape can be fed straight into the MF analyses.
func ReadFrameCSV(r io.Reader) (*frame.Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, errors.New("export: csv needs a header and at least one row")
	}
	header := records[0]
	rows := records[1:]
	nCols := len(header)
	for i, rec := range rows {
		if len(rec) != nCols {
			return nil, fmt.Errorf("export: row %d has %d fields, header has %d", i+1, len(rec), nCols)
		}
	}
	f := frame.New(len(rows))
	for c, name := range header {
		if name == "" {
			return nil, fmt.Errorf("export: empty column name at position %d", c)
		}
		values := make([]string, len(rows))
		numeric := true
		floats := make([]float64, len(rows))
		for r, rec := range rows {
			values[r] = rec[c]
			if numeric {
				v, err := strconv.ParseFloat(rec[c], 64)
				if err != nil {
					numeric = false
				} else {
					floats[r] = v
				}
			}
		}
		if numeric {
			if err := f.AddContinuous(name, floats); err != nil {
				return nil, err
			}
			continue
		}
		if err := f.AddNominalStrings(name, values); err != nil {
			return nil, err
		}
	}
	return f, nil
}
