package ingest

import (
	"math"

	"rainshine/internal/climate"
)

// stuckMinRun is the shortest run of exactly repeated readings treated
// as a wedged sensor. Real inlet conditions carry continuous per-day
// noise, so four identical float32 readings in a row are implausible —
// unless the series is saturated at a range bound, which is legitimate
// clipping and exempted below.
const stuckMinRun = 4

// RepairClimate runs the sensor stage over the recorded climate series:
// detect dropouts (NaN readings) and stuck-at runs, then reconstruct the
// unusable stretches by linear interpolation between the nearest trusted
// readings (nearest-fill at the series edges). A stuck run's first
// reading is genuine — the sensor froze at a real value — so only the
// repeats are replaced. Racks with no trusted reading at all stay
// missing and are counted as such. When repair is false the series is
// audited but not modified.
func RepairClimate(m *climate.Model, rep *Report, repair bool) error {
	days := m.Days()
	temp := make([]float64, days)
	rh := make([]float64, days)
	trusted := make([]bool, days)
	for ri := 0; ri < m.Racks(); ri++ {
		for d := 0; d < days; d++ {
			c, err := m.At(ri, d)
			if err != nil {
				return err
			}
			temp[d], rh[d] = c.TempF, c.RH
			trusted[d] = true
		}
		rep.SensorSamples += days

		// Dropouts: the BMS recorded nothing.
		gaps := 0
		for d := 0; d < days; d++ {
			if math.IsNaN(temp[d]) || math.IsNaN(rh[d]) {
				trusted[d] = false
				gaps++
			}
		}
		rep.Quarantined[SensorGap] += gaps

		// Stuck-at runs: both channels exactly repeating. Saturated
		// readings at the instrument range bounds are clipping, not a
		// wedged controller, and stay trusted.
		for d := 0; d < days; {
			if !trusted[d] {
				d++
				continue
			}
			run := 1
			for d+run < days && trusted[d+run] &&
				temp[d+run] == temp[d] && rh[d+run] == rh[d] {
				run++
			}
			if run >= stuckMinRun && !saturated(temp[d], rh[d]) {
				// The first reading of the run is the genuine freeze
				// value; the repeats are fabricated.
				for k := 1; k < run; k++ {
					trusted[d+k] = false
				}
				rep.Quarantined[SensorStuck] += run - 1
			}
			d += run
		}

		native := 0
		for d := 0; d < days; d++ {
			if trusted[d] {
				native++
			}
		}
		rep.SensorNative += native
		if native == days {
			continue
		}
		if native == 0 {
			rep.SensorMissing += days
			continue
		}
		rep.SensorImputed += days - native
		if !repair {
			continue
		}
		impute(temp, trusted)
		impute(rh, trusted)
		for d := 0; d < days; d++ {
			if trusted[d] {
				continue
			}
			if err := m.SetAt(ri, d, climate.Conditions{TempF: temp[d], RH: rh[d]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// saturated reports whether a reading sits on the instrument range
// bounds in both channels — the only way a clean series can exactly
// repeat itself.
func saturated(t, r float64) bool {
	tSat := t == climate.MinTempF || t == climate.MaxTempF
	rSat := r == climate.MinRH || r == climate.MaxRH
	return tSat || rSat
}

// impute fills untrusted positions by linear interpolation between the
// nearest trusted neighbors, extending flat at the edges. At least one
// trusted position must exist.
func impute(xs []float64, trusted []bool) {
	n := len(xs)
	prev := -1
	for d := 0; d < n; d++ {
		if trusted[d] {
			if prev < 0 && d > 0 {
				for k := 0; k < d; k++ {
					xs[k] = xs[d] // leading edge: nearest fill
				}
			}
			if prev >= 0 && d-prev > 1 {
				step := (xs[d] - xs[prev]) / float64(d-prev)
				for k := prev + 1; k < d; k++ {
					xs[k] = xs[prev] + step*float64(k-prev)
				}
			}
			prev = d
		}
	}
	if prev >= 0 && prev < n-1 {
		for k := prev + 1; k < n; k++ {
			xs[k] = xs[prev] // trailing edge: nearest fill
		}
	}
}
