package bms

import (
	"testing"

	"rainshine/internal/climate"
	"rainshine/internal/rng"
	"rainshine/internal/topology"
)

func testSetup(t *testing.T) (*climate.Model, *topology.Fleet, int) {
	t.Helper()
	const days = 365
	src := rng.New(rng.DefaultSeed)
	fleet, err := topology.Build(src.Split("topology"), topology.Config{ObservationDays: days, RacksPerDC: [2]int{60, 50}})
	if err != nil {
		t.Fatal(err)
	}
	clim, err := climate.New(src.Split("climate"), fleet, days)
	if err != nil {
		t.Fatal(err)
	}
	return clim, fleet, days
}

func TestSensorKindString(t *testing.T) {
	if Temperature.String() != "temperature" || Humidity.String() != "humidity" {
		t.Error("SensorKind.String broken")
	}
}

func TestThresholdValidation(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Thresholds{TempLowF: 80, TempHighF: 60, RHLow: 20, RHHigh: 80}
	if err := bad.Validate(); err == nil {
		t.Error("inverted temp envelope should error")
	}
	bad = Thresholds{TempLowF: 60, TempHighF: 80, RHLow: 90, RHHigh: 20}
	if err := bad.Validate(); err == nil {
		t.Error("inverted RH envelope should error")
	}
	clim, fleet, _ := testSetup(t)
	if _, err := Scan(clim, fleet, bad); err == nil {
		t.Error("Scan must reject invalid thresholds")
	}
}

func TestScanFindsExcursions(t *testing.T) {
	clim, fleet, days := testSetup(t)
	alarms, err := Scan(clim, fleet, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("adiabatic DC1 must trip alarms over a full year")
	}
	th := DefaultThresholds()
	for _, a := range alarms {
		if a.Rack < 0 || a.Rack >= len(fleet.Racks) {
			t.Fatalf("alarm rack %d out of range", a.Rack)
		}
		if a.Day < 0 || a.Day >= days {
			t.Fatalf("alarm day %d out of range", a.Day)
		}
		switch {
		case a.Kind == Temperature && a.High && a.Value <= th.TempHighF:
			t.Fatalf("high temp alarm with value %v", a.Value)
		case a.Kind == Temperature && !a.High && a.Value >= th.TempLowF:
			t.Fatalf("low temp alarm with value %v", a.Value)
		case a.Kind == Humidity && a.High && a.Value <= th.RHHigh:
			t.Fatalf("high RH alarm with value %v", a.Value)
		case a.Kind == Humidity && !a.High && a.Value >= th.RHLow:
			t.Fatalf("low RH alarm with value %v", a.Value)
		}
	}
}

func TestDC1TripsMoreThanDC2(t *testing.T) {
	clim, fleet, days := testSetup(t)
	alarms, err := Scan(clim, fleet, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(alarms, fleet, days)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	dc1 := sums[0].TempHigh + sums[0].TempLow + sums[0].RHHigh + sums[0].RHLow
	dc2 := sums[1].TempHigh + sums[1].TempLow + sums[1].RHHigh + sums[1].RHLow
	// The chilled-water plant holds its envelope; the adiabatic plant
	// tracks the weather. This is Table I's design trade-off showing up
	// in the alarm stream.
	if dc1 < 10*dc2+10 {
		t.Errorf("DC1 alarms (%d) should dwarf DC2's (%d)", dc1, dc2)
	}
	if sums[0].RackDays == 0 || sums[1].RackDays == 0 {
		t.Error("rack-day accounting missing")
	}
	// DC1's signature excursion: dry air (the RH<20%% tail of Fig 5).
	if sums[0].RHLow == 0 {
		t.Error("DC1 should trip low-humidity alarms")
	}
}
