package stats

import (
	"errors"
	"math"
)

// TestResult is the outcome of a hypothesis test.
type TestResult struct {
	// Statistic is the test statistic (t or z, depending on the test).
	Statistic float64
	// DF is the degrees of freedom (0 for z-approximation tests).
	DF float64
	// P is the two-sided p-value.
	P float64
}

// Significant reports whether the result rejects the null at level
// alpha (e.g. 0.05).
func (r TestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchT performs Welch's unequal-variance two-sample t-test for a
// difference in means between xs and ys.
func WelchT(xs, ys []float64) (TestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TestResult{}, errors.New("stats: WelchT needs >= 2 samples per group")
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		if mx == my {
			return TestResult{Statistic: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TestResult{Statistic: math.Inf(sign(mx - my)), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / math.Sqrt(se2)
	// Welch-Satterthwaite degrees of freedom.
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	return TestResult{Statistic: t, DF: df, P: twoSidedTP(t, df)}, nil
}

// PairedT performs a paired t-test on equal-length samples (testing that
// the mean of xs[i]-ys[i] is zero). This is the per-stratum "is the
// adjusted SKU effect significant?" check of the Q2 analysis.
func PairedT(xs, ys []float64) (TestResult, error) {
	if len(xs) != len(ys) {
		return TestResult{}, errors.New("stats: paired samples must have equal length")
	}
	if len(xs) < 2 {
		return TestResult{}, errors.New("stats: PairedT needs >= 2 pairs")
	}
	diffs := make([]float64, len(xs))
	for i := range xs {
		diffs[i] = xs[i] - ys[i]
	}
	m := Mean(diffs)
	sd := StdDev(diffs)
	n := float64(len(diffs))
	if sd == 0 {
		if m == 0 {
			return TestResult{Statistic: 0, DF: n - 1, P: 1}, nil
		}
		return TestResult{Statistic: math.Inf(sign(m)), DF: n - 1, P: 0}, nil
	}
	t := m / (sd / math.Sqrt(n))
	return TestResult{Statistic: t, DF: n - 1, P: twoSidedTP(t, n-1)}, nil
}

// WilcoxonSignedRank performs the Wilcoxon signed-rank test on paired
// samples using the normal approximation (valid for n >= ~10), with
// mid-ranks for tied absolute differences; zero differences are dropped
// (Wilcoxon's original treatment).
func WilcoxonSignedRank(xs, ys []float64) (TestResult, error) {
	if len(xs) != len(ys) {
		return TestResult{}, errors.New("stats: paired samples must have equal length")
	}
	var diffs []float64
	for i := range xs {
		if d := xs[i] - ys[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 5 {
		return TestResult{}, errors.New("stats: Wilcoxon needs >= 5 non-zero pairs")
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := Ranks(abs)
	wPlus := 0.0
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		}
	}
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	sd := math.Sqrt(nf * (nf + 1) * (2*nf + 1) / 24)
	z := (wPlus - mean) / sd
	p := 2 * (1 - normalCDF(math.Abs(z)))
	return TestResult{Statistic: z, P: p}, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// twoSidedTP returns the two-sided p-value for a t statistic with df
// degrees of freedom.
func twoSidedTP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	if df <= 0 {
		return 1
	}
	// Large df: the normal approximation is indistinguishable and avoids
	// precision issues in the continued fraction.
	if df > 1e6 {
		return 2 * (1 - normalCDF(math.Abs(t)))
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// via the continued-fraction expansion (Numerical Recipes' betacf, using
// the modified Lentz algorithm).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
