package frame

import (
	"math"
	"testing"
)

// Typed uint8 code storage: categorical columns with at most 255 levels
// must drop the float64 round-trip entirely while keeping every missing
// and cloning semantic of the legacy layout.

func TestTypedStorageAutoEngages(t *testing.T) {
	f := New(3)
	if err := f.AddNominalInts("k", []int{0, 2, 1}, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	if c.Data != nil {
		t.Fatalf("3-level nominal kept float64 storage: %v", c.Data)
	}
	cs := c.Codes()
	if len(cs) != 3 || cs[0] != 0 || cs[1] != 2 || cs[2] != 1 {
		t.Fatalf("codes = %v", cs)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Float(1) != 2 || c.Code(2) != 1 {
		t.Errorf("Float/Code = %v/%d", c.Float(1), c.Code(2))
	}
	if got, _ := f.Value(1, "k"); got != 2 {
		t.Errorf("Value = %v", got)
	}
}

func TestWideLevelTableFallsBackToFloat64(t *testing.T) {
	n := maxTypedLevels + 1 // 256 levels: codes no longer fit a byte next to the sentinel
	levels := make([]string, n)
	codes := make([]int, n)
	for i := range levels {
		levels[i] = string(rune('A')) + string(rune('0'+i%10))
		codes[i] = i
	}
	// Make level names distinct.
	for i := range levels {
		levels[i] = levels[i] + "_" + string(rune('a'+i/10%26)) + string(rune('a'+i/260))
	}
	f := New(n)
	if err := f.AddNominalInts("wide", codes, levels); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("wide")
	if c.Codes() != nil {
		t.Fatal("256-level nominal should use float64 storage")
	}
	if c.Data[255] != 255 {
		t.Errorf("Data[255] = %v", c.Data[255])
	}
	if c.Len() != n || c.Code(255) != 255 {
		t.Errorf("Len/Code = %d/%d", c.Len(), c.Code(255))
	}
}

func TestAddCodesAdoptsAndKeepsSentinels(t *testing.T) {
	f := New(4)
	codes := []uint8{0, 1, 255, 7} // 255 and 7 are out of range for 2 levels
	if err := f.AddNominalCodes("k", codes, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	if &c.Codes()[0] != &codes[0] {
		t.Error("AddNominalCodes should adopt the slice, not copy")
	}
	if c.Missing(0) || c.Missing(1) {
		t.Error("in-range codes must not read as missing")
	}
	if !c.Missing(2) || !c.Missing(3) {
		t.Error("out-of-range codes are the in-band missing sentinel")
	}
	if c.MissingCount() != 2 {
		t.Errorf("MissingCount = %d", c.MissingCount())
	}
	if err := f.AddOrdinalCodes("o", []uint8{0, 1, 1, 0}, []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	if f.MustCol("o").Kind != Ordinal {
		t.Error("AddOrdinalCodes kind")
	}
	levels := make([]string, maxTypedLevels+1)
	for i := range levels {
		levels[i] = string(rune(i)) + "_" + string(rune(i/256))
	}
	if err := f.AddNominalCodes("toowide", make([]uint8, 4), levels); err == nil {
		t.Error("level table past maxTypedLevels must error")
	}
}

func TestTypedSetMissingAndMarkNull(t *testing.T) {
	f := New(3)
	if err := f.AddNominalInts("k", []int{0, 1, 0}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	c.MarkNull(0)
	if !c.Missing(0) || c.Codes()[0] != 0 {
		t.Error("MarkNull must keep the stored code inspectable")
	}
	c.SetMissing(1)
	if !c.Missing(1) || int(c.Codes()[1]) < len(c.Levels) {
		t.Error("SetMissing must write the out-of-range sentinel code")
	}
	if c.NullCount() != 2 || c.MissingCount() != 2 {
		t.Errorf("counts = %d nulls, %d missing", c.NullCount(), c.MissingCount())
	}
}

func TestTypedValues(t *testing.T) {
	f := New(4)
	if err := f.AddNominalCodes("k", []uint8{1, 0, 9, 1}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	c.MarkNull(3)
	v := c.Values()
	if v[0] != 1 || v[1] != 0 {
		t.Errorf("Values = %v", v)
	}
	if !math.IsNaN(v[2]) {
		t.Error("out-of-range code must decode to NaN")
	}
	if !math.IsNaN(v[3]) {
		t.Error("null-marked cell must decode to NaN")
	}
	// Continuous columns without nulls alias their storage.
	if err := f.AddContinuous("x", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	x := f.MustCol("x")
	if vv := x.Values(); &vv[0] != &x.Data[0] {
		t.Error("no-null continuous Values should alias Data")
	}
	x.MarkNull(1)
	vv := x.Values()
	if &vv[0] == &x.Data[0] || !math.IsNaN(vv[1]) || vv[2] != 3 {
		t.Error("null-marked continuous Values must copy and patch NaN")
	}
}

func TestTypedCloneAndSubset(t *testing.T) {
	f := New(4)
	if err := f.AddNominalInts("k", []int{0, 1, 1, 0}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	c.MarkNull(2)

	cl := c.Clone()
	cl.Codes()[0] = 1
	cl.MarkNull(1)
	if c.Codes()[0] != 0 || c.Missing(1) {
		t.Error("Clone aliased typed storage or bitmap")
	}

	sub := f.Subset([]int{2, 3})
	sc := sub.MustCol("k")
	if sc.Codes() == nil || sc.Codes()[0] != 1 || sc.Codes()[1] != 0 {
		t.Errorf("subset codes = %v", sc.Codes())
	}
	if !sc.Missing(0) || sc.Missing(1) {
		t.Error("subset must carry null marks by position")
	}
	sc.Codes()[1] = 1
	if c.Codes()[3] != 0 {
		t.Error("Subset aliased parent typed storage")
	}
}

func TestTypedChunks(t *testing.T) {
	n := 100
	codes := make([]uint8, n)
	for i := range codes {
		codes[i] = uint8(i % 3)
	}
	f := New(n)
	if err := f.AddNominalCodes("k", codes, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("k")
	chs := c.Chunks(64)
	if len(chs) != 2 {
		t.Fatalf("chunks = %d", len(chs))
	}
	for _, ch := range chs {
		if ch.Data != nil {
			t.Fatal("typed chunk must not carry a Data view")
		}
		if len(ch.Codes) != ch.Len() {
			t.Fatalf("codes view len %d, chunk len %d", len(ch.Codes), ch.Len())
		}
		if &ch.Codes[0] != &codes[ch.Lo] {
			t.Fatal("chunk Codes must alias column storage")
		}
	}
	c.MarkNull(70)
	if !chs[1].Missing(70 - chs[1].Lo) {
		t.Error("chunk Missing must see column null marks")
	}
}

func TestAddColumnSharesStorage(t *testing.T) {
	f := New(2)
	if err := f.AddNominalInts("k", []int{0, 1}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	g := New(2)
	if err := g.AddColumn(*f.MustCol("k")); err != nil {
		t.Fatal(err)
	}
	if &g.MustCol("k").Codes()[0] != &f.MustCol("k").Codes()[0] {
		t.Error("AddColumn must share cell storage")
	}
	if err := g.AddColumn(Column{Name: "bad", Kind: Nominal,
		Data: []float64{0, 1}, codes: []uint8{0, 1}, Levels: []string{"a", "b"}}); err == nil {
		t.Error("a column with both storages must be rejected")
	}
	if err := g.AddColumn(Column{Name: "short", Kind: Continuous, Data: []float64{1}}); err == nil {
		t.Error("row-count mismatch must be rejected")
	}
}
