package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 237
		hit := make([]int, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			hit[i]++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSmall(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return errors.New("ran") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	ran := false
	if err := ForEach(context.Background(), 8, 1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("n=1: err=%v ran=%t", err, ran)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 100, func(i int) error {
			if i%30 == 7 { // fails at 7, 37, 67, 97
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("workers=%d: err = %v, want lowest-index failure", workers, err)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 4, 50, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("tasks ran under a canceled context")
	}
}

func TestForEachWorkerSlotExclusive(t *testing.T) {
	// Two tasks sharing a worker slot must never overlap: per-slot
	// scratch without locks is the whole point. Guard each slot with a
	// mutex that would trip -race (and the TryLock check) on overlap.
	const workers = 4
	locks := make([]sync.Mutex, workers)
	scratch := make([]int, workers)
	err := ForEachWorker(context.Background(), workers, 500, func(w, i int) error {
		if !locks[w].TryLock() {
			return fmt.Errorf("worker slot %d ran two tasks concurrently", w)
		}
		defer locks[w].Unlock()
		scratch[w]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range scratch {
		total += s
	}
	if total != 500 {
		t.Errorf("slot totals = %d, want 500", total)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got, err := Map(context.Background(), workers, 64, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom 3" {
		t.Errorf("err = %v, want boom 3", err)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, parts int
		want     [][2]int
	}{
		{0, 4, nil},
		{5, 1, [][2]int{{0, 5}}},
		{5, 2, [][2]int{{0, 3}, {3, 5}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{7, 0, [][2]int{{0, 7}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Errorf("Chunks(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chunks(%d,%d)[%d] = %v, want %v", c.n, c.parts, i, got[i], c.want[i])
			}
		}
		// Ranges must tile [0, n) exactly.
		prev := 0
		for _, r := range got {
			if r[0] != prev || r[1] < r[0] {
				t.Errorf("Chunks(%d,%d): bad tiling %v", c.n, c.parts, got)
			}
			prev = r[1]
		}
		if c.n > 0 && prev != c.n {
			t.Errorf("Chunks(%d,%d) ends at %d", c.n, c.parts, prev)
		}
	}
}
