// Operations: the Section II questions beyond Q1-Q3.
//
// The paper's motivation section lists more decisions than its
// evaluation answers. This example runs three of them against the same
// simulated telemetry:
//
//   - shared vs dedicated spare pools (CapEx): how much does sharing
//     spares across racks, workloads, or whole DCs save?
//   - replace vs service (OpEx): which repair policy is cheaper, per
//     component class?
//   - BMS alarms (facilities): how often does each DC leave its
//     environmental envelope?
//
// Run with:
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"

	"rainshine"
)

func main() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(540),
		rainshine.WithRacks(160, 140),
	)
	if err != nil {
		log.Fatal(err)
	}

	pools, err := study.PoolingAnalysis(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Spare pools at 100% availability (daily recycling):")
	for _, p := range pools {
		fmt.Printf("  %-20s %4d pools, %5d spares (%.1f%% of fleet)\n",
			p.Scope, p.Pools, p.Spares, p.Pct)
	}
	fmt.Println("  Sharing multiplexes uncorrelated failures — but the paper notes that")
	fmt.Println("  failing over off-rack costs network locality, so most operators stop")
	fmt.Println("  at per-workload pools.")
	fmt.Println()

	recs, err := study.RepairPolicy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Repair policy, per component class:")
	for _, r := range recs {
		if r.Replace.Events == 0 {
			continue
		}
		fmt.Printf("  %-7s -> %-8s (saves %.0f%%; replace %.0f vs service %.0f TCO units)\n",
			r.Component, r.Better, r.SavingsPct, r.Replace.TotalCost, r.Service.TotalCost)
	}
	fmt.Println()

	alarms, err := study.EnvironmentAlarms()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BMS environmental alarms (outside the ASHRAE envelope):")
	for _, a := range alarms {
		total := a.TempHigh + a.TempLow + a.RHHigh + a.RHLow
		fmt.Printf("  %s: %d alarm rack-days of %d (%.1f%%)\n",
			a.DC, total, a.RackDays, 100*float64(total)/float64(a.RackDays))
	}
	fmt.Println()
	fmt.Println("Every number above comes from the same telemetry that drives the paper's")
	fmt.Println("Q1-Q3 — one dataset, many decisions, all needing the multi-factor view.")
}
