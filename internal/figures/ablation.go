package figures

import (
	"fmt"

	"rainshine/internal/metrics"
	"rainshine/internal/provision"
	"rainshine/internal/topology"
)

// AblationRow is one configuration of the MF-clustering ablation: how
// much over-provisioning (100% SLA, daily) the MF approach needs for a
// workload when a design choice is varied.
type AblationRow struct {
	Workload    string
	Config      string
	Clusters    int
	OverprovPct float64
	// GapClosedPct reports how much of the SF→LB gap this configuration
	// closes (100 = reaches the oracle, 0 = no better than SF).
	GapClosedPct float64
}

// featureSets are the feature-subset ablations: DESIGN.md calls out that
// the MF approach needs *jointly* considered factors; these subsets
// quantify the claim (and mirror the paper's SF-vs-MF argument at
// intermediate points).
var featureSets = []struct {
	name     string
	features []string
}{
	{"spatial-only", []string{"dc", "region"}},
	{"hardware-only", []string{"sku", "power_kw", "age_months"}},
	{"no-spatial", []string{"sku", "power_kw", "age_months"}},
	{"all-factors", nil}, // provision defaults
}

// clusterCaps are the cluster-budget ablations.
var clusterCaps = []int{2, 4, 6, 10}

// AblationFeatures sweeps the clustering feature subsets for both study
// workloads at 100% SLA, daily granularity.
func (d *Data) AblationFeatures() ([]AblationRow, error) {
	var out []AblationRow
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		lb, sf, err := d.lbSF(wl)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, fs := range featureSets {
			key := fmt.Sprintf("%v", fs.features)
			if seen[key] {
				continue // no-spatial duplicates hardware-only today
			}
			seen[key] = true
			sl, err := provision.AnalyzeServerLevelWith(d.Res, wl, metrics.Daily,
				[]float64{1.0}, provision.Options{Features: fs.features})
			if err != nil {
				return nil, err
			}
			mf := sl.Overprov[provision.MF][0]
			out = append(out, AblationRow{
				Workload:     wl.String(),
				Config:       "features=" + fs.name,
				Clusters:     sl.Clustering.NumClusters(),
				OverprovPct:  100 * mf,
				GapClosedPct: gapClosed(lb, mf, sf),
			})
		}
	}
	return out, nil
}

// AblationAutoCP compares the fixed-cp clustering against the
// cross-validated one (rpart's recommended cp selection).
func (d *Data) AblationAutoCP() ([]AblationRow, error) {
	var out []AblationRow
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		lb, sf, err := d.lbSF(wl)
		if err != nil {
			return nil, err
		}
		for _, auto := range []bool{false, true} {
			sl, err := provision.AnalyzeServerLevelWith(d.Res, wl, metrics.Daily,
				[]float64{1.0}, provision.Options{AutoCP: auto})
			if err != nil {
				return nil, err
			}
			name := "cp=fixed"
			if auto {
				name = "cp=cross-validated"
			}
			mf := sl.Overprov[provision.MF][0]
			out = append(out, AblationRow{
				Workload:     wl.String(),
				Config:       name,
				Clusters:     sl.Clustering.NumClusters(),
				OverprovPct:  100 * mf,
				GapClosedPct: gapClosed(lb, mf, sf),
			})
		}
	}
	return out, nil
}

// AblationClusterBudget sweeps the maximum cluster count.
func (d *Data) AblationClusterBudget() ([]AblationRow, error) {
	var out []AblationRow
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		lb, sf, err := d.lbSF(wl)
		if err != nil {
			return nil, err
		}
		for _, cap := range clusterCaps {
			sl, err := provision.AnalyzeServerLevelWith(d.Res, wl, metrics.Daily,
				[]float64{1.0}, provision.Options{MaxClusters: cap})
			if err != nil {
				return nil, err
			}
			mf := sl.Overprov[provision.MF][0]
			out = append(out, AblationRow{
				Workload:     wl.String(),
				Config:       fmt.Sprintf("max-clusters=%d", cap),
				Clusters:     sl.Clustering.NumClusters(),
				OverprovPct:  100 * mf,
				GapClosedPct: gapClosed(lb, mf, sf),
			})
		}
	}
	return out, nil
}

// lbSF returns the oracle and single-factor over-provision fractions at
// 100% SLA daily, the endpoints against which ablations are scored.
func (d *Data) lbSF(wl topology.Workload) (lb, sf float64, err error) {
	sl, err := provision.AnalyzeServerLevel(d.Res, wl, metrics.Daily, []float64{1.0})
	if err != nil {
		return 0, 0, err
	}
	return sl.Overprov[provision.LB][0], sl.Overprov[provision.SF][0], nil
}

func gapClosed(lb, mf, sf float64) float64 {
	if sf <= lb {
		return 100
	}
	v := 100 * (sf - mf) / (sf - lb)
	if v < 0 {
		return 0
	}
	return v
}

// GranularityRow is one cell of the provisioning-granularity sweep: the
// spare requirement at 100% SLA when spares can be recycled only per
// window of the given size. Finer windows multiplex more (Fig 10 vs
// Fig 12 extended across the paper's full granularity range).
type GranularityRow struct {
	Workload    string
	Granularity string
	LBPct       float64
	MFPct       float64
	SFPct       float64
}

// GranularitySweep evaluates Q1-A at every supported window size.
func (d *Data) GranularitySweep() ([]GranularityRow, error) {
	var out []GranularityRow
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		for _, g := range []metrics.Granularity{metrics.Hourly, metrics.Daily, metrics.Weekly, metrics.Monthly} {
			sl, err := provision.AnalyzeServerLevel(d.Res, wl, g, []float64{1.0})
			if err != nil {
				return nil, err
			}
			out = append(out, GranularityRow{
				Workload:    wl.String(),
				Granularity: g.String(),
				LBPct:       100 * sl.Overprov[provision.LB][0],
				MFPct:       100 * sl.Overprov[provision.MF][0],
				SFPct:       100 * sl.Overprov[provision.SF][0],
			})
		}
	}
	return out, nil
}
