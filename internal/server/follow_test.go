package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rainshine"
	"rainshine/internal/leakcheck"
	"rainshine/internal/simulate"
	"rainshine/internal/stream"
)

// followStudy is the tiny study the follower tests stream.
var followStudy = StudyConfig{Seed: 5, Days: 40, Racks: [2]int{3, 2}}

// writeFollowLog simulates the follow study and writes its stream log,
// returning the path and the day count.
func writeFollowLog(t *testing.T, dir string) string {
	t.Helper()
	res, err := simulate.Run(followStudy.simConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "study.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.WriteStudyLog(f, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func followServer(t *testing.T, path string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Workers: 1,
		Logf:    t.Logf,
		build:   failingBuild(),
		Follow: &FollowConfig{
			Path:         path,
			Study:        followStudy,
			PollInterval: 2 * time.Millisecond,
			LongPoll:     5 * time.Second,
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// failingBuild keeps registry builds out of follower tests.
func failingBuild() buildFunc {
	return func(ctx context.Context, sc StudyConfig) (*rainshine.Study, error) {
		panic("follower tests must not build studies")
	}
}

func getStreamStatus(t *testing.T, url string) (streamStatus, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body streamStatus
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body, resp
}

// TestFollowStreamToSeal tails a complete log to its seal and checks
// the long-poll endpoint, the watermark header, and the /metricz
// stream section along the way.
func TestFollowStreamToSeal(t *testing.T) {
	leakcheck.Check(t)
	path := writeFollowLog(t, t.TempDir())
	s, ts := followServer(t, path)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Follow(ctx) }()

	deadline := time.After(30 * time.Second)
	watermark := -1
	for {
		body, resp := getStreamStatus(t, ts.URL+"/v1/stream")
		if h := resp.Header.Get("X-Rainshine-Watermark"); h == "" {
			t.Fatal("missing X-Rainshine-Watermark header")
		}
		if body.Watermark < watermark {
			t.Fatalf("watermark went backwards: %d -> %d", watermark, body.Watermark)
		}
		watermark = body.Watermark
		if body.Error != "" {
			t.Fatalf("follower error: %s", body.Error)
		}
		if body.Sealed {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stream never sealed (watermark %d)", watermark)
		default:
		}
	}
	if watermark != followStudy.Days {
		t.Fatalf("sealed watermark = %d, want %d", watermark, followStudy.Days)
	}
	if err := <-done; err != nil {
		t.Fatalf("Follow: %v", err)
	}

	// The stream section must be present and final in /metricz.
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stream == nil {
		t.Fatal("/metricz has no stream section")
	}
	if !snap.Stream.Sealed || snap.Stream.Watermark != followStudy.Days {
		t.Fatalf("stream counters = %+v, want sealed at %d", snap.Stream, followStudy.Days)
	}
	if snap.Stream.Lag != 0 || snap.Stream.Late != 0 || snap.Stream.Duplicates != 0 {
		t.Fatalf("clean replay left quarantines: %+v", snap.Stream)
	}
	if snap.Stream.Refits == 0 {
		t.Fatalf("live refitter never ran: %+v", snap.Stream)
	}
}

// TestFollowLongPollWakesOnDayClose starts a long-poll before the log
// is complete; appending the rest of the log must release it with an
// advanced watermark, without waiting out the long-poll window.
func TestFollowLongPollWakesOnDayClose(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	full, err := os.ReadFile(writeFollowLog(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(dir, "partial.log")
	// Enough bytes for the magic plus a little telemetry, cut on a frame
	// boundary: magic + one whole climate frame.
	cut := 8 + 8 + 25
	if err := os.WriteFile(partial, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := followServer(t, partial)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Follow(ctx) }()

	// A long-poll for watermark > 0 can only be released by new data.
	got := make(chan streamStatus, 1)
	go func() {
		body, _ := getStreamStatus(t, ts.URL+"/v1/stream?watermark=0")
		got <- body
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if err := os.WriteFile(partial, full, 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case body := <-got:
		if body.Watermark < 1 {
			t.Fatalf("long-poll released at watermark %d, want > 0", body.Watermark)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("long-poll never released")
	}
	if err := <-done; err != nil {
		t.Fatalf("Follow: %v", err)
	}
}

// TestStreamEndpointWithoutFollower: the route exists but reports that
// no stream is attached.
func TestStreamEndpointWithoutFollower(t *testing.T) {
	leakcheck.Check(t)
	s := New(Config{Logf: t.Logf, build: failingBuild()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if err := s.Follow(context.Background()); err == nil {
		t.Fatal("Follow without config succeeded")
	}
}
