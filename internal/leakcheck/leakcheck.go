// Package leakcheck is the runtime complement to the goleak static
// analyzer: a test registers the harness at the top, and when the test
// (including every later-registered cleanup, so servers shut down
// first) finishes, the package snapshots the goroutine dump and fails
// the test if goroutines born during the test are still alive. The
// check retries for a grace period — shutdown is asynchronous by
// design (watchers drain, long-polls time out) — so only goroutines
// that survive the grace window count as leaks.
//
//	func TestServerSoak(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// Benign runtime and testing goroutines (test runners, the signal
// watcher, collector workers) are filtered by stack signature.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

const (
	// retryStep spaces the drain polls; grace bounds the total wait.
	retryStep = 10 * time.Millisecond
	grace     = 2 * time.Second
)

// Check snapshots the current goroutine set and registers a cleanup
// that fails t if goroutines created since are still running once the
// test and its later-registered cleanups have finished. Call it before
// starting servers or streams: t.Cleanup runs last-in-first-out, so
// the check observes the world after those components shut down.
func Check(t testing.TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		t.Helper()
		if extra := leaked(before); len(extra) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n%s", len(extra), strings.Join(extra, "\n"))
		}
	})
}

// leaked reports the stacks of goroutines not in before that are still
// alive after retrying for up to the grace period. Split from Check so
// the package can test its own detection without failing the caller.
func leaked(before map[string]bool) []string {
	for elapsed := time.Duration(0); ; elapsed += retryStep {
		extra := newGoroutines(before)
		if len(extra) == 0 || elapsed >= grace {
			return extra
		}
		time.Sleep(retryStep) //lint:allow clockinject the wait is for real scheduler progress; no timestamp is produced
	}
}

// newGoroutines returns the interesting stacks whose IDs are not in
// before, sorted for deterministic failure output.
func newGoroutines(before map[string]bool) []string {
	var out []string
	for id, stack := range stacksByID() {
		if !before[id] && !benign(stack) {
			out = append(out, fmt.Sprintf("goroutine %s:\n%s", id, indent(stack)))
		}
	}
	sort.Strings(out)
	return out
}

// goroutineIDs snapshots the IDs of every live goroutine.
func goroutineIDs() map[string]bool {
	ids := map[string]bool{}
	for id := range stacksByID() {
		ids[id] = true
	}
	return ids
}

// stacksByID parses runtime.Stack's all-goroutine dump into one stack
// per goroutine ID.
func stacksByID() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stacks := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, rest, ok := strings.Cut(g, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id, _, ok := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		if !ok {
			continue
		}
		stacks[id] = rest
	}
	return stacks
}

// benignMarkers identify infrastructure goroutines that come and go
// outside any one test's control.
var benignMarkers = []string{
	"testing.(*T).Run",      // a runner waiting on subtests
	"testing.tRunner",       // another test's runner goroutine
	"testing.runTests",      // the top-level driver
	"testing.(*M).Run",      // TestMain
	"runtime.goexit0",       // fully unwound, about to die
	"os/signal.signal_recv", // the process-wide signal watcher
	"os/signal.loop",
	"runtime.bgsweep", // collector workers
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.gcBgMarkWorker",
}

func benign(stack string) bool {
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}

func indent(s string) string {
	return "\t" + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n\t")
}
