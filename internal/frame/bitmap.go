package frame

import "math/bits"

// Bitmap is a fixed-length bit set, one bit per row. Columns use it to
// mark null cells explicitly instead of relying on NaN sentinels: the
// ingest quarantine/repair pipeline sets bits for cells it rejects, and
// analyses treat a set bit as missing even when the underlying storage
// still carries the (suspect) raw value for forensics.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty bitmap covering n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i. Out-of-range indices panic like a slice access.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic("frame: bitmap index out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks row i.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("frame: bitmap index out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether row i is marked. Out-of-range indices are false,
// so a nil-safe wrapper can pass through without bounds juggling.
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of marked rows.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether any row is marked.
func (b *Bitmap) Any() bool {
	if b == nil {
		return false
	}
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	return &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
}
