package export

import (
	"bytes"
	"strings"
	"testing"

	"rainshine/internal/ticket"
)

// FuzzReadFrameCSV feeds arbitrary bytes into the CSV importer: it must
// either return a well-formed frame or an error — never panic, and any
// returned frame must satisfy basic invariants.
func FuzzReadFrameCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,x\n")
	f.Add("temp,dc\n70.5,DC1\n80,DC2\n")
	f.Add("x\n\n")
	f.Add("a,a\n1,2\n")
	f.Add("\"q\"\"uote\",c\n1,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		fr, err := ReadFrameCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if fr.NumRows() < 1 || fr.NumCols() < 1 {
			t.Fatalf("accepted degenerate frame %dx%d from %q", fr.NumRows(), fr.NumCols(), in)
		}
		// Round-trip: a frame we accepted must serialize cleanly.
		var buf bytes.Buffer
		if err := FrameCSV(&buf, fr); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}

// FuzzTicketsCSVRoundTrip: any ticket the writer can serialize must
// survive write -> read -> write with byte-identical CSV (the derived
// date/category columns and the reconstructed component are functions
// of the serialized fields, so the canonical form is a fixed point).
func FuzzTicketsCSVRoundTrip(f *testing.F) {
	f.Add(1, 5, 2.25, 0, 3, uint8(5), false, 4.0, 2, 1)
	f.Add(7, -2, 23.99, 1, 0, uint8(0), true, 0.0, 0, 0)
	f.Add(0, 100000, 0.0, -3, 99, uint8(9), false, 1e300, 12, 4)
	f.Fuzz(func(t *testing.T, id, day int, hour float64, dc, rack int,
		faultIdx uint8, fp bool, repairHours float64, device, repeat int) {
		in := ticket.Ticket{
			ID: id, Day: day, Hour: hour, DC: dc, Rack: rack,
			Fault:         ticket.Fault(int(faultIdx) % int(ticket.NumFaults)),
			FalsePositive: fp, RepairHours: repairHours,
			Device: device, Repeat: repeat,
		}
		var first bytes.Buffer
		if err := TicketsCSV(&first, []ticket.Ticket{in}); err != nil {
			t.Fatalf("writing: %v", err)
		}
		got, err := ReadTicketsCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reading own output %q: %v", first.String(), err)
		}
		if len(got) != 1 {
			t.Fatalf("read %d tickets from one record", len(got))
		}
		var second bytes.Buffer
		if err := TicketsCSV(&second, got); err != nil {
			t.Fatalf("re-writing: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not canonical:\n%q\n%q", first.String(), second.String())
		}
	})
}
