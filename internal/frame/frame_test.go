package frame

import (
	"math"
	"testing"
)

func buildTestFrame(t *testing.T) *Frame {
	t.Helper()
	f := New(4)
	if err := f.AddContinuous("temp", []float64{60, 70, 80, 90}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("sku", []int{0, 1, 0, 1}, []string{"S1", "S2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddOrdinalInts("dow", []int{0, 1, 2, 3}, []string{"Sun", "Mon", "Tue", "Wed"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("rate", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrameShape(t *testing.T) {
	f := buildTestFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	names := f.Names()
	want := []string{"temp", "sku", "dow", "rate"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v", names)
		}
	}
}

func TestAddErrors(t *testing.T) {
	f := New(2)
	if err := f.AddContinuous("", []float64{1, 2}); err == nil {
		t.Error("empty name should error")
	}
	if err := f.AddContinuous("x", []float64{1}); err == nil {
		t.Error("wrong length should error")
	}
	if err := f.AddContinuous("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("x", []float64{3, 4}); err == nil {
		t.Error("duplicate name should error")
	}
	if err := f.AddNominalInts("bad", []int{0, 5}, []string{"a"}); err == nil {
		t.Error("out-of-range code should error")
	}
}

func TestColLookup(t *testing.T) {
	f := buildTestFrame(t)
	c, err := f.Col("sku")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Nominal || c.LevelOf(1) != "S2" {
		t.Errorf("col = %+v", c)
	}
	if _, err := f.Col("nope"); err == nil {
		t.Error("missing column should error")
	}
	i, err := f.ColIndex("dow")
	if err != nil || i != 2 {
		t.Errorf("ColIndex = %d, %v", i, err)
	}
	if _, err := f.ColIndex("nope"); err == nil {
		t.Error("missing index should error")
	}
	if f.ColAt(0).Name != "temp" {
		t.Error("ColAt(0) wrong")
	}
}

func TestMustColPanics(t *testing.T) {
	f := buildTestFrame(t)
	defer func() {
		if recover() == nil {
			t.Error("MustCol should panic on missing column")
		}
	}()
	f.MustCol("nope")
}

func TestLevelOfOutOfRange(t *testing.T) {
	f := buildTestFrame(t)
	c := f.MustCol("sku")
	// Corrupted level indices must surface as marked invalids, not
	// format silently as numbers that masquerade as data.
	if got := c.LevelOf(99); got != "<invalid:99>" {
		t.Errorf("LevelOf(99) = %q, want <invalid:99>", got)
	}
	if got := c.LevelOf(-1); got != "<invalid:-1>" {
		t.Errorf("LevelOf(-1) = %q, want <invalid:-1>", got)
	}
	if got := c.LevelOf(0.5); got != "<invalid:0.5>" {
		t.Errorf("LevelOf(0.5) = %q, want <invalid:0.5>", got)
	}
	if got := c.LevelOf(math.NaN()); got != "<invalid:NaN>" {
		t.Errorf("LevelOf(NaN) = %q, want <invalid:NaN>", got)
	}
	if got := c.LevelOf(1); got != "S2" {
		t.Errorf("LevelOf(1) = %q, want S2", got)
	}
	cont := f.MustCol("temp")
	if got := cont.LevelOf(60); got != "60" {
		t.Errorf("continuous LevelOf = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Continuous.String() != "C" || Nominal.String() != "N" || Ordinal.String() != "O" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestSelect(t *testing.T) {
	f := buildTestFrame(t)
	sub, err := f.Select("rate", "sku")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 2 || sub.Names()[0] != "rate" {
		t.Errorf("Select = %v", sub.Names())
	}
	if _, err := f.Select("nope"); err == nil {
		t.Error("Select missing should error")
	}
}

func TestFilterAndSubset(t *testing.T) {
	f := buildTestFrame(t)
	hot := f.Filter(func(r int) bool {
		v, _ := f.Value(r, "temp")
		return v >= 75
	})
	if hot.NumRows() != 2 {
		t.Fatalf("Filter rows = %d", hot.NumRows())
	}
	v, _ := hot.Value(0, "rate")
	if v != 3 {
		t.Errorf("filtered value = %v", v)
	}
	// Subset copies: mutating the subset must not touch the parent.
	hot.MustCol("rate").Data[0] = 99
	orig, _ := f.Value(2, "rate")
	if orig != 3 {
		t.Error("Subset aliased parent storage")
	}
}

func TestValueErrors(t *testing.T) {
	f := buildTestFrame(t)
	if _, err := f.Value(0, "nope"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := f.Value(-1, "temp"); err == nil {
		t.Error("negative row should error")
	}
	if _, err := f.Value(4, "temp"); err == nil {
		t.Error("row past end should error")
	}
}

func TestAddNominalStrings(t *testing.T) {
	f := New(4)
	if err := f.AddNominalStrings("dc", []string{"DC2", "DC1", "DC2", "DC1"}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("dc")
	if len(c.Levels) != 2 || c.Levels[0] != "DC1" || c.Levels[1] != "DC2" {
		t.Fatalf("levels = %v", c.Levels)
	}
	if c.Data != nil {
		t.Fatalf("2-level nominal should use typed uint8 storage, got Data = %v", c.Data)
	}
	if cs := c.Codes(); cs[0] != 1 || cs[1] != 0 {
		t.Fatalf("codes = %v", cs)
	}
}

func TestGroupMeans(t *testing.T) {
	f := buildTestFrame(t)
	levels, means, counts, err := f.GroupMeans("sku", "rate")
	if err != nil {
		t.Fatal(err)
	}
	if levels[0] != "S1" || means[0] != 2 || counts[0] != 2 {
		t.Errorf("S1 group = %v, %v", means[0], counts[0])
	}
	if means[1] != 3 || counts[1] != 2 {
		t.Errorf("S2 group = %v, %v", means[1], counts[1])
	}
}

func TestGroupMeansEmptyLevel(t *testing.T) {
	f := New(2)
	if err := f.AddNominalInts("k", []int{0, 0}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("v", []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	_, means, counts, err := f.GroupMeans("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 0 || !math.IsNaN(means[1]) {
		t.Errorf("empty level = %v, %d", means[1], counts[1])
	}
}

func TestGroupMeansErrors(t *testing.T) {
	f := buildTestFrame(t)
	if _, _, _, err := f.GroupMeans("temp", "rate"); err == nil {
		t.Error("continuous key should error")
	}
	if _, _, _, err := f.GroupMeans("nope", "rate"); err == nil {
		t.Error("missing key should error")
	}
	if _, _, _, err := f.GroupMeans("sku", "nope"); err == nil {
		t.Error("missing value should error")
	}
}

func TestGroupValues(t *testing.T) {
	f := buildTestFrame(t)
	levels, groups, err := f.GroupValues("sku", "rate")
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || len(groups[0]) != 2 || groups[0][0] != 1 || groups[0][1] != 3 {
		t.Errorf("groups = %v", groups)
	}
	if _, _, err := f.GroupValues("temp", "rate"); err == nil {
		t.Error("continuous key should error")
	}
	if _, _, err := f.GroupValues("nope", "rate"); err == nil {
		t.Error("missing key should error")
	}
	if _, _, err := f.GroupValues("sku", "nope"); err == nil {
		t.Error("missing value should error")
	}
}
