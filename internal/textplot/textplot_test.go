package textplot

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("title", []Bar{
		{Label: "a", Value: 1},
		{Label: "bb", Value: 2, Err: 0.5},
		{Label: "c", Value: 0},
	}, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The max bar has full width of #.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[2], "sd 0.5") {
		t.Errorf("error term missing: %q", lines[2])
	}
	// Zero bar has no #.
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar rendered: %q", lines[3])
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("z", []Bar{{Label: "a", Value: 0}}, 0)
	if !strings.Contains(out, "a") {
		t.Error("label missing")
	}
}

func TestCDF(t *testing.T) {
	out := CDF("cdf", []Series{
		{Name: "s1", X: []float64{1, 2, 3}, P: []float64{0.3, 0.6, 1.0}},
		{Name: "s2", X: []float64{2, 4}, P: []float64{0.5, 1.0}},
	}, 20, 8)
	if !strings.Contains(out, "[*] s1") || !strings.Contains(out, "[o] s2") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
}

func TestCDFEmpty(t *testing.T) {
	out := CDF("e", nil, 0, 0)
	if !strings.Contains(out, "e") {
		t.Error("title missing")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"A", "Col"}, [][]string{{"1", "x"}, {"22", "yyyy"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Errorf("separator = %q", lines[1])
	}
}
