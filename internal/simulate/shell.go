package simulate

import (
	"errors"
	"fmt"

	"rainshine/internal/climate"
	"rainshine/internal/failure"
	"rainshine/internal/rng"
	"rainshine/internal/topology"
	"rainshine/internal/workload"
)

// Shell rebuilds the deterministic substrate of a Result — fleet,
// hazard model, observation window — without drawing any events or
// tickets. The climate model starts empty (every reading NaN): a
// stream reconstruction fills telemetry in record by record, and at
// day-close the shell plus the committed records is byte-equivalent to
// the Result a batch run would have produced over the same data.
//
// Shell consumes exactly the RNG splits RunContext consumes for the
// same structures ("topology", "workload"), so a shell built from a
// config is guaranteed to carry the same fleet and hazard surface as
// the batch run with that config.
func Shell(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Days < 1 {
		return nil, errors.New("simulate: non-positive day count")
	}
	root := rng.New(cfg.Seed)
	fleet, err := topology.Build(root.Split("topology"), cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("simulate: building fleet: %w", err)
	}
	clim, err := climate.Empty(len(fleet.Racks), cfg.Days)
	if err != nil {
		return nil, fmt.Errorf("simulate: building empty climate: %w", err)
	}
	params := failure.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	demand, err := workload.New(root.Split("workload"), cfg.Days)
	if err != nil {
		return nil, fmt.Errorf("simulate: building demand model: %w", err)
	}
	hz := failure.NewWithDemand(fleet, params, demand)
	return &Result{Cfg: cfg, Fleet: fleet, Climate: clim, Hazard: hz, Days: cfg.Days}, nil
}
