package tco

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []CostModel{
		{ServerUnit: 0, DiskUnit: 2, DIMMUnit: 10, ScalingShare: 0.75, FixedShare: 0.25},
		{ServerUnit: 100, DiskUnit: -1, DIMMUnit: 10, ScalingShare: 0.75, FixedShare: 0.25},
		{ServerUnit: 100, DiskUnit: 2, DIMMUnit: 10, ScalingShare: 0.8, FixedShare: 0.25},
		{ServerUnit: 100, DiskUnit: 2, DIMMUnit: 10, ScalingShare: -0.1, FixedShare: 1.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
	}
}

func TestRelativeSavings(t *testing.T) {
	m := Default()
	// Equal fractions: zero savings.
	if got := m.RelativeSavings(0.2, 0.2); got != 0 {
		t.Errorf("equal fractions savings = %v", got)
	}
	// Lower alt fraction: positive savings.
	s := m.RelativeSavings(0.4, 0.1)
	if s <= 0 || s >= 1 {
		t.Errorf("savings = %v", s)
	}
	// Worked example: (0.25+0.75*1.4 - 0.25-0.75*1.1)/(0.25+0.75*1.4).
	want := (0.75 * 0.3) / (0.25 + 0.75*1.4)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("savings = %v, want %v", s, want)
	}
	// Higher alt fraction: negative savings.
	if m.RelativeSavings(0.1, 0.4) >= 0 {
		t.Error("going to more spares should cost")
	}
}

func TestRelativeSavingsMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b, c float64) bool {
		fb := math.Abs(math.Mod(a, 1))
		f1 := math.Abs(math.Mod(b, 1))
		f2 := math.Abs(math.Mod(c, 1))
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		// Lower alt fraction always saves at least as much.
		return m.RelativeSavings(fb, f1) >= m.RelativeSavings(fb, f2)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpareCostRatios(t *testing.T) {
	m := Default()
	// One server costs as much as 50 disks or 10 DIMMs (paper 100:2:10).
	if m.SpareCost(1, 0, 0) != 50*m.SpareCost(0, 1, 0) {
		t.Error("server:disk ratio != 50")
	}
	if m.SpareCost(1, 0, 0) != 10*m.SpareCost(0, 0, 1) {
		t.Error("server:DIMM ratio != 10")
	}
	if got := m.SpareCost(2, 10, 4); got != 2*100+10*2+4*10 {
		t.Errorf("SpareCost = %v", got)
	}
}

func TestProcurementEqualSKUs(t *testing.T) {
	s := ProcurementScenario{
		Model: Default(), HorizonYears: 3,
		PriceA: 1, PriceB: 1,
		SpareFracA: 0.2, SpareFracB: 0.2,
		FailPerServerYearA: 0.5, FailPerServerYearB: 0.5,
	}
	got, err := s.Savings()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("identical SKUs savings = %v", got)
	}
}

func TestProcurementReliableSKUWinsWhenPricedEqual(t *testing.T) {
	s := ProcurementScenario{
		Model: Default(), HorizonYears: 3,
		PriceA: 1, PriceB: 1,
		SpareFracA: 0.05, SpareFracB: 0.30,
		FailPerServerYearA: 0.2, FailPerServerYearB: 2.0,
	}
	got, err := s.Savings()
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0.05 {
		t.Errorf("reliable SKU savings = %v, want clearly positive", got)
	}
}

func TestProcurementPremiumCanFlipVerdict(t *testing.T) {
	// The Q2 story: with a modest true reliability edge, a 1.5x price
	// premium makes the "reliable" SKU a net loss.
	base := ProcurementScenario{
		Model: Default(), HorizonYears: 3,
		PriceA: 1, PriceB: 1,
		SpareFracA: 0.10, SpareFracB: 0.22,
		FailPerServerYearA: 0.5, FailPerServerYearB: 2.0,
	}
	atPar, err := base.Savings()
	if err != nil {
		t.Fatal(err)
	}
	if atPar <= 0 {
		t.Fatalf("at equal price A should win: %v", atPar)
	}
	prem := base
	prem.PriceA = 1.5
	atPremium, err := prem.Savings()
	if err != nil {
		t.Fatal(err)
	}
	if atPremium >= 0 {
		t.Errorf("at 1.5x premium A should lose: %v", atPremium)
	}
}

func TestProcurementErrors(t *testing.T) {
	s := ProcurementScenario{Model: Default()}
	if _, err := s.Savings(); err == nil {
		t.Error("zero horizon should error")
	}
	s.HorizonYears = 3
	s.Model.ServerUnit = 0
	if _, err := s.Savings(); err == nil {
		t.Error("invalid model should error")
	}
}
