// //lint:allow suppression: the one escape hatch the suite offers.
// A diagnostic is suppressed only by an annotation naming the analyzer
// and carrying a reason, either trailing the offending line or on the
// line directly above it:
//
//	bctx := context.Background() //lint:allow ctxflow detached build outlives requesters
//
//	//lint:allow nansafe hours are finite by construction
//	enc.Encode(rec)
//
// There are deliberately no file- or package-wide excludes; every
// suppression is visible at the line it exempts.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const allowPrefix = "//lint:allow "

// allowKey identifies one suppressed (file, line, analyzer) triple.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowSet records which lines carry //lint:allow annotations.
type AllowSet struct {
	keys map[allowKey]bool
	// Invalid lists annotations without a reason; the driver reports
	// them so a bare `//lint:allow name` cannot silently suppress.
	Invalid []token.Pos
}

// CollectAllows scans the comments of files for //lint:allow
// annotations.
func CollectAllows(fset *token.FileSet, files []*ast.File) *AllowSet {
	s := &AllowSet{keys: map[allowKey]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					if strings.HasPrefix(c.Text, "//lint:allow") {
						s.Invalid = append(s.Invalid, c.Pos())
					}
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					s.Invalid = append(s.Invalid, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				// The annotation covers its own line; a comment alone on
				// a line also covers the next line.
				s.keys[allowKey{pos.Filename, pos.Line, name}] = true
				s.keys[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return s
}

// Allowed reports whether diagnostic d is suppressed by an annotation.
func (s *AllowSet) Allowed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s.keys[allowKey{pos.Filename, pos.Line, d.Analyzer}]
}
