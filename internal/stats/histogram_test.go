package stats

import (
	"testing"

	"rainshine/internal/rng"
)

func TestNewHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.7, 2.5, 3.5}
	h, err := NewHistogram(xs, []float64{0, 1, 2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{1, 2, 2} // 3.5 clamps into the last bin
	for i, w := range wantCounts {
		if h.Bins[i].Count != w {
			t.Errorf("bin %d count = %d, want %d", i, h.Bins[i].Count, w)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	xs := []float64{-5, 100}
	h, err := NewHistogram(xs, []float64{0, 1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Count != 1 || h.Bins[1].Count != 1 {
		t.Errorf("clamping failed: %+v", h.Bins)
	}
	if len(h.Bins[0].Values) != 1 || h.Bins[0].Values[0] != -5 {
		t.Errorf("KeepValues failed: %+v", h.Bins[0])
	}
}

func TestHistogramEdgeErrors(t *testing.T) {
	if _, err := NewHistogram(nil, []float64{1}, false); err == nil {
		t.Error("single edge should error")
	}
	if _, err := NewHistogram(nil, []float64{2, 1}, false); err == nil {
		t.Error("descending edges should error")
	}
	if _, err := NewHistogram(nil, []float64{1, 1}, false); err == nil {
		t.Error("equal edges should error")
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	edges := []float64{0, 10, 20, 30}
	tests := []struct {
		x    float64
		want int
	}{
		{0, 0}, {9.999, 0}, {10, 1}, {19.999, 1}, {20, 2}, {29.999, 2},
		{30, 2},  // top edge closed
		{-1, 0},  // clamp low
		{999, 2}, // clamp high
	}
	for _, tt := range tests {
		if got := bucketIndex(edges, tt.x); got != tt.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestGroupedSummary(t *testing.T) {
	keys := []float64{1, 1, 5, 5, 5}
	vals := []float64{10, 20, 1, 2, 3}
	gs, err := GroupedSummary(keys, vals, []float64{0, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].N != 2 || !almostEqual(gs[0].Mean, 15, 1e-12) {
		t.Errorf("group 0 = %+v", gs[0])
	}
	if gs[1].N != 3 || !almostEqual(gs[1].Mean, 2, 1e-12) {
		t.Errorf("group 1 = %+v", gs[1])
	}
}

func TestGroupedSummaryMismatch(t *testing.T) {
	if _, err := GroupedSummary([]float64{1}, []float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.NormFloat64() + 10
	}
	lo, hi, err := BootstrapCI(src.Split("boot"), xs, Mean, 500, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("bootstrap CI [%v, %v] misses true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("bootstrap CI too wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	src := rng.New(1)
	if _, _, err := BootstrapCI(src, nil, Mean, 10, 0.95); err != ErrEmpty {
		t.Errorf("err = %v", err)
	}
}
