package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3.9, 0.75}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 4 {
		t.Errorf("N/Min/Max = %d/%v/%v", e.N(), e.Min(), e.Max())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) err = %v", err)
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4, 5})
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {0.95, 5}, {1, 5},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.p); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// The provisioning logic depends on Quantile being a right-inverse of At:
// At(Quantile(p)) >= p for all p in (0,1].
func TestECDFQuantileInverseProperty(t *testing.T) {
	f := func(raw []float64, pRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		p := math.Abs(math.Mod(pRaw, 1))
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		return e.At(e.Quantile(p)) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{3, 1, 3, 2})
	xs, ps := e.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.25, 0.5, 1}
	if len(xs) != 3 {
		t.Fatalf("Points len = %d", len(xs))
	}
	for i := range wantX {
		if xs[i] != wantX[i] || !almostEqual(ps[i], wantP[i], 1e-12) {
			t.Errorf("Points[%d] = (%v,%v), want (%v,%v)", i, xs[i], ps[i], wantX[i], wantP[i])
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, _ := NewECDF(in)
	in[0] = 100
	if e.Max() != 3 {
		t.Error("ECDF aliased caller slice")
	}
}
