// Package bms models the building management system of Section IV: the
// layer that collects sensor telemetry and "triggers specific actions
// like alarms, when any of the sensor values exceed the normal threshold
// range". Alarms are how operators notice environmental excursions —
// the same excursions whose reliability cost Q3 quantifies.
package bms

import (
	"fmt"
	"math"

	"rainshine/internal/climate"
	"rainshine/internal/topology"
)

// SensorKind identifies what a sensor measures.
type SensorKind int

// Sensor kinds monitored at rack level (pressure and air-flow are
// monitored at AHU level in the paper; rack-level telemetry covers
// temperature and relative humidity).
const (
	Temperature SensorKind = iota
	Humidity
)

// String names the sensor kind.
func (k SensorKind) String() string {
	if k == Temperature {
		return "temperature"
	}
	return "humidity"
}

// Thresholds define the normal operating envelope. Defaults follow the
// ASHRAE A1 allowable class, which is what large operators alarm on.
type Thresholds struct {
	TempLowF  float64
	TempHighF float64
	RHLow     float64
	RHHigh    float64
}

// DefaultThresholds returns the ASHRAE-style envelope.
func DefaultThresholds() Thresholds {
	return Thresholds{TempLowF: 59, TempHighF: 80.6, RHLow: 20, RHHigh: 80}
}

// Validate checks that the envelope is non-empty.
func (t Thresholds) Validate() error {
	if t.TempLowF >= t.TempHighF {
		return fmt.Errorf("bms: empty temperature envelope [%v, %v]", t.TempLowF, t.TempHighF)
	}
	if t.RHLow >= t.RHHigh {
		return fmt.Errorf("bms: empty humidity envelope [%v, %v]", t.RHLow, t.RHHigh)
	}
	return nil
}

// Alarm is one threshold violation on one rack-day.
type Alarm struct {
	Rack  int
	Day   int
	Kind  SensorKind
	Value float64
	// High is true for upper-threshold violations, false for lower.
	High bool
}

// Scan sweeps the climate series and emits an alarm for every rack-day
// whose conditions leave the envelope.
func Scan(clim *climate.Model, fleet *topology.Fleet, th Thresholds) ([]Alarm, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	var alarms []Alarm
	for ri := range fleet.Racks {
		for d := 0; d < clim.Days(); d++ {
			c, err := clim.At(ri, d)
			if err != nil {
				return nil, err
			}
			// A non-finite reading is a failed sensor, not an
			// excursion: alarming on it would page operators for
			// telemetry loss the ingest pipeline already reports.
			switch {
			case math.IsNaN(c.TempF) || math.IsInf(c.TempF, 0):
			case c.TempF > th.TempHighF:
				alarms = append(alarms, Alarm{Rack: ri, Day: d, Kind: Temperature, Value: c.TempF, High: true})
			case c.TempF < th.TempLowF:
				alarms = append(alarms, Alarm{Rack: ri, Day: d, Kind: Temperature, Value: c.TempF})
			}
			switch {
			case math.IsNaN(c.RH) || math.IsInf(c.RH, 0):
			case c.RH > th.RHHigh:
				alarms = append(alarms, Alarm{Rack: ri, Day: d, Kind: Humidity, Value: c.RH, High: true})
			case c.RH < th.RHLow:
				alarms = append(alarms, Alarm{Rack: ri, Day: d, Kind: Humidity, Value: c.RH})
			}
		}
	}
	return alarms, nil
}

// Summary aggregates alarms per DC and kind.
type Summary struct {
	DC string
	// Counts[kind][high] tallies alarms; index high as 0=low, 1=high.
	TempHigh, TempLow, RHHigh, RHLow int
	// RackDays is the DC's total observed rack-days, for rate context.
	RackDays int
}

// Summarize tabulates per-DC alarm counts.
func Summarize(alarms []Alarm, fleet *topology.Fleet, days int) []Summary {
	out := make([]Summary, len(fleet.DCs))
	for i, dc := range fleet.DCs {
		out[i].DC = dc.Name
	}
	for i := range fleet.Racks {
		out[fleet.Racks[i].DC].RackDays += days
	}
	for _, a := range alarms {
		dc := fleet.Racks[a.Rack].DC
		switch {
		case a.Kind == Temperature && a.High:
			out[dc].TempHigh++
		case a.Kind == Temperature:
			out[dc].TempLow++
		case a.Kind == Humidity && a.High:
			out[dc].RHHigh++
		default:
			out[dc].RHLow++
		}
	}
	return out
}
