// Quickstart: simulate a small two-datacenter fleet, look at the ticket
// stream, and see why multi-factor analysis matters — the same failure
// data gives a very different vendor verdict once confounders are
// normalized.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rainshine"
	"rainshine/internal/ticket"
)

func main() {
	// A reduced fleet keeps the example fast; drop the options for the
	// paper-scale 621-rack, 2.5-year study.
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(365),
		rainshine.WithRacks(120, 100),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Simulated %d servers in %d racks over %d days.\n",
		study.NumServers(), study.NumRacks(), study.Days())

	// The RMA ticket stream mirrors Table II's category mix.
	byCategory := map[ticket.Category]int{}
	truePositives := 0
	for _, tk := range study.Tickets() {
		if tk.FalsePositive {
			continue
		}
		byCategory[tk.Category()]++
		truePositives++
	}
	fmt.Printf("RMA tickets (true positives): %d\n", truePositives)
	for c := ticket.Software; c < ticket.NumCategories; c++ {
		fmt.Printf("  %-9v %6d (%.1f%%)\n",
			c, byCategory[c], 100*float64(byCategory[c])/float64(truePositives))
	}

	// Single-factor vs multi-factor: the same data, opposite stories.
	rep, err := study.VendorComparison(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSKU S2 looks %.1fx worse than S4 if you only histogram failures by SKU,\n", rep.RatioSF)
	fmt.Printf("but only %.1fx worse once placement, workload, power and age are normalized.\n", rep.RatioMF)
	fmt.Println("\nNext: examples/spareprovisioning, examples/vendorselection, examples/climatecontrol.")
}
