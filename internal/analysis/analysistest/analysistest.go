// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// annotations, mirroring the golang.org/x/tools package of the same
// name:
//
//	x := rand.Int() // want `unseeded randomness`
//
// Each annotation holds one or more quoted regular expressions that
// must each match a diagnostic reported on that line; diagnostics
// without a matching annotation fail the test, as do annotations left
// unmatched — so fixture lines without annotations double as negative
// (allowed) cases.
//
// Fixture packages listed in one Run call share a fact store and are
// analyzed in the order given, so a package may consume facts exported
// by an earlier (dependency) package — list dependencies first.
//
// RunWithSuggestedFixes additionally applies every suggested fix the
// analyzer reports and compares each edited fixture file against its
// golden twin <file>.fixed.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rainshine/internal/analysis"
	"rainshine/internal/analysis/load"
)

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package from dir/src and applies a.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, dir, a, false, pkgs...)
}

// RunWithSuggestedFixes is Run plus golden-fix verification: every
// fixture file the analyzer's suggested fixes touch must have a
// <file>.fixed sibling whose content equals the file with all fixes
// applied.
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	run(t, dir, a, true, pkgs...)
}

func run(t *testing.T, dir string, a *analysis.Analyzer, checkFixes bool, pkgs ...string) {
	t.Helper()
	loader := load.NewLoader("analysistest.invalid", dir)
	loader.FixtureRoot = filepath.Join(dir, "src")
	facts := analysis.NewFactStore()
	facts.Register(a.FactTypes...)
	for _, pkg := range pkgs {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			TestFiles: load.ParseTestFiles(p.Fset, p.Dir),
			Dir:       p.Dir,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			got = append(got, d)
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: running %s: %v", pkg, a.Name, err)
		}
		// Fixtures run under the same suppression contract as the real
		// driver: //lint:allow with a reason silences the line.
		allows := analysis.CollectAllows(p.Fset, append(append([]*ast.File(nil), p.Files...), pass.TestFiles...))
		kept := got[:0]
		for _, d := range got {
			if !allows.Allowed(p.Fset, d) {
				kept = append(kept, d)
			}
		}
		got = kept
		check(t, pass, p, a.Name, got)
		if checkFixes {
			checkSuggestedFixes(t, p, got)
		}
	}
}

// expectation is one // want regexp with match bookkeeping.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

func check(t *testing.T, pass *analysis.Pass, p *load.Package, name string, got []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range p.Files {
		collectWants(t, p.Fset, f, wants)
	}
	for _, f := range pass.TestFiles {
		collectWants(t, p.Fset, f, wants)
	}
	for _, d := range got {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", name, position(pos), d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", name, filepath.Base(key.file), key.line, w.raw)
			}
		}
	}
}

// checkSuggestedFixes applies the fixes carried by got and compares
// every edited file against its .fixed golden.
func checkSuggestedFixes(t *testing.T, p *load.Package, got []analysis.Diagnostic) {
	t.Helper()
	fixed, err := analysis.ApplyFixes(p.Fset, got, os.ReadFile)
	if err != nil {
		t.Fatalf("applying suggested fixes: %v", err)
	}
	for name, content := range fixed {
		golden, err := os.ReadFile(name + ".fixed")
		if err != nil {
			t.Errorf("suggested fixes edit %s but no golden: %v", filepath.Base(name), err)
			continue
		}
		if !bytes.Equal(content, golden) {
			t.Errorf("suggested fixes for %s do not match %s.fixed:\n--- got ---\n%s\n--- want ---\n%s",
				filepath.Base(name), filepath.Base(name), content, golden)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[lineKey][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantRe.FindAllString(rest, -1) {
				text := q
				if strings.HasPrefix(q, "`") {
					text = strings.Trim(q, "`")
				} else if u, err := strconv.Unquote(q); err == nil {
					text = u
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("bad want regexp %q at %s: %v", text, position(pos), err)
				}
				key := lineKey{pos.Filename, pos.Line}
				wants[key] = append(wants[key], &expectation{re: re, raw: text})
			}
		}
	}
}

func position(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
