// Package a exercises the nansafe marshaling rules.
package a

import (
	"encoding/json"
	"io"
)

// Raw carries a float with no guard.
type Raw struct {
	Mean float64 `json:"mean"`
}

// Safe guards its float with a NaN-safe marshaler.
type Safe struct {
	Mean float64 `json:"mean"`
}

// MarshalJSON nils out non-finite values; marshaling raw floats inside
// the marshaler itself is the sanctioned alias-embedding pattern.
func (s Safe) MarshalJSON() ([]byte, error) {
	type alias Safe
	return json.Marshal(alias(s))
}

// Skipped hides its float from encoding/json entirely.
type Skipped struct {
	Mean float64 `json:"-"`
	Name string  `json:"name"`
}

// EmitRaw marshals the unguarded type.
func EmitRaw(r Raw) ([]byte, error) {
	return json.Marshal(r) // want `whose field Mean is a raw float`
}

// EmitSafe marshals the guarded type (negative case).
func EmitSafe(s Safe) ([]byte, error) {
	return json.Marshal(s)
}

// EmitSkipped marshals a type whose float is json-excluded (negative).
func EmitSkipped(s Skipped) ([]byte, error) {
	return json.Marshal(s)
}

// EmitSlice reaches the raw float through a composite.
func EmitSlice(rs []Raw) ([]byte, error) {
	return json.Marshal(rs) // want `whose field \[\]Mean is a raw float`
}

// Stream hits the Encoder path.
func Stream(w io.Writer, r Raw) error {
	return json.NewEncoder(w).Encode(r) // want `whose field Mean is a raw float`
}
