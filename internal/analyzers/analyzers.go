// Package analyzers registers the rainshinelint suite: the five custom
// passes that machine-check the repository's determinism, aliasing,
// context, and JSON-stability invariants (see DESIGN.md, "Enforced
// invariants").
package analyzers

import (
	"rainshine/internal/analysis"
	"rainshine/internal/analyzers/ctxflow"
	"rainshine/internal/analyzers/detrand"
	"rainshine/internal/analyzers/frameclone"
	"rainshine/internal/analyzers/nansafe"
	"rainshine/internal/analyzers/parsafe"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detrand.Analyzer,
		frameclone.Analyzer,
		nansafe.Analyzer,
		parsafe.Analyzer,
	}
}
