// Package textplot renders small ASCII bar charts and CDF plots so the
// CLI can show each reproduced figure directly in the terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value, optionally with an error term.
type Bar struct {
	Label string
	Value float64
	Err   float64
}

// BarChart renders bars scaled to width characters, one per line.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range bars {
		n := 0
		if maxV > 0 && !math.IsNaN(bar.Value) {
			n = int(math.Round(bar.Value / maxV * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		errStr := ""
		if bar.Err > 0 {
			errStr = fmt.Sprintf(" (sd %.3g)", bar.Err)
		}
		fmt.Fprintf(&b, "  %-*s |%-*s %.4g%s\n", maxLabel, bar.Label, width, strings.Repeat("#", n), bar.Value, errStr)
	}
	return b.String()
}

// Series is one named CDF curve.
type Series struct {
	Name string
	X    []float64 // sorted values
	P    []float64 // cumulative probabilities
}

// CDF renders step-function CDFs as a coarse character grid.
func CDF(title string, series []Series, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxX := 0.0
	for _, s := range series {
		for _, x := range s.X {
			if x > maxX {
				maxX = x
			}
		}
	}
	if maxX == 0 {
		maxX = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int(s.X[i] / maxX * float64(width-1))
			row := height - 1 - int(s.P[i]*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	for i, row := range grid {
		p := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "  %4.2f |%s|\n", p, string(row))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "       0%*s%.3g\n", width-4, "", maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  [%c] %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// Table renders rows as fixed-width columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
