// Package clockinject extends detrand's wall-clock rule to the
// injected-clock pattern the resilience and fault layers rely on: a
// `now func() time.Time` field, defaulted with `now = time.Now` (a
// value reference, never a call), so tests can freeze time. Three
// rules:
//
//   - A: a method of a type carrying a `now func() time.Time` field
//     must call the field, not the package — `time.Now()` and
//     `time.Since(x)` are flagged with autofixes rewriting them to
//     `recv.now()` / `recv.now().Sub(x)`;
//   - B: the clock-injected packages (internal/resilience,
//     internal/faults) may not call any wall-clock or timer function
//     in package time at all, nor any function another package has
//     exported a WallClock fact for;
//   - C: everywhere else (package main and tests excepted), the timer
//     primitives — NewTimer, NewTicker, After, Tick, Sleep, AfterFunc
//     — are flagged: timers must derive from an injected clock or
//     carry a reasoned //lint:allow (time.Now/Since remain detrand's
//     jurisdiction).
//
// The WallClock fact marks a function that (transitively) calls a
// wall-clock or timer function, letting rule B see through package
// boundaries.
package clockinject

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"rainshine/internal/analysis"
)

// Analyzer is the clockinject pass.
var Analyzer = &analysis.Analyzer{
	Name:      "clockinject",
	Doc:       "enforce the injected-clock pattern: no wall-clock or timer calls where a now func is available or required",
	Run:       run,
	FactTypes: []analysis.Fact{&WallClock{}},
}

// WallClock marks a function that reads the wall clock or creates a
// wall-clock timer, directly or through a callee.
type WallClock struct{}

// FactKind implements analysis.Fact.
func (*WallClock) FactKind() string { return "clockinject.wallclock" }

// clockInjected lists the packages whose public contract is "time is a
// pure function of the injected clock".
var clockInjected = map[string]bool{
	"rainshine/internal/resilience": true,
	"rainshine/internal/faults":     true,
	"clockinj":                      true, // analysistest fixture twin
}

// timerFuncs are the rule-C primitives: each schedules against the
// runtime's wall clock.
var timerFuncs = map[string]bool{
	"NewTimer": true, "NewTicker": true, "After": true,
	"Tick": true, "Sleep": true, "AfterFunc": true,
}

// isTimePkgFunc reports whether fn is a package-level function of
// package time (methods like time.Time.After share the package but
// read no clock).
func isTimePkgFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func isTimeCall(fn *types.Func) bool {
	return isTimePkgFunc(fn) && (timerFuncs[fn.Name()] || fn.Name() == "Now" || fn.Name() == "Since")
}

func run(pass *analysis.Pass) error {
	exportWallClockFacts(pass)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	injected := clockInjected[pass.Pkg.Path()]
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.ObjectOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if isTimePkgFunc(fn) {
			name := fn.Name()
			if name == "Now" || name == "Since" {
				if recv, ok := nowFieldReceiver(pass, file, call); ok {
					reportWithFix(pass, call, recv, name)
					return true
				}
			}
			if injected && (timerFuncs[name] || name == "Now" || name == "Since") {
				pass.Reportf(call.Pos(), "time.%s in clock-injected package %s: time here must flow through the injected now func", name, pass.Pkg.Path())
				return true
			}
			if !injected && timerFuncs[name] && pass.Pkg.Name() != "main" {
				pass.Reportf(call.Pos(), "time.%s creates a wall-clock timer: derive it from an injected clock or justify it with //lint:allow clockinject", name)
			}
			return true
		}
		// Rule B through facts: a clock-injected package calling into a
		// function some other package proved reads the wall clock.
		if injected && fn.Pkg() != nil && fn.Pkg().Path() != pass.Pkg.Path() {
			if _, ok := pass.ImportObjectFact(fn, (&WallClock{}).FactKind()); ok {
				pass.Reportf(call.Pos(), "call to %s, which reads the wall clock, from clock-injected package %s", fn.Name(), pass.Pkg.Path())
			}
		}
		return true
	})
}

// nowFieldReceiver reports whether call sits in a method whose
// receiver type carries a `now func() time.Time` field, returning the
// receiver's name.
func nowFieldReceiver(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) (string, bool) {
	fd := enclosingDecl(file, call.Pos())
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", false
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return "", false
	}
	obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return "", false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "now" {
			continue
		}
		sig, ok := f.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 && isTimeTime(sig.Results().At(0).Type()) {
			return name, true
		}
	}
	return "", false
}

func isTimeTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

func enclosingDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos < fd.End() {
			return fd
		}
	}
	return nil
}

func reportWithFix(pass *analysis.Pass, call *ast.CallExpr, recv, name string) {
	d := analysis.Diagnostic{
		Pos:      call.Pos(),
		Analyzer: pass.Analyzer.Name,
	}
	switch name {
	case "Now":
		d.Message = fmt.Sprintf("time.Now in a method of a clock-injected type: call %s.now() so tests can freeze time", recv)
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: fmt.Sprintf("replace time.Now() with %s.now()", recv),
			TextEdits: []analysis.TextEdit{{
				Pos: call.Pos(), End: call.End(), NewText: []byte(recv + ".now()"),
			}},
		}}
	case "Since":
		if len(call.Args) != 1 {
			d.Message = "time.Since in a method of a clock-injected type: use the injected now func"
			break
		}
		d.Message = fmt.Sprintf("time.Since in a method of a clock-injected type: call %s.now().Sub(...) so tests can freeze time", recv)
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: fmt.Sprintf("replace time.Since with %s.now().Sub", recv),
			TextEdits: []analysis.TextEdit{{
				Pos: call.Pos(), End: call.Args[0].Pos(), NewText: []byte(recv + ".now().Sub("),
			}},
		}}
	}
	pass.Report(d)
}

// exportWallClockFacts computes, to an in-package fixpoint, which
// declared functions (transitively) call wall-clock or timer
// functions, and exports a WallClock fact for each. Value references
// like `now = time.Now` do not count: only calls read the clock.
func exportWallClockFacts(pass *analysis.Pass) {
	direct := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	var order []*types.Func
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			order = append(order, def)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.ObjectOf(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if isTimeCall(fn) {
					direct[def] = true
				} else if fn.Pkg() != nil && fn.Pkg().Path() != pass.Pkg.Path() {
					if _, ok := pass.ImportObjectFact(fn, (&WallClock{}).FactKind()); ok {
						direct[def] = true
					}
				} else {
					calls[def] = append(calls[def], fn)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, def := range order {
			if direct[def] {
				continue
			}
			for _, callee := range calls[def] {
				if direct[callee] {
					direct[def] = true
					changed = true
					break
				}
			}
		}
	}
	for _, def := range order {
		if direct[def] {
			pass.ExportObjectFact(def, &WallClock{})
		}
	}
}
