// Package provision answers Q1: how many spares must be kept, per rack,
// to meet a workload's availability SLA — comparing the paper's three
// approaches (Section VI):
//
//   - LB (lower bound): per-rack spares from that rack's own measured μ
//     distribution, an oracle no deployable scheme can beat;
//   - SF (single factor): one pooled μ CDF per workload, yielding one
//     uniform spare fraction for every rack of the workload — the
//     conservative one-size-fits-all scheme;
//   - MF (multi factor): CART-clustered rack groups with per-cluster
//     spare fractions, which approaches LB when the clusters capture the
//     factors that actually drive failures.
//
// Both server-level (Q1-A) and component-level (Q1-B) provisioning are
// implemented, at daily or hourly granularity.
package provision

import (
	"errors"
	"fmt"
	"math"

	"rainshine/internal/cart"
	"rainshine/internal/core"
	"rainshine/internal/failure"
	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

// Approach identifies a provisioning scheme.
type Approach int

// The three approaches of Section VI.
const (
	LB Approach = iota
	MF
	SF
)

// String names the approach as the figures label it.
func (a Approach) String() string {
	switch a {
	case LB:
		return "LB"
	case MF:
		return "MF"
	case SF:
		return "SF"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// DefaultSLAs are the availability mandates evaluated in Figs 10-13.
var DefaultSLAs = []float64{0.90, 0.95, 1.00}

// rackNeed holds one rack's μ-derived requirement.
type rackNeed struct {
	rack  *topology.Rack
	units int // provisionable units (servers, disks, or DIMMs)
	muMax int // worst-window device unavailability
}

// spares returns the spare units the rack needs at the SLA: the worst
// window's unavailability minus the allowance (1-SLA) of units,
// clamped to [0, units].
func (n rackNeed) spares(sla float64) int {
	// The epsilon absorbs binary-representation error in (1-sla), e.g.
	// (1-0.9)*40 = 3.9999... which must count as an allowance of 4.
	allowance := int(math.Floor((1-sla)*float64(n.units) + 1e-9))
	s := n.muMax - allowance
	if s < 0 {
		s = 0
	}
	if s > n.units {
		s = n.units
	}
	return s
}

// fraction returns spares as a fraction of the rack's units.
func (n rackNeed) fraction(sla float64) float64 {
	if n.units == 0 {
		return 0
	}
	return float64(n.spares(sla)) / float64(n.units)
}

// ServerLevel is the result of a Q1-A analysis for one workload and
// granularity.
type ServerLevel struct {
	Workload    topology.Workload
	Granularity metrics.Granularity
	SLAs        []float64
	// Overprov[approach][i] is the over-provisioned capacity fraction
	// at SLAs[i].
	Overprov map[Approach][]float64
	// Clustering is the MF rack grouping (nil if clustering failed to
	// find structure; then MF degenerates to SF).
	Clustering *core.Clustering
	// ClusterFractions[c] lists the per-rack requirement fractions
	// (100% SLA) of cluster c — Fig 11's per-cluster CDF inputs.
	ClusterFractions [][]float64
	// PooledFractions lists every rack's requirement fraction (the SF
	// curve of Fig 11).
	PooledFractions []float64
	// Racks is the number of racks hosting the workload.
	Racks int
}

// Options tunes the MF clustering stage; the zero value reproduces the
// paper's configuration. Ablation studies (cmd/rainshine ablate) sweep
// these to quantify how much each modelling choice contributes.
type Options struct {
	// Features are the candidate clustering factors. Nil means
	// DefaultClusterFeatures.
	Features []string
	// MaxClusters bounds the number of MF groups. Zero means 10.
	MaxClusters int
	// CART overrides the tree configuration. Zero value means
	// {MaxDepth: 5, MinSplit: 8, MinLeaf: 4, CP: 0.004}.
	CART cart.Config
	// AutoCP selects the tree complexity by 5-fold cross-validation
	// (one-standard-error rule) instead of the fixed CP.
	AutoCP bool
}

func (o Options) withDefaults() Options {
	if o.Features == nil {
		o.Features = DefaultClusterFeatures
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 10
	}
	if o.CART.MaxDepth == 0 && o.CART.MinSplit == 0 {
		o.CART = cart.Config{MaxDepth: 5, MinSplit: 8, MinLeaf: 4, CP: 0.004}
	}
	return o
}

// DefaultClusterFeatures are the candidate factors for rack clustering
// (Table III static features).
var DefaultClusterFeatures = []string{"dc", "region", "sku", "power_kw", "age_months"}

// maxClusters bounds the number of MF groups, keeping them reviewable.
const maxClusters = 10

// AllComponents selects every hardware failure (any one takes a server
// down), the Q1-A view.
var AllComponents = []failure.Component{failure.Disk, failure.DIMM, failure.ServerOther}

// AnalyzeServerLevel runs Q1-A for a workload at the given granularity
// with the paper's default MF configuration.
func AnalyzeServerLevel(res *simulate.Result, wl topology.Workload, g metrics.Granularity, slas []float64) (*ServerLevel, error) {
	return AnalyzeServerLevelWith(res, wl, g, slas, Options{})
}

// AnalyzeServerLevelWith runs Q1-A with explicit MF options.
func AnalyzeServerLevelWith(res *simulate.Result, wl topology.Workload, g metrics.Granularity, slas []float64, opts Options) (*ServerLevel, error) {
	opts = opts.withDefaults()
	if len(slas) == 0 {
		slas = DefaultSLAs
	}
	racks := res.Fleet.RacksOf(wl)
	if len(racks) == 0 {
		return nil, fmt.Errorf("provision: no racks host workload %v", wl)
	}
	dists, err := metrics.MuDistributions(res, AllComponents, g)
	if err != nil {
		return nil, err
	}
	needs := make([]rackNeed, len(racks))
	for i, r := range racks {
		needs[i] = rackNeed{rack: r, units: r.Servers, muMax: dists[r.ID].Max()}
	}
	out := &ServerLevel{
		Workload:    wl,
		Granularity: g,
		SLAs:        slas,
		Overprov:    map[Approach][]float64{LB: {}, MF: {}, SF: {}},
		Racks:       len(racks),
	}
	for _, n := range needs {
		out.PooledFractions = append(out.PooledFractions, n.fraction(1.0))
	}

	clustering, clusterOf, err := clusterRacks(res, racks, needs, opts)
	if err != nil {
		return nil, err
	}
	out.Clustering = clustering
	if clustering != nil {
		out.ClusterFractions = make([][]float64, clustering.NumClusters())
		for i, n := range needs {
			c := clusterOf[i]
			out.ClusterFractions[c] = append(out.ClusterFractions[c], n.fraction(1.0))
		}
	}

	for _, sla := range slas {
		if sla <= 0 || sla > 1 {
			return nil, fmt.Errorf("provision: SLA %v outside (0,1]", sla)
		}
		out.Overprov[LB] = append(out.Overprov[LB], lbFraction(needs, sla))
		out.Overprov[SF] = append(out.Overprov[SF], sfFraction(needs, sla))
		out.Overprov[MF] = append(out.Overprov[MF], mfFraction(needs, clusterOf, clustering, sla))
	}
	return out, nil
}

// lbFraction: capacity-weighted mean of per-rack oracle requirements.
func lbFraction(needs []rackNeed, sla float64) float64 {
	spares, units := 0, 0
	for _, n := range needs {
		spares += n.spares(sla)
		units += n.units
	}
	if units == 0 {
		return 0
	}
	return float64(spares) / float64(units)
}

// sfFraction: the uniform fraction that satisfies every rack — the max
// of the per-rack requirement fractions, since SF cannot tell racks
// apart.
func sfFraction(needs []rackNeed, sla float64) float64 {
	f := 0.0
	for _, n := range needs {
		if v := n.fraction(sla); v > f {
			f = v
		}
	}
	return f
}

// mfFraction: per-cluster uniform fractions, capacity-weighted.
func mfFraction(needs []rackNeed, clusterOf []int, clustering *core.Clustering, sla float64) float64 {
	if clustering == nil {
		return sfFraction(needs, sla)
	}
	nc := clustering.NumClusters()
	maxFrac := make([]float64, nc)
	unitsIn := make([]int, nc)
	for i, n := range needs {
		c := clusterOf[i]
		if v := n.fraction(sla); v > maxFrac[c] {
			maxFrac[c] = v
		}
		unitsIn[c] += n.units
	}
	spares, units := 0.0, 0
	for c := 0; c < nc; c++ {
		spares += maxFrac[c] * float64(unitsIn[c])
		units += unitsIn[c]
	}
	if units == 0 {
		return 0
	}
	return spares / float64(units)
}

// clusterRacks fits the MF grouping over the workload's racks using the
// per-rack requirement fraction (100% SLA) as the target.
func clusterRacks(res *simulate.Result, racks []*topology.Rack, needs []rackNeed, opts Options) (*core.Clustering, []int, error) {
	opts = opts.withDefaults()
	if opts.CART.Workers == 0 {
		// Inherit the study-wide worker budget (deterministic for any
		// value, so this only changes speed).
		opts.CART.Workers = res.Cfg.Workers
	}
	full, err := metrics.RackFeatureFrame(res.Fleet, res.Days)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]int, len(racks))
	for i, r := range racks {
		rows[i] = r.ID
	}
	sub := full.Subset(rows)
	target := make([]float64, len(needs))
	for i, n := range needs {
		target[i] = n.fraction(1.0)
	}
	if err := sub.AddContinuous("req_frac", target); err != nil {
		return nil, nil, err
	}
	var clustering *core.Clustering
	if opts.AutoCP {
		clustering, err = core.ClusterCV(sub, "req_frac", opts.Features, opts.CART, opts.MaxClusters, 5, 1)
	} else {
		clustering, err = core.Cluster(sub, "req_frac", opts.Features, opts.CART, opts.MaxClusters)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("provision: clustering: %w", err)
	}
	return clustering, clustering.Assignment, nil
}

// TCOSavings returns the relative TCO savings of MF over SF per SLA
// (Table IV) under the given cost model.
func (s *ServerLevel) TCOSavings(m tco.CostModel) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(s.SLAs))
	for i := range s.SLAs {
		out[i] = m.RelativeSavings(s.Overprov[SF][i], s.Overprov[MF][i])
	}
	return out, nil
}

// ComponentLevel is the result of a Q1-B analysis: the cost of spare
// pools at 100% availability, provisioning disks/DIMMs separately from
// server spares, versus all-server spares (Fig 13).
type ComponentLevel struct {
	Workload    topology.Workload
	Granularity metrics.Granularity
	// ComponentCostPct[a] is the spare cost of approach a with
	// component-level pools, as % of the workload's server fleet cost.
	ComponentCostPct map[Approach]float64
	// ServerCostPct[a] is the spare cost with server-level pools only.
	ServerCostPct map[Approach]float64
}

// AnalyzeComponentLevel runs Q1-B at 100% availability SLA.
func AnalyzeComponentLevel(res *simulate.Result, wl topology.Workload, g metrics.Granularity, m tco.CostModel) (*ComponentLevel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	racks := res.Fleet.RacksOf(wl)
	if len(racks) == 0 {
		return nil, fmt.Errorf("provision: no racks host workload %v", wl)
	}
	// Resource classes: disks, DIMMs, and server-other (covered by
	// server spares in both schemes), plus all-hardware for the
	// server-level comparison.
	disk, err := resourceNeeds(res, racks, []failure.Component{failure.Disk}, func(r *topology.Rack) int { return r.Disks() }, g)
	if err != nil {
		return nil, err
	}
	dimm, err := resourceNeeds(res, racks, []failure.Component{failure.DIMM}, func(r *topology.Rack) int { return r.DIMMs() }, g)
	if err != nil {
		return nil, err
	}
	srvOther, err := resourceNeeds(res, racks, []failure.Component{failure.ServerOther}, func(r *topology.Rack) int { return r.Servers }, g)
	if err != nil {
		return nil, err
	}
	srvAll, err := resourceNeeds(res, racks, AllComponents, func(r *topology.Rack) int { return r.Servers }, g)
	if err != nil {
		return nil, err
	}

	fleetCost := 0.0
	for _, r := range racks {
		fleetCost += float64(r.Servers) * m.ServerUnit
	}

	out := &ComponentLevel{
		Workload:         wl,
		Granularity:      g,
		ComponentCostPct: map[Approach]float64{},
		ServerCostPct:    map[Approach]float64{},
	}
	for _, a := range []Approach{LB, MF, SF} {
		dC, err := approachSpares(res, racks, disk, a)
		if err != nil {
			return nil, err
		}
		mC, err := approachSpares(res, racks, dimm, a)
		if err != nil {
			return nil, err
		}
		sC, err := approachSpares(res, racks, srvOther, a)
		if err != nil {
			return nil, err
		}
		allC, err := approachSpares(res, racks, srvAll, a)
		if err != nil {
			return nil, err
		}
		out.ComponentCostPct[a] = 100 * m.SpareCost(sC, dC, mC) / fleetCost
		out.ServerCostPct[a] = 100 * m.SpareCost(allC, 0, 0) / fleetCost
	}
	return out, nil
}

// resourceNeeds computes per-rack needs for one resource class.
func resourceNeeds(res *simulate.Result, racks []*topology.Rack, comps []failure.Component, units func(*topology.Rack) int, g metrics.Granularity) ([]rackNeed, error) {
	dists, err := metrics.MuDistributions(res, comps, g)
	if err != nil {
		return nil, err
	}
	needs := make([]rackNeed, len(racks))
	for i, r := range racks {
		needs[i] = rackNeed{rack: r, units: units(r), muMax: dists[r.ID].Max()}
	}
	return needs, nil
}

// approachSpares returns the total spare units an approach provisions
// for one resource class at 100% SLA.
func approachSpares(res *simulate.Result, racks []*topology.Rack, needs []rackNeed, a Approach) (float64, error) {
	switch a {
	case LB:
		total := 0.0
		for _, n := range needs {
			total += float64(n.spares(1.0))
		}
		return total, nil
	case SF:
		f := sfFraction(needs, 1.0)
		total := 0.0
		for _, n := range needs {
			total += f * float64(n.units)
		}
		return total, nil
	case MF:
		clustering, clusterOf, err := clusterRacks(res, racks, needs, Options{})
		if err != nil {
			return 0, err
		}
		frac := mfFraction(needs, clusterOf, clustering, 1.0)
		total := 0.0
		for _, n := range needs {
			total += float64(n.units)
		}
		return frac * total, nil
	default:
		return 0, errors.New("provision: unknown approach")
	}
}
