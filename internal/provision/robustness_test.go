package provision

// Cross-seed robustness: the qualitative Q1 claims must hold for any
// seed, not just the canonical one — otherwise EXPERIMENTS.md would be
// reporting an artifact.

import (
	"testing"

	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

func TestQ1InvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{2, 101, 9999} {
		res, err := simulate.Run(simulate.Config{
			Seed:            seed,
			Days:            300,
			Topology:        topology.Config{RacksPerDC: [2]int{90, 80}},
			SkipNonHardware: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range []topology.Workload{topology.W1, topology.W6} {
			daily, err := AnalyzeServerLevel(res, wl, metrics.Daily, []float64{1.0})
			if err != nil {
				t.Fatal(err)
			}
			hourly, err := AnalyzeServerLevel(res, wl, metrics.Hourly, []float64{1.0})
			if err != nil {
				t.Fatal(err)
			}
			lb, mf, sf := daily.Overprov[LB][0], daily.Overprov[MF][0], daily.Overprov[SF][0]
			if !(lb <= mf+1e-9 && mf <= sf+1e-9) {
				t.Errorf("seed %d %v: sandwich violated LB=%.3f MF=%.3f SF=%.3f", seed, wl, lb, mf, sf)
			}
			if sf > 0 && mf >= sf {
				t.Errorf("seed %d %v: MF no better than SF", seed, wl)
			}
			// Temporal multiplexing at the oracle level.
			if hourly.Overprov[LB][0] > daily.Overprov[LB][0]+1e-9 {
				t.Errorf("seed %d %v: hourly LB above daily", seed, wl)
			}
		}
	}
}
