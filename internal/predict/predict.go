// Package predict implements the paper's stated future-work extension:
// predicting datacenter failures for pro-active maintenance (Section
// VII), using the same multi-factor machinery.
//
// The task is rack-day failure prediction: given a rack's static factors
// and the day's environment, will the rack generate at least one
// hardware failure? Section V notes that CART alone is insufficient for
// prediction because failed rack-days are a small minority, and points
// to class-balancing pre-processing [6, 25]; this package implements the
// time-ordered train/test split, majority-class downsampling, and the
// standard evaluation metrics (precision/recall/F1, ROC AUC) around a
// classification CART.
package predict

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// DefaultFeatures are the predictors available before the day's failures
// are observed.
var DefaultFeatures = []string{
	"dc", "region", "sku", "workload", "power_kw", "age_months",
	"temp", "rh", "dow", "month",
}

// Config controls training and evaluation.
type Config struct {
	// TrainFraction is the time-ordered share of days used for
	// training. Zero means 0.7.
	TrainFraction float64
	// Features lists the predictor columns. Nil means DefaultFeatures.
	Features []string
	// Balance downsamples the majority (no-failure) class in the
	// training split to at most BalanceRatio times the minority class.
	// Zero BalanceRatio means 3.
	Balance      bool
	BalanceRatio float64
	// Threshold converts P(failure) into a binary alarm. Zero means 0.5.
	Threshold float64
	// Tree overrides the CART configuration.
	Tree cart.Config
	// Seed drives the downsampling stream. Zero means rng.DefaultSeed.
	Seed uint64
	// Workers bounds the fit and scoring fan-out (cart.Config.Workers
	// semantics: 0 means GOMAXPROCS, 1 forces serial). Results are
	// identical for every worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.7
	}
	if c.Features == nil {
		c.Features = DefaultFeatures
	}
	if c.BalanceRatio == 0 {
		c.BalanceRatio = 3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Seed == 0 {
		c.Seed = rng.DefaultSeed
	}
	if c.Tree.MaxDepth == 0 {
		c.Tree = cart.Config{MaxDepth: 7, MinSplit: 400, MinLeaf: 150, CP: 0.0005}
	}
	return c
}

// Metrics are the binary-classification quality measures on the held-out
// time range.
type Metrics struct {
	TP, FP, TN, FN int
	Precision      float64
	Recall         float64
	F1             float64
	Accuracy       float64
	// AUC is the ROC area under curve of the probability scores.
	AUC float64
	// PositiveRate is the base rate of failure rack-days in the test
	// split (the trivial always-negative classifier's miss rate).
	PositiveRate float64
}

// Result is a trained and evaluated model.
type Result struct {
	Tree *cart.Tree
	// Importance ranks the predictors.
	Importance map[string]float64
	Metrics    Metrics
	TrainRows  int
	TestRows   int
}

// Train fits and evaluates a failure predictor on a rack-day frame (from
// metrics.RackDayFrame). The frame must contain "day" and "failures"
// columns plus the configured features. Train is TrainContext with
// context.Background(); use that variant for cancellable training.
func Train(f *frame.Frame, cfg Config) (*Result, error) {
	return TrainContext(context.Background(), f, cfg)
}

// TrainContext is Train under a context, fanning the fit and the test
// scoring across cfg.Workers goroutines.
func TrainContext(ctx context.Context, f *frame.Frame, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		return nil, fmt.Errorf("predict: train fraction %v outside (0,1)", cfg.TrainFraction)
	}
	dayCol, err := f.Col("day")
	if err != nil {
		return nil, err
	}
	failCol, err := f.Col("failures")
	if err != nil {
		return nil, err
	}
	maxDay := 0.0
	for _, d := range dayCol.Data {
		if d > maxDay {
			maxDay = d
		}
	}
	cut := cfg.TrainFraction * (maxDay + 1)

	// Attach the binary label.
	labels := make([]int, f.NumRows())
	for r := range labels {
		if failCol.Data[r] > 0 {
			labels[r] = 1
		}
	}
	work := f
	if _, err := work.Col("fail_label"); err != nil {
		// Clone instead of mutating: f is typically the study's shared
		// rack-day frame, read concurrently by other analyses.
		work = f.ShallowClone()
		if err := work.AddNominalInts("fail_label", labels, []string{"ok", "fail"}); err != nil {
			return nil, err
		}
	}

	var trainRows, testRows []int
	for r := 0; r < f.NumRows(); r++ {
		if dayCol.Data[r] < cut {
			trainRows = append(trainRows, r)
		} else {
			testRows = append(testRows, r)
		}
	}
	if len(trainRows) == 0 || len(testRows) == 0 {
		return nil, errors.New("predict: empty train or test split")
	}

	if cfg.Balance {
		trainRows = downsample(trainRows, labels, cfg.BalanceRatio, rng.New(cfg.Seed).Split("predict/balance"))
	}
	train := work.Subset(trainRows)
	test := work.Subset(testRows)

	treeCfg := cfg.Tree
	treeCfg.Task = cart.Classification
	if treeCfg.Workers == 0 {
		treeCfg.Workers = cfg.Workers
	}
	tree, err := cart.FitContext(ctx, train, "fail_label", cfg.Features, treeCfg)
	if err != nil {
		return nil, fmt.Errorf("predict: fitting: %w", err)
	}

	scores, err := tree.ProbaFrameContext(ctx, test, 1, treeCfg.Workers)
	if err != nil {
		return nil, err
	}
	testLabels := make([]int, test.NumRows())
	lc, err := test.Col("fail_label")
	if err != nil {
		return nil, err
	}
	for r := range testLabels {
		testLabels[r] = lc.Code(r)
	}
	m, err := Evaluate(scores, testLabels, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tree:       tree,
		Importance: tree.Importance(),
		Metrics:    m,
		TrainRows:  train.NumRows(),
		TestRows:   test.NumRows(),
	}, nil
}

// downsample keeps every positive row and at most ratio-times as many
// negatives, selected uniformly.
func downsample(rows []int, labels []int, ratio float64, src *rng.Source) []int {
	var pos, neg []int
	for _, r := range rows {
		if labels[r] == 1 {
			pos = append(pos, r)
		} else {
			neg = append(neg, r)
		}
	}
	keep := int(float64(len(pos)) * ratio)
	if keep >= len(neg) || len(pos) == 0 {
		return rows
	}
	src.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := append(append([]int(nil), pos...), neg[:keep]...)
	sort.Ints(out) // restore time order for reproducibility of Subset
	return out
}

// Evaluate computes classification metrics for probability scores
// against binary labels at the given alarm threshold.
func Evaluate(scores []float64, labels []int, threshold float64) (Metrics, error) {
	if len(scores) != len(labels) {
		return Metrics{}, errors.New("predict: scores/labels length mismatch")
	}
	if len(scores) == 0 {
		return Metrics{}, errors.New("predict: empty evaluation set")
	}
	var m Metrics
	positives := 0
	for i, s := range scores {
		alarm := s >= threshold
		fail := labels[i] == 1
		switch {
		case alarm && fail:
			m.TP++
		case alarm && !fail:
			m.FP++
		case !alarm && fail:
			m.FN++
		default:
			m.TN++
		}
		if fail {
			positives++
		}
	}
	n := float64(len(scores))
	m.PositiveRate = float64(positives) / n
	m.Accuracy = float64(m.TP+m.TN) / n
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	m.AUC = auc(scores, labels)
	return m, nil
}

// auc computes the ROC area under curve via the rank-sum (Mann-Whitney)
// formulation, with mid-rank handling for tied scores.
func auc(scores []float64, labels []int) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Mid-ranks.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var rankSum float64
	nPos, nNeg := 0, 0
	for i, l := range labels {
		if l == 1 {
			rankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}
