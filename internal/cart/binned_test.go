package cart

import (
	"math"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// benchScenarioFrame reproduces the 20k-row reference scenario the
// recorded cart_fit_20k benchmark trains on: one continuous driver, one
// 7-level nominal, additive response.
func benchScenarioFrame(t testing.TB, n int) *frame.Frame {
	t.Helper()
	src := rng.New(1)
	x1 := make([]float64, n)
	cat := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		x1[i] = src.Float64() * 100
		cat[i] = src.IntN(7)
		y[i] = x1[i]*0.01 + float64(cat[i])
	}
	f := frame.New(n)
	if err := f.AddContinuous("x1", x1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("cat", cat, []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBinnedWorkersDeterministic asserts the binned engine grows a
// byte-identical tree for every worker count, rerun included.
func TestBinnedWorkersDeterministic(t *testing.T) {
	f := determinismFrame(t, 5000)
	for _, task := range []struct {
		name     string
		target   string
		features []string
		cfg      Config
	}{
		{"regression", "y", []string{"x1", "x2", "cat"}, Config{Task: Regression, Split: SplitBinned, MaxDepth: 6, CP: 0.001}},
		{"classification", "lab", []string{"x1", "x2", "cat"}, Config{Task: Classification, Split: SplitBinned, MaxDepth: 6, CP: 0.001}},
	} {
		t.Run(task.name, func(t *testing.T) {
			var want string
			for run := 0; run < 2; run++ {
				for _, w := range workerCounts {
					cfg := task.cfg
					cfg.Workers = w
					tree, err := Fit(f, task.target, task.features, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := tree.String()
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("workers=%d run=%d grew a different tree:\n%s\nwant:\n%s", w, run, got, want)
					}
				}
			}
		})
	}
}

// TestBinnedBinsDeterministic asserts determinism holds for non-default
// bin budgets and that coarser budgets still produce a working tree.
func TestBinnedBinsDeterministic(t *testing.T) {
	f := determinismFrame(t, 5000)
	for _, bins := range []int{16, 64, 255} {
		var want string
		for _, w := range workerCounts {
			cfg := Config{Task: Regression, Split: SplitBinned, Bins: bins, MaxDepth: 6, CP: 0.001, Workers: w}
			tree, err := Fit(f, "y", []string{"x1", "x2", "cat"}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tree.NumLeaves() < 2 {
				t.Fatalf("bins=%d: degenerate tree", bins)
			}
			got := tree.String()
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("bins=%d workers=%d grew a different tree", bins, w)
			}
		}
	}
}

// TestBinnedCategoricalMatchesExact: with only nominal and ordinal
// features (level sets are the bins) and an integer-valued response
// (exact float accumulation), the binned engine must reproduce the
// exact engine's tree byte for byte.
func TestBinnedCategoricalMatchesExact(t *testing.T) {
	n := 3000
	src := rng.New(7)
	cat := make([]int, n)
	ord := make([]int, n)
	y := make([]float64, n)
	lab := make([]int, n)
	for i := range y {
		cat[i] = src.IntN(6)
		ord[i] = src.IntN(9)
		y[i] = float64(cat[i]*3 + ord[i] + src.IntN(4))
		if ord[i] > 5 || cat[i] == 2 {
			lab[i] = 1
		}
	}
	f := frame.New(n)
	if err := f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e", "f"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddOrdinalInts("ord", ord, []string{"o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("lab", lab, []string{"neg", "pos"}); err != nil {
		t.Fatal(err)
	}
	for _, task := range []struct {
		name   string
		target string
		cfg    Config
	}{
		{"regression", "y", Config{Task: Regression, MaxDepth: 5, CP: 0.001}},
		{"classification", "lab", Config{Task: Classification, MaxDepth: 5, CP: 0.001}},
	} {
		t.Run(task.name, func(t *testing.T) {
			exactCfg, binCfg := task.cfg, task.cfg
			exactCfg.Split = SplitExact
			binCfg.Split = SplitBinned
			et, err := Fit(f, task.target, []string{"cat", "ord"}, exactCfg)
			if err != nil {
				t.Fatal(err)
			}
			bt, err := Fit(f, task.target, []string{"cat", "ord"}, binCfg)
			if err != nil {
				t.Fatal(err)
			}
			if et.String() != bt.String() {
				t.Fatalf("binned tree diverged from exact:\nbinned:\n%s\nexact:\n%s", bt.String(), et.String())
			}
		})
	}
}

// TestBinnedRoutingConsistency asserts the threshold contract: training
// routes rows by byte code, prediction routes raw floats by threshold,
// and both must agree — routing every training row through the fitted
// tree has to land exactly Node.N rows on every leaf.
func TestBinnedRoutingConsistency(t *testing.T) {
	f := determinismFrame(t, 5000)
	cfg := Config{Task: Regression, Split: SplitBinned, MaxDepth: 6, CP: 0.0005, MinSplit: 10}
	tree, err := Fit(f, "y", []string{"x1", "x2", "cat"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := tree.AssignLeaves(f)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, tree.NumLeaves())
	for _, id := range leaves {
		got[id]++
	}
	for i, leaf := range tree.Leaves() {
		if got[i] != leaf.N {
			t.Errorf("leaf %d: routed %d training rows, trained on %d", i, got[i], leaf.N)
		}
	}
}

// TestBinnedCVDevianceClose asserts the accuracy contract from the
// roadmap: on the 20k reference scenario the binned engine's
// cross-validated deviance stays within 1%% of the exact engine's at
// every candidate complexity.
func TestBinnedCVDevianceClose(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row cross-validation")
	}
	f := benchScenarioFrame(t, 20000)
	candidates := []float64{0.001, 0.003, 0.01}
	exactCfg := Config{Task: Regression, Split: SplitExact, MaxDepth: 6}
	binCfg := Config{Task: Regression, Split: SplitBinned, MaxDepth: 6}
	exact, err := CrossValidate(f, "y", []string{"x1", "cat"}, exactCfg, candidates, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	binned, err := CrossValidate(f, "y", []string{"x1", "cat"}, binCfg, candidates, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		e, b := exact[i].XError, binned[i].XError
		if e <= 0 {
			t.Fatalf("cp=%g: exact XError %g not positive", exact[i].CP, e)
		}
		if rel := math.Abs(b-e) / e; rel > 0.01 {
			t.Errorf("cp=%g: binned XError %g vs exact %g (%.2f%% apart, want <=1%%)",
				exact[i].CP, b, e, rel*100)
		}
	}
}

// TestBinnedNullBitmapRouting asserts the binned and exact engines both
// honor ingest null marks: a column whose suspect cells are null-marked
// (raw finite values retained for forensics) must train the same tree
// as one whose cells carry the NaN sentinel.
func TestBinnedNullBitmapRouting(t *testing.T) {
	n := 4000
	build := func(markOnly bool) *frame.Frame {
		bs := rng.New(17).Split("rows")
		x := make([]float64, n)
		cat := make([]int, n)
		y := make([]float64, n)
		var nullRows []int
		for i := range y {
			x[i] = bs.Float64() * 50
			cat[i] = bs.IntN(4)
			y[i] = x[i]*0.2 + float64(cat[i])
			if bs.Float64() < 0.1 {
				nullRows = append(nullRows, i)
			}
		}
		f := frame.New(n)
		if err := f.AddContinuous("x", x); err != nil {
			t.Fatal(err)
		}
		if err := f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d"}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddContinuous("y", y); err != nil {
			t.Fatal(err)
		}
		c := f.MustCol("x")
		for _, r := range nullRows {
			if markOnly {
				c.MarkNull(r) // finite value stays behind the mark
			} else {
				c.SetMissing(r)
			}
		}
		return f
	}
	marked, sentinel := build(true), build(false)
	for _, split := range []SplitMethod{SplitExact, SplitBinned} {
		cfg := Config{Task: Regression, Split: split, MaxDepth: 5, CP: 0.001}
		mt, err := Fit(marked, "y", []string{"x", "cat"}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Fit(sentinel, "y", []string{"x", "cat"}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mt.String() != st.String() {
			t.Errorf("split=%d: null-marked column trained a different tree than NaN column", split)
		}
	}
	// materializeMissing must never mutate the caller's column.
	if got := marked.MustCol("x").Data[0]; math.IsNaN(got) {
		t.Error("Fit overwrote a null-marked cell with NaN")
	}
}

// TestBinnedManyLevelFallback: a categorical feature with more levels
// than a byte code can address silently falls back to the exact engine.
func TestBinnedManyLevelFallback(t *testing.T) {
	n := 2000
	src := rng.New(23)
	nLevels := 300
	levels := make([]string, nLevels)
	for i := range levels {
		levels[i] = "l" + string(rune('0'+i%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i/100))
	}
	cat := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		cat[i] = src.IntN(nLevels)
		y[i] = float64(cat[i] % 5)
	}
	f := frame.New(n)
	if err := f.AddNominalInts("wide", cat, levels); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	exact, err := Fit(f, "y", []string{"wide"}, Config{Split: SplitExact, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	binned, err := Fit(f, "y", []string{"wide"}, Config{Split: SplitBinned, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if exact.String() != binned.String() {
		t.Error("SplitBinned with a 300-level nominal must fall back to the exact engine")
	}
}

// TestChooseBinned pins the engine-selection policy.
func TestChooseBinned(t *testing.T) {
	feats := []Feature{{Name: "x", Kind: frame.Continuous}}
	wide := []Feature{{Name: "w", Kind: frame.Nominal, Levels: make([]string, 256)}}
	cases := []struct {
		name  string
		cfg   Config
		rows  int
		feats []Feature
		want  bool
	}{
		{"auto small", Config{}, AutoBinRows - 1, feats, false},
		{"auto large", Config{}, AutoBinRows, feats, true},
		{"forced exact", Config{Split: SplitExact}, AutoBinRows, feats, false},
		{"forced binned small", Config{Split: SplitBinned}, 100, feats, true},
		{"wide nominal falls back", Config{Split: SplitBinned}, 100, wide, false},
	}
	for _, tc := range cases {
		if got := chooseBinned(tc.cfg, tc.rows, tc.feats); got != tc.want {
			t.Errorf("%s: chooseBinned = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBinnedAllMissingFeature: a continuous feature with every cell
// null must simply never split, not corrupt the fit.
func TestBinnedAllMissingFeature(t *testing.T) {
	n := 600
	src := rng.New(31)
	x := make([]float64, n)
	dead := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		x[i] = src.Float64() * 10
		dead[i] = src.Float64()
		y[i] = math.Floor(x[i])
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("dead", dead); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	dc := f.MustCol("dead")
	for i := 0; i < n; i++ {
		dc.MarkNull(i)
	}
	tree, err := Fit(f, "y", []string{"x", "dead"}, Config{Split: SplitBinned, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 2 {
		t.Fatal("tree failed to split on the live feature")
	}
	if imp := tree.Importance()["dead"]; imp != 0 {
		t.Errorf("all-null feature earned importance %g", imp)
	}
}

// multiChunkFrame builds a frame whose root node spans several
// frame.ChunkRows windows, so the binned engine's chunk-sliced histogram
// build and two-pass parallel partition both engage.
func multiChunkFrame(t testing.TB, n int) *frame.Frame {
	t.Helper()
	src := rng.New(41)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	cat := make([]uint8, n)
	y := make([]float64, n)
	for i := range y {
		x1[i] = src.Float64() * 100
		x2[i] = src.NormFloat64() * 5
		cat[i] = uint8(src.IntN(6))
		if src.Float64() < 0.02 {
			cat[i] = 250 // out-of-range sentinel: reads as missing
		}
		y[i] = x1[i]*0.05 + float64(cat[i]%6) + src.NormFloat64()*0.3
	}
	f := frame.New(n)
	if err := f.AddContinuous("x1", x1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("x2", x2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalCodes("cat", cat, []string{"a", "b", "c", "d", "e", "f"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBinnedMultiChunkDeterministic pins byte-identical trees across
// worker counts on a frame whose nodes exceed one chunk, covering the
// chunk x feature histogram slabs and the two-pass parallel partition
// (the 5000-row tests above only ever see single-chunk nodes).
func TestBinnedMultiChunkDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk frame needs >128Ki rows")
	}
	f := multiChunkFrame(t, 3*frame.ChunkRows/2+100)
	var want string
	for run := 0; run < 2; run++ {
		for _, w := range workerCounts {
			cfg := Config{Task: Regression, Split: SplitBinned, MaxDepth: 5, CP: 0.001, Workers: w}
			tree, err := Fit(f, "y", []string{"x1", "x2", "cat"}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tree.NumLeaves() < 2 {
				t.Fatal("degenerate tree")
			}
			got := tree.String()
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("workers=%d run=%d grew a different tree on a multi-chunk node", w, run)
			}
		}
	}
}

// TestBinnedWideFrameDeterministic pins determinism on a frame wide
// enough (>= wideFrameFeatures candidates) that the histogram build
// switches to the feature-parallel strategy regardless of node size.
func TestBinnedWideFrameDeterministic(t *testing.T) {
	n := 4000
	src := rng.New(43)
	f := frame.New(n)
	names := make([]string, 0, wideFrameFeatures+4)
	y := make([]float64, n)
	for fi := 0; fi < wideFrameFeatures+4; fi++ {
		name := "f" + string(rune('0'+fi/10)) + string(rune('0'+fi%10))
		names = append(names, name)
		if fi%2 == 0 {
			col := make([]float64, n)
			for i := range col {
				col[i] = src.Float64() * 10
				y[i] += col[i] * float64(fi%5) * 0.01
			}
			if err := f.AddContinuous(name, col); err != nil {
				t.Fatal(err)
			}
			continue
		}
		codes := make([]uint8, n)
		for i := range codes {
			codes[i] = uint8(src.IntN(4))
			y[i] += float64(codes[i]) * float64(fi%3) * 0.02
		}
		if err := f.AddNominalCodes(name, codes, []string{"p", "q", "r", "s"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, w := range workerCounts {
		cfg := Config{Task: Regression, Split: SplitBinned, MaxDepth: 5, CP: 0.0005, Workers: w}
		tree, err := Fit(f, "y", names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tree.NumLeaves() < 2 {
			t.Fatal("degenerate tree")
		}
		got := tree.String()
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d grew a different tree on a wide frame", w)
		}
	}
}

// TestBinnedTypedMatchesLegacy: a frame built from adopted uint8 codes
// (including out-of-range missing sentinels) must train exactly the tree
// its float64-backed twin trains — physical column layout is invisible
// to the learner.
func TestBinnedTypedMatchesLegacy(t *testing.T) {
	n := 6000
	src := rng.New(47)
	codes := make([]uint8, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		codes[i] = uint8(src.IntN(5))
		if src.Float64() < 0.05 {
			codes[i] = 200
		}
		x[i] = src.Float64() * 40
		y[i] = x[i]*0.1 + float64(codes[i]%5) + src.NormFloat64()*0.2
	}
	levels := []string{"a", "b", "c", "d", "e"}
	typed := frame.New(n)
	if err := typed.AddNominalCodes("cat", append([]uint8(nil), codes...), levels); err != nil {
		t.Fatal(err)
	}
	if err := typed.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := typed.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	// AddNominalInts would auto-type this column too, so build the
	// float64-backed twin explicitly: raw level indexes with the NaN
	// missing sentinel, exactly the pre-typed physical layout.
	legacy := frame.New(n)
	floats := make([]float64, n)
	for i, cd := range codes {
		if cd < 5 {
			floats[i] = float64(cd)
		} else {
			floats[i] = math.NaN()
		}
	}
	if err := legacy.AddColumn(frame.Column{
		Name: "cat", Kind: frame.Nominal, Data: floats,
		Levels: append([]string(nil), levels...),
	}); err != nil {
		t.Fatal(err)
	}
	if legacy.MustCol("cat").Codes() != nil {
		t.Fatal("twin construction broken: expected float64 storage")
	}
	if err := legacy.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := legacy.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	for _, split := range []SplitMethod{SplitExact, SplitBinned} {
		cfg := Config{Task: Regression, Split: split, MaxDepth: 5, CP: 0.001}
		tt, err := Fit(typed, "y", []string{"cat", "x"}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := Fit(legacy, "y", []string{"cat", "x"}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tt.String() != lt.String() {
			t.Errorf("split=%d: typed-code frame trained a different tree than its float64 twin", split)
		}
	}
}
