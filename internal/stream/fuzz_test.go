package stream_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"rainshine/internal/simulate"
	"rainshine/internal/stream"
	"rainshine/internal/topology"
)

// fuzzSeedLog builds a tiny valid log for the seed corpus.
func fuzzSeedLog(tb testing.TB) []byte {
	res, err := simulate.Run(simulate.Config{
		Seed:     3,
		Days:     20,
		Topology: topology.Config{RacksPerDC: [2]int{2, 1}},
		Workers:  1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stream.WriteStudyLog(&buf, res); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// typedStreamError reports whether err is one of the reader's declared
// failure modes — the contract is that arbitrary bytes produce exactly
// these, never a panic and never an untyped error.
func typedStreamError(err error) bool {
	return errors.Is(err, stream.ErrBadMagic) ||
		errors.Is(err, stream.ErrTruncated) ||
		errors.Is(err, stream.ErrChecksum) ||
		errors.Is(err, stream.ErrTooLarge) ||
		errors.Is(err, stream.ErrBadRecord)
}

// FuzzStreamReplay drives arbitrary bytes through the log reader and
// every decoded record through a maintainer. Corrupt input must fail
// with a typed error; it must never panic, never allocate unboundedly,
// and never corrupt the maintainer into failing on later valid input.
func FuzzStreamReplay(f *testing.F) {
	valid := fuzzSeedLog(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn write: frame cut mid-payload
	f.Add(valid[:11])           // torn write: frame cut mid-header
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip) // checksum mismatch on the final frame
	f.Add([]byte("RNSHLOG2 not the right magic"))
	f.Add([]byte{})
	f.Add(append([]byte(nil), valid[:8]...)) // magic only, clean EOF

	simCfg := simulate.Config{
		Seed:     3,
		Days:     20,
		Topology: topology.Config{RacksPerDC: [2]int{2, 1}},
		Workers:  1,
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := stream.NewReader(bytes.NewReader(data))
		if err != nil {
			if !typedStreamError(err) {
				t.Fatalf("NewReader untyped error: %v", err)
			}
			return
		}
		var recs []stream.Record
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !typedStreamError(err) {
					t.Fatalf("Next untyped error: %v", err)
				}
				break
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return
		}
		m, err := stream.NewMaintainer(stream.Config{Sim: simCfg, DisableRefit: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := range recs {
			// Structurally impossible records error (typed); late and
			// duplicate ones quarantine. Neither may panic.
			if err := m.Apply(ctx, &recs[i]); err != nil && !errors.Is(err, stream.ErrBadRecord) {
				t.Fatalf("Apply untyped error: %v", err)
			}
		}
	})
}
