// Package rng is the analysistest twin of rainshine/internal/rng: the
// one package allowed to import math/rand (negative case).
package rng

import "math/rand"

// Source wraps a seeded PCG stream.
type Source struct{ r *rand.Rand }

// New seeds a stream.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Float64 draws from the seeded stream.
func (s *Source) Float64() float64 { return s.r.Float64() }
