// Package pdp implements the paper's Cat.-2 machinery: quantifying the
// influence of one decision variable on a failure metric while
// "normalizing the effect of all observed parameters other than the
// parameter of interest" (Section V-C).
//
// Two estimators are provided:
//
//   - Partial dependence (Hastie et al.): for each candidate value v of
//     the variable of interest X1, set X1 = v for every training row and
//     average the tree's predictions. Marginalizes over the empirical
//     joint of the other factors.
//
//   - Direct standardization: stratify the data by the observed
//     combinations of the other factors, compute the per-stratum mean of
//     the metric for each X1 level, and average strata with fixed
//     (X1-independent) weights. This needs no model and is the classical
//     epidemiological adjustment; it is what Fig 15's "MF approach"
//     amounts to.
package pdp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/parallel"
	"rainshine/internal/stats"
)

// Point is one (value, effect) pair of a partial dependence curve.
type Point struct {
	// Value is the probed value of the variable of interest; for
	// categorical variables it is the level index and Label names it.
	Value float64
	Label string
	// Effect is the marginalized model response at Value.
	Effect float64
}

// Compute evaluates the partial dependence of tree's response on the
// named feature over frame f. For a continuous feature the curve is
// evaluated at up to gridSize quantile-spaced points; for categorical
// features at every level. Compute is ComputeContext with
// context.Background() and a single worker.
func Compute(tree *cart.Tree, f *frame.Frame, feature string, gridSize int) ([]Point, error) {
	return ComputeContext(context.Background(), tree, f, feature, gridSize, 1)
}

// ComputeContext is Compute with the grid points fanned across workers.
// Each point owns its slot of the curve and keeps the serial row-sum
// order, so the curve is identical for every worker count.
func ComputeContext(ctx context.Context, tree *cart.Tree, f *frame.Frame, feature string, gridSize, workers int) ([]Point, error) {
	if gridSize <= 0 {
		gridSize = 20
	}
	fi := -1
	for i, feat := range tree.Features {
		if feat.Name == feature {
			fi = i
			break
		}
	}
	if fi < 0 {
		return nil, fmt.Errorf("pdp: tree has no feature %q", feature)
	}
	feat := tree.Features[fi]
	col, err := f.Col(feature)
	if err != nil {
		return nil, err
	}
	var grid []Point
	if feat.Kind == frame.Nominal || feat.Kind == frame.Ordinal {
		for li, lvl := range feat.Levels {
			grid = append(grid, Point{Value: float64(li), Label: lvl})
		}
	} else {
		grid = continuousGrid(col.Data, gridSize)
	}
	// Materialize the feature matrix once.
	cols := make([][]float64, len(tree.Features))
	for i, tf := range tree.Features {
		c, err := f.Col(tf.Name)
		if err != nil {
			return nil, err
		}
		cols[i] = c.Values()
	}
	err = parallel.ForEach(ctx, workers, len(grid), func(gi int) error {
		x := make([]float64, len(cols))
		sum := 0.0
		for r := 0; r < f.NumRows(); r++ {
			for i, c := range cols {
				x[i] = c[r]
			}
			x[fi] = grid[gi].Value
			p, err := tree.Predict(x)
			if err != nil {
				return err
			}
			sum += p
		}
		grid[gi].Effect = sum / float64(f.NumRows())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return grid, nil
}

// continuousGrid returns quantile-spaced probe points over data.
func continuousGrid(data []float64, gridSize int) []Point {
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	var pts []Point
	seen := map[float64]bool{}
	for i := 0; i < gridSize; i++ {
		p := float64(i) / float64(gridSize-1)
		k := int(p * float64(len(sorted)-1))
		v := sorted[k]
		if !seen[v] {
			seen[v] = true
			pts = append(pts, Point{Value: v})
		}
	}
	return pts
}

// LevelEffect summarizes the adjusted metric for one level of the
// variable of interest.
type LevelEffect struct {
	Level string
	// Mean is the standardized (confounder-adjusted) mean metric.
	Mean float64
	// StdDev is the spread of the per-stratum level means: the error-bar
	// analogue of Fig 15.
	StdDev float64
	// Peak is the standardized high quantile (95th) of the metric,
	// the paper's mu_max spare-capacity proxy.
	Peak float64
	// Strata counts how many covariate strata contained this level.
	Strata int
	// N is the number of underlying observations.
	N int
}

// Standardize computes direct-standardized effects of the categorical
// variable `of` on `metric`, adjusting for the categorical covariates.
// Continuous covariates must be pre-binned into categorical columns
// (see frame helpers); this mirrors the paper's
// "Metric ~ X1, N(X2), ..., N(Xn)" notation.
//
// Only strata containing at least two distinct levels of `of` inform the
// contrast; weighting across strata is by total stratum size, which is
// shared by all levels — so the confounders' composition no longer
// differs between levels.
func Standardize(f *frame.Frame, metric, of string, covariates []string) ([]LevelEffect, error) {
	oc, err := f.Col(of)
	if err != nil {
		return nil, err
	}
	if oc.Kind == frame.Continuous {
		return nil, fmt.Errorf("pdp: variable of interest %q must be categorical", of)
	}
	mc, err := f.Col(metric)
	if err != nil {
		return nil, err
	}
	if len(covariates) == 0 {
		return nil, errors.New("pdp: need at least one covariate to standardize over")
	}
	covCols := make([]*frame.Column, len(covariates))
	for i, name := range covariates {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Kind == frame.Continuous {
			return nil, fmt.Errorf("pdp: covariate %q is continuous; bin it first", name)
		}
		covCols[i] = c
	}

	// Stratum key = joint covariate levels.
	type cell struct {
		values map[int][]float64 // level of `of` -> metric values
		n      int
	}
	strata := map[string]*cell{}
	keyBuf := make([]byte, 0, 32)
	for r := 0; r < f.NumRows(); r++ {
		keyBuf = keyBuf[:0]
		for _, c := range covCols {
			v := c.Code(r)
			keyBuf = append(keyBuf, byte(v), byte(v>>8), '|')
		}
		k := string(keyBuf)
		s := strata[k]
		if s == nil {
			s = &cell{values: map[int][]float64{}}
			strata[k] = s
		}
		lvl := oc.Code(r)
		s.values[lvl] = append(s.values[lvl], mc.Data[r])
		s.n++
	}

	nLevels := len(oc.Levels)
	// Accumulate stratum-weighted means and per-stratum level means,
	// visiting strata in sorted key order: the weighted sums below are
	// float accumulations, so map iteration order would leak into the
	// low bits of every standardized effect.
	keys := make([]string, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wSum := make([]float64, nLevels)
	wTot := make([]float64, nLevels)
	perStratumMeans := make([][]float64, nLevels)
	perStratumPeaks := make([][]float64, nLevels)
	nobs := make([]int, nLevels)
	strataCount := make([]int, nLevels)
	for _, k := range keys {
		s := strata[k]
		if len(s.values) < 2 {
			// Stratum observes only one level: it cannot inform a
			// within-stratum contrast, so it is dropped (the paper's
			// tree path likewise conditions on contexts where the
			// decision variable actually varies).
			continue
		}
		w := float64(s.n)
		for lvl := 0; lvl < nLevels; lvl++ {
			vals := s.values[lvl]
			if len(vals) == 0 {
				continue
			}
			m := stats.Mean(vals)
			wSum[lvl] += w * m
			wTot[lvl] += w
			perStratumMeans[lvl] = append(perStratumMeans[lvl], m)
			pk, err := stats.Quantile(vals, 0.95)
			if err != nil {
				return nil, err
			}
			perStratumPeaks[lvl] = append(perStratumPeaks[lvl], pk)
			nobs[lvl] += len(vals)
			strataCount[lvl]++
		}
	}
	out := make([]LevelEffect, 0, nLevels)
	for lvl := 0; lvl < nLevels; lvl++ {
		if wTot[lvl] == 0 {
			continue
		}
		peak := 0.0
		if len(perStratumPeaks[lvl]) > 0 {
			// Standardized peak: weighted mean of per-stratum peaks.
			peak = stats.Mean(perStratumPeaks[lvl])
		}
		out = append(out, LevelEffect{
			Level:  oc.Levels[lvl],
			Mean:   wSum[lvl] / wTot[lvl],
			StdDev: stats.StdDev(perStratumMeans[lvl]),
			Peak:   peak,
			Strata: strataCount[lvl],
			N:      nobs[lvl],
		})
	}
	if len(out) == 0 {
		return nil, errors.New("pdp: no stratum contains two levels of the variable of interest; cannot adjust")
	}
	return out, nil
}

// PairedContrast returns the per-stratum mean differences of metric
// between two levels of the categorical variable `of`, over strata
// defined by the joint covariate levels. Only strata observing both
// levels contribute one difference each — the paired sample on which a
// significance test quantifies "the influence of this parameter after
// normalization" (Section V-C).
func PairedContrast(f *frame.Frame, metric, of, levelA, levelB string, covariates []string) ([]float64, error) {
	oc, err := f.Col(of)
	if err != nil {
		return nil, err
	}
	if oc.Kind == frame.Continuous {
		return nil, fmt.Errorf("pdp: variable of interest %q must be categorical", of)
	}
	idxA, idxB := -1, -1
	for i, lvl := range oc.Levels {
		switch lvl {
		case levelA:
			idxA = i
		case levelB:
			idxB = i
		}
	}
	if idxA < 0 || idxB < 0 {
		return nil, fmt.Errorf("pdp: levels %q/%q not found in %q", levelA, levelB, of)
	}
	mc, err := f.Col(metric)
	if err != nil {
		return nil, err
	}
	if len(covariates) == 0 {
		return nil, errors.New("pdp: need at least one covariate to stratify")
	}
	covCols := make([]*frame.Column, len(covariates))
	for i, name := range covariates {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Kind == frame.Continuous {
			return nil, fmt.Errorf("pdp: covariate %q is continuous; bin it first", name)
		}
		covCols[i] = c
	}
	type cell struct {
		sumA, sumB float64
		nA, nB     int
	}
	strata := map[string]*cell{}
	keyBuf := make([]byte, 0, 32)
	for r := 0; r < f.NumRows(); r++ {
		lvl := oc.Code(r)
		if lvl != idxA && lvl != idxB {
			continue
		}
		keyBuf = keyBuf[:0]
		for _, c := range covCols {
			v := c.Code(r)
			keyBuf = append(keyBuf, byte(v), byte(v>>8), '|')
		}
		k := string(keyBuf)
		s := strata[k]
		if s == nil {
			s = &cell{}
			strata[k] = s
		}
		if lvl == idxA {
			s.sumA += mc.Data[r]
			s.nA++
		} else {
			s.sumB += mc.Data[r]
			s.nB++
		}
	}
	// Emit the per-stratum differences in sorted key order: the paired
	// tests downstream sum them, and float addition order would
	// otherwise vary with map iteration.
	keys := make([]string, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var diffs []float64
	for _, k := range keys {
		s := strata[k]
		if s.nA == 0 || s.nB == 0 {
			continue
		}
		diffs = append(diffs, s.sumA/float64(s.nA)-s.sumB/float64(s.nB))
	}
	if len(diffs) == 0 {
		return nil, errors.New("pdp: no stratum observes both levels")
	}
	return diffs, nil
}

// BinContinuous adds a categorical companion column binning a continuous
// column at the given edges, labelled "lo-hi". The new column is named
// name+"_bin". Returns the new column's name.
func BinContinuous(f *frame.Frame, name string, edges []float64) (string, error) {
	c, err := f.Col(name)
	if err != nil {
		return "", err
	}
	if c.Kind != frame.Continuous {
		return "", fmt.Errorf("pdp: column %q is not continuous", name)
	}
	if len(edges) < 2 {
		return "", errors.New("pdp: need at least two edges")
	}
	labels := make([]string, len(edges)-1)
	for i := range labels {
		labels[i] = fmt.Sprintf("%g-%g", edges[i], edges[i+1])
	}
	codes := make([]int, f.NumRows())
	for r, v := range c.Data {
		codes[r] = binIndex(edges, v)
	}
	binName := name + "_bin"
	// In-place attachment is this helper's documented contract; callers
	// that hold a shared frame ShallowClone before calling (see skucmp).
	//lint:allow frameclone BinContinuous is the documented in-place binning mutator
	if err := f.AddNominalInts(binName, codes, labels); err != nil {
		return "", err
	}
	return binName, nil
}

func binIndex(edges []float64, x float64) int {
	n := len(edges) - 1
	if math.IsNaN(x) || x < edges[0] {
		return 0
	}
	for i := 1; i < n; i++ {
		if x < edges[i] {
			return i - 1
		}
	}
	if x < edges[n] {
		return n - 1
	}
	return n - 1
}
