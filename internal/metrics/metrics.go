// Package metrics computes the paper's two failure metrics from
// simulated telemetry (Section V):
//
//   - λ, the failure generation rate, materialized as a rack-day frame
//     with every candidate factor of Table III attached — the input to
//     the single-factor figures (Figs 2-9, 16, 17) and to CART;
//   - μ, the number of devices unavailable within a time window,
//     tracked per rack at daily or hourly granularity — the input to
//     spare provisioning (Q1). Provisioning a window-granularity spare
//     pool must cover every device down at any point in the window, so
//     μ(window) counts down-intervals intersecting the window; finer
//     windows allow temporal multiplexing (Fig 10 vs Fig 12).
package metrics

import (
	"errors"
	"fmt"
	"math"

	"rainshine/internal/calendar"
	"rainshine/internal/failure"
	"rainshine/internal/frame"
	"rainshine/internal/simulate"
	"rainshine/internal/stats"
	"rainshine/internal/topology"
)

// Granularity selects the μ window size.
type Granularity int

// Window granularities. The paper tracks μ from minutes to months
// (Section V); hourly through monthly are representable with this
// simulator's hour-resolution repair intervals.
const (
	Daily Granularity = iota
	Hourly
	Weekly
	Monthly
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Daily:
		return "daily"
	case Hourly:
		return "hourly"
	case Weekly:
		return "weekly"
	case Monthly:
		return "monthly"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// hours returns the window length in hours.
func (g Granularity) hours() float64 {
	switch g {
	case Daily:
		return 24
	case Hourly:
		return 1
	case Weekly:
		return 7 * 24
	case Monthly:
		return 30 * 24
	default:
		return 24
	}
}

// WindowDist is the distribution of μ over a rack's time windows,
// stored as a histogram over integer device counts.
type WindowDist struct {
	// Counts[c] is the number of windows in which exactly c devices
	// were unavailable.
	Counts []int64
	// Windows is the total number of observed windows.
	Windows int
}

// Max returns the largest observed μ.
func (d *WindowDist) Max() int {
	for c := len(d.Counts) - 1; c >= 0; c-- {
		if d.Counts[c] > 0 {
			return c
		}
	}
	return 0
}

// Quantile returns the smallest count c with P(μ <= c) >= p.
func (d *WindowDist) Quantile(p float64) int {
	if d.Windows == 0 {
		return 0
	}
	target := p * float64(d.Windows)
	cum := int64(0)
	for c, n := range d.Counts {
		cum += n
		if float64(cum) >= target {
			return c
		}
	}
	return len(d.Counts) - 1
}

// Mean returns the average μ per window.
func (d *WindowDist) Mean() float64 {
	if d.Windows == 0 {
		return 0
	}
	sum := 0.0
	for c, n := range d.Counts {
		sum += float64(c) * float64(n)
	}
	return sum / float64(d.Windows)
}

// MuDistributions computes per-rack μ distributions counting only the
// given component classes. Windows before a rack's commission day are
// excluded.
func MuDistributions(res *simulate.Result, comps []failure.Component, g Granularity) ([]WindowDist, error) {
	if len(comps) == 0 {
		return nil, errors.New("metrics: no components selected")
	}
	include := [failure.NumComponents]bool{}
	for _, c := range comps {
		if c < 0 || c >= failure.NumComponents {
			return nil, fmt.Errorf("metrics: invalid component %d", c)
		}
		include[c] = true
	}
	nRacks := len(res.Fleet.Racks)
	winHours := g.hours()
	// A trailing partial window still needs spares, so round up rather
	// than truncate (also preserves μ-max monotonicity across
	// granularities: every fine window nests in some coarse window).
	totalWindows := int(math.Ceil(float64(res.Days) * 24 / winHours))

	// Bucket events per rack first so each rack's windows are scanned
	// once.
	perRack := make([][]simulate.Event, nRacks)
	for _, ev := range res.Events {
		if !include[ev.Component] {
			continue
		}
		perRack[ev.Rack] = append(perRack[ev.Rack], ev)
	}

	out := make([]WindowDist, nRacks)
	window := make([]int32, totalWindows)
	for ri := range out {
		for i := range window {
			window[i] = 0
		}
		maxC := int32(0)
		for _, ev := range perRack[ri] {
			start := float64(ev.Day)*24 + ev.Hour
			end := start + ev.RepairHours
			w0 := int(start / winHours)
			if w0 >= totalWindows {
				// Beyond the last complete window (coarse granularities
				// truncate a partial trailing window).
				continue
			}
			w1 := int(end / winHours)
			if w1 >= totalWindows {
				w1 = totalWindows - 1
			}
			for w := w0; w <= w1; w++ {
				window[w]++
				if window[w] > maxC {
					maxC = window[w]
				}
			}
		}
		// First observable window: commission day onward.
		firstDay := res.Fleet.Racks[ri].CommissionDay
		if firstDay < 0 {
			firstDay = 0
		}
		w0 := int(float64(firstDay) * 24 / winHours)
		if w0 > totalWindows {
			w0 = totalWindows
		}
		d := WindowDist{Counts: make([]int64, maxC+1), Windows: totalWindows - w0}
		for w := w0; w < totalWindows; w++ {
			d.Counts[window[w]]++
		}
		out[ri] = d
	}
	return out, nil
}

// GroupMuDistributions computes μ distributions over groups of racks:
// μ(window) for a group counts every selected-component device down at
// any point in the window across all the group's racks. This is the
// metric for pooled spare provisioning (Section II's "should spares be
// maintained for each class separately, or is it better to have a shared
// pool?"): a group-level pool must cover the group's joint worst window.
// groupOf maps a rack index to its group (negative = excluded).
func GroupMuDistributions(res *simulate.Result, comps []failure.Component, g Granularity, groupOf func(rack int) int, nGroups int) ([]WindowDist, error) {
	if len(comps) == 0 {
		return nil, errors.New("metrics: no components selected")
	}
	if nGroups <= 0 {
		return nil, errors.New("metrics: non-positive group count")
	}
	include := [failure.NumComponents]bool{}
	for _, c := range comps {
		if c < 0 || c >= failure.NumComponents {
			return nil, fmt.Errorf("metrics: invalid component %d", c)
		}
		include[c] = true
	}
	winHours := g.hours()
	totalWindows := int(math.Ceil(float64(res.Days) * 24 / winHours))
	windows := make([][]int32, nGroups)
	for i := range windows {
		windows[i] = make([]int32, totalWindows)
	}
	group := make([]int, len(res.Fleet.Racks))
	for ri := range group {
		gi := groupOf(ri)
		if gi >= nGroups {
			return nil, fmt.Errorf("metrics: group %d out of range [0,%d)", gi, nGroups)
		}
		group[ri] = gi
	}
	for _, ev := range res.Events {
		if !include[ev.Component] {
			continue
		}
		gi := group[ev.Rack]
		if gi < 0 {
			continue
		}
		start := float64(ev.Day)*24 + ev.Hour
		end := start + ev.RepairHours
		w0 := int(start / winHours)
		if w0 >= totalWindows {
			continue
		}
		w1 := int(end / winHours)
		if w1 >= totalWindows {
			w1 = totalWindows - 1
		}
		for w := w0; w <= w1; w++ {
			windows[gi][w]++
		}
	}
	out := make([]WindowDist, nGroups)
	for gi := range out {
		maxC := int32(0)
		for _, v := range windows[gi] {
			if v > maxC {
				maxC = v
			}
		}
		d := WindowDist{Counts: make([]int64, maxC+1), Windows: totalWindows}
		for _, v := range windows[gi] {
			d.Counts[v]++
		}
		out[gi] = d
	}
	return out, nil
}

// MTTR summarizes repair durations (hours) per component class — the
// mean-time-to-repair view operators use for staffing and the
// replace-vs-service comparison.
func MTTR(res *simulate.Result) map[failure.Component]stats.Summary {
	buckets := make(map[failure.Component][]float64, failure.NumComponents)
	for _, ev := range res.Events {
		buckets[ev.Component] = append(buckets[ev.Component], ev.RepairHours)
	}
	out := make(map[failure.Component]stats.Summary, len(buckets))
	for c, hours := range buckets {
		s, err := stats.Summarize(hours)
		if err != nil {
			continue
		}
		out[c] = s
	}
	return out
}

// RackDayFrame materializes the rack-day analysis table: one row per
// (rack, observed day) carrying every Table III factor plus the λ
// targets (total, disk, memory, server failure counts on that day).
func RackDayFrame(res *simulate.Result) (*frame.Frame, error) {
	racks := res.Fleet.Racks
	days := res.Days

	// Index events by rack-day.
	type cell struct{ disk, mem, srv int16 }
	counts := make([]cell, len(racks)*days)
	for _, ev := range res.Events {
		i := int(ev.Rack)*days + int(ev.Day)
		switch ev.Component {
		case failure.Disk:
			counts[i].disk++
		case failure.DIMM:
			counts[i].mem++
		default:
			counts[i].srv++
		}
	}

	// Count observed rows.
	rows := 0
	for ri := range racks {
		from := racks[ri].CommissionDay
		if from < 0 {
			from = 0
		}
		if from < days {
			rows += days - from
		}
	}

	var (
		temp     = make([]float64, 0, rows)
		rh       = make([]float64, 0, rows)
		age      = make([]float64, 0, rows)
		power    = make([]float64, 0, rows)
		dc       = make([]int, 0, rows)
		region   = make([]int, 0, rows)
		sku      = make([]int, 0, rows)
		workload = make([]int, 0, rows)
		dow      = make([]int, 0, rows)
		week     = make([]int, 0, rows)
		month    = make([]int, 0, rows)
		year     = make([]int, 0, rows)
		cyear    = make([]int, 0, rows)
		dayIdx   = make([]float64, 0, rows)
		rackID   = make([]float64, 0, rows)
		fAll     = make([]float64, 0, rows)
		fDisk    = make([]float64, 0, rows)
		fMem     = make([]float64, 0, rows)
		fSrv     = make([]float64, 0, rows)
	)
	regionLevels, regionIndex := regionLevelTable(res.Fleet)
	for ri := range racks {
		rack := &racks[ri]
		from := rack.CommissionDay
		if from < 0 {
			from = 0
		}
		for d := from; d < days; d++ {
			cond, err := res.Climate.At(ri, d)
			if err != nil {
				return nil, err
			}
			c := counts[ri*days+d]
			temp = append(temp, cond.TempF)
			rh = append(rh, cond.RH)
			age = append(age, rack.AgeMonths(d))
			power = append(power, rack.PowerKW)
			dc = append(dc, rack.DC)
			region = append(region, regionIndex[rack.DC][rack.Region])
			sku = append(sku, int(rack.SKU))
			workload = append(workload, int(rack.Workload))
			dow = append(dow, calendar.Weekday(d))
			week = append(week, calendar.WeekOfYear(d))
			month = append(month, calendar.Month(d))
			year = append(year, calendar.YearIndex(d))
			cyear = append(cyear, commissionYearIndex(rack.CommissionDay))
			dayIdx = append(dayIdx, float64(d))
			rackID = append(rackID, float64(ri))
			fAll = append(fAll, float64(c.disk+c.mem+c.srv))
			fDisk = append(fDisk, float64(c.disk))
			fMem = append(fMem, float64(c.mem))
			fSrv = append(fSrv, float64(c.srv))
		}
	}

	f := frame.New(len(temp))
	dcLevels := []string{"DC1", "DC2"}
	yearLevels := []string{"Y0", "Y1", "Y2"}
	steps := []func() error{
		func() error { return f.AddContinuous("temp", temp) },
		func() error { return f.AddContinuous("rh", rh) },
		func() error { return f.AddContinuous("age_months", age) },
		func() error { return f.AddContinuous("power_kw", power) },
		func() error { return f.AddNominalInts("dc", dc, dcLevels) },
		func() error { return f.AddNominalInts("region", region, regionLevels) },
		func() error { return f.AddNominalInts("sku", sku, topology.SKUNames()) },
		func() error { return f.AddNominalInts("workload", workload, topology.WorkloadNames()) },
		func() error { return f.AddOrdinalInts("dow", dow, calendar.WeekdayNames) },
		func() error { return f.AddOrdinalInts("week", week, calendar.WeekNames()) },
		func() error { return f.AddOrdinalInts("month", month, calendar.MonthNames) },
		func() error { return f.AddOrdinalInts("year", year, yearLevels) },
		func() error { return f.AddNominalInts("commission_year", cyear, commissionYearLevels()) },
		func() error { return f.AddContinuous("day", dayIdx) },
		func() error { return f.AddContinuous("rack_id", rackID) },
		func() error { return f.AddContinuous("failures", fAll) },
		func() error { return f.AddContinuous("disk_failures", fDisk) },
		func() error { return f.AddContinuous("mem_failures", fMem) },
		func() error { return f.AddContinuous("server_failures", fSrv) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// commissionYearIndex buckets a commission day (offset from window
// start, possibly up to 5 years negative) into a year index 0..5,
// the paper's CommissionYear factor.
func commissionYearIndex(commissionDay int) int {
	idx := (commissionDay + 5*365) / 365
	if idx < 0 {
		idx = 0
	}
	if idx > 5 {
		idx = 5
	}
	return idx
}

func commissionYearLevels() []string {
	return []string{"CY0", "CY1", "CY2", "CY3", "CY4", "CY5"}
}

// regionLevelTable flattens (dc, region) into global level indices with
// "DC1-1" style labels (Fig 2's x-axis).
func regionLevelTable(fleet *topology.Fleet) (levels []string, index [][]int) {
	index = make([][]int, len(fleet.DCs))
	for dcIdx, dc := range fleet.DCs {
		index[dcIdx] = make([]int, dc.Regions)
		for r := 0; r < dc.Regions; r++ {
			index[dcIdx][r] = len(levels)
			levels = append(levels, topology.RegionName(dcIdx, r))
		}
	}
	return levels, index
}

// RackFeatureFrame builds a one-row-per-rack frame of static features,
// used by Q1's CART clustering. The target columns are supplied by the
// caller (per-rack requirement statistics).
func RackFeatureFrame(fleet *topology.Fleet, obsDays int) (*frame.Frame, error) {
	n := len(fleet.Racks)
	var (
		dc       = make([]int, n)
		region   = make([]int, n)
		sku      = make([]int, n)
		workload = make([]int, n)
		power    = make([]float64, n)
		age      = make([]float64, n)
	)
	regionLevels, regionIndex := regionLevelTable(fleet)
	for i := range fleet.Racks {
		r := &fleet.Racks[i]
		dc[i] = r.DC
		region[i] = regionIndex[r.DC][r.Region]
		sku[i] = int(r.SKU)
		workload[i] = int(r.Workload)
		power[i] = r.PowerKW
		// Age at window end summarizes the rack's age over the study and
		// stays non-negative even for racks commissioned mid-window.
		age[i] = r.AgeMonths(obsDays)
	}
	f := frame.New(n)
	steps := []func() error{
		func() error { return f.AddNominalInts("dc", dc, []string{"DC1", "DC2"}) },
		func() error { return f.AddNominalInts("region", region, regionLevels) },
		func() error { return f.AddNominalInts("sku", sku, topology.SKUNames()) },
		func() error { return f.AddNominalInts("workload", workload, topology.WorkloadNames()) },
		func() error { return f.AddContinuous("power_kw", power) },
		func() error { return f.AddContinuous("age_months", age) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return f, nil
}
