package export

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/ticket"
)

// FuzzReadFrameCSV feeds arbitrary bytes into the CSV importer: it must
// either return a well-formed frame or an error — never panic, and any
// returned frame must satisfy basic invariants.
func FuzzReadFrameCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,x\n")
	f.Add("temp,dc\n70.5,DC1\n80,DC2\n")
	f.Add("x\n\n")
	f.Add("a,a\n1,2\n")
	f.Add("\"q\"\"uote\",c\n1,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		fr, err := ReadFrameCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if fr.NumRows() < 1 || fr.NumCols() < 1 {
			t.Fatalf("accepted degenerate frame %dx%d from %q", fr.NumRows(), fr.NumCols(), in)
		}
		// Round-trip: a frame we accepted must serialize cleanly.
		var buf bytes.Buffer
		if err := FrameCSV(&buf, fr); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}

// FuzzTicketsCSVRoundTrip: any ticket the writer can serialize must
// survive write -> read -> write with byte-identical CSV (the derived
// date/category columns and the reconstructed component are functions
// of the serialized fields, so the canonical form is a fixed point).
func FuzzTicketsCSVRoundTrip(f *testing.F) {
	f.Add(1, 5, 2.25, 0, 3, uint8(5), false, 4.0, 2, 1)
	f.Add(7, -2, 23.99, 1, 0, uint8(0), true, 0.0, 0, 0)
	f.Add(0, 100000, 0.0, -3, 99, uint8(9), false, 1e300, 12, 4)
	f.Fuzz(func(t *testing.T, id, day int, hour float64, dc, rack int,
		faultIdx uint8, fp bool, repairHours float64, device, repeat int) {
		in := ticket.Ticket{
			ID: id, Day: day, Hour: hour, DC: dc, Rack: rack,
			Fault:         ticket.Fault(int(faultIdx) % int(ticket.NumFaults)),
			FalsePositive: fp, RepairHours: repairHours,
			Device: device, Repeat: repeat,
		}
		var first bytes.Buffer
		if err := TicketsCSV(&first, []ticket.Ticket{in}); err != nil {
			t.Fatalf("writing: %v", err)
		}
		got, err := ReadTicketsCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reading own output %q: %v", first.String(), err)
		}
		if len(got) != 1 {
			t.Fatalf("read %d tickets from one record", len(got))
		}
		var second bytes.Buffer
		if err := TicketsCSV(&second, got); err != nil {
			t.Fatalf("re-writing: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not canonical:\n%q\n%q", first.String(), second.String())
		}
	})
}

// FuzzTypedColumnCSVRoundTrip drives the byte-coded column storage
// through the CSV interchange: arbitrary code bytes (including the 255
// sentinel and codes past the level table, both of which read as
// missing) plus a level-table size. Per-row level strings and missing
// marks must survive the trip, and the serialized form must be a fixed
// point. An all-missing column legitimately re-imports as continuous —
// the importer cannot know it was categorical — so kind is only pinned
// when at least one level survives.
func FuzzTypedColumnCSVRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1}, byte(2))       // plain typed column
	f.Add([]byte{255, 255, 255}, byte(2))       // all-null (every code is the sentinel)
	f.Add([]byte{0, 200, 7, 255}, byte(4))      // out-of-range codes read as missing
	f.Add([]byte{}, byte(0))                    // no rows: importer refuses, builder too
	f.Fuzz(func(t *testing.T, codes []byte, nLevels byte) {
		n := len(codes)
		if n == 0 {
			return
		}
		nLev := int(nLevels)%255 + 1
		levels := make([]string, nLev)
		for i := range levels {
			levels[i] = fmt.Sprintf("L%03d", i)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		fr := frame.New(n)
		if err := fr.AddNominalCodes("cat", append([]byte(nil), codes...), levels); err != nil {
			t.Fatal(err)
		}
		if err := fr.AddContinuous("x", x); err != nil {
			t.Fatal(err)
		}
		a := fr.MustCol("cat")
		if a.Codes() == nil {
			t.Fatal("builder frame not byte-coded; fuzz target misconfigured")
		}

		var first bytes.Buffer
		if err := FrameCSV(&first, fr); err != nil {
			t.Fatalf("serializing: %v", err)
		}
		back, err := ReadFrameCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-importing own output %q: %v", first.String(), err)
		}
		b := back.MustCol("cat")
		if a.MissingCount() != b.MissingCount() {
			t.Fatalf("missing %d -> %d (csv %q)", a.MissingCount(), b.MissingCount(), first.String())
		}
		anyLevel := false
		for r := 0; r < n; r++ {
			if a.Missing(r) != b.Missing(r) {
				t.Fatalf("row %d missing %v -> %v (csv %q)", r, a.Missing(r), b.Missing(r), first.String())
			}
			if a.Missing(r) {
				continue
			}
			anyLevel = true
			if got, want := b.LevelOf(b.Float(r)), a.LevelOf(a.Float(r)); got != want {
				t.Fatalf("row %d level %q -> %q (csv %q)", r, want, got, first.String())
			}
		}
		if anyLevel {
			if b.Kind != frame.Nominal {
				t.Fatalf("cat kind %v after round trip (csv %q)", b.Kind, first.String())
			}
			if len(b.Levels) <= 255 && b.Codes() == nil {
				t.Fatalf("re-import of a %d-level column fell back to float64 cells", len(b.Levels))
			}
		}

		var second bytes.Buffer
		if err := FrameCSV(&second, back); err != nil {
			t.Fatalf("re-serializing: %v", err)
		}
		if anyLevel {
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("round trip not canonical:\n%q\n%q", first.String(), second.String())
			}
			return
		}
		// All-missing: the first trip demotes the column to continuous
		// ("NA" becomes "NaN"), after which the form must be stable.
		back2, err := ReadFrameCSV(bytes.NewReader(second.Bytes()))
		if err != nil {
			t.Fatalf("re-importing demoted form %q: %v", second.String(), err)
		}
		var third bytes.Buffer
		if err := FrameCSV(&third, back2); err != nil {
			t.Fatalf("serializing demoted form: %v", err)
		}
		if !bytes.Equal(second.Bytes(), third.Bytes()) {
			t.Fatalf("demoted form not a fixed point:\n%q\n%q", second.String(), third.String())
		}
	})
}
