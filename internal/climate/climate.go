// Package climate models the environmental telemetry the paper's BMS
// (building management system) collected: per-rack daily inlet
// temperature (°F) and relative humidity (%).
//
// Two cooling plants are modelled (Table I):
//
//   - Adiabatic (DC1): evaporative cooling in a warm, dry site. Very
//     energy-efficient, but inlet conditions track the outdoor weather —
//     hot-season excursions above 78 °F and dry-season RH collapses below
//     25 % both occur, giving the MF analysis of Q3 something to find.
//   - Chilled water / HVAC (DC2): a refrigerant loop holds inlet
//     conditions nearly flat year-round, so DC2's failures show almost no
//     environmental sensitivity (Fig 18, right half).
//
// Within a DC, regions carry static offsets (hot aisles, blanked rows),
// which is the spatial variation Fig 2 aggregates over.
package climate

import (
	"fmt"
	"math"

	"rainshine/internal/calendar"
	"rainshine/internal/rng"
	"rainshine/internal/topology"
)

// Bounds of observed conditions (Table III).
const (
	MinTempF = 56.0
	MaxTempF = 90.0
	MinRH    = 5.0
	MaxRH    = 87.0
)

// Conditions is the environment at one rack on one day.
type Conditions struct {
	TempF float64 // inlet air temperature, °F
	RH    float64 // relative humidity, %
}

// Model precomputes per-rack-per-day conditions for a fleet.
type Model struct {
	days  int
	racks int
	temp  []float32
	rh    []float32
}

// New builds the climate series for every rack over days observation
// days. Deterministic given the source.
func New(src *rng.Source, fleet *topology.Fleet, days int) (*Model, error) {
	if days <= 0 {
		return nil, fmt.Errorf("climate: non-positive days %d", days)
	}
	m := &Model{
		days:  days,
		racks: len(fleet.Racks),
		temp:  make([]float32, len(fleet.Racks)*days),
		rh:    make([]float32, len(fleet.Racks)*days),
	}
	// Site weather per DC per day.
	outT := make([][]float64, len(fleet.DCs))
	outRH := make([][]float64, len(fleet.DCs))
	for dcIdx := range fleet.DCs {
		wsrc := src.SplitIndex("climate/site", dcIdx)
		outT[dcIdx] = make([]float64, days)
		outRH[dcIdx] = make([]float64, days)
		for d := 0; d < days; d++ {
			t, rh := siteWeather(dcIdx, d, wsrc)
			outT[dcIdx][d] = t
			outRH[dcIdx][d] = rh
		}
	}
	for ri := range fleet.Racks {
		rack := &fleet.Racks[ri]
		rsrc := src.SplitIndex("climate/rack", ri)
		tOff, rhOff := rackOffsets(rack, fleet.DCs[rack.DC])
		for d := 0; d < days; d++ {
			var c Conditions
			switch fleet.DCs[rack.DC].Cooling {
			case topology.Adiabatic:
				c = adiabatic(outT[rack.DC][d], outRH[rack.DC][d])
			case topology.ChilledWater:
				c = chilledWater()
			}
			c.TempF += tOff + rsrc.NormFloat64()*0.8
			c.RH += rhOff + rsrc.NormFloat64()*2.0
			c.TempF = clamp(c.TempF, MinTempF, MaxTempF)
			c.RH = clamp(c.RH, MinRH, MaxRH)
			m.temp[ri*days+d] = float32(c.TempF)
			m.rh[ri*days+d] = float32(c.RH)
		}
	}
	return m, nil
}

// Empty builds a model with every rack-day reading missing (NaN). It is
// the receiving vessel for streamed telemetry: a reconstruction fills
// readings in via SetAt as records arrive, and any cell never written
// reads as a sensor dropout to the ingest audit.
func Empty(racks, days int) (*Model, error) {
	if racks <= 0 {
		return nil, fmt.Errorf("climate: non-positive rack count %d", racks)
	}
	if days <= 0 {
		return nil, fmt.Errorf("climate: non-positive days %d", days)
	}
	m := &Model{
		days:  days,
		racks: racks,
		temp:  make([]float32, racks*days),
		rh:    make([]float32, racks*days),
	}
	nan := float32(math.NaN())
	for i := range m.temp {
		m.temp[i] = nan
		m.rh[i] = nan
	}
	return m, nil
}

// At returns the conditions for a rack on a day.
func (m *Model) At(rackID, day int) (Conditions, error) {
	if rackID < 0 || rackID >= m.racks {
		return Conditions{}, fmt.Errorf("climate: rack %d out of range [0,%d)", rackID, m.racks)
	}
	if day < 0 || day >= m.days {
		return Conditions{}, fmt.Errorf("climate: day %d out of range [0,%d)", day, m.days)
	}
	i := rackID*m.days + day
	return Conditions{TempF: float64(m.temp[i]), RH: float64(m.rh[i])}, nil
}

// Days returns the series length.
func (m *Model) Days() int { return m.days }

// Racks returns the number of rack series in the model.
func (m *Model) Racks() int { return m.racks }

// SetAt overwrites the recorded conditions for a rack-day. This is the
// telemetry-corruption hook: fault injection writes NaN (sensor dropout)
// or stale values (stuck sensors) after the simulation has consumed the
// true conditions, and ingest repair writes imputed values back. Values
// are recorded as-is, without range clamping.
func (m *Model) SetAt(rackID, day int, c Conditions) error {
	if rackID < 0 || rackID >= m.racks {
		return fmt.Errorf("climate: rack %d out of range [0,%d)", rackID, m.racks)
	}
	if day < 0 || day >= m.days {
		return fmt.Errorf("climate: day %d out of range [0,%d)", day, m.days)
	}
	i := rackID*m.days + day
	m.temp[i] = float32(c.TempF)
	m.rh[i] = float32(c.RH)
	return nil
}

// siteWeather returns outdoor (temperature °F, RH %) for a DC site on a
// day. DC1 sits in a warm, dry continental site (adiabatic-friendly);
// DC2 in a mild temperate one.
func siteWeather(dcIdx, day int, src *rng.Source) (float64, float64) {
	doy := float64(calendar.DayOfYear(day))
	// Seasonal phase peaking around mid-July (day ~196).
	season := math.Cos(2 * math.Pi * (doy - 196) / 365.25)
	var t, rh float64
	if dcIdx == 0 {
		// Hot summers (~95 °F), cool winters (~40 °F); dry overall with
		// very dry winters.
		t = 67 + 28*season + src.NormFloat64()*5
		rh = 35 - 18*season + src.NormFloat64()*8
	} else {
		t = 55 + 18*season + src.NormFloat64()*4
		rh = 60 - 10*season + src.NormFloat64()*6
	}
	return t, clamp(rh, 2, 100)
}

// adiabatic converts outdoor conditions into inlet conditions under
// evaporative cooling: cooling effectiveness rises with dryness, but in
// hot spells the inlet still creeps above the 78 °F set point, and in
// cold dry spells the recirculated air is very dry.
func adiabatic(outT, outRH float64) Conditions {
	// Evaporative cooling approaches the wet-bulb temperature. A crude
	// wet-bulb estimate: dry-bulb minus a depression that grows as RH
	// falls.
	depression := (100 - outRH) * 0.22
	wetBulb := outT - depression
	// Supply air targets 70 °F but cannot go below wet bulb + margin,
	// nor does the plant heat when it is cold outside: cold outdoor air
	// is mixed up toward the target.
	inlet := 70.0
	if wetBulb+4 > inlet {
		inlet = wetBulb + 4
	}
	if outT < 58 {
		inlet = 62 + (outT-58)*0.25
	}
	// Evaporation humidifies the supply air in proportion to the
	// depression actually used; dry winter air stays dry.
	rh := outRH + 12
	if outT < 65 {
		rh = outRH * 0.75 // recirculation + heating dries the air
	}
	return Conditions{TempF: inlet, RH: rh}
}

// chilledWater returns the tightly controlled HVAC set point.
func chilledWater() Conditions {
	return Conditions{TempF: 67, RH: 46}
}

// rackOffsets returns static spatial offsets for a rack. DC1's region 0
// is the hot set of rows (where the S2 racks were placed); higher-power
// racks also run slightly warmer inlets.
func rackOffsets(rack *topology.Rack, dc topology.DCSpec) (tempOff, rhOff float64) {
	switch {
	case rack.DC == 0 && rack.Region == 0:
		tempOff = 4.5
		rhOff = -4
	case rack.DC == 0 && rack.Region == 1:
		tempOff = 1.5
	case rack.DC == 1 && rack.Region == 2:
		tempOff = 1.0
	}
	if rack.PowerKW >= 12 {
		tempOff += 1.2
	}
	// Row parity approximates alternating cold/hot aisle adjacency.
	if rack.Row%2 == 1 {
		tempOff += 0.5
	}
	_ = dc
	return tempOff, rhOff
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
