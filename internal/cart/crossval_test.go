package cart

import (
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// cvFrame: y has real structure on x (a step) plus noise; a pure-noise
// feature z is available to overfit on.
func cvFrame(t *testing.T, n int) *frame.Frame {
	t.Helper()
	src := rng.New(51)
	x := make([]float64, n)
	z := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		x[i] = src.Float64() * 10
		z[i] = src.Float64()
		if x[i] > 5 {
			y[i] = 2
		}
		y[i] += src.NormFloat64() * 0.8
	}
	f := frame.New(n)
	for _, c := range []struct {
		name string
		data []float64
	}{{"x", x}, {"z", z}, {"y", y}} {
		if err := f.AddContinuous(c.name, c.data); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

var cvCandidates = []float64{0.0005, 0.002, 0.01, 0.05, 0.2, 0.95}

func TestCrossValidateTable(t *testing.T) {
	f := cvFrame(t, 800)
	cfg := Config{Task: Regression, MaxDepth: 8, MinSplit: 10, MinLeaf: 5}
	table, err := CrossValidate(f, "y", []string{"x", "z"}, cfg, cvCandidates, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(cvCandidates) {
		t.Fatalf("rows = %d", len(table))
	}
	// Leaf counts shrink as cp grows.
	for i := 1; i < len(table); i++ {
		if table[i].Leaves > table[i-1].Leaves {
			t.Errorf("leaves not monotone: %+v", table)
		}
	}
	// The real structure explains ~variance: some candidate must beat
	// the stump clearly, and the loosest cp (overfit on z) should not be
	// the unique best.
	minErr := table[0].XError
	for _, row := range table {
		if row.XError < minErr {
			minErr = row.XError
		}
		if row.XStd < 0 {
			t.Errorf("negative xstd: %+v", row)
		}
	}
	if minErr > 0.75 {
		t.Errorf("cross-validated error %v never clearly beat the stump", minErr)
	}
	// The tightest cp (0.6) prunes everything: its error ~1.
	last := table[len(table)-1]
	if last.Leaves != 1 || last.XError < 0.9 {
		t.Errorf("heaviest pruning row = %+v, want stump-like", last)
	}
}

func TestBestCPOneSERule(t *testing.T) {
	table := []CPRow{
		{CP: 0.001, Leaves: 30, XError: 0.52, XStd: 0.03},
		{CP: 0.01, Leaves: 8, XError: 0.50, XStd: 0.03},
		{CP: 0.05, Leaves: 3, XError: 0.52, XStd: 0.03},
		{CP: 0.2, Leaves: 1, XError: 1.00, XStd: 0.02},
	}
	cp, err := BestCP(table)
	if err != nil {
		t.Fatal(err)
	}
	// Min is 0.50 at cp=0.01; 0.52 <= 0.53, so the 1-SE rule picks the
	// simpler cp=0.05 tree.
	if cp != 0.05 {
		t.Errorf("BestCP = %v, want 0.05", cp)
	}
	if _, err := BestCP(nil); err == nil {
		t.Error("empty table should error")
	}
}

func TestCrossValidateSelectsGeneralizingCP(t *testing.T) {
	f := cvFrame(t, 800)
	cfg := Config{Task: Regression, MaxDepth: 8, MinSplit: 10, MinLeaf: 5}
	table, err := CrossValidate(f, "y", []string{"x", "z"}, cfg, cvCandidates, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := BestCP(table)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen cp must keep the real split but discard the noise
	// forest: strictly between the extremes.
	if cp <= cvCandidates[0] || cp >= cvCandidates[len(cvCandidates)-1] {
		t.Errorf("BestCP = %v, want an interior candidate", cp)
	}
	tree, err := Fit(f, "y", []string{"x", "z"}, Config{Task: Regression, MaxDepth: 8, MinSplit: 10, MinLeaf: 5, CP: cp})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() < 2 || tree.NumLeaves() > 10 {
		t.Errorf("tree at chosen cp has %d leaves", tree.NumLeaves())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	f := cvFrame(t, 100)
	cfg := Config{Task: Regression}
	if _, err := CrossValidate(f, "y", []string{"x"}, cfg, cvCandidates, 1, 1); err == nil {
		t.Error("single fold should error")
	}
	if _, err := CrossValidate(f, "y", []string{"x"}, cfg, nil, 5, 1); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := CrossValidate(f, "y", []string{"x"}, cfg, []float64{0.1, 0.01}, 5, 1); err == nil {
		t.Error("descending candidates should error")
	}
	tiny := cvFrame(t, 8)
	if _, err := CrossValidate(tiny, "y", []string{"x"}, cfg, cvCandidates, 5, 1); err == nil {
		t.Error("too-few rows should error")
	}
	clsCfg := Config{Task: Classification}
	if _, err := CrossValidate(f, "y", []string{"x"}, clsCfg, cvCandidates, 5, 1); err == nil {
		t.Error("classification CV should report unimplemented")
	}
	if _, err := CrossValidate(f, "nope", []string{"x"}, cfg, cvCandidates, 5, 1); err == nil {
		t.Error("missing target should error")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	f := cvFrame(t, 400)
	cfg := Config{Task: Regression, MaxDepth: 6, MinSplit: 10, MinLeaf: 5}
	a, err := CrossValidate(f, "y", []string{"x", "z"}, cfg, cvCandidates, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(f, "y", []string{"x", "z"}, cfg, cvCandidates, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
