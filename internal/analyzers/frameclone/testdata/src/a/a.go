// Package a exercises the frameclone aliasing rules.
package a

import "frame"

// Mutate attaches a column straight onto the shared parameter frame.
func Mutate(f *frame.Frame) {
	f.AddContinuous("x", nil) // want `attaching a column to f, which aliases a parameter frame`
}

// Cloned re-points the variable at a ShallowClone first (negative).
func Cloned(f *frame.Frame) {
	f = f.ShallowClone()
	f.AddContinuous("x", nil)
}

// Alias propagates the taint through a plain alias.
func Alias(f *frame.Frame) {
	g := f
	g.AddNominalInts("k", nil) // want `attaching a column to g, which aliases a parameter frame`
}

// Subsetted mutates a frame the cleanser handed back (negative).
func Subsetted(f *frame.Frame) {
	g := f.Subset(nil)
	g.AddContinuous("x", nil)
}

// Fresh mutates a locally constructed frame (negative).
func Fresh(f *frame.Frame) *frame.Frame {
	g := frame.New()
	g.AddContinuous("x", nil)
	return g
}

// build is unexported: builders own their frames (negative).
func build(f *frame.Frame) {
	f.AddContinuous("x", nil)
}
