package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rainshine"
	"rainshine/internal/leakcheck"
)

// loadConfigs are the three distinct study configs the load test mixes;
// the acceptance criterion is that exactly three builds occur no matter
// how many concurrent clients ask for them.
var loadConfigs = []struct {
	query string
	opts  []rainshine.Option
}{
	{"seed=42&days=150&racks=30,26", []rainshine.Option{
		rainshine.WithSeed(42), rainshine.WithDays(150), rainshine.WithRacks(30, 26)}},
	{"seed=43&days=150&racks=30,26", []rainshine.Option{
		rainshine.WithSeed(43), rainshine.WithDays(150), rainshine.WithRacks(30, 26)}},
	{"seed=44&days=150&racks=30,26", []rainshine.Option{
		rainshine.WithSeed(44), rainshine.WithDays(150), rainshine.WithRacks(30, 26)}},
}

// TestServeLoad fires 32 parallel clients at a mixed-endpoint workload
// across 3 distinct study configs and asserts (a) every response is
// 200, (b) singleflight + LRU admit exactly 3 study builds, observed
// through /metricz, and (c) the served Q1-Q3 JSON is byte-identical to
// what the batch library path produces for the same config.
//
// `make serve-load` runs this under -race and records the throughput
// summary to BENCH_serve.json (RAINSHINE_BENCH_OUT).
func TestServeLoad(t *testing.T) {
	leakcheck.Check(t)
	const (
		clients           = 32
		requestsPerClient = 6
	)
	// Warmup on: each build pre-materializes its figure cache through
	// the study's worker pool before the registry publishes it, so the
	// race detector sees the concurrent warmup path under real load.
	srv := New(Config{CacheSize: len(loadConfigs), Timeout: time.Minute, Logf: t.Logf, Warmup: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	endpoints := []string{
		"/v1/q1?%s&workload=W6",
		"/v1/q1?%s&workload=W1&hourly=true",
		"/v1/q2?%s",
		"/v1/q2?%s&ratios=1.0,1.5,2.0",
		"/v1/q3?%s",
		"/v1/predict?%s",
		"/v1/quality?%s",
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for j := 0; j < requestsPerClient; j++ {
				cfg := loadConfigs[(c+j)%len(loadConfigs)]
				path := fmt.Sprintf(endpoints[(c*requestsPerClient+j)%len(endpoints)], cfg.query)
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("client %d: GET %s: %v", c, path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: GET %s = %d: %s", c, path, resp.StatusCode, body)
				}
			}
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)

	// The registry must have deduplicated every concurrent build: three
	// distinct configs, exactly three builds, nothing evicted.
	snap := fetchSnapshot(t, ts.URL)
	total := int64(clients * requestsPerClient)
	if snap.Builds.Started != int64(len(loadConfigs)) || snap.Builds.Completed != int64(len(loadConfigs)) {
		t.Errorf("builds = %+v, want exactly %d started and completed", snap.Builds, len(loadConfigs))
	}
	if snap.Builds.InFlight != 0 || snap.Builds.Canceled != 0 || snap.Builds.Failed != 0 {
		t.Errorf("builds = %+v, want none in flight/canceled/failed", snap.Builds)
	}
	if snap.Cache.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (cache sized to the config count)", snap.Cache.Evictions)
	}
	if snap.Cache.Hits+snap.Cache.Misses != total {
		t.Errorf("hits+misses = %d+%d, want %d (one registry lookup per request)",
			snap.Cache.Hits, snap.Cache.Misses, total)
	}
	if starts := snap.Cache.Misses - snap.Cache.DedupJoins; starts != int64(len(loadConfigs)) {
		t.Errorf("misses-joins = %d, want %d (each config starts one build)", starts, len(loadConfigs))
	}

	// Served answers must be byte-identical to the batch library path
	// for the same config: same study constructor, same analyses, same
	// encoding — the cache can never change an answer.
	for _, cfg := range loadConfigs[:1] {
		study, err := rainshine.NewStudy(cfg.opts...)
		if err != nil {
			t.Fatal(err)
		}
		q1, err := study.SpareProvisioning(rainshine.W6, false)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := study.VendorComparison()
		if err != nil {
			t.Fatal(err)
		}
		q3, err := study.ClimateGuidance()
		if err != nil {
			t.Fatal(err)
		}
		for path, rep := range map[string]any{
			"/v1/q1?" + cfg.query + "&workload=W6": q1,
			"/v1/q2?" + cfg.query:                  q2,
			"/v1/q3?" + cfg.query:                  q3,
		} {
			want, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			got := fetchBody(t, ts.URL+path)
			if string(want) != strings.TrimSuffix(got, "\n") {
				t.Errorf("%s: served JSON differs from batch answer\nserved: %.200s\nbatch:  %.200s",
					path, got, want)
			}
		}
	}

	t.Logf("%d requests in %v (%.0f req/s), %d builds, %d cache hits",
		total, wall, float64(total)/wall.Seconds(), snap.Builds.Completed, snap.Cache.Hits)
	writeBenchSummary(t, total, clients, wall, snap)
}

func fetchSnapshot(t *testing.T, base string) Snapshot {
	t.Helper()
	var snap Snapshot
	if err := json.Unmarshal([]byte(fetchBody(t, base+"/metricz")), &snap); err != nil {
		t.Fatalf("decoding /metricz: %v", err)
	}
	return snap
}

func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// writeBenchSummary records the load test's throughput as the "load"
// section of the file in RAINSHINE_BENCH_OUT (the `make serve-load`
// target sets it); the chaos soak owns the sibling "soak" section.
func writeBenchSummary(t *testing.T, total int64, clients int, wall time.Duration, snap Snapshot) {
	summary := struct {
		Test              string                      `json:"test"`
		Clients           int                         `json:"clients"`
		Requests          int64                       `json:"requests"`
		DistinctConfigs   int                         `json:"distinct_configs"`
		StudyBuilds       int64                       `json:"study_builds"`
		WallSeconds       float64                     `json:"wall_seconds"`
		RequestsPerSecond float64                     `json:"requests_per_second"`
		Cache             CacheCounters               `json:"cache"`
		Endpoints         map[string]EndpointSnapshot `json:"endpoints"`
	}{
		Test:              "TestServeLoad",
		Clients:           clients,
		Requests:          total,
		DistinctConfigs:   len(loadConfigs),
		StudyBuilds:       snap.Builds.Completed,
		WallSeconds:       wall.Seconds(),
		RequestsPerSecond: float64(total) / wall.Seconds(),
		Cache:             snap.Cache,
		Endpoints:         snap.Requests,
	}
	writeBenchSection(t, "load", summary)
}
