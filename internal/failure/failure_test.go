package failure

import (
	"testing"

	"rainshine/internal/climate"
	"rainshine/internal/rng"
	"rainshine/internal/topology"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	fleet, err := topology.Build(rng.New(1), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(fleet, DefaultParams())
}

func mild() climate.Conditions { return climate.Conditions{TempF: 68, RH: 45} }

func TestComponentString(t *testing.T) {
	if Disk.String() != "disk" || DIMM.String() != "memory" || ServerOther.String() != "server" {
		t.Error("Component.String broken")
	}
	if Component(99).String() != "unknown" {
		t.Error("unknown component string")
	}
}

func TestBathtub(t *testing.T) {
	m := testModel(t)
	// Infant mortality: hazard at 1 month far above 24 months.
	if m.Bathtub(1) < 1.5*m.Bathtub(24) {
		t.Errorf("infant %v vs mid-life %v", m.Bathtub(1), m.Bathtub(24))
	}
	// Wear-out: 60 months above 36 months.
	if m.Bathtub(60) <= m.Bathtub(36) {
		t.Errorf("wear-out %v vs mid-life %v", m.Bathtub(60), m.Bathtub(36))
	}
	// Pre-commission age: zero hazard.
	if m.Bathtub(-1) != 0 {
		t.Errorf("negative age multiplier = %v", m.Bathtub(-1))
	}
}

func TestEnvMultiplierDisk(t *testing.T) {
	m := testModel(t)
	base := m.EnvMultiplier(Disk, mild())
	hot := m.EnvMultiplier(Disk, climate.Conditions{TempF: 80, RH: 45})
	hotDry := m.EnvMultiplier(Disk, climate.Conditions{TempF: 80, RH: 20})
	if hot <= base {
		t.Errorf("hot %v <= base %v", hot, base)
	}
	// The step at 78F is at least HotFactor.
	if hot/base < 1.5 {
		t.Errorf("hot/base = %v, want >= 1.5", hot/base)
	}
	// Dry adds another 1.25x.
	if hotDry/hot < 1.2 {
		t.Errorf("hotDry/hot = %v, want ~1.25", hotDry/hot)
	}
	// Dryness alone (cool) has no effect.
	coolDry := m.EnvMultiplier(Disk, climate.Conditions{TempF: 68, RH: 10})
	if coolDry != base {
		t.Errorf("cool-dry %v != base %v", coolDry, base)
	}
}

func TestEnvMultiplierOtherComponents(t *testing.T) {
	m := testModel(t)
	if m.EnvMultiplier(ServerOther, climate.Conditions{TempF: 90, RH: 5}) != 1 {
		t.Error("server env multiplier should be 1")
	}
	if m.EnvMultiplier(DIMM, climate.Conditions{TempF: 85, RH: 40}) <= 1 {
		t.Error("DIMM should have token hot sensitivity")
	}
	if m.EnvMultiplier(DIMM, mild()) != 1 {
		t.Error("DIMM mild multiplier should be 1")
	}
}

func TestCommonMultiplierFactors(t *testing.T) {
	m := testModel(t)
	base := topology.Rack{DC: 1, Region: 0, SKU: topology.S5, Workload: topology.W1, PowerKW: 8, CommissionDay: -365}
	// Weekday (day 2 = Tue) vs weekend (day 0 = Sun).
	wk := m.CommonMultiplier(&base, 2)
	we := m.CommonMultiplier(&base, 0)
	if wk <= we {
		t.Errorf("weekday %v <= weekend %v", wk, we)
	}
	// DC1 hot region exceeds DC2 for an otherwise identical rack, same day.
	hot := base
	hot.DC, hot.Region = 0, 0
	if m.CommonMultiplier(&hot, 2) <= m.CommonMultiplier(&base, 2) {
		t.Error("DC1 region 0 should exceed DC2 region 0")
	}
	// Power above the knee raises hazard.
	dense := base
	dense.PowerKW = 15
	if m.CommonMultiplier(&dense, 2) <= m.CommonMultiplier(&base, 2) {
		t.Error("15kW rack should exceed 8kW rack")
	}
	// W2 > W3.
	w2, w3 := base, base
	w2.Workload, w3.Workload = topology.W2, topology.W3
	if m.CommonMultiplier(&w2, 2) <= m.CommonMultiplier(&w3, 2) {
		t.Error("W2 should exceed W3")
	}
	// Second half of year exceeds first (same weekday: day 9 = Mon Jan,
	// day 247 = Mon Sep 2012).
	if m.CommonMultiplier(&base, 247) <= m.CommonMultiplier(&base, 9) {
		t.Error("September should exceed January")
	}
}

func TestSKUIntrinsicRatio(t *testing.T) {
	p := DefaultParams()
	ratio := p.SKU[topology.S2] / p.SKU[topology.S4]
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("intrinsic S2/S4 = %v, want ~4 (the paper's MF finding)", ratio)
	}
}

func TestDeviceAndRackHazard(t *testing.T) {
	m := testModel(t)
	rack := &m.Fleet.Racks[0]
	day := 100
	for c := Disk; c < NumComponents; c++ {
		dh := m.DeviceHazard(c, rack, day, mild())
		if dh <= 0 || dh > 0.01 {
			t.Errorf("%v device hazard = %v out of sane range", c, dh)
		}
	}
	// Rack hazard = device hazard x device count.
	dh := m.DeviceHazard(Disk, rack, day, mild())
	rh := m.RackHazard(Disk, rack, day, mild())
	if want := dh * float64(rack.Disks()); rh != want {
		t.Errorf("rack hazard %v != %v", rh, want)
	}
	rhS := m.RackHazard(ServerOther, rack, day, mild())
	if want := m.DeviceHazard(ServerOther, rack, day, mild()) * float64(rack.Servers); rhS != want {
		t.Errorf("server rack hazard %v != %v", rhS, want)
	}
}

func TestPreCommissionNoHazard(t *testing.T) {
	m := testModel(t)
	rack := topology.Rack{DC: 0, Region: 0, SKU: topology.S1, Workload: topology.W6, PowerKW: 8, CommissionDay: 500, Servers: 20, DisksPerServer: 12, DIMMsPerServer: 8}
	if h := m.DeviceHazard(Disk, &rack, 100, mild()); h != 0 {
		t.Errorf("pre-commission hazard = %v, want 0", h)
	}
	if p := m.ShockProbability(&rack, 100); p != 0 {
		t.Errorf("pre-commission shock prob = %v, want 0", p)
	}
}

func TestShockStructure(t *testing.T) {
	m := testModel(t)
	day := 200
	// Storage: old high-power S3 racks shock far more than mid-life
	// low-power S1.
	bad := topology.Rack{DC: 1, Region: 0, SKU: topology.S3, Workload: topology.W6, PowerKW: 12, CommissionDay: day - 55*30}
	good := topology.Rack{DC: 1, Region: 0, SKU: topology.S1, Workload: topology.W6, PowerKW: 6, CommissionDay: day - 24*30}
	if m.ShockProbability(&bad, day) < 5*m.ShockProbability(&good, day) {
		t.Errorf("storage shock contrast too weak: %v vs %v",
			m.ShockProbability(&bad, day), m.ShockProbability(&good, day))
	}
	// Compute: DC1 region0 racks shock more than DC2.
	hot := topology.Rack{DC: 0, Region: 0, SKU: topology.S2, Workload: topology.W1, PowerKW: 13, CommissionDay: day - 700}
	cool := topology.Rack{DC: 1, Region: 1, SKU: topology.S4, Workload: topology.W1, PowerKW: 13, CommissionDay: day - 700}
	if m.ShockProbability(&hot, day) < 3*m.ShockProbability(&cool, day) {
		t.Errorf("compute shock contrast too weak: %v vs %v",
			m.ShockProbability(&hot, day), m.ShockProbability(&cool, day))
	}
	// Severity: storage shocks are bigger than compute shocks.
	if m.ShockSeverity(&bad) <= m.ShockSeverity(&hot) {
		t.Errorf("storage severity %v <= compute severity %v",
			m.ShockSeverity(&bad), m.ShockSeverity(&hot))
	}
	// All severities are sane fractions.
	for i := range m.Fleet.Racks {
		s := m.ShockSeverity(&m.Fleet.Racks[i])
		if s <= 0 || s > 0.9 {
			t.Fatalf("severity %v out of (0,0.9]", s)
		}
	}
}
