// Package skucmp answers Q2: are some SKUs (vendor configurations) more
// reliable than others, and what does that mean for procurement?
//
// The SF view (Fig 14) simply groups rack-day failure rates by SKU: it
// conflates the SKU's intrinsic reliability with where the racks sit,
// what they run, and how hard they are driven. The MF view (Fig 15)
// standardizes those factors away, shrinking both the estimated gap and
// its variance. The TCO scenarios then show how the two views can reach
// opposite procurement verdicts when the better SKU carries a price
// premium.
package skucmp

import (
	"errors"
	"fmt"

	"rainshine/internal/frame"
	"rainshine/internal/pdp"
	"rainshine/internal/stats"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

// Stats summarizes one SKU's failure behaviour.
type Stats struct {
	SKU string
	// Avg is the mean rack-day failure rate (the paper's λ, driving
	// maintenance OpEx).
	Avg float64
	// Peak is the extreme-percentile (99.9th) rack-day failure rate —
	// the paper's μmax proxy, driving spare CapEx. An extreme quantile
	// is needed because most rack-days see zero failures; the peak is
	// set by rare correlated bursts.
	Peak float64
	// StdDev is the spread of the estimate (the error bars of
	// Figs 14-15).
	StdDev float64
	// N is the number of rack-day observations.
	N int
}

// AnalyzeSF computes the single-factor view: per-SKU failure statistics
// with no adjustment. f must be a rack-day frame with "sku" and
// "failures" columns.
func AnalyzeSF(f *frame.Frame, skus []topology.SKU) ([]Stats, error) {
	levels, groups, err := f.GroupValues("sku", "failures")
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(skus))
	for _, s := range skus {
		want[s.String()] = true
	}
	var out []Stats
	for li, lvl := range levels {
		if len(want) > 0 && !want[lvl] {
			continue
		}
		g := groups[li]
		if len(g) == 0 {
			continue
		}
		sum, err := stats.Summarize(g)
		if err != nil {
			return nil, err
		}
		peak, err := stats.Quantile(g, 0.999)
		if err != nil {
			return nil, err
		}
		out = append(out, Stats{
			SKU:    lvl,
			Avg:    sum.Mean,
			Peak:   peak,
			StdDev: sum.StdDev,
			N:      sum.N,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("skucmp: no observations for requested SKUs")
	}
	return out, nil
}

// MFCovariates are the factors the MF analysis normalizes, following the
// paper's λ ~ SKU, N(DC), N(RatedPower), N(Workload), N(CommissionYear).
// power_kw is continuous in the rack-day frame and is binned on the fly.
var MFCovariates = []string{"dc", "workload", "commission_year"}

// AnalyzeMF computes the multi-factor view: per-SKU effects standardized
// over DC, workload, commission year, and binned power rating.
//
// The frame is first restricted to the SKUs being compared, so that a
// stratum only contributes when it actually observes more than one of
// them — the contrast is then a true within-context comparison. Without
// this, SKUs deployed in disjoint contexts (the whole point of the
// confounding) would each be averaged over different strata and nothing
// would be adjusted.
func AnalyzeMF(f *frame.Frame, skus []topology.SKU) ([]Stats, error) {
	if len(skus) > 0 {
		skuCol, err := f.Col("sku")
		if err != nil {
			return nil, err
		}
		keep := make(map[int]bool, len(skus))
		for _, s := range skus {
			keep[int(s)] = true
		}
		f = f.Filter(func(row int) bool { return keep[skuCol.Code(row)] })
	}
	covs := append([]string(nil), MFCovariates...)
	if _, err := f.Col("power_kw_bin"); err != nil {
		// Clone before binning: with no SKU filter f is the caller's
		// (possibly shared) frame, and concurrent readers must not see
		// the derived column appear.
		f = f.ShallowClone()
		if _, err := pdp.BinContinuous(f, "power_kw", []float64{0, 10, 20}); err != nil {
			return nil, fmt.Errorf("skucmp: binning power: %w", err)
		}
	}
	covs = append(covs, "power_kw_bin")
	effects, err := pdp.Standardize(f, "failures", "sku", covs)
	if err != nil {
		return nil, fmt.Errorf("skucmp: standardizing: %w", err)
	}
	want := make(map[string]bool, len(skus))
	for _, s := range skus {
		want[s.String()] = true
	}
	var out []Stats
	for _, e := range effects {
		if len(want) > 0 && !want[e.Level] {
			continue
		}
		out = append(out, Stats{
			SKU:    e.Level,
			Avg:    e.Mean,
			Peak:   e.Peak,
			StdDev: e.StdDev,
			N:      e.N,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("skucmp: no adjusted effects for requested SKUs")
	}
	return out, nil
}

// Significance quantifies confidence in the adjusted SKU contrast, the
// paper's "checking if after normalization, the influence of this
// parameter is significant".
type Significance struct {
	// Strata is the number of covariate strata observing both SKUs.
	Strata int
	// MeanDiff is the mean within-stratum rate difference (A - B).
	MeanDiff float64
	// PairedT and Wilcoxon are two-sided p-values from the paired tests
	// over strata (parametric and rank-based).
	PairedT  float64
	Wilcoxon float64
}

// MFSignificance tests whether SKU a's adjusted failure rate differs
// from SKU b's across the covariate strata. The frame must carry the MF
// covariates (power is binned on demand, as in AnalyzeMF).
func MFSignificance(f *frame.Frame, a, b topology.SKU) (*Significance, error) {
	if _, err := f.Col("power_kw_bin"); err != nil {
		f = f.ShallowClone() // never mutate the caller's shared frame
		if _, err := pdp.BinContinuous(f, "power_kw", []float64{0, 10, 20}); err != nil {
			return nil, fmt.Errorf("skucmp: binning power: %w", err)
		}
	}
	covs := append(append([]string(nil), MFCovariates...), "power_kw_bin")
	diffs, err := pdp.PairedContrast(f, "failures", "sku", a.String(), b.String(), covs)
	if err != nil {
		return nil, fmt.Errorf("skucmp: contrasting %v vs %v: %w", a, b, err)
	}
	out := &Significance{Strata: len(diffs), MeanDiff: stats.Mean(diffs)}
	zeros := make([]float64, len(diffs))
	if t, err := stats.PairedT(diffs, zeros); err == nil {
		out.PairedT = t.P
	} else {
		out.PairedT = 1
	}
	if w, err := stats.WilcoxonSignedRank(diffs, zeros); err == nil {
		out.Wilcoxon = w.P
	} else {
		out.Wilcoxon = 1
	}
	return out, nil
}

// Verdict is the outcome of a procurement TCO comparison of two SKUs.
type Verdict struct {
	PriceRatio float64 `json:"price_ratio"`
	// SavingsSF / SavingsMF are the relative TCO savings of buying the
	// "reliable" SKU, as estimated from the SF and MF failure views.
	SavingsSF float64 `json:"savings_sf"`
	SavingsMF float64 `json:"savings_mf"`
}

// CompareTCO evaluates procuring candidate (e.g. S4) instead of baseline
// (e.g. S2) at the given price ratios, once with SF statistics and once
// with MF statistics. serversPerRack converts rack-day rates to
// per-server-year rates for the maintenance term; horizon is in years.
func CompareTCO(sfBase, sfCand, mfBase, mfCand Stats, serversPerRack int, priceRatios []float64, m tco.CostModel, horizonYears float64) ([]Verdict, error) {
	if serversPerRack <= 0 {
		return nil, errors.New("skucmp: non-positive servers per rack")
	}
	if len(priceRatios) == 0 {
		return nil, errors.New("skucmp: no price ratios")
	}
	toScenario := func(base, cand Stats, ratio float64) tco.ProcurementScenario {
		perServerYear := func(s Stats) float64 {
			return s.Avg * 365 / float64(serversPerRack)
		}
		spareFrac := func(s Stats) float64 {
			// Peak rack-day failures, held as spares per rack.
			f := s.Peak / float64(serversPerRack)
			if f > 1 {
				f = 1
			}
			return f
		}
		return tco.ProcurementScenario{
			Model:              m,
			HorizonYears:       horizonYears,
			PriceA:             ratio,
			PriceB:             1,
			SpareFracA:         spareFrac(cand),
			SpareFracB:         spareFrac(base),
			FailPerServerYearA: perServerYear(cand),
			FailPerServerYearB: perServerYear(base),
		}
	}
	out := make([]Verdict, 0, len(priceRatios))
	for _, ratio := range priceRatios {
		sf, err := toScenario(sfBase, sfCand, ratio).Savings()
		if err != nil {
			return nil, err
		}
		mf, err := toScenario(mfBase, mfCand, ratio).Savings()
		if err != nil {
			return nil, err
		}
		out = append(out, Verdict{PriceRatio: ratio, SavingsSF: sf, SavingsMF: mf})
	}
	return out, nil
}
