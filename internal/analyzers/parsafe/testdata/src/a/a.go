// Package a exercises the parsafe worker-slot exclusivity rules.
package a

import (
	"context"

	"parallel"
)

// Accumulate writes a captured scalar from every task.
func Accumulate(ctx context.Context, xs []float64) float64 {
	total := 0.0
	_ = parallel.ForEach(ctx, 0, len(xs), func(i int) error {
		total += xs[i] // want `closure writes captured variable total`
		return nil
	})
	return total
}

// Slots writes only index-addressed cells (negative case).
func Slots(ctx context.Context, xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(ctx, 0, len(xs), func(i int) error {
		out[i] = xs[i] * 2
		return nil
	})
	return out
}

// CountUp writes a captured map cell per task.
func CountUp(ctx context.Context, n int) map[int]int {
	counts := map[int]int{}
	_ = parallel.ForEach(ctx, 0, n, func(i int) error {
		counts[i] = i // want `closure writes captured map counts`
		return nil
	})
	return counts
}

// Field writes a captured struct field with no slot index.
func Field(ctx context.Context, n int) int {
	var res struct{ hits int }
	_ = parallel.ForEach(ctx, 0, n, func(i int) error {
		res.hits = i // want `writes captured res without indexing by a task-local value`
		return nil
	})
	return res.hits
}

// Pinned writes one fixed cell of a captured slice from every task.
func Pinned(ctx context.Context, n int) []int {
	out := make([]int, 1)
	_ = parallel.ForEach(ctx, 0, n, func(i int) error {
		out[0] = i // want `writes captured out without indexing by a task-local value`
		return nil
	})
	return out
}

// WorkerScratch accumulates into per-worker slots (negative case).
func WorkerScratch(ctx context.Context, xs []float64) float64 {
	scratch := make([]float64, 4)
	_ = parallel.ForEachWorker(ctx, 4, len(xs), func(w, i int) error {
		scratch[w] += xs[i]
		return nil
	})
	total := 0.0
	for _, v := range scratch {
		total += v
	}
	return total
}

// Doubled keeps every write closure-local under Map (negative case).
func Doubled(ctx context.Context, xs []float64) []float64 {
	out, _ := parallel.Map(ctx, 0, len(xs), func(i int) (float64, error) {
		v := xs[i] * 2
		return v, nil
	})
	return out
}
