package predict

import (
	"math"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/rng"
	"rainshine/internal/simulate"
	"rainshine/internal/topology"
)

var cachedFrame *frame.Frame

func rackDayFrame(t *testing.T) *frame.Frame {
	t.Helper()
	if cachedFrame != nil {
		return cachedFrame
	}
	res, err := simulate.Run(simulate.Config{
		Seed:            17,
		Days:            365,
		Topology:        topology.Config{RacksPerDC: [2]int{80, 70}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := metrics.RackDayFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	cachedFrame = f
	return f
}

func TestTrainEndToEnd(t *testing.T) {
	f := rackDayFrame(t)
	res, err := Train(f, Config{Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainRows == 0 || res.TestRows == 0 {
		t.Fatalf("splits = %d/%d", res.TrainRows, res.TestRows)
	}
	m := res.Metrics
	// A multi-factor model must beat chance: the planted structure
	// (region, SKU, age, workload) is strongly informative.
	if m.AUC < 0.6 {
		t.Errorf("AUC = %v, want > 0.6", m.AUC)
	}
	if m.Recall == 0 && m.Precision == 0 {
		t.Error("degenerate classifier: never alarms")
	}
	if m.TP+m.FP+m.TN+m.FN != res.TestRows {
		t.Error("confusion matrix does not partition the test set")
	}
	if m.PositiveRate <= 0 || m.PositiveRate > 0.5 {
		t.Errorf("positive rate = %v; failures should be a minority", m.PositiveRate)
	}
	if len(res.Importance) == 0 {
		t.Error("no importance ranking")
	}
}

func TestBalancingImprovesRecall(t *testing.T) {
	f := rackDayFrame(t)
	unbal, err := Train(f, Config{Balance: false})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Train(f, Config{Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	// The imbalance motivates the paper's pre-processing remark: with
	// balancing, recall must not get worse (typically it improves a lot).
	if bal.Metrics.Recall < unbal.Metrics.Recall-1e-9 {
		t.Errorf("balanced recall %v < unbalanced %v", bal.Metrics.Recall, unbal.Metrics.Recall)
	}
}

func TestTrainErrors(t *testing.T) {
	f := rackDayFrame(t)
	if _, err := Train(f, Config{TrainFraction: 1.5}); err == nil {
		t.Error("bad train fraction should error")
	}
	empty := frame.New(2)
	if err := empty.AddContinuous("day", []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(empty, Config{}); err == nil {
		t.Error("missing failures column should error")
	}
	noday := frame.New(1)
	if err := noday.AddContinuous("failures", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(noday, Config{}); err == nil {
		t.Error("missing day column should error")
	}
}

func TestEvaluateConfusion(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 0, 1, 0}
	m, err := Evaluate(scores, labels, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Errorf("confusion = %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.Accuracy != 0.5 {
		t.Errorf("metrics = %+v", m)
	}
	if math.Abs(m.F1-0.5) > 1e-12 {
		t.Errorf("F1 = %v", m.F1)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []int{1, 0}, 0.5); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(nil, nil, 0.5); err == nil {
		t.Error("empty set should error")
	}
}

func TestAUCProperties(t *testing.T) {
	// Perfect separation: AUC = 1.
	if got := auc([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Perfectly inverted: AUC = 0.
	if got := auc([]float64{0.1, 0.2, 0.8, 0.9}, []int{1, 1, 0, 0}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All-tied scores: AUC = 0.5.
	if got := auc([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 0, 1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", got)
	}
	// Single-class labels: defined as 0.5.
	if got := auc([]float64{0.1, 0.9}, []int{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestDownsample(t *testing.T) {
	labels := make([]int, 100)
	rows := make([]int, 100)
	for i := range rows {
		rows[i] = i
		if i < 10 {
			labels[i] = 1
		}
	}
	src := rng.New(1)
	out := downsample(rows, labels, 2, src)
	pos, neg := 0, 0
	for _, r := range out {
		if labels[r] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 10 {
		t.Errorf("positives dropped: %d", pos)
	}
	if neg != 20 {
		t.Errorf("negatives = %d, want 20", neg)
	}
	// Ratio larger than available negatives: keep everything.
	all := downsample(rows, labels, 100, src)
	if len(all) != 100 {
		t.Errorf("over-ratio downsample dropped rows: %d", len(all))
	}
}

func TestTrainDeterministic(t *testing.T) {
	f := rackDayFrame(t)
	a, err := Train(f, Config{Balance: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(f, Config{Balance: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ across identical runs: %+v vs %+v", a.Metrics, b.Metrics)
	}
}
