package frame

import (
	"math"
	"testing"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Any() || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d any=%v count=%d", b.Len(), b.Any(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if !b.Any() || b.Count() != 4 {
		t.Fatalf("after 4 sets: any=%v count=%d", b.Any(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("Get(%d) = false", i)
		}
	}
	if b.Get(1) || b.Get(-1) || b.Get(130) {
		t.Error("unset/out-of-range rows must read false")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Errorf("after Clear(63): get=%v count=%d", b.Get(63), b.Count())
	}
	cl := b.Clone()
	cl.Set(5)
	if b.Get(5) {
		t.Error("Clone must not share words")
	}

	var nilb *Bitmap
	if nilb.Get(0) || nilb.Any() || nilb.Count() != 0 || nilb.Clone() != nil {
		t.Error("nil bitmap must behave as empty")
	}
}

func TestBitmapSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range should panic")
		}
	}()
	NewBitmap(4).Set(4)
}

func TestColumnNullMarks(t *testing.T) {
	f := New(4)
	if err := f.AddContinuous("x", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("x")
	if c.HasNulls() || c.Missing(0) || c.Nulls() != nil {
		t.Fatal("fresh column must have no nulls")
	}
	// MarkNull keeps the raw value; the cell is still missing.
	c.MarkNull(1)
	if !c.Missing(1) || c.Data[1] != 2 {
		t.Errorf("MarkNull: missing=%v data=%v", c.Missing(1), c.Data[1])
	}
	// SetMissing also writes the NaN sentinel for legacy readers.
	c.SetMissing(2)
	if !c.Missing(2) || !math.IsNaN(c.Data[2]) {
		t.Errorf("SetMissing: missing=%v data=%v", c.Missing(2), c.Data[2])
	}
	if c.NullCount() != 2 || c.MissingCount() != 2 {
		t.Errorf("NullCount=%d MissingCount=%d, want 2, 2", c.NullCount(), c.MissingCount())
	}
	// A plain NaN counts as missing but not as an explicit null.
	c.Data[3] = math.NaN()
	if c.NullCount() != 2 || c.MissingCount() != 3 {
		t.Errorf("after NaN: NullCount=%d MissingCount=%d, want 2, 3", c.NullCount(), c.MissingCount())
	}
	if c.Missing(0) {
		t.Error("row 0 must stay present")
	}
}

func TestSubsetCarriesNulls(t *testing.T) {
	f := New(4)
	if err := f.AddContinuous("x", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f.MustCol("x").MarkNull(2)
	sub := f.Subset([]int{2, 0})
	c := sub.MustCol("x")
	if !c.Missing(0) || c.Missing(1) {
		t.Errorf("subset nulls: row0=%v row1=%v, want true, false", c.Missing(0), c.Missing(1))
	}
	if c.Data[0] != 3 || c.Data[1] != 1 {
		t.Errorf("subset data = %v", c.Data)
	}
}

func TestColumnClone(t *testing.T) {
	f := New(2)
	if err := f.AddContinuous("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("x")
	c.MarkNull(0)
	cl := c.Clone()
	cl.Data[1] = 99
	cl.MarkNull(1)
	if c.Data[1] != 2 || c.Missing(1) {
		t.Error("Clone must not share data or bitmap")
	}
	if !cl.Missing(0) {
		t.Error("Clone must carry existing null marks")
	}
}

func TestChunks(t *testing.T) {
	n := 100
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	f := New(n)
	if err := f.AddContinuous("x", data); err != nil {
		t.Fatal(err)
	}
	c := f.MustCol("x")
	c.MarkNull(41)

	chunks := c.Chunks(40)
	if len(chunks) != 3 {
		t.Fatalf("Chunks(40) = %d chunks", len(chunks))
	}
	total := 0
	for i, ch := range chunks {
		total += ch.Len()
		if ch.Data[0] != float64(ch.Lo) {
			t.Errorf("chunk %d Data[0] = %v, want %d", i, ch.Data[0], ch.Lo)
		}
	}
	if total != n {
		t.Errorf("chunk lengths sum to %d, want %d", total, n)
	}
	// Chunk-relative missing addresses the underlying column rows.
	if !chunks[1].Missing(1) || chunks[1].Missing(0) {
		t.Error("chunk Missing must address column rows")
	}
	chunks[2].MarkNull(0)
	if !c.Missing(80) {
		t.Error("chunk MarkNull must land in column storage")
	}

	// Default granularity covers everything in order.
	bounds := ChunkBounds(2*ChunkRows+1, 0)
	if len(bounds) != 3 || bounds[2] != [2]int{2 * ChunkRows, 2*ChunkRows + 1} {
		t.Errorf("default bounds = %v", bounds)
	}
	if ChunkBounds(0, 0) != nil {
		t.Error("empty range must have no chunks")
	}
}
