// Package a exercises the goleak rules: joined spawns pass, unjoined
// and unbounded spawns are flagged, and context bounds are pierced by
// the CtxIgnored fact exported from package ctxdep.
package a

import (
	"context"
	"sync"
	"time"

	"ctxdep"
)

func waitGroupJoin(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func deferredWaitJoin(items []int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

func channelJoin() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

func selectJoin(done chan struct{}) {
	go func() {
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}

func rangeJoin() int {
	out := make(chan int)
	go func() {
		defer close(out)
		out <- 1
	}()
	total := 0
	for v := range out {
		total += v
	}
	return total
}

func ctxParamBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func ctxLocalBound() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctxdep.Obey(ctx)
}

func leak() {
	go func() { // want `goroutine is never joined`
		n := 0
		for n >= 0 {
			n++
		}
	}()
}

func backgroundIsNotABound() {
	ctx := context.Background()
	go ctxdep.Obey(ctx) // want `goroutine is never joined`
}

func depIgnoresCtx(ctx context.Context) {
	go ctxdep.Spin(ctx) // want `a context that Spin ignores`
}

func localIgnoresCtx(ctx context.Context) {
	go shrug(ctx) // want `a context that shrug ignores`
}

func shrug(ctx context.Context) {
	n := 0
	for n >= 0 {
		n++
	}
}
