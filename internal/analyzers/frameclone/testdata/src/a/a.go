// Package a exercises the frameclone aliasing rules.
package a

import "frame"

// Mutate attaches a column straight onto the shared parameter frame.
func Mutate(f *frame.Frame) {
	f.AddContinuous("x", nil) // want `attaching a column to f, which aliases a parameter frame`
}

// Cloned re-points the variable at a ShallowClone first (negative).
func Cloned(f *frame.Frame) {
	f = f.ShallowClone()
	f.AddContinuous("x", nil)
}

// Alias propagates the taint through a plain alias.
func Alias(f *frame.Frame) {
	g := f
	g.AddNominalInts("k", nil) // want `attaching a column to g, which aliases a parameter frame`
}

// Subsetted mutates a frame the cleanser handed back (negative).
func Subsetted(f *frame.Frame) {
	g := f.Subset(nil)
	g.AddContinuous("x", nil)
}

// Fresh mutates a locally constructed frame (negative).
func Fresh(f *frame.Frame) *frame.Frame {
	g := frame.New()
	g.AddContinuous("x", nil)
	return g
}

// build is unexported: builders own their frames (negative).
func build(f *frame.Frame) {
	f.AddContinuous("x", nil)
}

// MarkCol marks nulls through a column view of the parameter frame.
func MarkCol(f *frame.Frame) {
	c, _ := f.Col("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SetCol writes a missing cell through MustCol on the parameter frame.
func SetCol(f *frame.Frame) {
	c := f.MustCol("x")
	c.SetMissing(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// MarkColAt marks nulls through a positional column view.
func MarkColAt(f *frame.Frame) {
	c := f.ColAt(0)
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// ShallowStillShared: ShallowClone copies the directory, not the cells,
// so column views of the clone still alias the caller's storage.
func ShallowStillShared(f *frame.Frame) {
	g := f.ShallowClone()
	c := g.MustCol("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SelectStillShared: Select shares column storage too.
func SelectStillShared(f *frame.Frame) {
	g, _ := f.Select("x")
	c := g.MustCol("x")
	c.MarkNull(0) // want `marking nulls on c, which views cell storage shared with the caller`
}

// SubsetOwnsCells: Subset copies cells, so its views are safe (negative).
func SubsetOwnsCells(f *frame.Frame) {
	g := f.Subset(nil)
	c := g.MustCol("x")
	c.MarkNull(0)
}

// FilterOwnsCells: Filter copies cells too (negative).
func FilterOwnsCells(f *frame.Frame) {
	g := f.Filter(nil)
	c := g.MustCol("x")
	c.SetMissing(0)
}

// ClonedColumn re-points the view at a deep copy first (negative).
func ClonedColumn(f *frame.Frame) {
	c := f.MustCol("x")
	c = c.Clone()
	c.MarkNull(0)
}

// MarkChunk marks nulls through a chunk window of a shared column.
func MarkChunk(f *frame.Frame) {
	c := f.MustCol("x")
	ch := c.Chunk(0, 1)
	ch.MarkNull(0) // want `marking nulls on ch, which views cell storage shared with the caller`
}

// MarkChunks marks nulls while ranging over the chunk list.
func MarkChunks(f *frame.Frame) {
	c := f.MustCol("x")
	for _, ch := range c.Chunks(4) {
		ch.MarkNull(0) // want `marking nulls on ch, which views cell storage shared with the caller`
	}
}

// ChunkOfOwnedColumn windows a cloned column (negative).
func ChunkOfOwnedColumn(f *frame.Frame) {
	c := f.MustCol("x").Clone()
	for _, ch := range c.Chunks(4) {
		ch.MarkNull(0)
	}
}
