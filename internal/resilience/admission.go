package resilience

import (
	"context"
	"sync"
	"time"
)

// Limiter is a concurrency-limited admission controller: at most
// maxConcurrent requests hold a slot at once, at most maxQueue more
// wait for one, and everything beyond that is shed immediately with a
// typed ShedError. The bounded queue is the load-shedding half of the
// design — once it fills, admitting more waiters would only build an
// unbounded backlog whose members all miss their deadlines together.
//
// All methods are safe for concurrent use.
type Limiter struct {
	slots chan struct{}
	retry time.Duration

	mu       sync.Mutex
	waiting  int
	maxQueue int
}

// NewLimiter sizes the controller. maxConcurrent < 1 is coerced to 1;
// maxQueue < 0 is coerced to 0 (shed as soon as the slots are full).
// retry seeds the advisory Retry-After carried by sheds.
func NewLimiter(maxConcurrent, maxQueue int, retry time.Duration) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots:    make(chan struct{}, maxConcurrent),
		retry:    retryAfter(retry),
		maxQueue: maxQueue,
	}
}

// Acquire claims a slot, queueing (bounded) if none is free. It returns
// nil when the caller holds a slot and must later Release it, a
// ShedError when the queue is full, or ctx.Err() if the caller's
// deadline expires while queued.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	l.mu.Lock()
	if l.waiting >= l.maxQueue {
		l.mu.Unlock()
		return &ShedError{Reason: QueueFull, RetryAfter: l.retry}
	}
	l.waiting++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.waiting--
		l.mu.Unlock()
	}()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (l *Limiter) Release() { <-l.slots }

// InUse reports the slots currently held.
func (l *Limiter) InUse() int { return len(l.slots) }

// Waiting reports the requests currently queued for a slot.
func (l *Limiter) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}
