package resilience

import (
	"errors"
	"testing"
	"time"
)

// These tests script breaker and bucket timing against the fakeClock
// from ratelimit_test.go, pinning every transition to an exact instant.

func shed(t *testing.T, err error) *ShedError {
	t.Helper()
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *ShedError", err)
	}
	return se
}

// TestBreakerHalfOpenProbeTiming scripts the open→half-open transition
// against a frozen clock: one nanosecond before the cooldown the
// circuit still sheds, at the boundary exactly one probe is admitted,
// and concurrent attempts during the probe are shed.
func TestBreakerHalfOpenProbeTiming(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(2, 10*time.Second, clock.now)

	b.RecordFailure()
	b.RecordFailure() // trips at threshold
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold failures = %v, want %v", got, Open)
	}

	clock.advance(10*time.Second - time.Nanosecond)
	if err := b.Allow(); err == nil {
		t.Fatal("admitted 1ns before the cooldown elapsed")
	} else if se := shed(t, err); se.Reason != BreakerOpen {
		t.Fatalf("shed reason = %v, want %v", se.Reason, BreakerOpen)
	}

	clock.advance(time.Nanosecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted at the cooldown boundary: %v", err)
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want %v", got, HalfOpen)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second attempt admitted while the probe is in flight")
	}
}

// TestBreakerProbeFailureRestartsCooldown verifies that a failed probe
// reopens the circuit with a fresh openedAt: the full cooldown must
// elapse again, measured from the probe failure, not the original trip.
func TestBreakerProbeFailureRestartsCooldown(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(1, 5*time.Second, clock.now)

	b.RecordFailure()
	clock.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.RecordFailure() // probe fails → reopen, cooldown restarts now

	clock.advance(5*time.Second - time.Millisecond)
	if err := b.Allow(); err == nil {
		t.Fatal("admitted before the restarted cooldown elapsed")
	}
	clock.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe not admitted after full restarted cooldown: %v", err)
	}
	b.RecordSuccess()
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want %v", got, Closed)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2 (initial trip plus probe failure)", got)
	}
}

// TestBreakerCanceledProbeReleasesSlot: abandoning the probe must allow
// another probe without waiting out a new cooldown.
func TestBreakerCanceledProbeReleasesSlot(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(1, time.Second, clock.now)
	b.RecordFailure()
	clock.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.RecordCanceled()
	if err := b.Allow(); err != nil {
		t.Fatalf("replacement probe not admitted after cancel: %v", err)
	}
}

// TestTokenBucketRefillIsPureInClock scripts refills token by token:
// with the clock frozen the bucket never refills; each advance adds
// exactly rate×dt tokens, capped at burst.
func TestTokenBucketRefillIsPureInClock(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(2, 3, clock.now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("burst token %d not admitted: %v", i, err)
		}
	}
	if err := tb.Allow(); err == nil {
		t.Fatal("admitted past burst with a frozen clock")
	} else if se := shed(t, err); se.Reason != RateLimited {
		t.Fatalf("shed reason = %v, want %v", se.Reason, RateLimited)
	}

	// 250ms at 2/s refills half a token: still shed.
	clock.advance(250 * time.Millisecond)
	if err := tb.Allow(); err == nil {
		t.Fatal("admitted on half a token")
	}
	// Another 250ms completes the token. (The failed Allow above already
	// banked the half token at its read of the clock.)
	clock.advance(250 * time.Millisecond)
	if err := tb.Allow(); err != nil {
		t.Fatalf("whole token not admitted: %v", err)
	}
	if err := tb.Allow(); err == nil {
		t.Fatal("same token admitted twice")
	}
}

// TestTokenBucketCapsAtBurst: an arbitrarily long idle period refills
// to burst, no further.
func TestTokenBucketCapsAtBurst(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(1, 2, clock.now)
	for i := 0; i < 2; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("burst token %d not admitted: %v", i, err)
		}
	}
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("post-idle token %d not admitted: %v", i, err)
		}
	}
	if err := tb.Allow(); err == nil {
		t.Fatal("idle refill exceeded burst")
	}
}

// TestTokenBucketBackwardClockDoesNotMint: a clock read that does not
// advance (or goes backwards) must not add tokens.
func TestTokenBucketBackwardClockDoesNotMint(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(1000, 1, clock.now)
	if err := tb.Allow(); err != nil {
		t.Fatalf("first token not admitted: %v", err)
	}
	clock.advance(-time.Minute)
	if err := tb.Allow(); err == nil {
		t.Fatal("backward clock minted a token")
	}
}
