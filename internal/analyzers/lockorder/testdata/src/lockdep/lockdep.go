// Package lockdep is a lockorder fixture dependency: Fill blocks on a
// channel (exporting a Blocks fact) and Pool.Get acquires Pool.mu
// (exporting a Locks fact); package a consumes both across the package
// boundary.
package lockdep

import "sync"

// Pool guards a freelist with a mutex.
type Pool struct {
	mu   sync.Mutex
	free []int
}

// Get pops from the freelist under Pool.mu.
func (p *Pool) Get() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0
	}
	v := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return v
}

// Fill blocks until the channel delivers.
func Fill(ch chan int) int {
	return <-ch
}
