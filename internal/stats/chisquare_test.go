package stats

import (
	"math"
	"testing"

	"rainshine/internal/rng"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Known critical values: P(X <= 3.841) = 0.95 for df=1;
	// P(X <= 5.991) = 0.95 for df=2; P(X <= 18.307) = 0.95 for df=10.
	cases := []struct {
		x, df, want float64
	}{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{18.307, 10, 0.95},
		{0, 3, 0},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.df); math.Abs(got-c.want) > 0.001 {
			t.Errorf("ChiSquareCDF(%v, %v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
	// Median of chi-square with df=2 is 2*ln2.
	if got := ChiSquareCDF(2*math.Ln2, 2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("median check = %v", got)
	}
	// Monotone.
	prev := -1.0
	for x := 0.0; x < 30; x += 0.5 {
		v := ChiSquareCDF(x, 5)
		if v < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = v
	}
}

func TestChiSquareGOFExactFit(t *testing.T) {
	// Observations exactly proportional to expectations: chi2 = 0, p = 1.
	obs := []float64{50, 30, 20}
	props := []float64{0.5, 0.3, 0.2}
	r, err := ChiSquareGOF(obs, props)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic != 0 || math.Abs(r.P-1) > 1e-9 {
		t.Errorf("exact fit: %+v", r)
	}
}

func TestChiSquareGOFDetectsMismatch(t *testing.T) {
	obs := []float64{90, 5, 5}
	props := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	r, err := ChiSquareGOF(obs, props)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Errorf("gross mismatch not detected: %+v", r)
	}
}

func TestChiSquareGOFNull(t *testing.T) {
	// Multinomial draws from the expected proportions should usually
	// pass.
	src := rng.New(41)
	props := []float64{0.4, 0.3, 0.2, 0.1}
	rejections := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		obs := make([]float64, len(props))
		for i := 0; i < 1000; i++ {
			u := src.Float64()
			acc := 0.0
			for k, p := range props {
				acc += p
				if u <= acc {
					obs[k]++
					break
				}
			}
		}
		r, err := ChiSquareGOF(obs, props)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("null rejected %d/%d times", rejections, trials)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareGOF([]float64{1}, []float64{1}); err == nil {
		t.Error("single category should error")
	}
	if _, err := ChiSquareGOF([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquareGOF([]float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("no observations should error")
	}
	if _, err := ChiSquareGOF([]float64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Error("negative counts should error")
	}
	if _, err := ChiSquareGOF([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero expectations should error")
	}
	if _, err := ChiSquareGOF([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("observed mass in zero-probability category should error")
	}
	// Zero-probability category with zero observations is fine.
	if _, err := ChiSquareGOF([]float64{0, 2, 3}, []float64{0, 0.5, 0.5}); err != nil {
		t.Errorf("benign zero category: %v", err)
	}
}
