// Package resilience holds the serving tier's overload-protection
// primitives: a concurrency-limited admission controller with a bounded
// wait queue (Limiter), a token-bucket rate limiter (TokenBucket), and
// a consecutive-failure circuit breaker (Breaker).
//
// The components are mechanism, not policy: they decide *whether* an
// attempt may proceed and return a typed ShedError when it may not, and
// the server decides what that refusal looks like on the wire (a 429
// with Retry-After for queue/rate sheds, a 503 or a degraded last-good
// answer for an open breaker).
//
// Every clock-dependent component takes an injected now func instead of
// reading the wall clock itself, for two reasons: tests (and the chaos
// soak harness) can drive state transitions deterministically, and the
// repository's determinism lint (detrand) confines time.Now to an
// explicit allowlist — injection keeps this package off that list
// entirely. RetryAfter values are derived from configuration, never
// from the current time, so shed response bodies are byte-stable.
package resilience

import (
	"fmt"
	"math"
	"time"
)

// Reason classifies why an attempt was refused admission.
type Reason string

const (
	// QueueFull: the endpoint's concurrency slots and its bounded wait
	// queue are both exhausted — waiting longer would only add latency
	// to a request that is already doomed.
	QueueFull Reason = "queue_full"
	// RateLimited: the global token bucket is empty.
	RateLimited Reason = "rate_limited"
	// BreakerOpen: the circuit breaker around study builds is open
	// after consecutive build failures.
	BreakerOpen Reason = "breaker_open"
)

// ShedError is the typed refusal every component returns. RetryAfter is
// an advisory client backoff derived from static configuration (never
// the clock), always at least one second, so error bodies are
// byte-deterministic.
type ShedError struct {
	Reason     Reason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

// retryAfter rounds d up to whole seconds with a one-second floor, the
// granularity of the HTTP Retry-After header.
func retryAfter(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	return time.Duration(math.Ceil(d.Seconds())) * time.Second
}
