package skucmp

import (
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

var cachedFrame *frame.Frame

func rackDayFrame(t *testing.T) *frame.Frame {
	t.Helper()
	if cachedFrame != nil {
		return cachedFrame
	}
	res, err := simulate.Run(simulate.Config{
		Seed:            5,
		Days:            365,
		Topology:        topology.Config{RacksPerDC: [2]int{130, 110}},
		SkipNonHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := metrics.RackDayFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	cachedFrame = f
	return f
}

func fourSKUs() []topology.SKU {
	return []topology.SKU{topology.S1, topology.S2, topology.S3, topology.S4}
}

func bySKU(ss []Stats) map[string]Stats {
	out := map[string]Stats{}
	for _, s := range ss {
		out[s.SKU] = s
	}
	return out
}

func TestAnalyzeSF(t *testing.T) {
	f := rackDayFrame(t)
	ss, err := AnalyzeSF(f, fourSKUs())
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("got %d SKUs", len(ss))
	}
	m := bySKU(ss)
	// Fig 14's ordering: S2 has the highest average rate, S4 the lowest
	// among the compute SKUs, with a large (confound-inflated) ratio.
	if m["S2"].Avg <= m["S4"].Avg {
		t.Errorf("SF: S2 avg %v should exceed S4 avg %v", m["S2"].Avg, m["S4"].Avg)
	}
	ratio := m["S2"].Avg / m["S4"].Avg
	if ratio < 5 {
		t.Errorf("SF S2/S4 ratio = %v, want confound-inflated (>5)", ratio)
	}
	for _, s := range ss {
		if s.N == 0 || s.Avg < 0 || s.Peak < s.Avg {
			t.Errorf("implausible stats: %+v", s)
		}
	}
}

func TestAnalyzeMFDeflatesRatio(t *testing.T) {
	f := rackDayFrame(t)
	sf, err := AnalyzeSF(f, fourSKUs())
	if err != nil {
		t.Fatal(err)
	}
	mf, err := AnalyzeMF(f, fourSKUs())
	if err != nil {
		t.Fatal(err)
	}
	sfm, mfm := bySKU(sf), bySKU(mf)
	sfRatio := sfm["S2"].Avg / sfm["S4"].Avg
	mfRatio := mfm["S2"].Avg / mfm["S4"].Avg
	// The MF analysis must (a) keep the ordering, (b) shrink the ratio
	// substantially toward the intrinsic ~4x.
	if mfRatio <= 1 {
		t.Fatalf("MF lost the ordering: ratio %v", mfRatio)
	}
	if mfRatio >= sfRatio*0.8 {
		t.Errorf("MF ratio %v not clearly below SF ratio %v", mfRatio, sfRatio)
	}
	if mfRatio < 2 || mfRatio > 7 {
		t.Errorf("MF ratio %v too far from intrinsic 4x", mfRatio)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	f := frame.New(2)
	if err := f.AddNominalInts("sku", []int{0, 0}, []string{"S1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("failures", []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Requesting a SKU with no observations errors.
	if _, err := AnalyzeSF(f, []topology.SKU{topology.S7}); err == nil {
		t.Error("no matching SKU should error")
	}
	// MF on a frame without covariates errors.
	if _, err := AnalyzeMF(f, []topology.SKU{topology.S1}); err == nil {
		t.Error("missing covariates should error")
	}
}

func TestCompareTCOVerdictFlip(t *testing.T) {
	// SF thinks the candidate is 10x better; MF knows it is 4x better.
	sfBase := Stats{SKU: "S2", Avg: 1.0, Peak: 10}
	sfCand := Stats{SKU: "S4", Avg: 0.1, Peak: 5}
	mfBase := Stats{SKU: "S2", Avg: 0.6, Peak: 7}
	mfCand := Stats{SKU: "S4", Avg: 0.15, Peak: 5}
	vs, err := CompareTCO(sfBase, sfCand, mfBase, mfCand, 44, []float64{1.0, 1.5}, tco.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	// At equal price both approaches favour the candidate.
	if vs[0].SavingsSF <= 0 || vs[0].SavingsMF <= 0 {
		t.Errorf("at price parity both should save: %+v", vs[0])
	}
	// At a premium, SF must be more optimistic than MF (it overestimates
	// the reliability gap).
	if vs[1].SavingsSF <= vs[1].SavingsMF {
		t.Errorf("SF (%v) should be more optimistic than MF (%v) at premium",
			vs[1].SavingsSF, vs[1].SavingsMF)
	}
}

func TestCompareTCOErrors(t *testing.T) {
	s := Stats{Avg: 1, Peak: 1}
	if _, err := CompareTCO(s, s, s, s, 0, []float64{1}, tco.Default(), 3); err == nil {
		t.Error("zero servers should error")
	}
	if _, err := CompareTCO(s, s, s, s, 40, nil, tco.Default(), 3); err == nil {
		t.Error("no ratios should error")
	}
	if _, err := CompareTCO(s, s, s, s, 40, []float64{1}, tco.CostModel{}, 3); err == nil {
		t.Error("bad cost model should error")
	}
}

func TestMFSignificance(t *testing.T) {
	f := rackDayFrame(t)
	sig, err := MFSignificance(f, topology.S2, topology.S4)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Strata < 3 {
		t.Fatalf("only %d shared strata", sig.Strata)
	}
	// The planted 4x intrinsic effect must be confidently detected.
	if sig.PairedT > 0.05 {
		t.Errorf("paired t p = %v, want significant", sig.PairedT)
	}
	if sig.MeanDiff <= 0 {
		t.Errorf("mean diff = %v, want S2 worse than S4", sig.MeanDiff)
	}
	if sig.Wilcoxon < 0 || sig.Wilcoxon > 1 {
		t.Errorf("wilcoxon p = %v", sig.Wilcoxon)
	}
}

func TestMFSignificanceErrors(t *testing.T) {
	f := frame.New(2)
	if err := f.AddNominalInts("sku", []int{0, 0}, []string{"S1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := MFSignificance(f, topology.S2, topology.S4); err == nil {
		t.Error("missing covariates should error")
	}
}
