package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rainshine"
	"rainshine/internal/resilience"
)

// serverClock is an injectable clock for the rate limiter and breaker.
type serverClock struct {
	mu sync.Mutex
	t  time.Time
}

func newServerClock() *serverClock {
	return &serverClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *serverClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *serverClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// flakyBuild succeeds for the first ok calls, then fails with failErr.
func flakyBuild(ok int, failErr error) buildFunc {
	var calls atomic.Int64
	return func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		if calls.Add(1) > int64(ok) {
			return nil, failErr
		}
		return &rainshine.Study{}, nil
	}
}

func TestRegistryDegradesToStaleOnBuildFailure(t *testing.T) {
	boom := errors.New("boom")
	reg := newRegistry(registryOptions{
		capacity: 1,
		metrics:  NewMetrics(),
		build:    flakyBuild(2, boom),
	})
	bg := context.Background()

	a := StudyConfig{Seed: 1}
	stA, _, err := reg.Study(bg, a)
	if err != nil {
		t.Fatal(err)
	}
	// B evicts A from the primary cache; the stale store keeps both.
	if _, _, err := reg.Study(bg, StudyConfig{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("primary cache len = %d, want 1", reg.Len())
	}
	// A's rebuild fails: the last-good copy serves, marked degraded.
	st, deg, err := reg.Study(bg, a)
	if err != nil {
		t.Fatalf("degraded fetch errored: %v", err)
	}
	if st != stA {
		t.Error("degraded fetch did not return the last-good study")
	}
	if deg == nil || deg.Reason != "build_failure" || deg.Detail != "boom" {
		t.Errorf("degradation = %+v, want build_failure/boom", deg)
	}
	// A study never built has no fallback: typed BuildError.
	_, _, err = reg.Study(bg, StudyConfig{Seed: 9})
	var be *BuildError
	if !errors.As(err, &be) || !errors.Is(err, boom) {
		t.Errorf("err = %v, want *BuildError wrapping boom", err)
	}
}

func TestRegistryDegradationReasonBuildTimeout(t *testing.T) {
	reg := newRegistry(registryOptions{
		capacity: 1,
		metrics:  NewMetrics(),
		build:    flakyBuild(2, fmt.Errorf("giving up: %w", context.DeadlineExceeded)),
	})
	bg := context.Background()
	if _, _, err := reg.Study(bg, StudyConfig{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Study(bg, StudyConfig{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	_, deg, err := reg.Study(bg, StudyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil || deg.Reason != "build_timeout" {
		t.Errorf("degradation = %+v, want reason build_timeout", deg)
	}
}

func TestRegistryBreakerOpenServesStaleOrSheds(t *testing.T) {
	clock := newServerClock()
	br := resilience.NewBreaker(1, time.Hour, clock.now)
	m := NewMetrics()
	m.attachBreaker(br)
	reg := newRegistry(registryOptions{
		capacity: 1,
		breaker:  br,
		metrics:  m,
		build:    flakyBuild(2, errors.New("boom")),
	})
	bg := context.Background()

	a := StudyConfig{Seed: 1}
	stA, _, err := reg.Study(bg, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Study(bg, StudyConfig{Seed: 2}); err != nil {
		t.Fatal(err) // evicts A from primary; stale keeps it
	}
	// This build fails and trips the breaker (threshold 1). A's stale
	// copy still serves it, marked as a plain build failure: the breaker
	// opened as a consequence, the request itself saw the failed build.
	if _, deg, err := reg.Study(bg, a); err != nil || deg == nil {
		t.Fatalf("st, deg, err = _, %+v, %v; want degraded, nil error", deg, err)
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", br.State())
	}
	// Breaker open + stale copy: degraded with reason breaker_open, and
	// crucially no build attempted.
	st, deg, err := reg.Study(bg, a)
	if err != nil {
		t.Fatal(err)
	}
	if st != stA || deg == nil || deg.Reason != "breaker_open" {
		t.Errorf("deg = %+v, want breaker_open serving last-good study", deg)
	}
	// Breaker open + no stale copy: typed shed.
	_, _, err = reg.Study(bg, StudyConfig{Seed: 9})
	se := asShed(err)
	if se == nil || se.Reason != resilience.BreakerOpen {
		t.Errorf("err = %v, want ShedError{BreakerOpen}", err)
	}
	if got := m.Snapshot(1).Resilience.BreakerState; got != "open" {
		t.Errorf("snapshot breaker state = %q, want open", got)
	}
	// After the cooldown the breaker probes: a successful build closes it.
	clock.advance(2 * time.Hour)
	reg.build = flakyBuild(1, errors.New("boom"))
	if _, deg, err := reg.Study(bg, StudyConfig{Seed: 9}); err != nil || deg != nil {
		t.Fatalf("probe build: deg=%+v err=%v, want fresh success", deg, err)
	}
	if br.State() != resilience.Closed {
		t.Errorf("breaker state after probe success = %v, want Closed", br.State())
	}
}

// TestRegistryEvictionRacesInflightBuild drives heavy eviction churn
// while a slow build is in flight; under -race this exercises the
// registry's locking around the primary/stale LRUs and the inflight map.
func TestRegistryEvictionRacesInflightBuild(t *testing.T) {
	slowKey := StudyConfig{Seed: 1000}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	build := func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
		if cfg == slowKey {
			once.Do(func() { close(entered) })
			<-release
		}
		return &rainshine.Study{}, nil
	}
	m := NewMetrics()
	reg := newRegistry(registryOptions{capacity: 2, metrics: m, build: build})
	bg := context.Background()

	done := make(chan error, 1)
	go func() {
		_, _, err := reg.Study(bg, slowKey)
		done <- err
	}()
	<-entered
	// Churn the caches hard while the slow build holds its inflight slot.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				cfg := StudyConfig{Seed: uint64(1 + g*25 + i)}
				if _, _, err := reg.Study(bg, cfg); err != nil {
					t.Errorf("churn build: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slow build failed: %v", err)
	}
	if reg.Len() != 2 {
		t.Errorf("cache len = %d, want capacity 2", reg.Len())
	}
	// The slow study published after the churn: it must be resident now.
	before := m.Snapshot(2).Builds.Started
	if _, _, err := reg.Study(bg, slowKey); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot(2).Builds.Started; got != before {
		t.Error("slow study was not cached after racing evictions")
	}
}

// blockingServer builds a Server whose q3 class admits one request with
// no wait queue, and whose builds block until release is closed.
func blockingServer(t *testing.T, rc ResilienceConfig) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		CacheSize:  2,
		Resilience: rc,
		build: func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
			once.Do(func() { close(entered) })
			select {
			case <-release:
				return &rainshine.Study{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		Logf: func(string, ...any) {},
	})
	return s, entered, release
}

func decodeAPIError(t *testing.T, rr *httptest.ResponseRecorder) apiError {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil {
		t.Fatalf("decoding error body %q: %v", rr.Body.String(), err)
	}
	return e
}

func TestServerShedsQ3WhenQueueFull(t *testing.T) {
	s, entered, release := blockingServer(t, ResilienceConfig{Q3Concurrent: 1, Q3Queue: -1})
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		req := httptest.NewRequest("GET", "/v1/q3", nil).WithContext(ctx)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-entered

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/q3", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	e := decodeAPIError(t, rr)
	if e.Reason != string(resilience.QueueFull) || e.RetryAfterSeconds < 1 {
		t.Errorf("body = %+v, want reason queue_full with retry advice", e)
	}
	// The cheap endpoints use their own semaphore: still admitted. The
	// build blocks, so use a short-deadline request and expect 504 —
	// admission let it through (the point of shedding q3 first).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	rr2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr2, httptest.NewRequest("GET", "/v1/quality", nil).WithContext(ctx2))
	if rr2.Code == http.StatusTooManyRequests {
		t.Errorf("cheap endpoint was shed by the q3 limiter: %d", rr2.Code)
	}
	if got := s.Metrics().Snapshot(2).Resilience.ShedQueueFull; got != 1 {
		t.Errorf("shed_queue_full = %d, want 1", got)
	}
}

func TestServerRateLimits(t *testing.T) {
	clock := newServerClock()
	s := New(Config{
		CacheSize:  2,
		Resilience: ResilienceConfig{RPS: 1, Burst: 1},
		build: func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
			return nil, errors.New("no build under rate-limit test")
		},
		Logf: func(string, ...any) {},
		now:  clock.now,
	})
	// First request spends the one burst token; the rate check happens
	// before the registry, so the failing build yields a typed 503.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/quality", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("first request status = %d, want 503 (build failure)", rr.Code)
	}
	// Second request inside the same second: rate-limited.
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/quality", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rr.Code)
	}
	if e := decodeAPIError(t, rr); e.Reason != string(resilience.RateLimited) {
		t.Errorf("reason = %q, want rate_limited", e.Reason)
	}
	if rr.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", rr.Header().Get("Retry-After"))
	}
	// Health and metrics stay exempt while shedding.
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("healthz status under rate limit = %d, want 200", rr.Code)
	}
	// A second later the bucket refills.
	clock.advance(time.Second)
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/quality", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("post-refill status = %d, want 503 (admitted again)", rr.Code)
	}
	snap := s.Metrics().Snapshot(2)
	if snap.Resilience.ShedRateLimited != 1 {
		t.Errorf("shed_rate_limited = %d, want 1", snap.Resilience.ShedRateLimited)
	}
}

func TestServerBreakerOpensAfterRepeatedBuildFailures(t *testing.T) {
	clock := newServerClock()
	s := New(Config{
		CacheSize:  2,
		Resilience: ResilienceConfig{BreakerThreshold: 2, BreakerCooldown: time.Hour},
		build: func(ctx context.Context, cfg StudyConfig) (*rainshine.Study, error) {
			return nil, errors.New("boom")
		},
		Logf: func(string, ...any) {},
		now:  clock.now,
	})
	// Two failed builds trip the breaker; requests use distinct configs
	// so each triggers its own build attempt.
	for seed := 1; seed <= 2; seed++ {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET",
			fmt.Sprintf("/v1/quality?seed=%d", seed), nil))
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("build-failure status = %d, want 503", rr.Code)
		}
		if e := decodeAPIError(t, rr); e.Reason != "build_failure" {
			t.Fatalf("reason = %q, want build_failure", e.Reason)
		}
	}
	// Breaker now open: next request sheds without touching the build.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/quality?seed=3", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open status = %d, want 503", rr.Code)
	}
	if e := decodeAPIError(t, rr); e.Reason != string(resilience.BreakerOpen) {
		t.Errorf("reason = %q, want breaker_open", e.Reason)
	}
	// Health degrades but keeps answering.
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	var hz struct {
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Breaker != "open" {
		t.Errorf("healthz = %+v, want degraded/open", hz)
	}
	snap := s.Metrics().Snapshot(2)
	if snap.Resilience.ShedBreakerOpen != 1 || snap.Resilience.BreakerOpens != 1 {
		t.Errorf("resilience counters = %+v, want 1 breaker shed, 1 open", snap.Resilience)
	}
}

// TestMetriczCountersUnderConcurrentOverload hammers the q3 endpoint
// past its admission limits and checks the shed counters add up: every
// request either held a slot, waited in the bounded queue, or was shed,
// and /metricz stays readable throughout.
func TestMetriczCountersUnderConcurrentOverload(t *testing.T) {
	s, entered, release := blockingServer(t, ResilienceConfig{Q3Concurrent: 1, Q3Queue: -1})

	ctx, cancel := context.WithCancel(context.Background())
	holder := make(chan struct{})
	go func() {
		defer close(holder)
		req := httptest.NewRequest("GET", "/v1/q3", nil).WithContext(ctx)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-entered

	const overload = 16
	codes := make(chan int, overload)
	var wg sync.WaitGroup
	for i := 0; i < overload; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := httptest.NewRecorder()
			s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/q3", nil))
			codes <- rr.Code
		}()
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("overload request got %d, want 429", code)
		}
	}
	// Metrics stay readable mid-overload and account for every shed.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("metricz status = %d, want 200", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Resilience.ShedQueueFull != overload {
		t.Errorf("shed_queue_full = %d, want %d", snap.Resilience.ShedQueueFull, overload)
	}
	if snap.Resilience.ShedTotal() != overload {
		t.Errorf("shed total = %d, want %d", snap.Resilience.ShedTotal(), overload)
	}
	cancel()
	close(release)
	<-holder
}
