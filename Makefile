# Reproduction harness for "Rain or Shine?" (ICDCS 2017).
# Everything is stdlib Go; no external dependencies.

GO ?= go

.PHONY: all build vet lint lint-fix lint-fix-check test race bench bench-fleet bench-fleet-check bench-fleet-multicore stream-replay stream-replay-check serve-load soak repro outputs examples fuzz clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# rainshinelint: the repo's own analyzer suite (benchgate, clockinject,
# ctxflow, detrand, frameclone, goleak, lockorder, nansafe, parsafe) run
# over every package, both standalone and as a `go vet -vettool`.
# Suppressions are per-line //lint:allow annotations with a reason;
# there are no package-wide excludes.
lint:
	$(GO) build -o bin/rainshinelint ./cmd/rainshinelint
	bin/rainshinelint ./...
	$(GO) vet -vettool=bin/rainshinelint ./...

# Apply every suggested fix in place (currently: lockorder value
# receivers, clockinject time.Now/Since on clock-injected types).
lint-fix:
	$(GO) build -o bin/rainshinelint ./cmd/rainshinelint
	bin/rainshinelint -fix ./...

# CI gate: -fix must be a no-op on a clean tree. Runs the fixer over a
# scratch copy (dot-prefixed so package loading skips it if left
# behind) and fails on any diff.
lint-fix-check:
	$(GO) build -o bin/rainshinelint ./cmd/rainshinelint
	rm -rf .lintfix-scratch
	mkdir -p .lintfix-scratch
	tar --exclude .git --exclude .lintfix-scratch --exclude bin -cf - . | (cd .lintfix-scratch && tar -xf -)
	cd .lintfix-scratch && $(CURDIR)/bin/rainshinelint -fix ./... || true
	diff -r --exclude .git --exclude .lintfix-scratch --exclude bin . .lintfix-scratch
	rm -rf .lintfix-scratch

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep, then the regression snapshot: TestBenchAnalysis
# records ns/op + allocs/op for the hot analyses (CART fit, CV, Q3,
# figure regeneration, predictor training) to BENCH_analysis.json.
bench:
	$(GO) test -bench=. -benchmem .
	RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_analysis.json \
		$(GO) test -run 'TestBenchAnalysis$$' -count=1 -v .

# Fleet-scale benchmark + regression gate: the 1M-row binned CART fit
# with -benchmem, then TestBenchFleet, which fails if cart_fit_20k or
# cart_fit_1m_binned regressed >15% ns/op against BENCH_analysis.json
# and merges fresh numbers into the snapshot (recording the
# cart_fit_1m_exact baseline on first run), then the typed coding-pass
# gate (>=2x over the float64 layout, coding_pass_1m_typed mark).
# Recorded marks carry gomaxprocs; gates only engage like-for-like.
bench-fleet:
	$(GO) test -run XXX -bench 'CARTFit1MBinned$$' -benchmem -count=1 .
	RAINSHINE_BENCH_FLEET=1 RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_analysis.json \
		$(GO) test -run 'TestBenchFleet$$' -count=1 -v .
	RAINSHINE_BENCH_FLEET=1 RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_analysis.json \
		RAINSHINE_BENCH_SNAP=$(CURDIR)/BENCH_analysis.json \
		$(GO) test -run 'TestBenchFleetCodingPass$$' -count=1 -v ./internal/cart/

# Gate-only variant for CI: compares against the committed snapshot
# without rewriting it.
bench-fleet-check:
	RAINSHINE_BENCH_FLEET=1 $(GO) test -run 'TestBenchFleet$$' -count=1 -v .
	RAINSHINE_BENCH_FLEET=1 \
		$(GO) test -run 'TestBenchFleetCodingPass$$' -count=1 -v ./internal/cart/

# Multicore gate (needs >=4 procs; skips with a log on narrower boxes):
# the 1M-row binned fit with Workers=GOMAXPROCS must be byte-identical
# to serial and >=2x faster, best-of-5 vs best-of-3. Check-only — set
# RAINSHINE_BENCH_OUT to merge cart_fit_1m_binned_multicore into a
# snapshot on a box where the numbers are reproducible.
bench-fleet-multicore:
	RAINSHINE_BENCH_FLEET=1 \
		$(GO) test -run 'TestBenchFleetMulticore$$' -count=1 -timeout 20m -v ./internal/cart/

# Streaming gate: the streamed-vs-batch byte-identity replay tests under
# the race detector, then TestBenchStreamRefit, which fails unless the
# single-day incremental refit beats a from-scratch full refit (and
# regressed <15% vs the snapshot), merging incremental_refit_20k into
# BENCH_analysis.json.
stream-replay:
	$(GO) test -race -count=1 -run 'TestStreamReplayByteIdentical' -v ./internal/stream/
	RAINSHINE_BENCH_STREAM=1 RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_analysis.json \
		$(GO) test -run 'TestBenchStreamRefit$$' -count=1 -v .

# Gate-only variant for CI: compares against the committed snapshot
# without rewriting it.
stream-replay-check:
	$(GO) test -race -count=1 -run 'TestStreamReplayByteIdentical' -v ./internal/stream/
	RAINSHINE_BENCH_STREAM=1 $(GO) test -run 'TestBenchStreamRefit$$' -count=1 -v .

# Concurrent load test against the serve daemon (32 parallel clients,
# mixed endpoints, 3 distinct configs) under the race detector; records
# the throughput summary to BENCH_serve.json's "load" section.
serve-load:
	RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -race -count=1 -run TestServeLoad -v ./internal/server/

# Deterministic chaos soak: byte-stable degraded responses for a fixed
# seed, then hundreds of concurrent clients against deliberately tight
# admission limits with every chaos class on, under the race detector.
# Fails on latency-SLO or availability regressions; records the run to
# BENCH_serve.json's "soak" section.
soak:
	RAINSHINE_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -race -count=1 -timeout 10m -run 'TestChaosSoak' -v ./internal/server/

# Regenerate every paper table and figure at full scale (seed 42).
repro:
	$(GO) run ./cmd/rainshine all

# Record the canonical outputs referenced by EXPERIMENTS.md.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/spareprovisioning
	$(GO) run ./examples/vendorselection
	$(GO) run ./examples/climatecontrol
	$(GO) run ./examples/failureprediction
	$(GO) run ./examples/operations
	$(GO) run ./examples/externaldata

fuzz:
	$(GO) test -fuzz FuzzReadFrameCSV -fuzztime 30s ./internal/export/
	$(GO) test -fuzz FuzzNullBitmapRoundTrip -fuzztime 30s ./internal/export/
	$(GO) test -fuzz FuzzTypedColumnCSVRoundTrip -fuzztime 30s ./internal/export/
	$(GO) test -fuzz FuzzTicketsCSVRoundTrip -fuzztime 30s ./internal/export/
	$(GO) test -fuzz FuzzIngestTickets -fuzztime 30s ./internal/ingest/
	$(GO) test -fuzz FuzzQuantile -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzChiSquareCDF -fuzztime 30s ./internal/stats/

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf .lintfix-scratch bin
