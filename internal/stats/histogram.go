package stats

import (
	"errors"
	"fmt"
	"math"
)

// Bin is one histogram bucket over [Lo, Hi) (the final bucket is closed).
type Bin struct {
	Lo, Hi float64
	Count  int
	// Values holds the member samples when the histogram was built with
	// KeepValues; used for per-bin summary statistics (the paper plots a
	// mean and sd per bin).
	Values []float64
}

// Histogram buckets a sample into fixed edges.
type Histogram struct {
	Bins []Bin
}

// NewHistogram buckets xs into the len(edges)-1 buckets defined by the
// ascending edges slice. Samples outside [edges[0], edges[last]] are
// clamped into the first/last bucket, which matches the paper's
// "<20" / ">70" style open-ended bins.
func NewHistogram(xs []float64, edges []float64, keepValues bool) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, errors.New("stats: need at least two bin edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: bin edges not ascending at %d", i)
		}
	}
	h := &Histogram{Bins: make([]Bin, len(edges)-1)}
	for i := range h.Bins {
		h.Bins[i].Lo, h.Bins[i].Hi = edges[i], edges[i+1]
	}
	for _, x := range xs {
		i := bucketIndex(edges, x)
		h.Bins[i].Count++
		if keepValues {
			h.Bins[i].Values = append(h.Bins[i].Values, x)
		}
	}
	return h, nil
}

// bucketIndex returns the bucket for x, clamping out-of-range values.
func bucketIndex(edges []float64, x float64) int {
	n := len(edges) - 1
	if x < edges[0] {
		return 0
	}
	if x >= edges[n] {
		return n - 1
	}
	// Binary search for the right-most edge <= x.
	lo, hi := 0, n
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if edges[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GroupedSummary computes, for a paired sample (key, value), the Summary
// of values whose keys fall into each bucket. This is the primitive
// behind every "failure rate vs factor-bin" figure (Figs 5, 8, 9, 16, 17).
func GroupedSummary(keys, values []float64, edges []float64) ([]Summary, error) {
	if len(keys) != len(values) {
		return nil, errors.New("stats: length mismatch")
	}
	if len(edges) < 2 {
		return nil, errors.New("stats: need at least two bin edges")
	}
	groups := make([][]float64, len(edges)-1)
	for i, k := range keys {
		if math.IsNaN(k) {
			continue
		}
		groups[bucketIndex(edges, k)] = append(groups[bucketIndex(edges, k)], values[i])
	}
	out := make([]Summary, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			out[i] = Summary{}
			continue
		}
		s, err := Summarize(g)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
