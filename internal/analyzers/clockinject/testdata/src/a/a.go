// Package a exercises rules A and C outside the clock-injected
// packages: methods of now-field types get autofixed onto the injected
// clock, and bare timer primitives are flagged.
package a

import "time"

// Svc carries an injected clock.
type Svc struct {
	start time.Time
	now   func() time.Time
}

func (s *Svc) stamp() time.Time {
	return time.Now() // want `time.Now in a method of a clock-injected type: call s.now\(\)`
}

func (s *Svc) uptime() time.Duration {
	return time.Since(s.start) // want `time.Since in a method of a clock-injected type: call s.now\(\).Sub`
}

func (s *Svc) good() time.Time {
	return s.now()
}

// plain has no now field: time.Now here is detrand's business, not
// clockinject's.
type plain struct {
	n int
}

func (p *plain) stamp() time.Time {
	return time.Now()
}

func napping(d time.Duration) {
	time.Sleep(d) // want `time.Sleep creates a wall-clock timer`
}

func polling() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick creates a wall-clock timer`
}

func allowed(d time.Duration) {
	time.Sleep(d) //lint:allow clockinject fixture proves suppression works
}
